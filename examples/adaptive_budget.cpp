// Adaptive budget: the §IV-B feedback loop in action.
//
// The user asks for a relative error bound (default 0.5%); the adaptive
// controller watches each window's reported error and refines the
// sampling fraction at every layer of the tree until the bound is met
// with as little sampling as possible — then holds there.
//
// Run: ./build/examples/adaptive_budget [target=0.005] [windows=15]
#include <cstdio>

#include "common/config.hpp"
#include "core/adaptive.hpp"
#include "core/pipeline.hpp"
#include "workload/generators.hpp"
#include "workload/ground_truth.hpp"
#include "workload/substream.hpp"

using namespace approxiot;

int main(int argc, char** argv) {
  auto config = Config::from_args({argv + 1, argv + argc});
  if (!config) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const double target = config.value().get_double_or("target", 0.005);
  const auto windows =
      static_cast<std::size_t>(config.value().get_int_or("windows", 15));

  core::EdgeTreeConfig tree_config;
  tree_config.engine = core::EngineKind::kApproxIoT;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = 1.0;  // start conservative, adapt down
  core::EdgeTree tree(tree_config);

  core::AdaptiveConfig adaptive_config;
  adaptive_config.target_relative_error = target;
  core::AdaptiveController controller(1.0, adaptive_config);

  workload::StreamGenerator gen(workload::gaussian_quad(5000.0), 7);
  workload::GroundTruth truth;

  std::printf("adaptive budget: target relative error %.2f%%\n",
              target * 100.0);
  std::printf("%-8s%12s%16s%16s%12s\n", "window", "fraction", "reported err",
              "actual loss %", "sampled");

  SimTime now = SimTime::zero();
  for (std::size_t w = 0; w < windows; ++w) {
    truth.reset();
    for (int tick = 0; tick < 10; ++tick) {
      auto items = gen.tick(now, SimTime::from_millis(100));
      truth.add_all(items);
      tree.tick(workload::shard_by_substream(items, tree.leaf_count()));
      now = now + SimTime::from_millis(100);
    }
    const core::ApproxResult result = tree.close_window();

    std::printf("%-8zu%12.3f%15.4f%%%16.4f%12llu\n", w,
                tree.sampling_fraction(),
                result.sum.relative_margin() * 100.0,
                workload::accuracy_loss_percent(result.sum.point,
                                                truth.total_sum()),
                static_cast<unsigned long long>(result.sampled_items));

    // Feedback: refine the sampling parameters at all layers (§IV-B).
    const double next_fraction = controller.observe(result.sum);
    tree.set_sampling_fraction(next_fraction);
  }

  std::printf("\nfinal fraction: %.3f (history:", controller.fraction());
  for (double f : controller.history()) std::printf(" %.2f", f);
  std::printf(")\n");
  return 0;
}
