#include "netsim/link.hpp"

#include <gtest/gtest.h>

namespace approxiot::netsim {
namespace {

TEST(LinkTest, DeliversAfterLatencyPlusSerialization) {
  Simulator sim;
  LinkConfig config;
  config.one_way_latency = SimTime::from_millis(10);
  config.bandwidth_bps = 8e6;  // 1 MB/s -> 1000 bytes take 1 ms
  Link link(sim, config);

  SimTime arrival{};
  link.transfer(1000, [&]() { arrival = sim.now(); });
  sim.run();
  EXPECT_EQ(arrival, SimTime::from_millis(11));
}

TEST(LinkTest, BackToBackTransfersQueueOnSerialization) {
  Simulator sim;
  LinkConfig config;
  config.one_way_latency = SimTime::from_millis(5);
  config.bandwidth_bps = 8e6;
  Link link(sim, config);

  SimTime first{}, second{};
  link.transfer(1000, [&]() { first = sim.now(); });   // busy until 1 ms
  link.transfer(1000, [&]() { second = sim.now(); });  // starts at 1 ms
  sim.run();
  EXPECT_EQ(first, SimTime::from_millis(6));
  EXPECT_EQ(second, SimTime::from_millis(7));
}

TEST(LinkTest, InfiniteBandwidthIsPureLatency) {
  Simulator sim;
  LinkConfig config;
  config.one_way_latency = SimTime::from_millis(20);
  config.bandwidth_bps = 0.0;  // treated as "no serialization cost"
  Link link(sim, config);
  SimTime arrival{};
  link.transfer(1 << 30, [&]() { arrival = sim.now(); });
  sim.run();
  EXPECT_EQ(arrival, SimTime::from_millis(20));
}

TEST(LinkTest, CountsBytesAndTransfers) {
  Simulator sim;
  Link link(sim, LinkConfig{});
  link.transfer(100, []() {});
  link.transfer(250, []() {});
  EXPECT_EQ(link.bytes_sent(), 350u);
  EXPECT_EQ(link.transfers(), 2u);
  link.reset_counters();
  EXPECT_EQ(link.bytes_sent(), 0u);
}

TEST(LinkTest, UtilizationReflectsBusyTime) {
  Simulator sim;
  LinkConfig config;
  config.one_way_latency = SimTime::zero();
  config.bandwidth_bps = 8e6;  // 1000 bytes/ms
  Link link(sim, config);
  // 1000 bytes = 1 ms busy.
  link.transfer(1000, []() {});
  sim.run();
  sim.run_until(SimTime::from_millis(10));
  EXPECT_NEAR(link.utilization(), 0.1, 0.01);
}

TEST(LinkTest, IdleTransferStartsFromNow) {
  Simulator sim;
  LinkConfig config;
  config.one_way_latency = SimTime::from_millis(1);
  config.bandwidth_bps = 8e6;
  Link link(sim, config);
  SimTime arrival{};
  sim.schedule_at(SimTime::from_millis(100), [&]() {
    link.transfer(1000, [&]() { arrival = sim.now(); });
  });
  sim.run();
  // Starts at 100 ms (link idle), not at the old busy_until.
  EXPECT_EQ(arrival, SimTime::from_millis(102));
}

}  // namespace
}  // namespace approxiot::netsim
