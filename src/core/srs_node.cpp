#include "core/srs_node.hpp"

#include "core/checkpoint.hpp"

namespace approxiot::core {

SrsNode::SrsNode(SrsNodeConfig config)
    : config_(config),
      sampler_(config.probability, Rng(config.rng_seed)) {}

void SrsNode::set_probability(double p) { sampler_.set_probability(p); }

double SrsNode::probability() const noexcept {
  return sampler_.probability();
}

std::vector<SampledBundle> SrsNode::process_interval(
    const std::vector<ItemBundle>& psi) {
  // Interval boundary = policy boundary: the keep probability for the
  // whole interval comes from the current control-plane snapshot.
  if (config_.policy.bound()) {
    ResourceBudget current;
    current.sampling_fraction = sampler_.probability();
    const PolicyDecision decision = config_.policy.resolve(current);
    policy_epoch_ = decision.epoch;
    sampler_.set_probability(decision.budget.sampling_fraction);
  }

  std::vector<SampledBundle> outputs;
  outputs.reserve(psi.size());

  for (const ItemBundle& bundle : psi) {
    if (bundle.items.empty()) continue;
    metrics_.items_in += bundle.items.size();

    WeightMap effective = remembered_weights_;
    effective.update_from(bundle.w_in);
    remembered_weights_.update_from(bundle.w_in);

    const double ht = sampler_.weight();  // 1/p
    kept_scratch_.clear();
    for (const Item& item : bundle.items) {
      if (!sampler_.keep()) continue;
      kept_scratch_.push_back(item);
    }
    if (kept_scratch_.empty()) continue;

    SampledBundle out;
    out.sample.assign(kept_scratch_, stratify_scratch_);
    out.policy_epoch = policy_epoch_;
    for (const Stratum& s : out.sample.strata()) {
      out.w_out.set(s.id, effective.get(s.id) * ht);
      metrics_.items_out += s.len;
    }
    outputs.push_back(std::move(out));
  }
  ++metrics_.intervals;
  return outputs;
}

void SrsNode::save_state(CheckpointWriter& writer) const {
  writer.put_double(sampler_.probability());
  writer.put_rng(sampler_.rng_state());
  writer.put_u64(sampler_.seen());
  writer.put_u64(sampler_.kept());
  writer.put_u64(policy_epoch_);
  writer.put_weight_map(remembered_weights_);
}

void SrsNode::restore_state(CheckpointReader& reader) {
  sampler_.set_probability(reader.get_double());
  sampler_.set_rng_state(reader.get_rng());
  const std::uint64_t seen = reader.get_u64();
  const std::uint64_t kept = reader.get_u64();
  sampler_.restore_counters(seen, kept);
  policy_epoch_ = reader.get_u64();
  reader.get_weight_map(remembered_weights_);
}

SrsRootNode::SrsRootNode(SrsNodeConfig config) : node_(config) {}

void SrsRootNode::ingest_interval(const std::vector<ItemBundle>& psi) {
  for (SampledBundle& bundle : node_.process_interval(psi)) {
    theta_.add(bundle);
  }
}

ApproxResult SrsRootNode::run_query(double confidence) const {
  return approximate_query(theta_, confidence);
}

ApproxResult SrsRootNode::close_window(double confidence) {
  ApproxResult result = run_query(confidence);
  theta_.clear();
  return result;
}

}  // namespace approxiot::core
