// Property tests of the paper's central invariant (Eq. 8): the estimated
// original item count of every sub-stream is EXACT at the root, no matter
// how many hops, how items split across intervals, or how aggressively
// each hop samples — because W^out · c̃ = W^in · c holds at every node.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/estimators.hpp"
#include "core/node.hpp"
#include "core/theta_store.hpp"

namespace approxiot::core {
namespace {

std::vector<Item> n_items(SubStreamId id, std::size_t n, double value = 1.0) {
  std::vector<Item> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(Item{id, value, 0});
  return out;
}

NodeConfig fixed_config(std::size_t sample_size, std::uint64_t seed) {
  NodeConfig config;
  config.cost_function = "fixed";
  config.budget.fixed_sample_size = sample_size;
  config.rng_seed = seed;
  return config;
}

// Params: (chain depth, per-node reservoir budget, items per sub-stream).
using ChainParams = std::tuple<int, std::size_t, std::size_t>;

class CountInvariantTest : public ::testing::TestWithParam<ChainParams> {};

TEST_P(CountInvariantTest, CountEstimateExactThroughChain) {
  const auto [depth, budget, items_per_stream] = GetParam();

  std::vector<SamplingNode> chain;
  for (int d = 0; d < depth; ++d) {
    chain.emplace_back(
        fixed_config(budget, 977 + static_cast<std::uint64_t>(d)));
  }

  // Three sub-streams of different sizes.
  ItemBundle input;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    auto items = n_items(SubStreamId{s}, items_per_stream * s);
    input.items.insert(input.items.end(), items.begin(), items.end());
  }

  std::vector<ItemBundle> psi = {input};
  for (auto& node : chain) {
    std::vector<ItemBundle> next;
    for (SampledBundle& out : node.process_interval(psi)) {
      next.push_back(out.to_bundle());
    }
    psi = std::move(next);
  }

  ThetaStore theta;
  for (const ItemBundle& bundle : psi) {
    SampledBundle as_sampled;
    as_sampled.w_out = bundle.w_in;
    for (const Item& item : bundle.items) {
      as_sampled.sample[item.source].push_back(item);
    }
    theta.add(as_sampled);
  }

  for (std::uint64_t s = 1; s <= 3; ++s) {
    const double truth = static_cast<double>(items_per_stream * s);
    // Exact as long as the sub-stream retained >= 1 item (an empty sample
    // carries no weight and loses the count, which the paper's estimator
    // shares; budgets in this sweep keep at least one item per stream).
    if (theta.sampled_count(SubStreamId{s}) > 0) {
      EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), truth,
                  truth * 1e-9)
          << "depth=" << depth << " budget=" << budget << " stream=" << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChainSweep, CountInvariantTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(3, 10, 50),
                       ::testing::Values(10, 100)));

// All-ones streams: SUM estimate equals the count estimate, hence exact —
// the paper's Eq. 8 argument verbatim.
TEST(CountInvariantTest, AllOnesSumIsExact) {
  SamplingNode a(fixed_config(7, 1));
  SamplingNode b(fixed_config(3, 2));

  ItemBundle input;
  input.items = n_items(SubStreamId{1}, 500, 1.0);

  auto mid = a.process_interval({input});
  std::vector<ItemBundle> psi;
  for (auto& m : mid) psi.push_back(m.to_bundle());
  auto out = b.process_interval(psi);

  ThetaStore theta;
  for (auto& o : out) theta.add(o);
  EXPECT_DOUBLE_EQ(estimate_total_sum(theta), 500.0);
}

// Split-interval variant: the same original set forwarded in two chunks
// across different intervals of the downstream node still reconstructs
// the exact count (the paper's "items split across m intervals" case).
TEST(CountInvariantTest, SplitAcrossIntervalsStillExact) {
  SamplingNode upstream(fixed_config(8, 3));
  SamplingNode downstream(fixed_config(4, 4));

  ItemBundle input;
  input.items = n_items(SubStreamId{1}, 100);
  auto sampled = upstream.process_interval({input});
  ASSERT_EQ(sampled.size(), 1u);
  ItemBundle forwarded = sampled[0].to_bundle();
  ASSERT_EQ(forwarded.items.size(), 8u);

  // Chunk 1 carries the weight; chunk 2 arrives in the next interval
  // weight-less (Fig. 3).
  ItemBundle chunk1, chunk2;
  chunk1.w_in = forwarded.w_in;
  chunk1.items.assign(forwarded.items.begin(), forwarded.items.begin() + 5);
  chunk2.items.assign(forwarded.items.begin() + 5, forwarded.items.end());

  ThetaStore theta;
  for (auto& o : downstream.process_interval({chunk1})) theta.add(o);
  for (auto& o : downstream.process_interval({chunk2})) theta.add(o);

  EXPECT_NEAR(theta.estimated_original_count(SubStreamId{1}), 100.0, 1e-9);
}

// Randomised stress: random chain depths, budgets and stream mixes.
TEST(CountInvariantTest, RandomizedChains) {
  Rng rng(20240612);
  for (int trial = 0; trial < 30; ++trial) {
    const int depth = 1 + static_cast<int>(rng.next_below(4));
    std::vector<SamplingNode> chain;
    for (int d = 0; d < depth; ++d) {
      const std::size_t budget = 2 + rng.next_below(40);
      chain.emplace_back(fixed_config(budget, rng.next()));
    }

    const std::uint64_t streams = 1 + rng.next_below(4);
    std::vector<std::size_t> truth(streams + 1, 0);
    ItemBundle input;
    for (std::uint64_t s = 1; s <= streams; ++s) {
      const std::size_t n = 1 + rng.next_below(200);
      truth[s] = n;
      auto items = n_items(SubStreamId{s}, n);
      input.items.insert(input.items.end(), items.begin(), items.end());
    }

    std::vector<ItemBundle> psi = {input};
    for (auto& node : chain) {
      std::vector<ItemBundle> next;
      for (SampledBundle& out : node.process_interval(psi)) {
        next.push_back(out.to_bundle());
      }
      psi = std::move(next);
    }

    ThetaStore theta;
    for (const ItemBundle& bundle : psi) {
      SampledBundle as_sampled;
      as_sampled.w_out = bundle.w_in;
      for (const Item& item : bundle.items) {
        as_sampled.sample[item.source].push_back(item);
      }
      theta.add(as_sampled);
    }

    for (std::uint64_t s = 1; s <= streams; ++s) {
      if (theta.sampled_count(SubStreamId{s}) == 0) continue;
      const double t = static_cast<double>(truth[s]);
      EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), t,
                  t * 1e-9)
          << "trial=" << trial << " stream=" << s;
    }
  }
}

}  // namespace
}  // namespace approxiot::core
