#include "core/cost_function.hpp"

#include <gtest/gtest.h>

namespace approxiot::core {
namespace {

TEST(FractionCostFunctionTest, FirstObservationSeedsTheEwma) {
  FractionCostFunction cf;
  ResourceBudget budget;
  budget.sampling_fraction = 0.1;
  // The first observation becomes the EWMA directly.
  EXPECT_EQ(cf.sample_size(budget, 500, SimTime::from_seconds(1)), 50u);
  EXPECT_DOUBLE_EQ(cf.smoothed_rate(), 500.0);
}

TEST(FractionCostFunctionTest, ConvergesToFractionOfRate) {
  FractionCostFunction cf(1.0);  // alpha 1: no smoothing
  ResourceBudget budget;
  budget.sampling_fraction = 0.2;
  (void)cf.sample_size(budget, 1000, SimTime::from_seconds(1));
  const std::size_t size =
      cf.sample_size(budget, 1000, SimTime::from_seconds(1));
  EXPECT_EQ(size, 200u);
}

TEST(FractionCostFunctionTest, EwmaSmoothsSpikes) {
  FractionCostFunction cf(0.5);
  ResourceBudget budget;
  budget.sampling_fraction = 1.0;
  (void)cf.sample_size(budget, 1000, SimTime::from_seconds(1));
  // One spike to 2000: EWMA gives 1500, not 2000.
  const std::size_t size =
      cf.sample_size(budget, 2000, SimTime::from_seconds(1));
  EXPECT_EQ(size, 1500u);
  EXPECT_DOUBLE_EQ(cf.smoothed_rate(), 1500.0);
}

TEST(FractionCostFunctionTest, ClampsFraction) {
  FractionCostFunction cf(1.0);
  ResourceBudget budget;
  budget.sampling_fraction = 2.0;  // over 1: clamp
  (void)cf.sample_size(budget, 100, SimTime::from_seconds(1));
  EXPECT_EQ(cf.sample_size(budget, 100, SimTime::from_seconds(1)), 100u);
}

TEST(FractionCostFunctionTest, ZeroObservationsFloorOfOne) {
  FractionCostFunction cf(1.0);
  ResourceBudget budget;
  budget.sampling_fraction = 0.5;
  EXPECT_EQ(cf.sample_size(budget, 0, SimTime::from_seconds(1)), 1u);
}

TEST(FractionCostFunctionTest, RejectsBadAlpha) {
  EXPECT_THROW(FractionCostFunction(0.0), std::invalid_argument);
  EXPECT_THROW(FractionCostFunction(1.5), std::invalid_argument);
}

TEST(RateCostFunctionTest, CapsItemsPerInterval) {
  RateCostFunction cf;
  ResourceBudget budget;
  budget.max_items_per_second = 5000.0;
  EXPECT_EQ(cf.sample_size(budget, 999999, SimTime::from_seconds(2)), 10000u);
  EXPECT_EQ(cf.sample_size(budget, 999999, SimTime::from_millis(500)), 2500u);
}

TEST(RateCostFunctionTest, ZeroRateMeansZeroSample) {
  RateCostFunction cf;
  ResourceBudget budget;
  budget.max_items_per_second = 0.0;
  EXPECT_EQ(cf.sample_size(budget, 100, SimTime::from_seconds(1)), 0u);
}

TEST(FixedCostFunctionTest, AlwaysReturnsConfiguredSize) {
  FixedCostFunction cf;
  ResourceBudget budget;
  budget.fixed_sample_size = 77;
  EXPECT_EQ(cf.sample_size(budget, 0, SimTime::from_seconds(1)), 77u);
  EXPECT_EQ(cf.sample_size(budget, 1000000, SimTime::from_seconds(9)), 77u);
}

TEST(CostFunctionFactoryTest, KnownNames) {
  EXPECT_EQ(make_cost_function("fraction")->name(), "fraction");
  EXPECT_EQ(make_cost_function("rate")->name(), "rate");
  EXPECT_EQ(make_cost_function("fixed")->name(), "fixed");
  EXPECT_THROW(make_cost_function("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace approxiot::core
