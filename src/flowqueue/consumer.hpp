// Consumer: polls assigned partitions in round-robin order and tracks
// per-partition positions. Supports both standalone assignment (assign())
// and group membership via the Broker's coordinator (subscribe()).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flowqueue/broker.hpp"
#include "obs/stats.hpp"

namespace approxiot::flowqueue {

/// One assigned partition's read position against its log end — the
/// consumer-side watermark. `caught_up()` means every record appended to
/// the partition so far has been consumed; nothing older than what the
/// consumer already saw can still arrive from it (until new appends).
struct PartitionWatermark {
  TopicPartition tp{};
  Offset position{0};
  Offset end_offset{0};

  [[nodiscard]] bool caught_up() const noexcept {
    return position >= end_offset;
  }
  [[nodiscard]] std::int64_t lag() const noexcept {
    return end_offset - position;
  }
};

class Consumer {
 public:
  /// Standalone consumer with an explicit partition assignment.
  Consumer(Broker& broker, std::string client_id);

  /// Not copyable: a consumer owns its group membership.
  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;
  ~Consumer();

  /// Joins `group` subscribed to `topics`; the broker assigns partitions.
  /// Re-joining with more topics widens the subscription.
  Status subscribe(const std::string& group,
                   const std::vector<std::string>& topics);

  /// Standalone mode: consume exactly these partitions, no group.
  Status assign(std::vector<TopicPartition> partitions);

  /// Pulls up to `max_records` records across assigned partitions, advancing
  /// local positions. Returns the batch (possibly empty).
  Result<std::vector<Record>> poll(std::size_t max_records);

  /// Seeks one partition's position.
  Status seek(const TopicPartition& tp, Offset offset);

  /// Commits current positions to the broker (group mode only).
  Status commit();

  /// Resumes positions from the broker's committed offsets (group mode).
  Status restore_committed();

  [[nodiscard]] const std::vector<TopicPartition>& assignment() const noexcept {
    return assignment_;
  }
  [[nodiscard]] Offset position(const TopicPartition& tp) const;

  /// Records lag (end_offset - position) summed over the assignment.
  [[nodiscard]] std::int64_t total_lag() const;

  /// Per-partition positions against log ends, one entry per assigned
  /// partition. Lets callers flush mid-stream the moment every partition
  /// is provably read past a point, instead of waiting for an idle poll
  /// (see runtime::FlowQueueSource).
  [[nodiscard]] std::vector<PartitionWatermark> partition_watermarks() const;

  /// True when every assigned partition is read to its end offset.
  /// False for an empty assignment (nothing is provably consumed).
  [[nodiscard]] bool caught_up() const;

  /// Registers consumer gauges under `scope` (e.g. "flowqueue/c1") and
  /// refreshes them at the end of every poll():
  ///   {scope}/lag                 records behind, summed watermarks
  ///   {scope}/watermark_age_us    stream-time distance between the next
  ///                               unread record and the newest appended
  ///                               one, worst assigned partition (0 when
  ///                               caught up)
  ///   {scope}/caught_up           1.0 / 0.0
  ///   {scope}/assigned_partitions current assignment size
  ///   {scope}/records_polled      counter, records returned by poll()
  /// The registry must outlive the consumer. Derived from
  /// partition_watermarks(), so an explicit update_stats() gives the same
  /// numbers between polls.
  void bind_stats(obs::StatsRegistry& registry, const std::string& scope);

  /// Recomputes the bound gauges now (no-op when never bound).
  void update_stats();

 private:
  void refresh_assignment_if_stale();

  Broker* broker_;
  std::string client_id_;
  std::string group_;
  bool in_group_{false};
  std::uint64_t seen_generation_{0};
  std::vector<std::string> subscribed_topics_;
  std::vector<TopicPartition> assignment_;
  std::map<TopicPartition, Offset> positions_;
  std::size_t next_partition_index_{0};

  // Observability sinks (null until bind_stats). See bind_stats().
  obs::Gauge* lag_gauge_{nullptr};
  obs::Gauge* watermark_age_gauge_{nullptr};
  obs::Gauge* caught_up_gauge_{nullptr};
  obs::Gauge* assigned_gauge_{nullptr};
  obs::Counter* records_polled_{nullptr};
};

}  // namespace approxiot::flowqueue
