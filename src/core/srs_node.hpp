// SRS baseline node (§IV-B module II): keeps each arriving item with an
// independent coin flip at probability p (the node's sampling fraction),
// ignoring sub-stream boundaries. The Horvitz–Thompson weight of a kept
// item is 1/p; across layers, weights multiply exactly like ApproxIoT's,
// so the same ThetaStore/estimator machinery evaluates both systems.
//
// Note the crucial difference the paper measures: SRS applies ONE
// probability to the whole stream, so a rare-but-valuable sub-stream can
// end up with no surviving items at all (Fig. 10c), while ApproxIoT's
// stratification guarantees each sub-stream a reservoir share.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/control_plane.hpp"
#include "core/node.hpp"
#include "sampling/bernoulli.hpp"

namespace approxiot::core {

struct SrsNodeConfig {
  NodeId id{};
  double probability{1.0};
  std::uint64_t rng_seed{0xc01fc01fULL};
  /// Live control plane view (§IV-B): when bound, the node's keep
  /// probability is resolved through this handle at interval boundaries
  /// (scoped per layer like the WHS fraction) and outputs are stamped
  /// with the resolved epoch. Unbound keeps `probability` frozen.
  PolicyHandle policy{};
};

class SrsNode {
 public:
  explicit SrsNode(SrsNodeConfig config);

  /// Filters one interval's pairs. Item weights in the output are the
  /// input weights scaled by 1/p (Horvitz–Thompson).
  [[nodiscard]] std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi);

  void set_probability(double p);
  [[nodiscard]] double probability() const noexcept;

  [[nodiscard]] NodeId id() const noexcept { return config_.id; }
  [[nodiscard]] const NodeMetrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_ = NodeMetrics{}; }

  /// Policy epoch resolved for the most recent interval (0 when unbound).
  [[nodiscard]] PolicyEpoch policy_epoch() const noexcept {
    return policy_epoch_;
  }

  /// Checkpoint hooks: probability, coin-flip RNG stream, seen/kept
  /// counters, remembered weights, resolved epoch.
  void save_state(CheckpointWriter& writer) const;
  void restore_state(CheckpointReader& reader);

 private:
  SrsNodeConfig config_;
  PolicyEpoch policy_epoch_{0};
  sampling::BernoulliSampler sampler_;
  WeightMap remembered_weights_;
  /// Reused buffers: the coin-flip survivors of one bundle (stratified
  /// in bulk afterwards — counting build, no per-item maps) and the
  /// stratification working state, so output bundles stay pure data.
  std::vector<Item> kept_scratch_;
  StratifyScratch stratify_scratch_;
  NodeMetrics metrics_;
};

/// SRS root: filter + accumulate Θ + query, mirroring RootNode.
class SrsRootNode {
 public:
  explicit SrsRootNode(SrsNodeConfig config);

  void ingest_interval(const std::vector<ItemBundle>& psi);
  [[nodiscard]] ApproxResult run_query(
      double confidence = stats::kConfidence95) const;
  ApproxResult close_window(double confidence = stats::kConfidence95);

  [[nodiscard]] const ThetaStore& theta() const noexcept { return theta_; }
  [[nodiscard]] const NodeMetrics& metrics() const noexcept {
    return node_.metrics();
  }

 private:
  SrsNode node_;
  ThetaStore theta_;
};

}  // namespace approxiot::core
