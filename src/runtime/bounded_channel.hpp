// BoundedChannel: a fixed-capacity MPSC/MPMC queue with close semantics —
// the edge between two concurrently-running tree nodes.
//
// The capacity bound is what turns the channel into a *backpressure*
// mechanism: a fast child filling its parent's inbox either blocks (the
// default, lossless) or drops the newest message and counts the loss.
// Dropping whole interval messages is itself a sampling decision the
// ApproxIoT estimators can absorb — a dropped interval is equivalent to a
// sensor that produced nothing that interval (the Fig. 3 carry-over rule
// keeps later intervals consistent) — so overloaded deployments can trade
// bounded memory for a lower effective sampling fraction. The dropped
// count is surfaced so operators can see exactly how much was shed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/hooks.hpp"

namespace approxiot::runtime {

/// Optional per-channel instrumentation, bound after construction by the
/// runtime that owns the channel (the tree binds one per edge). All
/// pointers may be null; unbound channels pay nothing beyond a null check,
/// and APPROXIOT_NO_STATS compiles the checks away entirely.
struct ChannelStats {
  obs::Gauge* depth{nullptr};            ///< queue size after push/pop
  obs::Histogram* block_wait_us{nullptr};  ///< producer stall (kBlock, full)
  obs::Counter* dropped{nullptr};        ///< kDropNewest discards
};

/// Readiness notification for event-driven endpoints. Waiters are plain
/// callbacks, not condition variables: the channel invokes them OUTSIDE
/// its lock after the state change that might unblock the other side
/// (readable: a successful push, or close; writable: a pop that freed a
/// slot, or close). Invocations are edge-triggered hints, never proofs —
/// a racing consumer may empty the channel between the push and the
/// waiter firing — so receivers must re-check with try_pop()/try_push()
/// and treat a fruitless wake as spurious. A kDropNewest push that sheds
/// its value raises no readable event (nothing became poppable).
using ChannelWaiter = std::function<void()>;

/// What a producer does when the channel is full.
enum class BackpressurePolicy {
  kBlock,       ///< push() waits for space (lossless, propagates pressure)
  kDropNewest,  ///< push() discards the incoming value and counts it
};

[[nodiscard]] constexpr const char* backpressure_policy_name(
    BackpressurePolicy policy) noexcept {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropNewest:
      return "drop-newest";
  }
  return "?";
}

template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity,
                          BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Binds observability sinks. Call before producers/consumers start
  /// (the struct is copied; later rebinding would race with push/pop).
  void bind_stats(const ChannelStats& stats) { stats_ = stats; }

  /// Installs the readiness waiters (see ChannelWaiter). Like bind_stats,
  /// wiring happens before producers/consumers start; rebinding while the
  /// channel is live would race with the un-locked invocation sites.
  void set_readable_waiter(ChannelWaiter waiter) {
    readable_waiter_ = std::move(waiter);
  }
  void set_writable_waiter(ChannelWaiter waiter) {
    writable_waiter_ = std::move(waiter);
  }

  /// Enqueues `value`. Under kBlock, waits until space or close; under
  /// kDropNewest a full channel discards the value immediately. Returns
  /// true iff the value was enqueued (false == dropped or channel closed).
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (policy_ == BackpressurePolicy::kDropNewest) {
      if (closed_) return false;
      if (queue_.size() >= capacity_) {
        ++dropped_;
        AIOT_OBS(if (stats_.dropped != nullptr) stats_.dropped->increment(););
        return false;
      }
    } else {
      if (closed_ || queue_.size() >= capacity_) {
        // Producer is about to stall (or learn of close); time the wait
        // only on this slow path so uncontended pushes read no clock.
        AIOT_OBS(
            if (stats_.block_wait_us != nullptr && !closed_ &&
                queue_.size() >= capacity_) {
              const auto begin = std::chrono::steady_clock::now();
              not_full_.wait(lock, [this] {
                return closed_ || queue_.size() < capacity_;
              });
              stats_.block_wait_us->record(
                  std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - begin)
                      .count());
            });
      }
      not_full_.wait(lock,
                     [this] { return closed_ || queue_.size() < capacity_; });
      if (closed_) return false;
    }
    queue_.push_back(std::move(value));
    ++pushed_;
    AIOT_OBS(if (stats_.depth != nullptr) {
      stats_.depth->set(static_cast<double>(queue_.size()));
    });
    lock.unlock();
    not_empty_.notify_one();
    if (readable_waiter_) readable_waiter_();
    return true;
  }

  /// Non-blocking push: false if full (not counted as a drop) or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
      ++pushed_;
      AIOT_OBS(if (stats_.depth != nullptr) {
        stats_.depth->set(static_cast<double>(queue_.size()));
      });
    }
    not_empty_.notify_one();
    if (readable_waiter_) readable_waiter_();
    return true;
  }

  /// Non-blocking push that leaves `value` INTACT when the channel is
  /// full, so an event-driven producer can park and re-offer the same
  /// message after a writable wake (try_push would have consumed the
  /// moved-in value on failure). On success the value is moved from and
  /// true is returned. A closed channel returns false with the value
  /// untouched — callers distinguish full from closed via closed().
  bool try_push_from(T& value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
      ++pushed_;
      AIOT_OBS(if (stats_.depth != nullptr) {
        stats_.depth->set(static_cast<double>(queue_.size()));
      });
    }
    not_empty_.notify_one();
    if (readable_waiter_) readable_waiter_();
    return true;
  }

  /// Dequeues the oldest value, waiting while the channel is empty but
  /// open. Returns nullopt only once the channel is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    ++popped_;
    AIOT_OBS(if (stats_.depth != nullptr) {
      stats_.depth->set(static_cast<double>(queue_.size()));
    });
    lock.unlock();
    not_full_.notify_one();
    if (writable_waiter_) writable_waiter_();
    return value;
  }

  /// Non-blocking pop: nullopt when nothing is ready right now.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) return std::nullopt;
      value.emplace(std::move(queue_.front()));
      queue_.pop_front();
      ++popped_;
      AIOT_OBS(if (stats_.depth != nullptr) {
        stats_.depth->set(static_cast<double>(queue_.size()));
      });
    }
    not_full_.notify_one();
    if (writable_waiter_) writable_waiter_();
    return value;
  }

  /// Closes the channel: pending values stay poppable, new pushes fail,
  /// and every blocked producer/consumer wakes up.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    // Close is both a readable and a writable event: a consumer parked on
    // an empty channel must wake to observe end-of-stream, and a producer
    // parked on a full one must wake to learn its pushes now fail.
    if (readable_waiter_) readable_waiter_();
    if (writable_waiter_) writable_waiter_();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Closed AND empty: a try_pop() that returned nullopt will never yield
  /// again — the event-driven consumer's end-of-stream test. (A false
  /// return is only a hint: a racing consumer may drain the last value
  /// right after; re-check after the next failed try_pop.)
  [[nodiscard]] bool drained() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && queue_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] BackpressurePolicy policy() const noexcept { return policy_; }

  [[nodiscard]] std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }
  [[nodiscard]] std::uint64_t popped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return popped_;
  }
  /// Values discarded by kDropNewest (always 0 under kBlock).
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  ChannelStats stats_;
  ChannelWaiter readable_waiter_;
  ChannelWaiter writable_waiter_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_{false};
  std::uint64_t pushed_{0};
  std::uint64_t popped_{0};
  std::uint64_t dropped_{0};
};

}  // namespace approxiot::runtime
