#include "core/whsamp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace approxiot::core {
namespace {

std::vector<Item> items_of(SubStreamId id, std::initializer_list<double> vals) {
  std::vector<Item> out;
  for (double v : vals) out.push_back(Item{id, v, 0});
  return out;
}

std::vector<Item> n_items(SubStreamId id, std::size_t n, double value = 1.0) {
  std::vector<Item> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(Item{id, value, 0});
  return out;
}

TEST(StratifyTest, GroupsBySource) {
  std::vector<Item> items;
  for (auto& i : items_of(SubStreamId{1}, {1, 2})) items.push_back(i);
  for (auto& i : items_of(SubStreamId{2}, {3})) items.push_back(i);
  for (auto& i : items_of(SubStreamId{1}, {4})) items.push_back(i);

  auto strata = stratify(items);
  ASSERT_EQ(strata.size(), 2u);
  EXPECT_EQ(strata.at(SubStreamId{1}).size(), 3u);
  EXPECT_EQ(strata.at(SubStreamId{2}).size(), 1u);
}

TEST(StratifyTest, EmptyInput) {
  EXPECT_TRUE(stratify({}).empty());
}

TEST(WHSamplerTest, UnderfullStreamKeepsWeightAndItems) {
  WHSampler sampler;
  WeightMap w_in;
  auto out = sampler.sample(items_of(SubStreamId{1}, {5, 6, 7}), 10, w_in);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{1}), 1.0);
  EXPECT_EQ(out.sample.at(SubStreamId{1}).size(), 3u);
}

TEST(WHSamplerTest, OverflowUpdatesWeightPerEquationOne) {
  // The Fig. 2 example: 4 items, reservoir 3 -> w = 4/3, W_out = W_in*4/3.
  WHSampler sampler;
  WeightMap w_in;
  w_in.set(SubStreamId{1}, 3.0);
  auto out = sampler.sample(items_of(SubStreamId{1}, {1, 2, 3, 4}), 3, w_in);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{1}), 3.0 * 4.0 / 3.0);
  EXPECT_EQ(out.sample.at(SubStreamId{1}).size(), 3u);
}

TEST(WHSamplerTest, WeightInvariantHoldsPerCall) {
  // W_out * c_tilde == W_in * c for every sub-stream (Eq. 8 per node).
  WHSampler sampler(Rng(17));
  WeightMap w_in;
  w_in.set(SubStreamId{1}, 2.5);
  w_in.set(SubStreamId{2}, 1.0);

  std::vector<Item> items = n_items(SubStreamId{1}, 100);
  auto more = n_items(SubStreamId{2}, 7);
  items.insert(items.end(), more.begin(), more.end());

  auto out = sampler.sample(items, 20, w_in);
  const double lhs1 = out.w_out.get(SubStreamId{1}) *
                      static_cast<double>(out.sample.at(SubStreamId{1}).size());
  EXPECT_DOUBLE_EQ(lhs1, 2.5 * 100.0);
  const double lhs2 = out.w_out.get(SubStreamId{2}) *
                      static_cast<double>(out.sample.at(SubStreamId{2}).size());
  EXPECT_DOUBLE_EQ(lhs2, 1.0 * 7.0);
}

TEST(WHSamplerTest, BudgetSplitAcrossSubStreams) {
  WHSampler sampler(Rng(23));
  WeightMap w_in;
  std::vector<Item> items = n_items(SubStreamId{1}, 1000);
  auto more = n_items(SubStreamId{2}, 1000);
  items.insert(items.end(), more.begin(), more.end());

  auto out = sampler.sample(items, 10, w_in);
  // Equal allocation: 5 + 5.
  EXPECT_EQ(out.sample.at(SubStreamId{1}).size(), 5u);
  EXPECT_EQ(out.sample.at(SubStreamId{2}).size(), 5u);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{1}), 200.0);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{2}), 200.0);
}

TEST(WHSamplerTest, RareSubStreamNotStarved) {
  // The stratification guarantee: a 10-item sub-stream sharing a node
  // with a 100k-item sub-stream still lands in the sample.
  WHSampler sampler(Rng(29));
  WeightMap w_in;
  std::vector<Item> items = n_items(SubStreamId{1}, 100000);
  auto rare = n_items(SubStreamId{2}, 10, 42.0);
  items.insert(items.end(), rare.begin(), rare.end());

  auto out = sampler.sample(items, 100, w_in);
  EXPECT_FALSE(out.sample.at(SubStreamId{2}).empty());
}

TEST(WHSamplerTest, EmptyItemsGiveEmptyOutput) {
  WHSampler sampler;
  auto out = sampler.sample({}, 10, WeightMap{});
  EXPECT_TRUE(out.sample.empty());
  EXPECT_TRUE(out.w_out.empty());
  EXPECT_EQ(out.item_count(), 0u);
}

TEST(WHSamplerTest, ZeroBudgetKeepsNothingButReportsStreams) {
  WHSampler sampler(Rng(31));
  auto out = sampler.sample(n_items(SubStreamId{1}, 10), 0, WeightMap{});
  EXPECT_TRUE(out.sample.at(SubStreamId{1}).empty());
  // Weight entry still recorded for observability.
  EXPECT_TRUE(out.w_out.contains(SubStreamId{1}));
}

TEST(WHSamplerTest, SampledItemsComeFromInput) {
  WHSampler sampler(Rng(37));
  auto out =
      sampler.sample(items_of(SubStreamId{1}, {10, 20, 30, 40, 50}), 2,
                     WeightMap{});
  for (const Item& item : out.sample.at(SubStreamId{1})) {
    EXPECT_TRUE(item.value == 10 || item.value == 20 || item.value == 30 ||
                item.value == 40 || item.value == 50);
  }
}

TEST(WHSamplerTest, AlgorithmLVariantMatchesInvariant) {
  WHSampConfig config;
  config.reservoir_algorithm = sampling::ReservoirAlgorithm::kAlgorithmL;
  WHSampler sampler(Rng(41), config);
  auto out = sampler.sample(n_items(SubStreamId{1}, 500), 50, WeightMap{});
  EXPECT_EQ(out.sample.at(SubStreamId{1}).size(), 50u);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{1}), 10.0);
}

TEST(WHSamplerTest, BundleFlattening) {
  WHSampler sampler(Rng(43));
  WeightMap w_in;
  std::vector<Item> items = n_items(SubStreamId{1}, 10);
  auto more = n_items(SubStreamId{2}, 10);
  items.insert(items.end(), more.begin(), more.end());
  auto out = sampler.sample(items, 100, w_in);

  ItemBundle bundle = out.to_bundle();
  EXPECT_EQ(bundle.items.size(), 20u);
  EXPECT_DOUBLE_EQ(bundle.w_in.get(SubStreamId{1}), 1.0);
}

}  // namespace
}  // namespace approxiot::core
