// Extended approximate queries — the paper's future-work direction
// ("we plan to extend the system to support more complex queries such as
// joins, top-k"). Two queries compose naturally with the weighted sample
// in Θ:
//
//  * top-k: rank sub-streams by their estimated SUM (each with its own
//    CLT error bound). Because SUM_i is unbiased per stratum, the
//    ranking is consistent; the per-entry bounds let a caller detect
//    rank ties that the sample cannot resolve.
//  * quantile: the Horvitz–Thompson weighted empirical quantile of item
//    values — each sampled item stands for `weight` originals, so the
//    quantile is read off the weighted cumulative distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/theta_store.hpp"
#include "stats/confidence.hpp"

namespace approxiot::analytics {

struct TopKEntry {
  SubStreamId id{};
  stats::ConfidenceInterval sum;  // SUM_i ± bound
  double estimated_count{0.0};
};

/// Top `k` sub-streams by estimated SUM, descending; ties break on id.
/// Returns fewer entries when Θ has fewer sub-streams.
[[nodiscard]] std::vector<TopKEntry> execute_topk(
    const core::ThetaStore& theta, std::size_t k,
    double confidence = stats::kConfidence95);

/// True iff the top-1 entry's lower bound clears the runner-up's upper
/// bound — i.e. the sample is large enough to certify the winner.
[[nodiscard]] bool topk_winner_is_significant(
    const std::vector<TopKEntry>& entries);

/// Weighted empirical quantile of item values, q in [0,1]. Returns an
/// error when Θ holds no items.
[[nodiscard]] Result<double> execute_quantile(const core::ThetaStore& theta,
                                              double q);

/// Convenience: weighted median.
[[nodiscard]] inline Result<double> execute_median(
    const core::ThetaStore& theta) {
  return execute_quantile(theta, 0.5);
}

}  // namespace approxiot::analytics
