#include "core/parallel.hpp"

namespace approxiot::core {

ParallelSampler::ParallelSampler(std::size_t threads, Rng rng) {
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = threads == 0 ? 1 : threads;
  executor_ = std::make_shared<PooledSamplingExecutor>(options);
  lane_ = executor_->create_lane(rng, WHSampConfig{});
}

SampledBundle ParallelSampler::sample(const std::vector<Item>& items,
                                      std::size_t sample_size,
                                      const WeightMap& w_in) {
  return lane_->sample(items, sample_size, w_in);
}

}  // namespace approxiot::core
