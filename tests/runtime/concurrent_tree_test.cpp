// ConcurrentEdgeTree vs the sequential core::EdgeTree.
//
// With one runtime worker per node and lossless (kBlock) channels, the
// concurrent runtime must be BIT-IDENTICAL to the sequential tree: same
// stages, same seeds, same Ψ ordering, therefore the same RNG draws, the
// same samples, the same weights, the same Θ, the same query answer.
// That is the strongest possible statement of the paper's no-coordination
// claim: adding threads changed nothing but wall-clock interleaving.
//
// With workers_per_node > 1 the samples legitimately differ (reservoirs
// are sharded, §III-E) but the Eq. 8 invariant W^out·c̃ = W^in·c must keep
// every sub-stream's estimated original count exact at the root.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/estimators.hpp"
#include "core/pipeline.hpp"
#include "runtime/concurrent_tree.hpp"

namespace approxiot::runtime {
namespace {

using core::EdgeTree;
using core::EdgeTreeConfig;
using core::EngineKind;

/// Deterministic workload: `ticks` intervals of random items over 4
/// sub-streams, sharded across `leaves`. Returns items[tick][leaf].
std::vector<std::vector<std::vector<Item>>> make_workload(std::size_t ticks,
                                                          std::size_t leaves,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::vector<Item>>> workload(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    workload[t].resize(leaves);
    for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
      const std::size_t n = rng.next_below(120);  // occasionally tiny/empty
      for (std::size_t i = 0; i < n; ++i) {
        workload[t][leaf].push_back(
            Item{SubStreamId{1 + rng.next_below(4)},
                 rng.next_double() * 10.0,
                 static_cast<std::int64_t>(t) * 1000});
      }
    }
  }
  return workload;
}

void expect_theta_identical(const core::ThetaStore& sequential,
                            const core::ThetaStore& concurrent) {
  const auto seq_streams = sequential.sub_streams();
  const auto conc_streams = concurrent.sub_streams();
  ASSERT_EQ(seq_streams.size(), conc_streams.size());
  for (std::size_t s = 0; s < seq_streams.size(); ++s) {
    EXPECT_EQ(seq_streams[s], conc_streams[s]);
    const auto& seq_pairs = sequential.pairs(seq_streams[s]);
    const auto& conc_pairs = concurrent.pairs(seq_streams[s]);
    ASSERT_EQ(seq_pairs.size(), conc_pairs.size())
        << "stream " << seq_streams[s];
    for (std::size_t p = 0; p < seq_pairs.size(); ++p) {
      EXPECT_EQ(seq_pairs[p].weight, conc_pairs[p].weight)
          << "stream " << seq_streams[s] << " pair " << p;
      ASSERT_EQ(seq_pairs[p].items.size(), conc_pairs[p].items.size());
      for (std::size_t i = 0; i < seq_pairs[p].items.size(); ++i) {
        EXPECT_EQ(seq_pairs[p].items[i], conc_pairs[p].items[i]);
      }
    }
  }
}

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineEquivalenceTest, SingleWorkerRunIsBitIdenticalToEdgeTree) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.engine = GetParam();
  tree_config.sampling_fraction = 0.4;
  tree_config.rng_seed = 20180701;

  EdgeTree sequential(tree_config);

  ConcurrentTreeConfig runtime_config;
  runtime_config.tree = tree_config;
  runtime_config.channel_capacity = 4;  // layers genuinely pipeline
  runtime_config.backpressure = BackpressurePolicy::kBlock;
  runtime_config.workers_per_node = 1;
  ConcurrentEdgeTree concurrent(runtime_config);

  const auto workload = make_workload(24, sequential.leaf_count(), 77);
  for (const auto& tick : workload) {
    sequential.tick(tick);
    concurrent.push_interval(tick);
  }
  concurrent.drain();

  // Same items reached the root...
  const auto seq_metrics = sequential.metrics();
  const auto conc_metrics = concurrent.metrics();
  EXPECT_EQ(seq_metrics.items_ingested, conc_metrics.items_ingested);
  EXPECT_EQ(seq_metrics.items_at_root, conc_metrics.items_at_root);
  ASSERT_EQ(seq_metrics.items_forwarded_per_layer.size(),
            conc_metrics.items_forwarded_per_layer.size());
  for (std::size_t l = 0; l < seq_metrics.items_forwarded_per_layer.size();
       ++l) {
    EXPECT_EQ(seq_metrics.items_forwarded_per_layer[l],
              conc_metrics.items_forwarded_per_layer[l]);
  }
  EXPECT_EQ(conc_metrics.messages_dropped, 0u);
  EXPECT_EQ(conc_metrics.intervals_completed, workload.size());

  // ...and Θ matches pair for pair, bit for bit.
  expect_theta_identical(sequential.theta(), concurrent.theta());

  // Belt and braces: identical query answers, exact double equality.
  const auto seq_result = sequential.run_query();
  const auto conc_result = concurrent.run_query();
  EXPECT_EQ(seq_result.sum.point, conc_result.sum.point);
  EXPECT_EQ(seq_result.sum.margin, conc_result.sum.margin);
  EXPECT_EQ(seq_result.mean.point, conc_result.mean.point);
  EXPECT_EQ(seq_result.mean.margin, conc_result.mean.margin);
  EXPECT_EQ(seq_result.estimated_count, conc_result.estimated_count);
  EXPECT_EQ(seq_result.sampled_items, conc_result.sampled_items);

  concurrent.stop();
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineEquivalenceTest,
                         ::testing::Values(EngineKind::kApproxIoT,
                                           EngineKind::kSrs,
                                           EngineKind::kNative,
                                           EngineKind::kSnapshot),
                         [](const auto& info) {
                           return core::engine_kind_name(info.param);
                         });

// The control-plane acceptance bar: binding a live control plane that
// stays at epoch 0 must change NOTHING — the concurrent tree resolving
// its budgets through policy handles every interval produces the same Θ,
// bit for bit, as the pre-refactor frozen-budget sequential tree.
class FixedPolicyEquivalenceTest
    : public ::testing::TestWithParam<EngineKind> {};

TEST_P(FixedPolicyEquivalenceTest, EpochZeroPlaneIsBitIdenticalToFrozen) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.engine = GetParam();
  tree_config.sampling_fraction = 0.4;
  tree_config.rng_seed = 20180701;

  // Reference: the sequential tree with budgets frozen at construction
  // (no control plane anywhere) — the pre-refactor behaviour.
  EdgeTree sequential(tree_config);

  // Subject: the concurrent runtime with a live plane bound to every
  // stage. Nobody ever publishes, so every interval resolves epoch 0.
  EdgeTreeConfig live_config = tree_config;
  live_config.control_plane = core::make_control_plane(live_config);
  ConcurrentTreeConfig runtime_config;
  runtime_config.tree = live_config;
  runtime_config.channel_capacity = 4;
  runtime_config.backpressure = BackpressurePolicy::kBlock;
  ConcurrentEdgeTree concurrent(runtime_config);

  const auto workload = make_workload(24, sequential.leaf_count(), 77);
  for (const auto& tick : workload) {
    sequential.tick(tick);
    concurrent.push_interval(tick);
  }
  concurrent.drain();

  expect_theta_identical(sequential.theta(), concurrent.theta());
  const auto seq_result = sequential.run_query();
  const auto conc_result = concurrent.run_query();
  EXPECT_EQ(seq_result.sum.point, conc_result.sum.point);
  EXPECT_EQ(seq_result.sum.margin, conc_result.sum.margin);
  EXPECT_EQ(seq_result.sampled_items, conc_result.sampled_items);
  // Everything in Θ is attributed to epoch 0.
  EXPECT_EQ(conc_result.policy_epoch, 0u);
  EXPECT_EQ(conc_result.policy_epoch_min, 0u);
  EXPECT_EQ(concurrent.policy_epoch(), 0u);

  concurrent.stop();
}

INSTANTIATE_TEST_SUITE_P(AllEngines, FixedPolicyEquivalenceTest,
                         ::testing::Values(EngineKind::kApproxIoT,
                                           EngineKind::kSrs,
                                           EngineKind::kSnapshot),
                         [](const auto& info) {
                           return core::engine_kind_name(info.param);
                         });

// A policy published between windows (workers quiescent after drain())
// behaves exactly like a tree constructed at the new fraction: every
// stage resolves the new epoch at its next interval, and the window's
// result attributes itself to that epoch.
TEST(ConcurrentTreePolicyTest, WindowSynchronousSwapMatchesReconstruction) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = 0.8;
  tree_config.rng_seed = 555;
  tree_config.control_plane = core::make_control_plane(tree_config);

  ConcurrentTreeConfig runtime_config;
  runtime_config.tree = tree_config;
  ConcurrentEdgeTree tree(runtime_config);

  const auto workload = make_workload(8, tree.leaf_count(), 13);
  for (const auto& tick : workload) tree.push_interval(tick);
  tree.drain();
  const auto first = tree.close_window();
  EXPECT_EQ(first.policy_epoch, 0u);

  // Quiescent swap: epoch 1 at fraction 0.2.
  tree_config.control_plane->publish_fraction(0.2);
  for (const auto& tick : workload) tree.push_interval(tick);
  tree.drain();
  const auto second = tree.close_window();
  EXPECT_EQ(second.policy_epoch_min, 1u);
  EXPECT_EQ(second.policy_epoch, 1u);
  // A quarter of the fraction: strictly fewer samples survive.
  EXPECT_LT(second.sampled_items, first.sampled_items);
  tree.stop();
}

// Publishing MID-STREAM while workers are sampling: the swap is benign by
// construction (weights self-describe, Eq. 8 is policy-independent), so
// the estimated original counts stay exact no matter which interval each
// node switched on. Runs under TSan in CI — this is the concurrent
// policy-swap path.
TEST(ConcurrentTreePolicyTest, MidStreamSwapPreservesWeightInvariant) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = 0.6;
  tree_config.rng_seed = 4242;
  tree_config.control_plane = core::make_control_plane(tree_config);

  ConcurrentTreeConfig runtime_config;
  runtime_config.tree = tree_config;
  runtime_config.channel_capacity = 2;  // layers pipeline across epochs
  ConcurrentEdgeTree tree(runtime_config);

  std::vector<std::uint64_t> truth = {0, 400, 800, 1200};
  std::vector<std::vector<Item>> interval(tree.leaf_count());
  Rng rng(99);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    for (std::uint64_t i = 0; i < truth[s]; ++i) {
      interval[rng.next_below(tree.leaf_count())].push_back(
          Item{SubStreamId{s}, 1.0, 0});
    }
  }

  // Publish a new epoch in the middle of the push storm: some intervals
  // are sampled under epoch 0 at some layers and epoch k at others.
  for (int rep = 0; rep < 12; ++rep) {
    if (rep == 4) tree.publish_fraction(0.3);
    if (rep == 8) tree.publish_fraction(0.9);
    tree.push_interval(interval);
  }
  tree.drain();
  tree.stop();

  const auto& theta = tree.theta();
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_GT(theta.sampled_count(SubStreamId{s}), 0u);
    const double expected = 12.0 * static_cast<double>(truth[s]);
    EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), expected,
                expected * 1e-9)
        << "stream " << s;
  }
  EXPECT_EQ(tree.policy_epoch(), 2u);
  // The window straddled at least the final epoch; attribution recorded
  // a span whose max is the newest epoch any node resolved.
  EXPECT_LE(theta.min_policy_epoch(), theta.max_policy_epoch());
  EXPECT_GE(theta.max_policy_epoch(), 1u);
}

// Multi-worker nodes shard reservoirs across real threads with no
// coordination; Eq. 8 demands the estimated original count of every
// sub-stream that kept >= 1 item stays EXACT at the root.
TEST(ConcurrentTreeInvariantTest, MultiWorkerPreservesWeightInvariant) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.engine = EngineKind::kApproxIoT;
  tree_config.sampling_fraction = 0.5;
  tree_config.rng_seed = 4242;

  ConcurrentTreeConfig runtime_config;
  runtime_config.tree = tree_config;
  runtime_config.channel_capacity = 4;
  runtime_config.workers_per_node = 4;
  ConcurrentEdgeTree tree(runtime_config);

  // One interval of known truth per sub-stream, then drain: the count
  // estimate must reconstruct the truth despite two sampling layers, the
  // root, and 4-way sharding inside every node.
  std::vector<std::uint64_t> truth = {0, 400, 800, 1200};  // streams 1..3
  std::vector<std::vector<Item>> interval(tree.leaf_count());
  Rng rng(99);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    for (std::uint64_t i = 0; i < truth[s]; ++i) {
      const std::size_t leaf = rng.next_below(tree.leaf_count());
      interval[leaf].push_back(Item{SubStreamId{s}, 1.0, 0});
    }
  }
  for (int rep = 0; rep < 5; ++rep) tree.push_interval(interval);
  tree.drain();
  tree.stop();

  const auto& theta = tree.theta();
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_GT(theta.sampled_count(SubStreamId{s}), 0u);
    const double expected = 5.0 * static_cast<double>(truth[s]);
    EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), expected,
                expected * 1e-9)
        << "stream " << s;
  }
}

// An externally owned executor can be shared across the whole tree (and
// in principle across several runtimes): every node's shards then run on
// the same persistent pool, and the Eq. 8 invariant still holds with the
// cross-thread dispatch path forced on.
TEST(ConcurrentTreeInvariantTest, SharedPooledExecutorAcrossNodes) {
  auto executor = [] {
    core::PooledSamplingExecutor::Options options;
    options.workers_per_lane = 3;
    options.pool_threads = 2;       // force a real pool even on 1 core
    options.min_items_to_dispatch = 0;  // dispatch every interval
    return std::make_shared<core::PooledSamplingExecutor>(options);
  }();
  ASSERT_TRUE(executor->has_pool());

  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.engine = EngineKind::kApproxIoT;
  tree_config.sampling_fraction = 0.5;
  tree_config.rng_seed = 77;

  ConcurrentTreeConfig runtime_config;
  runtime_config.tree = tree_config;
  runtime_config.sampling_executor = executor;
  ConcurrentEdgeTree tree(runtime_config);

  std::vector<std::vector<Item>> interval(tree.leaf_count());
  Rng rng(5);
  std::vector<std::uint64_t> truth = {0, 300, 600, 900};
  for (std::uint64_t s = 1; s <= 3; ++s) {
    for (std::uint64_t i = 0; i < truth[s]; ++i) {
      interval[rng.next_below(tree.leaf_count())].push_back(
          Item{SubStreamId{s}, 1.0, 0});
    }
  }
  for (int rep = 0; rep < 4; ++rep) tree.push_interval(interval);
  tree.drain();
  tree.stop();

  const auto& theta = tree.theta();
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_GT(theta.sampled_count(SubStreamId{s}), 0u);
    const double expected = 4.0 * static_cast<double>(truth[s]);
    EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), expected,
                expected * 1e-9)
        << "stream " << s;
  }
}

// Same-seed runs of the concurrent runtime are identical to each other
// (reproducibility survives thread scheduling).
TEST(ConcurrentTreeTest, SameSeedRunsAreReproducible) {
  auto run = [] {
    EdgeTreeConfig tree_config;
    tree_config.layer_widths = {2};
    tree_config.sampling_fraction = 0.3;
    tree_config.rng_seed = 555;
    ConcurrentTreeConfig config;
    config.tree = tree_config;
    ConcurrentEdgeTree tree(config);
    const auto workload = make_workload(10, tree.leaf_count(), 1);
    for (const auto& tick : workload) tree.push_interval(tick);
    auto result = tree.close_window();
    tree.stop();
    return result;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.sum.point, b.sum.point);
  EXPECT_EQ(a.sum.margin, b.sum.margin);
  EXPECT_EQ(a.sampled_items, b.sampled_items);
}

// Overload with kDropNewest: intervals get shed (and counted) instead of
// blocking the producer, and the tree still terminates cleanly with a
// consistent Θ over whatever survived.
TEST(ConcurrentTreeTest, DropPolicyShedsAndStaysConsistent) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {2};
  tree_config.sampling_fraction = 1.0;  // lossless stages: drops are the
                                        // only reason counts shrink
  tree_config.engine = EngineKind::kNative;
  ConcurrentTreeConfig config;
  config.tree = tree_config;
  config.channel_capacity = 1;
  config.backpressure = BackpressurePolicy::kDropNewest;
  ConcurrentEdgeTree tree(config);

  std::vector<std::vector<Item>> interval(tree.leaf_count());
  for (std::size_t leaf = 0; leaf < interval.size(); ++leaf) {
    for (int i = 0; i < 200; ++i) {
      interval[leaf].push_back(Item{SubStreamId{leaf + 1}, 1.0, 0});
    }
  }
  for (int k = 0; k < 200; ++k) tree.push_interval(interval);
  tree.stop();

  const auto metrics = tree.metrics();
  EXPECT_EQ(metrics.intervals_pushed, 200u);
  EXPECT_GT(metrics.messages_dropped, 0u);
  EXPECT_LE(metrics.items_at_root, metrics.items_ingested);
  // Whatever reached the root is internally consistent: native stages
  // never reweight, so the estimate equals the arrived count exactly.
  const auto& theta = tree.theta();
  double estimated = 0.0;
  for (const auto id : theta.sub_streams()) {
    estimated += theta.estimated_original_count(id);
  }
  EXPECT_DOUBLE_EQ(estimated, static_cast<double>(metrics.items_at_root));
}

TEST(ConcurrentTreeTest, CloseWindowDrainsAndClears) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {2};
  tree_config.engine = EngineKind::kNative;
  ConcurrentTreeConfig config;
  config.tree = tree_config;
  ConcurrentEdgeTree tree(config);

  std::vector<std::vector<Item>> interval(tree.leaf_count());
  interval[0].push_back(Item{SubStreamId{1}, 2.0, 0});
  interval[1].push_back(Item{SubStreamId{1}, 3.0, 0});
  tree.push_interval(interval);

  const auto result = tree.close_window();
  EXPECT_DOUBLE_EQ(result.sum.point, 5.0);
  EXPECT_EQ(result.sampled_items, 2u);
  EXPECT_TRUE(tree.theta().empty());
  tree.stop();
}

TEST(ConcurrentTreeTest, MetricsRegistryIsThreadedThrough) {
  MetricsRegistry registry;
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {2};
  ConcurrentTreeConfig config;
  config.tree = tree_config;
  {
    ConcurrentEdgeTree tree(config, &registry);
    const auto workload = make_workload(6, tree.leaf_count(), 3);
    for (const auto& tick : workload) tree.push_interval(tick);
    tree.drain();
    tree.stop();
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("runtime.intervals_pushed"), 6u);
  EXPECT_EQ(snap.counters.at("runtime.intervals_completed"), 6u);
  EXPECT_GT(snap.counters.at("runtime.items_ingested"), 0u);
  EXPECT_EQ(snap.histograms.at("runtime.interval_latency_us").count, 6u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("runtime.messages_dropped"), 0.0);
}

TEST(ConcurrentTreeTest, PushAfterStopThrows) {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {2};
  ConcurrentEdgeTree tree(config);
  tree.stop();
  std::vector<std::vector<Item>> interval(tree.leaf_count());
  EXPECT_THROW(tree.push_interval(interval), std::logic_error);
}

TEST(ConcurrentTreeTest, NonEqualAllocationWorksWithMultipleWorkers) {
  // The sharded lane applies whatever allocation policy is configured
  // (the old ParallelSampler hard-coded equal allocation); the Eq. 8
  // invariant is policy-independent.
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {2};
  config.tree.allocation_policy = "proportional";
  config.tree.sampling_fraction = 0.5;
  config.workers_per_node = 2;
  ConcurrentEdgeTree tree(config);

  std::vector<std::vector<Item>> interval(tree.leaf_count());
  for (std::size_t leaf = 0; leaf < interval.size(); ++leaf) {
    for (int i = 0; i < 300; ++i) {
      interval[leaf].push_back(Item{SubStreamId{1 + leaf}, 1.0, 0});
    }
  }
  for (int rep = 0; rep < 3; ++rep) tree.push_interval(interval);
  tree.drain();
  tree.stop();

  const auto& theta = tree.theta();
  for (std::uint64_t s = 1; s <= 2; ++s) {
    ASSERT_GT(theta.sampled_count(SubStreamId{s}), 0u);
    EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), 900.0,
                900.0 * 1e-9)
        << "stream " << s;
  }
}

TEST(ConcurrentTreeTest, RejectsAlgorithmLWithMultipleWorkers) {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {2};
  config.tree.reservoir_algorithm = sampling::ReservoirAlgorithm::kAlgorithmL;
  config.workers_per_node = 2;
  // The sharded slices run Algorithm R; the pooled executor refuses to
  // silently substitute it for the configured algorithm.
  EXPECT_THROW(ConcurrentEdgeTree tree(config), std::invalid_argument);
}

TEST(ConcurrentTreeTest, RejectsBadTopology) {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {};
  EXPECT_THROW(ConcurrentEdgeTree tree(config), std::invalid_argument);
  config.tree.layer_widths = {2, 4};
  EXPECT_THROW(ConcurrentEdgeTree tree(config), std::invalid_argument);
}

}  // namespace
}  // namespace approxiot::runtime
