// IntervalScheduler: drives a ConcurrentEdgeTree's sources tick by tick.
//
// Two pacing modes:
//   kVirtual   — ticks fire back-to-back as fast as the tree absorbs them
//                (benchmarks, deterministic tests);
//   kWallClock — tick k fires no earlier than start + k * tick real time
//                (live deployments; a slow tree skips the sleep and the
//                leaf channels' backpressure takes over).
// Either way the *logical* clock advances exactly one `tick` per interval,
// so SimTime-stamped items and windowing stay identical across modes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/time.hpp"
#include "common/types.hpp"
#include "runtime/concurrent_tree.hpp"

namespace approxiot::runtime {

/// Produces one leaf's items for the tick covering [now, now + dt).
using LeafSourceFn =
    std::function<std::vector<Item>(std::size_t leaf, SimTime now, SimTime dt)>;

struct SchedulerConfig {
  /// Logical interval length; must be positive (the constructor throws
  /// std::invalid_argument otherwise — a zero-duration interval would
  /// freeze the virtual clock, a negative one would run it backwards).
  SimTime tick{SimTime::from_millis(100)};
  /// Total ticks to run; run() returns after the last one.
  std::size_t ticks{0};
  enum class Pace { kVirtual, kWallClock } pace{Pace::kVirtual};
};

class IntervalScheduler {
 public:
  IntervalScheduler(ConcurrentEdgeTree& tree, SchedulerConfig config,
                    LeafSourceFn source);

  IntervalScheduler(const IntervalScheduler&) = delete;
  IntervalScheduler& operator=(const IntervalScheduler&) = delete;
  ~IntervalScheduler();

  /// Runs every tick on the calling thread (blocking).
  void run();

  /// Runs the ticks on a background thread; join() waits for the last.
  void start();
  void join();

  /// Asks a running scheduler to stop after the current tick.
  void request_stop() noexcept { stop_requested_.store(true); }

  /// Logical time of the next tick's interval start. Invariant at every
  /// observable instant (mid-run, after stop, after the last tick):
  /// now() == ticks_fired() * tick — the clock covers exactly the
  /// intervals whose data has reached the tree, never one more.
  [[nodiscard]] SimTime now() const noexcept {
    return SimTime{now_us_.load()};
  }
  [[nodiscard]] std::size_t ticks_fired() const noexcept {
    return ticks_fired_.load();
  }

 private:
  ConcurrentEdgeTree* tree_;
  SchedulerConfig config_;
  LeafSourceFn source_;
  std::thread thread_;
  std::atomic<std::int64_t> now_us_{0};
  std::atomic<std::size_t> ticks_fired_{0};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace approxiot::runtime
