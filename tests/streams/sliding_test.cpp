#include "streams/sliding.hpp"

#include <gtest/gtest.h>

namespace approxiot::streams {
namespace {

struct CountState {
  int count{0};
};

TEST(SlidingWindowsTest, ValidatesConstruction) {
  EXPECT_THROW(SlidingWindows<CountState>(SimTime::zero(),
                                          SimTime::from_millis(100)),
               std::invalid_argument);
  EXPECT_THROW(SlidingWindows<CountState>(SimTime::from_millis(100),
                                          SimTime::zero()),
               std::invalid_argument);
  EXPECT_THROW(SlidingWindows<CountState>(SimTime::from_millis(100),
                                          SimTime::from_millis(200)),
               std::invalid_argument);
}

TEST(SlidingWindowsTest, TumblingSpecialCase) {
  // slide == size: each time belongs to exactly one window.
  SlidingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                     SimTime::from_seconds(1.0));
  const auto keys = windows.windows_of(SimTime::from_millis(1500));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].index, 1);
}

TEST(SlidingWindowsTest, OverlapMembership) {
  // size 1 s, slide 250 ms: every instant belongs to 4 windows.
  SlidingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                     SimTime::from_millis(250));
  const auto keys = windows.windows_of(SimTime::from_millis(1100));
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys.front().index, 1);  // [0.25, 1.25)
  EXPECT_EQ(keys.back().index, 4);   // [1.0, 2.0)
  for (WindowKey k : keys) {
    EXPECT_LE(windows.window_start(k).us, 1'100'000);
    EXPECT_GT(windows.window_end(k).us, 1'100'000);
  }
}

TEST(SlidingWindowsTest, EarlyTimesHaveFewerWindows) {
  SlidingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                     SimTime::from_millis(250));
  // t = 100 ms: only window 0 has started.
  EXPECT_EQ(windows.windows_of(SimTime::from_millis(100)).size(), 1u);
  // t = 300 ms: windows 0 and 1.
  EXPECT_EQ(windows.windows_of(SimTime::from_millis(300)).size(), 2u);
}

TEST(SlidingWindowsTest, UpdateFansOutToAllContainingWindows) {
  SlidingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                     SimTime::from_millis(500));
  windows.update_at(SimTime::from_millis(700),
                    [](CountState& s) { s.count++; });
  EXPECT_EQ(windows.open_windows(), 2u);  // windows 0 and 1
}

TEST(SlidingWindowsTest, CloseExpiredHonoursOverlap) {
  SlidingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                     SimTime::from_millis(500));
  windows.update_at(SimTime::from_millis(700),
                    [](CountState& s) { s.count += 1; });
  windows.update_at(SimTime::from_millis(1200),
                    [](CountState& s) { s.count += 10; });

  // Stream time 1.5 s: window 0 ([0,1)) expired; window 1 ([0.5,1.5))
  // expires exactly at 1.5; window 2 ([1.0,2.0)) still open.
  auto closed = windows.close_expired(SimTime::from_millis(1500));
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].first.index, 0);
  EXPECT_EQ(closed[0].second.count, 1);
  EXPECT_EQ(closed[1].first.index, 1);
  EXPECT_EQ(closed[1].second.count, 11);  // saw both updates
  EXPECT_EQ(windows.open_windows(), 1u);
}

TEST(SlidingWindowsTest, GraceDelaysClosure) {
  SlidingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                     SimTime::from_seconds(1.0),
                                     SimTime::from_millis(300));
  windows.update_at(SimTime::from_millis(100),
                    [](CountState& s) { s.count++; });
  EXPECT_TRUE(windows.close_expired(SimTime::from_millis(1200)).empty());
  EXPECT_EQ(windows.close_expired(SimTime::from_millis(1300)).size(), 1u);
}

TEST(SlidingWindowsTest, CloseAllFlushes) {
  SlidingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                     SimTime::from_millis(500));
  windows.update_at(SimTime::from_millis(700),
                    [](CountState& s) { s.count++; });
  EXPECT_EQ(windows.close_all().size(), 2u);
  EXPECT_EQ(windows.open_windows(), 0u);
}

TEST(SlidingWindowsTest, CountsMatchTumblingWhenSlideEqualsSize) {
  SlidingWindows<CountState> sliding(SimTime::from_seconds(1.0),
                                     SimTime::from_seconds(1.0));
  TumblingWindows<CountState> tumbling(SimTime::from_seconds(1.0));
  for (int ms = 50; ms < 5000; ms += 137) {
    sliding.update_at(SimTime::from_millis(ms),
                      [](CountState& s) { s.count++; });
    tumbling.state_at(SimTime::from_millis(ms)).count++;
  }
  auto s = sliding.close_all();
  auto t = tumbling.close_all();
  ASSERT_EQ(s.size(), t.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].second.count, t[i].second.count) << i;
  }
}

}  // namespace
}  // namespace approxiot::streams
