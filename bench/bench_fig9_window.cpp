// Figure 9: latency vs window size at a fixed 10% sampling fraction.
//
// ApproxIoT buffers one interval per sampling node before forwarding, so
// its latency grows with the window; SRS forwards each record inline and
// stays flat. Paper's numbers: ~9.5-12 s for ApproxIoT across 0.5-4 s
// windows, SRS constant.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace approxiot;
using namespace approxiot::bench;

double mean_latency_s(core::EngineKind engine, SimTime window) {
  netsim::Simulator sim;
  netsim::TreeNetConfig config = testbed_config(engine, 0.10, window);
  netsim::TreeNetwork net(
      sim, config,
      constant_rate_source(100000.0, config.sources, config.source_tick));
  net.run_for(SimTime::from_seconds(40.0));
  return net.latency_moments().count() > 0 ? net.latency_moments().mean()
                                           : 0.0;
}

}  // namespace

int main() {
  print_header("Figure 9: latency vs window size (fraction 10%)",
               "ApproxIoT latency grows with window size; SRS stays flat");

  const double windows_s[] = {0.5, 1.0, 2.0, 3.0, 4.0};
  std::printf("%-24s", "window (s)");
  for (double w : windows_s) std::printf("%12.1f", w);
  std::printf("\n");

  for (core::EngineKind engine :
       {core::EngineKind::kApproxIoT, core::EngineKind::kSrs}) {
    std::vector<double> row;
    for (double w : windows_s) {
      // SRS in the paper's system does not window at edge nodes; our SRS
      // stage also forwards per interval tick, so emulate the paper by
      // running SRS with the smallest tick regardless of window size.
      const SimTime window = engine == core::EngineKind::kSrs
                                 ? SimTime::from_millis(500)
                                 : SimTime::from_seconds(w);
      row.push_back(mean_latency_s(engine, window));
    }
    print_row(std::string(core::engine_kind_name(engine)) + " latency (s)",
              row, "%12.2f");
  }
  return 0;
}
