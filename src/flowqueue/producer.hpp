// Producer: appends records to topics, partitioning by key. Mirrors the
// subset of the Kafka producer API the ApproxIoT pipeline uses.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "common/time.hpp"
#include "flowqueue/broker.hpp"

namespace approxiot::flowqueue {

class Producer {
 public:
  explicit Producer(Broker& broker) : broker_(&broker) {}

  /// Appends one record; partition chosen by key hash. Returns the
  /// record's (partition, offset) location.
  struct SendResult {
    std::uint32_t partition{0};
    Offset offset{0};
  };
  Result<SendResult> send(const std::string& topic, std::string key,
                          std::vector<std::uint8_t> value,
                          SimTime timestamp = SimTime::zero());

  /// Appends to an explicit partition (used by layer-pinned pipelines).
  Result<SendResult> send_to_partition(const std::string& topic,
                                       std::uint32_t partition,
                                       std::string key,
                                       std::vector<std::uint8_t> value,
                                       SimTime timestamp = SimTime::zero());

  [[nodiscard]] std::uint64_t records_sent() const noexcept {
    return records_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }

 private:
  Broker* broker_;
  std::uint64_t records_sent_{0};
  std::uint64_t bytes_sent_{0};
};

}  // namespace approxiot::flowqueue
