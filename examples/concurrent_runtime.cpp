// Concurrent runtime quickstart: a 4-2-1 ApproxIoT tree where every node
// runs on its own thread, driven by a wall-clock IntervalScheduler, with
// live metrics. Contrast with edge_tree_pipeline.cpp, which ticks the
// same logical tree sequentially.
//
// Pass an output path to dump the run's stats registry in Prometheus
// text format (the file a node_exporter-style scrape would serve):
//   ./build/examples/example_concurrent_runtime metrics.prom
#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "runtime/concurrent_tree.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scheduler.hpp"

using namespace approxiot;

int main(int argc, char** argv) {
  runtime::MetricsRegistry registry;

  runtime::ConcurrentTreeConfig config;
  config.tree.layer_widths = {4, 2};       // paper testbed shape (4-2-1)
  config.tree.engine = core::EngineKind::kApproxIoT;
  config.tree.sampling_fraction = 0.4;     // 40% end-to-end
  config.tree.rng_seed = 42;
  config.channel_capacity = 8;             // intervals in flight per edge
  config.backpressure = runtime::BackpressurePolicy::kBlock;
  // §III-E reservoir sharding: all nodes share one persistent
  // PooledSamplingExecutor (workers created once, with the tree).
  config.workers_per_node = 2;
  runtime::ConcurrentEdgeTree tree(config, &registry);

  std::printf("concurrent tree: %zu nodes on %zu threads\n",
              tree.node_count(), tree.node_count());

  // 2 s window = 20 ticks of 100 ms; ~4k items/tick over 4 sub-streams.
  runtime::SchedulerConfig schedule;
  schedule.tick = SimTime::from_millis(100);
  schedule.ticks = 20;
  schedule.pace = runtime::SchedulerConfig::Pace::kWallClock;

  Rng rng(7);
  runtime::IntervalScheduler scheduler(
      tree, schedule,
      [&rng](std::size_t /*leaf*/, SimTime now, SimTime /*dt*/) {
        std::vector<Item> items;
        for (int i = 0; i < 1000; ++i) {
          items.push_back(
              Item{SubStreamId{1 + rng.next_below(4)},
                   rng.next_gaussian() + 10.0, now.us});
        }
        return items;
      });
  scheduler.run();

  const auto result = tree.close_window();
  tree.stop();

  const auto metrics = tree.metrics();
  std::printf("ingested %llu items, %llu reached the root (%.1f%%)\n",
              static_cast<unsigned long long>(metrics.items_ingested),
              static_cast<unsigned long long>(metrics.items_at_root),
              100.0 * static_cast<double>(metrics.items_at_root) /
                  static_cast<double>(metrics.items_ingested));
  std::printf("SUM  = %.1f +/- %.1f (95%%)\n", result.sum.point,
              result.sum.margin);
  std::printf("MEAN = %.3f +/- %.3f (95%%)\n", result.mean.point,
              result.mean.margin);
  std::printf("metrics: %s\n", registry.snapshot().to_json().c_str());

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    out << registry.stats().snapshot().to_prometheus();
    std::printf("wrote Prometheus snapshot to %s\n", argv[1]);
  }
  return 0;
}
