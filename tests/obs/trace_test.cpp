// Tracer: track registration, span/instant emission (including from many
// threads at once — the TSan target), and the chrome://tracing exporter.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace approxiot::obs {
namespace {

TEST(ObsTraceTest, TracksAndEventsAreCounted) {
  Tracer tracer;
  const TrackId a = tracer.register_track("tree/L0/n0");
  const TrackId b = tracer.register_track("tree/root");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.track_count(), 2u);

  tracer.complete(a, "stage-execute", 10, 25, 3);
  tracer.instant(b, "policy-publish", 4);
  tracer.complete(b, "window-close", 30, 40);
  EXPECT_EQ(tracer.event_count(), 3u);
}

TEST(ObsTraceTest, ChromeJsonCarriesTrackNamesAndEpochs) {
  Tracer tracer;
  const TrackId t = tracer.register_track("tree/L0/n0");
  tracer.complete(t, "stage-execute", 10, 25, 7);
  tracer.instant(t, "policy-publish", 8);

  const std::string json = tracer.to_chrome_json();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  // Track name metadata ("M") so the viewer labels the row.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("tree/L0/n0"), std::string::npos);
  // The span: complete event with duration and the epoch annotation.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15"), std::string::npos);
  EXPECT_NE(json.find("\"policy_epoch\":7"), std::string::npos);
  // The instant: thread-scoped point event.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"policy_epoch\":8"), std::string::npos);
}

TEST(ObsTraceTest, JsonlEmitsOneLinePerEvent) {
  Tracer tracer;
  const TrackId t = tracer.register_track("lane0");
  tracer.complete(t, "executor-dispatch", 0, 5);
  tracer.instant(t, "drop");
  const std::string jsonl = tracer.to_jsonl();
  std::size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("executor-dispatch"), std::string::npos);
}

TEST(ObsTraceTest, ScopedSpanEmitsOnDestruction) {
  Tracer tracer;
  const TrackId t = tracer.register_track("tree/root");
  {
    ScopedSpan span(&tracer, t, "root-merge");
    span.set_epoch(5);
  }
  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_NE(tracer.to_chrome_json().find("\"policy_epoch\":5"),
            std::string::npos);
}

TEST(ObsTraceTest, NullTracerSpanIsANoOp) {
  ScopedSpan span(nullptr, ScopedSpan::kNoTrack, "nothing");
  span.set_epoch(1);  // must not crash
}

TEST(ObsTraceTest, ConcurrentEmissionFromManyThreads) {
  // Mirrors the runtime shape: every worker owns a track but tracks are
  // registered concurrently, and one shared control track receives
  // instants from everybody. TSan runs this file in CI.
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 2000;
  Tracer tracer;
  const TrackId control = tracer.register_track("tree/control");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, control, t] {
      const TrackId own =
          tracer.register_track("worker" + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        const std::int64_t begin = tracer.now_us();
        tracer.complete(own, "stage-execute", begin, begin + 1, i);
        if (i % 100 == 0) tracer.instant(control, "policy-publish", i);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(tracer.track_count(), 1u + kThreads);
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads) * kEventsPerThread +
                static_cast<std::size_t>(kThreads) * (kEventsPerThread / 100));
  // The exporter runs after workers stop; it must see every event.
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("worker0"), std::string::npos);
  EXPECT_NE(json.find("worker7"), std::string::npos);
}

}  // namespace
}  // namespace approxiot::obs
