#include <gtest/gtest.h>

#include "core/estimators.hpp"
#include "core/theta_store.hpp"

namespace approxiot::core {
namespace {

WeightedSample pair_of(double weight, std::initializer_list<double> values) {
  WeightedSample p;
  p.weight = weight;
  for (double v : values) p.items.push_back(Item{SubStreamId{0}, v, 0});
  return p;
}

TEST(ThetaStoreTest, EmptyStore) {
  ThetaStore theta;
  EXPECT_TRUE(theta.empty());
  EXPECT_TRUE(theta.sub_streams().empty());
  EXPECT_TRUE(theta.pairs(SubStreamId{1}).empty());
  EXPECT_EQ(theta.sampled_count(SubStreamId{1}), 0u);
  EXPECT_EQ(theta.total_sampled(), 0u);
}

TEST(ThetaStoreTest, AddPairGroupsBySubStream) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(2.0, {1, 2}));
  theta.add_pair(SubStreamId{1}, pair_of(3.0, {5}));
  theta.add_pair(SubStreamId{2}, pair_of(1.0, {10}));

  EXPECT_EQ(theta.sub_streams().size(), 2u);
  EXPECT_EQ(theta.pairs(SubStreamId{1}).size(), 2u);
  EXPECT_EQ(theta.sampled_count(SubStreamId{1}), 3u);
  EXPECT_EQ(theta.total_sampled(), 4u);
}

TEST(ThetaStoreTest, DropsEmptyPairs) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, WeightedSample{5.0, {}});
  EXPECT_TRUE(theta.empty());
}

TEST(ThetaStoreTest, AddBundleSplitsPerSubStream) {
  SampledBundle bundle;
  bundle.w_out.set(SubStreamId{1}, 2.0);
  bundle.w_out.set(SubStreamId{2}, 4.0);
  bundle.sample[SubStreamId{1}] = {Item{SubStreamId{1}, 1.0, 0}};
  bundle.sample[SubStreamId{2}] = {Item{SubStreamId{2}, 2.0, 0},
                                   Item{SubStreamId{2}, 3.0, 0}};
  ThetaStore theta;
  theta.add(bundle);
  EXPECT_DOUBLE_EQ(theta.pairs(SubStreamId{1})[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(theta.pairs(SubStreamId{2})[0].weight, 4.0);
  EXPECT_EQ(theta.sampled_count(SubStreamId{2}), 2u);
}

TEST(ThetaStoreTest, ClearEmpties) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(1.0, {1}));
  theta.clear();
  EXPECT_TRUE(theta.empty());
}

// --- Estimators: the worked example of Fig. 3 --------------------------
// Θ at root C holds (3, {item 5}) and (3, {item 3}) where the item's
// index is its value; the paper computes SUM = 3*5 + 3*3 = 24.
TEST(EstimatorTest, PaperFigure3WorkedExample) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(3.0, {5}));
  theta.add_pair(SubStreamId{1}, pair_of(3.0, {3}));
  EXPECT_DOUBLE_EQ(estimate_sum(theta, SubStreamId{1}), 24.0);
  EXPECT_DOUBLE_EQ(estimate_total_sum(theta), 24.0);
  // ĉ = 3*1 + 3*1 = 6, the original count at node A (items 1..6).
  EXPECT_DOUBLE_EQ(estimate_count(theta, SubStreamId{1}), 6.0);
}

TEST(EstimatorTest, SumAcrossSubStreamsIsEquationFour) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(2.0, {1, 2, 3}));  // SUM_1 = 12
  theta.add_pair(SubStreamId{2}, pair_of(5.0, {10}));       // SUM_2 = 50
  EXPECT_DOUBLE_EQ(estimate_total_sum(theta), 62.0);
}

TEST(EstimatorTest, WeightOneIsExactSum) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(1.0, {1.5, 2.5, 3.0}));
  EXPECT_DOUBLE_EQ(estimate_sum(theta, SubStreamId{1}), 7.0);
  EXPECT_DOUBLE_EQ(estimate_count(theta, SubStreamId{1}), 3.0);
}

TEST(EstimatorTest, MeanIsSumOverCount) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(2.0, {4.0, 6.0}));  // sum 20, c 4
  theta.add_pair(SubStreamId{2}, pair_of(1.0, {10.0}));      // sum 10, c 1
  EXPECT_DOUBLE_EQ(estimate_total_count(theta), 5.0);
  EXPECT_DOUBLE_EQ(estimate_total_mean(theta), 30.0 / 5.0);
}

TEST(EstimatorTest, EmptyThetaMeansZero) {
  ThetaStore theta;
  EXPECT_EQ(estimate_total_sum(theta), 0.0);
  EXPECT_EQ(estimate_total_mean(theta), 0.0);
  EXPECT_EQ(estimate_total_count(theta), 0.0);
}

TEST(SummarizeTest, ProducesPerStreamSummaries) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(2.0, {1.0, 3.0}));
  theta.add_pair(SubStreamId{2}, pair_of(1.0, {10.0}));

  auto summaries = summarize(theta);
  ASSERT_EQ(summaries.size(), 2u);
  const auto& s1 = summaries[0];
  EXPECT_EQ(s1.id, SubStreamId{1});
  EXPECT_DOUBLE_EQ(s1.sum, 8.0);
  EXPECT_DOUBLE_EQ(s1.estimated_count, 4.0);
  EXPECT_EQ(s1.sampled, 2u);
  EXPECT_DOUBLE_EQ(s1.sample_mean, 2.0);
  EXPECT_DOUBLE_EQ(s1.sample_variance, 2.0);

  const auto& s2 = summaries[1];
  EXPECT_EQ(s2.sampled, 1u);
  EXPECT_EQ(s2.sample_variance, 0.0);
}

TEST(SummarizeTest, VarianceSpansPairsOfOneSubStream) {
  // Items of one sub-stream split across pairs must pool into one s².
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(1.0, {2.0}));
  theta.add_pair(SubStreamId{1}, pair_of(1.0, {4.0}));
  theta.add_pair(SubStreamId{1}, pair_of(1.0, {6.0}));
  auto summaries = summarize(theta);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_DOUBLE_EQ(summaries[0].sample_mean, 4.0);
  EXPECT_DOUBLE_EQ(summaries[0].sample_variance, 4.0);
}

}  // namespace
}  // namespace approxiot::core
