// Quickstart: the smallest useful ApproxIoT program.
//
// One node (acting as the root) receives a stream of items from two
// sensors, samples it with weighted hierarchical sampling at a 10%
// budget, and answers "what is the total and mean value this window?"
// with rigorous error bounds — compared against the exact answer.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [fraction=0.1] [items=50000]
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/error.hpp"
#include "core/node.hpp"
#include "workload/ground_truth.hpp"

using namespace approxiot;

int main(int argc, char** argv) {
  auto config = Config::from_args({argv + 1, argv + argc});
  if (!config) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const double fraction = config.value().get_double_or("fraction", 0.10);
  const auto items_per_sensor = static_cast<std::size_t>(
      config.value().get_int_or("items", 50000));

  // 1. A root node with a fixed per-interval reservoir budget.
  core::NodeConfig node_config;
  node_config.cost_function = "fixed";
  node_config.budget.fixed_sample_size = static_cast<std::size_t>(
      fraction * 2.0 * static_cast<double>(items_per_sensor));
  core::RootNode root(node_config);

  // 2. Two sensors with very different value scales — the case where
  //    stratified sampling matters.
  Rng rng(2024);
  workload::GroundTruth truth;
  core::ItemBundle bundle;
  for (std::size_t i = 0; i < items_per_sensor; ++i) {
    Item cheap{SubStreamId{1}, 10.0 + rng.next_gaussian() * 2.0, 0};
    Item pricey{SubStreamId{2}, 10000.0 + rng.next_gaussian() * 500.0, 0};
    truth.add(cheap);
    truth.add(pricey);
    bundle.items.push_back(cheap);
    bundle.items.push_back(pricey);
  }

  // 3. One interval of Algorithm 2: sample into Θ, then query.
  root.ingest_interval({bundle});
  const core::ApproxResult result = root.run_query(stats::kConfidence95);

  // 4. Report output ± error, like ApproxIoT's root does.
  std::printf("ApproxIoT quickstart (fraction %.0f%%, %zu items)\n",
              fraction * 100.0, 2 * items_per_sensor);
  std::printf("  sampled items : %llu\n",
              static_cast<unsigned long long>(result.sampled_items));
  std::printf("  SUM  estimate : %.1f ± %.1f (95%% confidence)\n",
              result.sum.point, result.sum.margin);
  std::printf("  SUM  exact    : %.1f  (covered: %s)\n", truth.total_sum(),
              result.sum.covers(truth.total_sum()) ? "yes" : "no");
  std::printf("  MEAN estimate : %.3f ± %.3f\n", result.mean.point,
              result.mean.margin);
  std::printf("  MEAN exact    : %.3f\n", truth.total_mean());
  std::printf("  accuracy loss : %.4f%%\n",
              workload::accuracy_loss_percent(result.sum.point,
                                              truth.total_sum()));
  return 0;
}
