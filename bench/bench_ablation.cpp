// Ablations of the design choices DESIGN.md calls out.
//
// 1. Allocation policy: equal (the paper's fairness) vs proportional
//    (collapses towards SRS) vs Neyman (variance-optimal extension) on
//    the extreme-skew workload — quantifies how much of ApproxIoT's
//    accuracy win comes from the equal split.
// 2. §III-E worker parallelism: single reservoir vs w workers with
//    reservoirs N/w — the merged estimate must not lose accuracy, and
//    wall-clock sampling throughput should scale.
#include <chrono>
#include <cstdio>

#include "analytics/experiment.hpp"
#include "common/rng.hpp"
#include "core/estimators.hpp"
#include "core/parallel.hpp"
#include "core/pipeline.hpp"
#include "core/theta_store.hpp"
#include "workload/generators.hpp"
#include "workload/ground_truth.hpp"
#include "workload/substream.hpp"
#include "workload/taxi.hpp"

namespace {

using namespace approxiot;

void allocation_ablation() {
  std::printf("\n--- Ablation 1: allocation policy on extreme skew "
              "(fraction 10%%) ---\n");
  std::printf("%-16s%16s%16s\n", "policy", "mean loss%", "max loss%");

  auto run_policy = [](core::EngineKind engine, const char* policy) {
    analytics::AccuracyExperimentConfig config;
    config.tree.engine = engine;
    // Single-leaf tree: all sub-streams mix inside each node, so the
    // allocation policy actually decides reservoir shares (with one
    // sub-stream per leaf the split is trivially moot).
    config.tree.layer_widths = {1};
    config.tree.sampling_fraction = 0.10;
    config.tree.allocation_policy = policy;
    config.tree.rng_seed = 777;
    config.windows = 15;
    config.ticks_per_window = 10;

    auto gen = std::make_shared<workload::StreamGenerator>(
        workload::skewed_poisson(20000.0), 777);
    return analytics::run_accuracy_experiment(
        config, [gen](SimTime now, SimTime dt) { return gen->tick(now, dt); });
  };

  for (const char* policy : {"equal", "proportional", "neyman"}) {
    auto result = run_policy(core::EngineKind::kApproxIoT, policy);
    std::printf("%-16s%16.4f%16.4f\n", policy, result.mean_sum_loss_pct,
                result.max_sum_loss_pct);
  }
  auto srs = run_policy(core::EngineKind::kSrs, "equal");
  std::printf("%-16s%16.4f%16.4f\n", "(SRS reference)",
              srs.mean_sum_loss_pct, srs.max_sum_loss_pct);
  std::printf("expected: all stratified policies comparable — each "
              "guarantees one slot per stratum,\nwhich is the entire win "
              "over SRS (reference row, orders of magnitude worse)\n");
}

void worker_ablation() {
  std::printf("\n--- Ablation 2: §III-E worker parallelism ---\n");
  std::printf("%-10s%16s%16s%18s\n", "workers", "loss%", "count err",
              "items/s (M)");

  // 2M items, one hot sub-stream, reservoir 10k.
  const std::size_t n = 2000000;
  std::vector<Item> items;
  items.reserve(n);
  Rng rng(11);
  workload::GroundTruth truth;
  for (std::size_t i = 0; i < n; ++i) {
    Item item{SubStreamId{1}, 10.0 + rng.next_gaussian(), 0};
    truth.add(item);
    items.push_back(item);
  }

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::ParallelSampler sampler(workers, Rng(workers * 31 + 1));
    const auto start = std::chrono::steady_clock::now();
    auto out = sampler.sample(items, 10000, core::WeightMap{});
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    core::ThetaStore theta;
    theta.add(out);
    const double loss = workload::accuracy_loss_percent(
        core::estimate_total_sum(theta), truth.total_sum());
    const double count_err =
        core::estimate_total_count(theta) - static_cast<double>(n);
    std::printf("%-10zu%16.4f%16.1f%18.2f\n", workers, loss, count_err,
                static_cast<double>(n) / elapsed / 1e6);
  }
  std::printf("expected: loss flat across worker counts, count err == 0 "
              "(Eq. 8 invariant survives the merge)\n");
}

void snapshot_ablation() {
  std::printf("\n--- Ablation 3: item-level sampling vs snapshot decimation "
              "(related work [38,39]) ---\n");
  std::printf("workload: diurnal taxi stream (arrival rate drifts within "
              "every query window)\n");
  std::printf("%-16s%16s%16s\n", "engine", "mean loss%", "max loss%");

  for (core::EngineKind engine :
       {core::EngineKind::kApproxIoT, core::EngineKind::kSnapshot}) {
    analytics::AccuracyExperimentConfig config;
    config.tree.engine = engine;
    config.tree.layer_widths = {4, 2};
    config.tree.sampling_fraction = 0.10;
    config.tree.rng_seed = 333;
    config.windows = 12;
    config.ticks_per_window = 10;

    workload::TaxiConfig taxi_config;
    taxi_config.mean_rate_items_per_s = 20000.0;
    taxi_config.day_length = SimTime::from_seconds(12.0);  // fast drift
    auto gen = std::make_shared<workload::TaxiGenerator>(taxi_config);
    auto result = analytics::run_accuracy_experiment(
        config, [gen](SimTime now, SimTime dt) { return gen->tick(now, dt); });
    std::printf("%-16s%16.4f%16.4f\n", core::engine_kind_name(engine),
                result.mean_sum_loss_pct, result.max_sum_loss_pct);
  }
  std::printf("expected: snapshot decimation is biased under drift (it "
              "extrapolates the kept tick);\nitem-level stratified sampling "
              "stays unbiased\n");
}

}  // namespace

int main() {
  std::printf("\n=== Ablation bench: design-choice sensitivity ===\n");
  allocation_ablation();
  worker_ablation();
  snapshot_ablation();
  return 0;
}
