#include "workload/substream.hpp"

#include <cmath>
#include <stdexcept>

namespace approxiot::workload {

StreamGenerator::StreamGenerator(std::vector<SubStreamSpec> specs,
                                 std::uint64_t seed)
    : specs_(std::move(specs)), accumulators_(specs_.size(), 0.0), rng_(seed) {
  for (const auto& spec : specs_) {
    if (!spec.values) {
      throw std::invalid_argument("sub-stream '" + spec.name +
                                  "' has no value distribution");
    }
    if (spec.rate_items_per_s < 0.0) {
      throw std::invalid_argument("sub-stream '" + spec.name +
                                  "' has negative rate");
    }
  }
}

std::vector<Item> StreamGenerator::tick(SimTime now, SimTime dt) {
  std::vector<Item> items;
  const double seconds = dt.seconds();
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    accumulators_[i] += specs_[i].rate_items_per_s * seconds;
    const auto due = static_cast<std::size_t>(accumulators_[i]);
    accumulators_[i] -= static_cast<double>(due);
    for (std::size_t k = 0; k < due; ++k) {
      Item item;
      item.source = specs_[i].id;
      item.value = specs_[i].values->sample(rng_);
      item.created_at_us = now.us;
      items.push_back(item);
    }
  }
  return items;
}

std::vector<Item> StreamGenerator::generate(SubStreamId id, std::size_t count,
                                            SimTime now) {
  for (const auto& spec : specs_) {
    if (spec.id == id) {
      std::vector<Item> items;
      items.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        Item item;
        item.source = id;
        item.value = spec.values->sample(rng_);
        item.created_at_us = now.us;
        items.push_back(item);
      }
      return items;
    }
  }
  throw std::invalid_argument("unknown sub-stream id");
}

void StreamGenerator::set_rate(SubStreamId id, double rate_items_per_s) {
  if (rate_items_per_s < 0.0) {
    throw std::invalid_argument("negative rate");
  }
  for (auto& spec : specs_) {
    if (spec.id == id) {
      spec.rate_items_per_s = rate_items_per_s;
      return;
    }
  }
  throw std::invalid_argument("unknown sub-stream id");
}

double StreamGenerator::total_rate() const noexcept {
  double total = 0.0;
  for (const auto& spec : specs_) total += spec.rate_items_per_s;
  return total;
}

std::vector<std::vector<Item>> shard_by_substream(
    const std::vector<Item>& items, std::size_t leaves) {
  if (leaves == 0) throw std::invalid_argument("leaves must be > 0");
  std::vector<std::vector<Item>> out(leaves);
  for (const Item& item : items) {
    out[item.source.value() % leaves].push_back(item);
  }
  return out;
}

}  // namespace approxiot::workload
