// A compute node in the simulated edge tree.
//
// SimNode hosts a core::PipelineStage (ApproxIoT / SRS / native behaviour)
// behind a single-server queueing model: arriving bundles are serviced
// FIFO at `service_rate_items_per_s`; a bundle of n items occupies the
// server for n/rate seconds. Serviced bundles accumulate in the node's
// interval buffer (the paper's Ψ); an interval tick runs the sampling
// stage over the buffer and hands the outputs to the uplink (or, at the
// root, into Θ plus the latency recorder).
//
// Saturation falls out of the model naturally: offered load above the
// service rate grows the server backlog without bound, which is exactly
// the signal the throughput experiment binary-searches on.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "core/batch.hpp"
#include "core/pipeline.hpp"
#include "netsim/link.hpp"
#include "netsim/sim.hpp"

namespace approxiot::netsim {

struct SimNodeConfig {
  SimTime interval{SimTime::from_seconds(1.0)};
  double service_rate_items_per_s{100000.0};
  /// Where the service cost applies. false (default): on arrival — the
  /// node's expensive work is ingest (edge nodes). true: after sampling —
  /// the expensive work is the downstream computation over *surviving*
  /// items (the datacenter root, whose bottleneck is the query engine);
  /// ingest is then charged at `ingest_rate_items_per_s`.
  bool charge_on_output{false};
  double ingest_rate_items_per_s{2000000.0};
  std::string label;
  /// Per-item wire size estimate used when a bundle is forwarded.
  std::size_t bytes_per_item{17};
  std::size_t bytes_per_weight_entry{10};
  std::size_t bytes_header{4};
};

class SimNode {
 public:
  SimNode(Simulator& sim, std::unique_ptr<core::PipelineStage> stage,
          SimNodeConfig config);

  /// Routes sampled output over `uplink` to `parent` (non-root nodes).
  void connect_uplink(Link* uplink, SimNode* parent);

  /// Root nodes deliver sampled bundles here instead of an uplink. The
  /// callback receives the bundle and the simulation time of processing.
  using RootSink = std::function<void(const core::SampledBundle&, SimTime)>;
  void connect_root_sink(RootSink sink);

  /// Begins the periodic interval ticks (call once, before running).
  void start();

  /// Ticks self-reschedule only while sim time is below this deadline;
  /// without a deadline a drained simulation would never terminate.
  /// TreeNetwork sets it to its stop time plus a drain margin.
  void set_tick_deadline(SimTime deadline) noexcept {
    tick_deadline_ = deadline;
  }

  /// Ingress: a bundle arrives from a child link (or a source).
  void deliver(core::ItemBundle bundle);

  /// Server backlog: how far the service queue extends past now.
  [[nodiscard]] SimTime backlog() const noexcept;

  [[nodiscard]] std::uint64_t items_arrived() const noexcept {
    return items_arrived_;
  }
  [[nodiscard]] std::uint64_t items_forwarded() const noexcept {
    return items_forwarded_;
  }
  [[nodiscard]] const SimNodeConfig& config() const noexcept {
    return config_;
  }

  /// Estimated wire size of a bundle under this node's size model.
  [[nodiscard]] std::uint64_t wire_size(
      const core::SampledBundle& bundle) const noexcept;

 private:
  void on_tick();

  Simulator* sim_;
  std::unique_ptr<core::PipelineStage> stage_;
  SimNodeConfig config_;

  Link* uplink_{nullptr};
  SimNode* parent_{nullptr};
  RootSink root_sink_;

  std::vector<core::ItemBundle> psi_;  // serviced, awaiting the tick
  SimTime tick_deadline_{SimTime::from_micros(
      std::numeric_limits<std::int64_t>::max() / 2)};
  SimTime service_free_at_{SimTime::zero()};
  SimTime output_free_at_{SimTime::zero()};
  std::uint64_t items_arrived_{0};
  std::uint64_t items_forwarded_{0};
  bool started_{false};
};

}  // namespace approxiot::netsim
