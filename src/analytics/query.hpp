// Query model: the linear aggregation queries ApproxIoT supports (§III-C,
// and the paper's limitation note that only linear queries are handled).
// A query names an aggregate over item values, optionally grouped by
// sub-stream, evaluated per window.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/adaptive.hpp"

namespace approxiot::analytics {

enum class Aggregate { kSum, kMean, kCount };

[[nodiscard]] const char* aggregate_name(Aggregate a) noexcept;

struct Query {
  QueryId id{};
  std::string name;
  Aggregate aggregate{Aggregate::kSum};
  /// Empty == aggregate over all sub-streams; otherwise restrict to these.
  std::vector<SubStreamId> group;
  /// Confidence level for the reported error bound.
  double confidence{0.9544997361036416};  // 95% (two sigma)
  /// The user's accuracy budget (§IV-B): desired relative error bound of
  /// the answer, e.g. 0.01 == 1 %. 0 == no budget — the runtimes then
  /// keep their configured fractions frozen. When set, it seeds the
  /// adaptive control loop via adaptive_config_for().
  double target_relative_error{0.0};
};

/// Parses "sum" | "mean" | "count".
[[nodiscard]] Result<Aggregate> parse_aggregate(const std::string& text);

/// Translates a query's accuracy budget into the adaptive controller's
/// configuration (base gives every non-budget knob). Queries without a
/// budget (target_relative_error <= 0) return `base` unchanged — callers
/// should then leave feedback disabled.
[[nodiscard]] core::AdaptiveConfig adaptive_config_for(
    const Query& query, core::AdaptiveConfig base = {});

/// True when the query carries an accuracy budget the §IV-B feedback
/// loop should enforce.
[[nodiscard]] bool wants_adaptive(const Query& query) noexcept;

}  // namespace approxiot::analytics
