// bench_overhead's third row: the identical kernel compiled with
// -DAPPROXIOT_NO_STATS (set on this file in bench/CMakeLists.txt), so
// every AIOT_OBS site expands to nothing — no branches, no clock reads,
// no null checks. The kernel itself has internal linkage (see
// overhead_kernel.hpp); this TU only exports the forwarding symbol.
#ifndef APPROXIOT_NO_STATS
#error "overhead_nostats.cpp must be compiled with APPROXIOT_NO_STATS"
#endif

#include "overhead_kernel.hpp"

namespace approxiot::bench {

OverheadResult run_overhead_kernel_nostats(const std::vector<Item>& items,
                                           std::size_t budget,
                                           std::size_t intervals) {
  return run_overhead_kernel(items, budget, intervals, nullptr, nullptr);
}

}  // namespace approxiot::bench
