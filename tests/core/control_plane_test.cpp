// ControlPlane / PolicyHandle semantics plus the epoch stamping contract:
// versioning is dense and monotonic, reads are wait-free snapshots,
// scopes project the end-to-end fraction exactly like the tree
// constructors do (the bit-identity precondition), and nodes stamp their
// outputs with the epoch they resolved. The concurrent section hammers
// publish against many readers and runs under TSan in CI.
#include "core/control_plane.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/node.hpp"
#include "core/pipeline.hpp"
#include "core/snapshot_node.hpp"
#include "core/srs_node.hpp"
#include "core/theta_store.hpp"

namespace approxiot::core {
namespace {

TEST(ControlPlaneTest, InitialPolicyIsEpochZero) {
  SamplingPolicy initial;
  initial.epoch = 99;  // must be ignored
  initial.budget.sampling_fraction = 0.4;
  ControlPlane plane(initial);
  EXPECT_EQ(plane.epoch(), 0u);
  EXPECT_DOUBLE_EQ(plane.snapshot()->budget.sampling_fraction, 0.4);
}

TEST(ControlPlaneTest, PublishAssignsDenseEpochs) {
  ControlPlane plane;
  SamplingPolicy next;
  next.epoch = 1000;  // callers cannot pick epochs
  EXPECT_EQ(plane.publish(next), 1u);
  EXPECT_EQ(plane.publish(next), 2u);
  EXPECT_EQ(plane.publish_fraction(0.25), 3u);
  EXPECT_EQ(plane.epoch(), 3u);
  EXPECT_DOUBLE_EQ(plane.snapshot()->budget.sampling_fraction, 0.25);
}

TEST(ControlPlaneTest, PublishFractionKeepsOtherKnobs) {
  SamplingPolicy initial;
  initial.budget.fixed_sample_size = 77;
  initial.whsamp.allocation_policy = "proportional";
  ControlPlane plane(initial);
  plane.publish_fraction(0.5);
  const auto snap = plane.snapshot();
  EXPECT_EQ(snap->budget.fixed_sample_size, 77u);
  EXPECT_EQ(snap->whsamp.allocation_policy, "proportional");
  EXPECT_DOUBLE_EQ(snap->budget.sampling_fraction, 0.5);
}

TEST(ControlPlaneTest, OldSnapshotsStayValidAfterPublish) {
  ControlPlane plane;
  const auto old_snap = plane.snapshot();
  plane.publish_fraction(0.1);
  // A reader mid-interval keeps a consistent view of the policy it
  // resolved, even though the plane has moved on.
  EXPECT_EQ(old_snap->epoch, 0u);
  EXPECT_DOUBLE_EQ(old_snap->budget.sampling_fraction, 1.0);
  EXPECT_EQ(plane.snapshot()->epoch, 1u);
}

TEST(PolicyHandleTest, UnboundHandleReturnsCallerBudgetAtEpochZero) {
  PolicyHandle handle;
  EXPECT_FALSE(handle.bound());
  ResourceBudget current;
  current.sampling_fraction = 0.37;
  const PolicyDecision d = handle.resolve(current);
  EXPECT_EQ(d.epoch, 0u);
  EXPECT_DOUBLE_EQ(d.budget.sampling_fraction, 0.37);
}

TEST(PolicyHandleTest, PerLayerScopeMatchesTreeConstruction) {
  SamplingPolicy initial;
  initial.budget.sampling_fraction = 0.4;
  auto plane = std::make_shared<ControlPlane>(initial);
  PolicyScope scope;
  scope.rule = PolicyScope::Rule::kPerLayer;
  scope.sampling_layers = 3;
  PolicyHandle handle(plane, scope);

  const PolicyDecision d = handle.resolve(ResourceBudget{});
  // Exactly the function edge_tree_stage_config uses — the double must be
  // bit-identical, not merely close.
  EXPECT_EQ(d.budget.sampling_fraction, per_layer_fraction(0.4, 3));
}

TEST(PolicyHandleTest, EndToEndAndHoldScopes) {
  SamplingPolicy initial;
  initial.budget.sampling_fraction = 0.4;
  auto plane = std::make_shared<ControlPlane>(initial);

  PolicyScope e2e;
  e2e.rule = PolicyScope::Rule::kEndToEnd;
  EXPECT_DOUBLE_EQ(
      PolicyHandle(plane, e2e).resolve(ResourceBudget{}).budget
          .sampling_fraction,
      0.4);

  PolicyScope hold;
  hold.rule = PolicyScope::Rule::kHold;
  ResourceBudget current;
  current.sampling_fraction = 0.9;
  const PolicyDecision d = PolicyHandle(plane, hold).resolve(current);
  EXPECT_DOUBLE_EQ(d.budget.sampling_fraction, 0.9);  // untouched
  EXPECT_EQ(d.epoch, 0u);  // but the epoch still tracks the plane
  plane->publish_fraction(0.2);
  EXPECT_EQ(PolicyHandle(plane, hold).resolve(current).epoch, 1u);
}

// --- epoch stamping through the node layer ------------------------------

std::vector<ItemBundle> one_bundle(std::size_t n) {
  ItemBundle bundle;
  for (std::size_t i = 0; i < n; ++i) {
    bundle.items.push_back(Item{SubStreamId{1 + i % 3}, 1.0, 0});
  }
  std::vector<ItemBundle> psi;
  psi.push_back(std::move(bundle));
  return psi;
}

TEST(PolicyStampTest, SamplingNodeStampsResolvedEpoch) {
  SamplingPolicy initial;
  initial.budget.sampling_fraction = 0.5;
  auto plane = std::make_shared<ControlPlane>(initial);

  NodeConfig config;
  config.budget.sampling_fraction = 0.5;
  config.policy = PolicyHandle(
      plane, PolicyScope{PolicyScope::Rule::kEndToEnd, 1});
  SamplingNode node(config);

  auto out0 = node.process_interval(one_bundle(100));
  ASSERT_FALSE(out0.empty());
  EXPECT_EQ(node.policy_epoch(), 0u);
  EXPECT_EQ(out0.front().policy_epoch, 0u);

  plane->publish_fraction(0.25);
  auto out1 = node.process_interval(one_bundle(100));
  ASSERT_FALSE(out1.empty());
  EXPECT_EQ(node.policy_epoch(), 1u);
  EXPECT_EQ(out1.front().policy_epoch, 1u);
  // The published fraction actually took: budget halved, fewer items out.
  EXPECT_DOUBLE_EQ(node.budget().sampling_fraction, 0.25);
  EXPECT_LT(out1.front().item_count(), out0.front().item_count());
}

TEST(PolicyStampTest, EpochTravelsThroughToBundle) {
  SampledBundle sampled;
  sampled.policy_epoch = 7;
  sampled.w_out.set(SubStreamId{1}, 2.0);
  sampled.sample[SubStreamId{1}] = {Item{SubStreamId{1}, 5.0, 42}};
  EXPECT_EQ(sampled.to_bundle().policy_epoch, 7u);
  EXPECT_EQ(std::move(sampled).to_bundle().policy_epoch, 7u);
}

TEST(PolicyStampTest, SrsAndSnapshotNodesStampAndApply) {
  SamplingPolicy initial;
  initial.budget.sampling_fraction = 1.0;
  auto plane = std::make_shared<ControlPlane>(initial);
  const PolicyHandle handle(plane,
                            PolicyScope{PolicyScope::Rule::kEndToEnd, 1});

  SrsNodeConfig srs_config;
  srs_config.probability = 1.0;
  srs_config.policy = handle;
  SrsNode srs(srs_config);

  SnapshotNodeConfig snap_config;
  snap_config.period = 1;
  snap_config.policy = handle;
  SnapshotNode snap(snap_config);

  (void)srs.process_interval(one_bundle(10));
  (void)snap.process_interval(one_bundle(10));
  EXPECT_EQ(srs.policy_epoch(), 0u);
  EXPECT_EQ(snap.policy_epoch(), 0u);
  EXPECT_DOUBLE_EQ(srs.probability(), 1.0);
  EXPECT_EQ(snap.period(), 1u);

  plane->publish_fraction(0.5);
  auto srs_out = srs.process_interval(one_bundle(10));
  (void)snap.process_interval(one_bundle(10));
  EXPECT_EQ(srs.policy_epoch(), 1u);
  EXPECT_EQ(snap.policy_epoch(), 1u);
  EXPECT_DOUBLE_EQ(srs.probability(), 0.5);
  EXPECT_EQ(snap.period(), 2u);
  for (const SampledBundle& out : srs_out) {
    EXPECT_EQ(out.policy_epoch, 1u);
  }
}

TEST(PolicyStampTest, ThetaStoreTracksEpochSpan) {
  ThetaStore theta;
  EXPECT_EQ(theta.min_policy_epoch(), 0u);
  EXPECT_EQ(theta.max_policy_epoch(), 0u);

  WeightedSample pair;
  pair.weight = 1.0;
  pair.items = {Item{SubStreamId{1}, 1.0, 0}};
  theta.add_pair(SubStreamId{1}, pair, 3);
  theta.add_pair(SubStreamId{1}, pair, 5);
  theta.add_pair(SubStreamId{2}, pair, 4);
  EXPECT_EQ(theta.min_policy_epoch(), 3u);
  EXPECT_EQ(theta.max_policy_epoch(), 5u);

  const ApproxResult result = approximate_query(theta);
  EXPECT_EQ(result.policy_epoch_min, 3u);
  EXPECT_EQ(result.policy_epoch, 5u);

  theta.clear();
  EXPECT_EQ(theta.max_policy_epoch(), 0u);
}

// --- concurrency (runs under TSan in CI) --------------------------------

TEST(ControlPlaneConcurrencyTest, PublishRacesManyReaders) {
  ControlPlane plane;
  constexpr int kReaders = 4;
  constexpr int kPublishers = 2;
  constexpr int kPublishes = 500;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&plane, &stop] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = plane.snapshot();
        // Epochs are monotone per reader (no stale snapshot can be
        // observed after a newer one).
        EXPECT_GE(snap->epoch, last);
        last = snap->epoch;
        // Touch the heap-allocated parts so TSan/ASan see the reader
        // access pattern a sampling node has (string read + doubles).
        EXPECT_FALSE(snap->whsamp.allocation_policy.empty());
        EXPECT_GT(snap->budget.sampling_fraction, 0.0);
      }
    });
  }

  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&plane, p] {
      for (int i = 0; i < kPublishes; ++i) {
        SamplingPolicy next;
        next.budget.sampling_fraction = p == 0 ? 0.5 : 0.25;
        next.whsamp.allocation_policy =
            p == 0 ? "equal" : "proportional";
        plane.publish(std::move(next));
      }
    });
  }
  for (auto& t : publishers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Epochs are dense: every publish got its own version.
  EXPECT_EQ(plane.epoch(),
            static_cast<std::uint64_t>(kPublishers * kPublishes));
}

}  // namespace
}  // namespace approxiot::core
