// Canned workloads matching the paper's evaluation section (§V-A, §V-D,
// §V-E): the four Gaussian and four Poisson sub-streams, the three
// fluctuating-rate settings, and the extreme-skew mixture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/substream.hpp"

namespace approxiot::workload {

/// Gaussian microbenchmark sub-streams (§V-A):
///   A(µ=10, σ=5), B(µ=1e3, σ=50), C(µ=1e4, σ=500), D(µ=1e5, σ=5000),
/// each at `rate_per_stream` items/s.
[[nodiscard]] std::vector<SubStreamSpec> gaussian_quad(
    double rate_per_stream = 25000.0);

/// Poisson microbenchmark sub-streams (§V-A):
///   A(λ=10), B(λ=100), C(λ=1000), D(λ=10000).
[[nodiscard]] std::vector<SubStreamSpec> poisson_quad(
    double rate_per_stream = 25000.0);

/// Fluctuating-rate settings of Fig. 10(a,b). `setting` in {1,2,3}:
///   Setting1: (50k : 25k : 12.5k : 625)
///   Setting2: (25k : 25k : 25k : 25k)
///   Setting3: (625 : 12.5k : 25k : 50k)
/// Applied to either the Gaussian or the Poisson quad.
[[nodiscard]] std::vector<SubStreamSpec> fluctuating_setting(
    int setting, bool gaussian);

/// Extreme-skew mixture of Fig. 10(c): Poisson λ = 10, 100, 1000, 1e7 with
/// arrival shares 80%, 19.89%, 0.1%, 0.01% of `total_rate`.
[[nodiscard]] std::vector<SubStreamSpec> skewed_poisson(
    double total_rate = 100000.0);

/// Analytic expected mean item value of a spec set, weighted by rates
/// (used as a sanity reference; exact ground truth still comes from
/// GroundTruth over generated items).
[[nodiscard]] double expected_mean_value(
    const std::vector<SubStreamSpec>& specs);

}  // namespace approxiot::workload
