#include "flowqueue/broker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace approxiot::flowqueue {
namespace {

TEST(BrokerTest, CreateAndLookupTopics) {
  Broker broker;
  EXPECT_TRUE(broker.create_topic("edge-1", 4).is_ok());
  EXPECT_TRUE(broker.has_topic("edge-1"));
  EXPECT_FALSE(broker.has_topic("edge-2"));
  auto topic = broker.topic("edge-1");
  ASSERT_TRUE(topic.is_ok());
  EXPECT_EQ(topic.value()->partition_count(), 4u);
}

TEST(BrokerTest, CreateDuplicateFails) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 1).is_ok());
  EXPECT_EQ(broker.create_topic("t", 1).code(), StatusCode::kAlreadyExists);
}

TEST(BrokerTest, EnsureTopicIsIdempotent) {
  Broker broker;
  EXPECT_TRUE(broker.ensure_topic("t", 2).is_ok());
  EXPECT_TRUE(broker.ensure_topic("t", 2).is_ok());
}

TEST(BrokerTest, ValidatesTopicArguments) {
  Broker broker;
  EXPECT_EQ(broker.create_topic("", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(broker.create_topic("t", 0).code(), StatusCode::kInvalidArgument);
}

TEST(BrokerTest, MissingTopicIsNotFound) {
  Broker broker;
  EXPECT_EQ(broker.topic("ghost").status().code(), StatusCode::kNotFound);
}

TEST(BrokerTest, TopicNamesSorted) {
  Broker broker;
  (void)broker.create_topic("b", 1);
  (void)broker.create_topic("a", 1);
  const auto names = broker.topic_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(BrokerGroupTest, SingleMemberGetsAllPartitions) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 4).is_ok());
  auto assigned = broker.join_group("g", "m1", {"t"});
  ASSERT_TRUE(assigned.is_ok());
  EXPECT_EQ(assigned.value().size(), 4u);
}

TEST(BrokerGroupTest, TwoMembersSplitPartitions) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 4).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m1", {"t"}).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m2", {"t"}).is_ok());
  auto a1 = broker.assignment("g", "m1");
  auto a2 = broker.assignment("g", "m2");
  ASSERT_TRUE(a1.is_ok());
  ASSERT_TRUE(a2.is_ok());
  EXPECT_EQ(a1.value().size(), 2u);
  EXPECT_EQ(a2.value().size(), 2u);
  // No overlap.
  for (const auto& tp : a1.value()) {
    EXPECT_EQ(std::count(a2.value().begin(), a2.value().end(), tp), 0);
  }
}

TEST(BrokerGroupTest, LeaveTriggersRebalance) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 4).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m1", {"t"}).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m2", {"t"}).is_ok());
  const std::uint64_t gen_before = broker.group_generation("g");
  ASSERT_TRUE(broker.leave_group("g", "m2").is_ok());
  EXPECT_GT(broker.group_generation("g"), gen_before);
  auto a1 = broker.assignment("g", "m1");
  ASSERT_TRUE(a1.is_ok());
  EXPECT_EQ(a1.value().size(), 4u);
}

TEST(BrokerGroupTest, JoinUnknownTopicFails) {
  Broker broker;
  EXPECT_EQ(broker.join_group("g", "m", {"nope"}).status().code(),
            StatusCode::kNotFound);
}

TEST(BrokerGroupTest, MoreMembersThanPartitions) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 1).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m1", {"t"}).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m2", {"t"}).is_ok());
  auto a1 = broker.assignment("g", "m1");
  auto a2 = broker.assignment("g", "m2");
  ASSERT_TRUE(a1.is_ok());
  ASSERT_TRUE(a2.is_ok());
  EXPECT_EQ(a1.value().size() + a2.value().size(), 1u);
}

TEST(BrokerGroupTest, CommittedOffsetsPersistAcrossRebalance) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 2).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m1", {"t"}).is_ok());
  const TopicPartition tp{"t", 0};
  ASSERT_TRUE(broker.commit_offset("g", tp, 42).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m2", {"t"}).is_ok());  // rebalance
  EXPECT_EQ(broker.committed_offset("g", tp), 42);
}

TEST(BrokerGroupTest, CommitKeepsMaximum) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 1).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m", {"t"}).is_ok());
  const TopicPartition tp{"t", 0};
  ASSERT_TRUE(broker.commit_offset("g", tp, 10).is_ok());
  ASSERT_TRUE(broker.commit_offset("g", tp, 5).is_ok());  // stale commit
  EXPECT_EQ(broker.committed_offset("g", tp), 10);
}

TEST(BrokerGroupTest, NegativeOffsetRejected) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 1).is_ok());
  ASSERT_TRUE(broker.join_group("g", "m", {"t"}).is_ok());
  EXPECT_EQ(broker.commit_offset("g", {"t", 0}, -1).code(),
            StatusCode::kInvalidArgument);
}

TEST(TopicTest, KeyPartitioningIsDeterministicAndSpread) {
  Topic topic("t", 8);
  const std::uint32_t p1 = topic.partition_for_key("sensor-1");
  EXPECT_EQ(topic.partition_for_key("sensor-1"), p1);
  // Different keys should hit more than one partition.
  bool spread = false;
  for (int i = 0; i < 32 && !spread; ++i) {
    spread = topic.partition_for_key("sensor-" + std::to_string(i)) != p1;
  }
  EXPECT_TRUE(spread);
  EXPECT_EQ(topic.partition_for_key(""), 0u);
}

}  // namespace
}  // namespace approxiot::flowqueue
