// Confidence-interval value type used by the error estimator (§III-D).
// An estimate is reported as `point ± margin` at a given confidence level,
// following the paper's output± error convention.
#pragma once

#include <ostream>

#include "stats/normal.hpp"

namespace approxiot::stats {

struct ConfidenceInterval {
  double point{0.0};
  double margin{0.0};      // half-width: z * stddev(estimator)
  double confidence{0.0};  // e.g. 0.95

  [[nodiscard]] double lower() const noexcept { return point - margin; }
  [[nodiscard]] double upper() const noexcept { return point + margin; }

  /// True iff `truth` falls inside [lower, upper]. Used by the coverage
  /// property tests: across repeated trials the hit-rate should approach
  /// the configured confidence.
  [[nodiscard]] bool covers(double truth) const noexcept {
    return truth >= lower() && truth <= upper();
  }

  /// Relative half-width |margin / point|; infinity when point == 0.
  [[nodiscard]] double relative_margin() const noexcept;

  friend std::ostream& operator<<(std::ostream& os,
                                  const ConfidenceInterval& ci);
};

/// Builds an interval from an estimator value and its variance at the
/// requested confidence (uses the normal quantile; valid by CLT).
[[nodiscard]] ConfidenceInterval make_interval(double point, double variance,
                                               double confidence) noexcept;

}  // namespace approxiot::stats
