// Weighted hierarchical sampling — Algorithm 1 of the paper.
//
// WHSamp(items, sampleSize, W^in):
//   1. stratify `items` into sub-streams by source;
//   2. split `sampleSize` across the sub-streams (allocation policy —
//      the paper's getSampleSize);
//   3. reservoir-sample each sub-stream S_i to at most N_i items;
//   4. update weights:  w_i = c_i / N_i         if c_i > N_i   (Eq. 1)
//                       W^out_i = W^in_i * w_i   if c_i > N_i   (Eq. 2)
//                       W^out_i = W^in_i         otherwise.
//
// The class is stateless between calls except for its RNG; the node layer
// owns the cross-interval weight memory (Fig. 3 rule).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "sampling/allocation.hpp"
#include "sampling/reservoir.hpp"

namespace approxiot::core {

struct WHSampConfig {
  sampling::ReservoirAlgorithm reservoir_algorithm{
      sampling::ReservoirAlgorithm::kAlgorithmR};
  /// Allocation policy name (see sampling::make_allocation_policy).
  std::string allocation_policy{"equal"};
};

class WHSampler {
 public:
  explicit WHSampler(Rng rng = Rng{}, WHSampConfig config = {});

  /// One invocation of Algorithm 1 on a (W^in, items) pair. `sample_size`
  /// is the node's per-call reservoir budget N. Returns (W^out, sample);
  /// W^out carries entries only for sub-streams present in `items`.
  [[nodiscard]] SampledBundle sample(const std::vector<Item>& items,
                                     std::size_t sample_size,
                                     const WeightMap& w_in);

  [[nodiscard]] const WHSampConfig& config() const noexcept { return config_; }

 private:
  Rng rng_;
  WHSampConfig config_;
  std::unique_ptr<sampling::AllocationPolicy> policy_;
};

/// Stratifies a flat item vector by source id (Algorithm 1 line 5).
[[nodiscard]] std::map<SubStreamId, std::vector<Item>> stratify(
    const std::vector<Item>& items);

}  // namespace approxiot::core
