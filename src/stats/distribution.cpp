#include "stats/distribution.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace approxiot::stats {

GaussianDistribution::GaussianDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Gaussian sigma must be >= 0");
}

double GaussianDistribution::sample(Rng& rng) const {
  return mu_ + sigma_ * rng.next_gaussian();
}

std::string GaussianDistribution::describe() const {
  std::ostringstream os;
  os << "Gaussian(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

std::unique_ptr<ValueDistribution> GaussianDistribution::clone() const {
  return std::make_unique<GaussianDistribution>(*this);
}

PoissonDistribution::PoissonDistribution(double lambda) : lambda_(lambda) {
  if (lambda < 0.0) throw std::invalid_argument("Poisson lambda must be >= 0");
}

double PoissonDistribution::sample(Rng& rng) const {
  return static_cast<double>(rng.next_poisson(lambda_));
}

std::string PoissonDistribution::describe() const {
  std::ostringstream os;
  os << "Poisson(lambda=" << lambda_ << ")";
  return os.str();
}

std::unique_ptr<ValueDistribution> PoissonDistribution::clone() const {
  return std::make_unique<PoissonDistribution>(*this);
}

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  if (!(hi >= lo)) throw std::invalid_argument("Uniform requires hi >= lo");
}

double UniformDistribution::sample(Rng& rng) const {
  return lo_ + (hi_ - lo_) * rng.next_double();
}

std::string UniformDistribution::describe() const {
  std::ostringstream os;
  os << "Uniform(" << lo_ << ", " << hi_ << ")";
  return os.str();
}

std::unique_ptr<ValueDistribution> UniformDistribution::clone() const {
  return std::make_unique<UniformDistribution>(*this);
}

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
  if (rate <= 0.0) throw std::invalid_argument("Exponential rate must be > 0");
}

double ExponentialDistribution::sample(Rng& rng) const {
  return rng.next_exponential(rate_);
}

std::string ExponentialDistribution::describe() const {
  std::ostringstream os;
  os << "Exponential(rate=" << rate_ << ")";
  return os.str();
}

std::unique_ptr<ValueDistribution> ExponentialDistribution::clone() const {
  return std::make_unique<ExponentialDistribution>(*this);
}

LogNormalDistribution::LogNormalDistribution(double log_mu, double log_sigma)
    : log_mu_(log_mu), log_sigma_(log_sigma) {
  if (log_sigma < 0.0) {
    throw std::invalid_argument("LogNormal sigma must be >= 0");
  }
}

double LogNormalDistribution::sample(Rng& rng) const {
  return std::exp(log_mu_ + log_sigma_ * rng.next_gaussian());
}

double LogNormalDistribution::mean() const {
  return std::exp(log_mu_ + 0.5 * log_sigma_ * log_sigma_);
}

double LogNormalDistribution::variance() const {
  const double s2 = log_sigma_ * log_sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * log_mu_ + s2);
}

std::string LogNormalDistribution::describe() const {
  std::ostringstream os;
  os << "LogNormal(log_mu=" << log_mu_ << ", log_sigma=" << log_sigma_ << ")";
  return os.str();
}

std::unique_ptr<ValueDistribution> LogNormalDistribution::clone() const {
  return std::make_unique<LogNormalDistribution>(*this);
}

}  // namespace approxiot::stats
