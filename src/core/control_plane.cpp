#include "core/control_plane.hpp"

#include <stdexcept>
#include <utility>

// For per_layer_fraction: the kPerLayer scope must use the *same*
// function the tree constructors use so an epoch-0 resolve reproduces the
// constructed per-layer fraction bit for bit.
#include "core/pipeline.hpp"

namespace approxiot::core {

ControlPlane::ControlPlane() : ControlPlane(SamplingPolicy{}) {}

ControlPlane::ControlPlane(SamplingPolicy initial) {
  initial.epoch = 0;
  retained_.push_back(
      std::make_shared<const SamplingPolicy>(std::move(initial)));
  current_.store(&retained_.back(), std::memory_order_release);
}

std::shared_ptr<const SamplingPolicy> ControlPlane::snapshot()
    const noexcept {
  // The pointed-at shared_ptr was fully constructed before the release
  // store that published it and is never written again, so copying it
  // here races with nothing; the refcount bump is atomic.
  return *current_.load(std::memory_order_acquire);
}

PolicyEpoch ControlPlane::epoch() const noexcept {
  return snapshot()->epoch;
}

PolicyEpoch ControlPlane::publish_locked(SamplingPolicy next) {
  next.epoch =
      (*current_.load(std::memory_order_relaxed))->epoch + 1;
  const PolicyEpoch assigned = next.epoch;
  retained_.push_back(std::make_shared<const SamplingPolicy>(std::move(next)));
  current_.store(&retained_.back(), std::memory_order_release);
  if (publish_hook_) publish_hook_(*retained_.back());
  return assigned;
}

PolicyEpoch ControlPlane::publish(SamplingPolicy next) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return publish_locked(std::move(next));
}

PolicyEpoch ControlPlane::publish_fraction(double end_to_end_fraction) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  SamplingPolicy next = **current_.load(std::memory_order_relaxed);
  next.budget.sampling_fraction = end_to_end_fraction;
  return publish_locked(std::move(next));
}

PolicyEpoch ControlPlane::restore_policy(SamplingPolicy policy) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const PolicyEpoch current =
      (*current_.load(std::memory_order_relaxed))->epoch;
  if (policy.epoch < current) {
    throw std::invalid_argument(
        "ControlPlane::restore_policy: epochs never move backwards");
  }
  if (policy.epoch == current) return current;  // idempotent restore
  const PolicyEpoch restored = policy.epoch;
  retained_.push_back(
      std::make_shared<const SamplingPolicy>(std::move(policy)));
  current_.store(&retained_.back(), std::memory_order_release);
  if (publish_hook_) publish_hook_(*retained_.back());
  return restored;
}

PolicyHandle::PolicyHandle(std::shared_ptr<const ControlPlane> plane,
                           PolicyScope scope)
    : plane_(std::move(plane)), scope_(scope) {}

PolicyDecision PolicyHandle::resolve(const ResourceBudget& current) const {
  PolicyDecision decision;
  decision.budget = current;
  if (plane_ == nullptr) return decision;

  const std::shared_ptr<const SamplingPolicy> policy = plane_->snapshot();
  decision.epoch = policy->epoch;
  // Only the sampling fraction is projected from the policy: the other
  // ResourceBudget knobs (rate caps, fixed reservoir sizes) are per-node
  // capacity limits that a cluster-wide snapshot must not clobber — a
  // rate-budgeted node under a fraction-only policy would otherwise see
  // its max_items_per_second zeroed and forward nothing.
  switch (scope_.rule) {
    case PolicyScope::Rule::kPerLayer:
      decision.budget.sampling_fraction = per_layer_fraction(
          policy->budget.sampling_fraction, scope_.sampling_layers);
      break;
    case PolicyScope::Rule::kEndToEnd:
      decision.budget.sampling_fraction = policy->budget.sampling_fraction;
      break;
    case PolicyScope::Rule::kHold:
      break;  // budget stays as passed; only the epoch advances
  }
  return decision;
}

PolicyEpoch PolicyHandle::epoch() const noexcept {
  return plane_ != nullptr ? plane_->epoch() : 0;
}

}  // namespace approxiot::core
