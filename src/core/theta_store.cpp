#include "core/theta_store.hpp"

namespace approxiot::core {

const std::vector<WeightedSample> ThetaStore::kEmpty{};

void ThetaStore::add(const SampledBundle& bundle) {
  bool any = false;
  for (const Stratum& s : bundle.sample.strata()) {
    if (s.len == 0) continue;
    const ItemSpan items = bundle.sample.span(s);
    WeightedSample pair;
    pair.weight = bundle.w_out.get(s.id);
    pair.items.assign(items.begin(), items.end());
    pairs_[s.id].push_back(std::move(pair));
    any = true;
  }
  if (any) note_epoch(bundle.policy_epoch);
}

void ThetaStore::add_pair(SubStreamId id, WeightedSample pair,
                          std::uint64_t policy_epoch) {
  if (pair.items.empty()) return;
  pairs_[id].push_back(std::move(pair));
  note_epoch(policy_epoch);
}

void ThetaStore::note_epoch(std::uint64_t epoch) noexcept {
  if (!epoch_seen_) {
    epoch_min_ = epoch;
    epoch_max_ = epoch;
    epoch_seen_ = true;
    return;
  }
  if (epoch < epoch_min_) epoch_min_ = epoch;
  if (epoch > epoch_max_) epoch_max_ = epoch;
}

std::vector<SubStreamId> ThetaStore::sub_streams() const {
  std::vector<SubStreamId> out;
  out.reserve(pairs_.size());
  for (const auto& [id, _] : pairs_) out.push_back(id);
  return out;
}

const std::vector<WeightedSample>& ThetaStore::pairs(SubStreamId id) const {
  auto it = pairs_.find(id);
  return it == pairs_.end() ? kEmpty : it->second;
}

std::uint64_t ThetaStore::sampled_count(SubStreamId id) const {
  std::uint64_t n = 0;
  for (const auto& pair : pairs(id)) n += pair.items.size();
  return n;
}

double ThetaStore::estimated_original_count(SubStreamId id) const {
  double c = 0.0;
  for (const auto& pair : pairs(id)) {
    c += static_cast<double>(pair.items.size()) * pair.weight;
  }
  return c;
}

std::uint64_t ThetaStore::total_sampled() const {
  std::uint64_t n = 0;
  for (const auto& [id, _] : pairs_) n += sampled_count(id);
  return n;
}

}  // namespace approxiot::core
