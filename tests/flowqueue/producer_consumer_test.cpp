#include <gtest/gtest.h>

#include <set>
#include <string>

#include "flowqueue/broker.hpp"
#include "flowqueue/consumer.hpp"
#include "flowqueue/producer.hpp"

namespace approxiot::flowqueue {
namespace {

std::vector<std::uint8_t> payload(const std::string& s) {
  return {s.begin(), s.end()};
}

class ProducerConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(broker_.create_topic("t", 2).is_ok()); }
  Broker broker_;
};

TEST_F(ProducerConsumerTest, SendAndPollRoundTrip) {
  Producer producer(broker_);
  auto sent = producer.send("t", "key", payload("hello"));
  ASSERT_TRUE(sent.is_ok());

  Consumer consumer(broker_, "c1");
  ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());
  auto batch = consumer.poll(10);
  ASSERT_TRUE(batch.is_ok());
  ASSERT_EQ(batch.value().size(), 1u);
  EXPECT_EQ(batch.value()[0].key, "key");
  EXPECT_EQ(std::string(batch.value()[0].value.begin(),
                        batch.value()[0].value.end()),
            "hello");
}

TEST_F(ProducerConsumerTest, PartitionWatermarksTrackPositionsAndEnds) {
  Producer producer(broker_);
  // Pin records to known partitions: 3 in partition 0, 1 in partition 1.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(producer.send_to_partition("t", 0, "a", payload("x")).is_ok());
  }
  ASSERT_TRUE(producer.send_to_partition("t", 1, "b", payload("y")).is_ok());

  Consumer consumer(broker_, "c1");
  ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());

  auto marks = consumer.partition_watermarks();
  ASSERT_EQ(marks.size(), 2u);
  std::int64_t total_lag = 0;
  for (const auto& mark : marks) {
    EXPECT_EQ(mark.position, 0);
    EXPECT_FALSE(mark.caught_up());
    total_lag += mark.lag();
  }
  EXPECT_EQ(total_lag, 4);
  EXPECT_FALSE(consumer.caught_up());

  // A partial poll advances some positions but cannot prove catch-up.
  auto batch = consumer.poll(2);
  ASSERT_TRUE(batch.is_ok());
  EXPECT_FALSE(consumer.caught_up());

  // Draining everything flips every watermark.
  while (true) {
    auto more = consumer.poll(10);
    ASSERT_TRUE(more.is_ok());
    if (more.value().empty()) break;
  }
  for (const auto& mark : consumer.partition_watermarks()) {
    EXPECT_TRUE(mark.caught_up()) << mark.tp.topic << "/" << mark.tp.partition;
    EXPECT_EQ(mark.lag(), 0);
  }
  EXPECT_TRUE(consumer.caught_up());

  // New appends immediately un-catch the consumer.
  ASSERT_TRUE(producer.send_to_partition("t", 1, "b", payload("z")).is_ok());
  EXPECT_FALSE(consumer.caught_up());
}

TEST_F(ProducerConsumerTest, EmptyAssignmentIsNeverCaughtUp) {
  Consumer consumer(broker_, "c1");
  EXPECT_TRUE(consumer.partition_watermarks().empty());
  EXPECT_FALSE(consumer.caught_up());
}

TEST_F(ProducerConsumerTest, SendToUnknownTopicFails) {
  Producer producer(broker_);
  EXPECT_FALSE(producer.send("ghost", "k", payload("x")).is_ok());
}

TEST_F(ProducerConsumerTest, SendToInvalidPartitionFails) {
  Producer producer(broker_);
  EXPECT_EQ(
      producer.send_to_partition("t", 9, "k", payload("x")).status().code(),
      StatusCode::kOutOfRange);
}

TEST_F(ProducerConsumerTest, SameKeyLandsInSamePartition) {
  Producer producer(broker_);
  auto a = producer.send("t", "stable-key", payload("1"));
  auto b = producer.send("t", "stable-key", payload("2"));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().partition, b.value().partition);
  EXPECT_EQ(b.value().offset, a.value().offset + 1);
}

TEST_F(ProducerConsumerTest, PollEmptyTopicReturnsNothing) {
  Consumer consumer(broker_, "c1");
  ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());
  auto batch = consumer.poll(10);
  ASSERT_TRUE(batch.is_ok());
  EXPECT_TRUE(batch.value().empty());
}

TEST_F(ProducerConsumerTest, PollAdvancesPositionNoDuplicates) {
  Producer producer(broker_);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(producer.send("t", "k" + std::to_string(i),
                              payload(std::to_string(i)))
                    .is_ok());
  }
  Consumer consumer(broker_, "c1");
  ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());

  std::multiset<std::string> seen;
  while (true) {
    auto batch = consumer.poll(7);
    ASSERT_TRUE(batch.is_ok());
    if (batch.value().empty()) break;
    for (const auto& r : batch.value()) seen.insert(r.key);
  }
  EXPECT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(seen.count("k" + std::to_string(i)), 1u) << i;
  }
  EXPECT_EQ(consumer.total_lag(), 0);
}

TEST_F(ProducerConsumerTest, StandaloneAssignAndSeek) {
  Producer producer(broker_);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        producer.send_to_partition("t", 0, "k", payload(std::to_string(i)))
            .is_ok());
  }
  Consumer consumer(broker_, "solo");
  ASSERT_TRUE(consumer.assign({TopicPartition{"t", 0}}).is_ok());
  auto first = consumer.poll(100);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().size(), 5u);

  // Seek back and re-read.
  ASSERT_TRUE(consumer.seek(TopicPartition{"t", 0}, 3).is_ok());
  auto again = consumer.poll(100);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().size(), 2u);
}

TEST_F(ProducerConsumerTest, SeekUnassignedPartitionFails) {
  Consumer consumer(broker_, "solo");
  ASSERT_TRUE(consumer.assign({TopicPartition{"t", 0}}).is_ok());
  EXPECT_FALSE(consumer.seek(TopicPartition{"t", 1}, 0).is_ok());
  EXPECT_FALSE(consumer.seek(TopicPartition{"t", 0}, -2).is_ok());
}

// Regression: seeking past the log end used to store the raw offset, so
// that partition reported NEGATIVE lag — which silently cancelled real
// lag from other partitions in total_lag() and could flip caught_up()
// while records were still unread. The position now clamps to end_offset.
TEST_F(ProducerConsumerTest, SeekPastLogEndClampsToEndOffset) {
  Producer producer(broker_);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        producer.send_to_partition("t", 0, "k", payload(std::to_string(i)))
            .is_ok());
  }
  ASSERT_TRUE(producer.send_to_partition("t", 1, "k", payload("x")).is_ok());

  Consumer consumer(broker_, "solo");
  ASSERT_TRUE(
      consumer.assign({TopicPartition{"t", 0}, TopicPartition{"t", 1}})
          .is_ok());

  // Overshoot partition 0 (3 records) by a mile.
  ASSERT_TRUE(consumer.seek(TopicPartition{"t", 0}, 1'000'000).is_ok());
  EXPECT_EQ(consumer.position(TopicPartition{"t", 0}), 3);

  // Partition 1 still has its record unread: the -999997 phantom lag must
  // not cancel it.
  EXPECT_EQ(consumer.total_lag(), 1);
  EXPECT_FALSE(consumer.caught_up());
  auto batch = consumer.poll(100);
  ASSERT_TRUE(batch.is_ok());
  EXPECT_EQ(batch.value().size(), 1u);
  EXPECT_TRUE(consumer.caught_up());
}

TEST_F(ProducerConsumerTest, AssignAfterSubscribeFails) {
  Consumer consumer(broker_, "c");
  ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());
  EXPECT_EQ(consumer.assign({TopicPartition{"t", 0}}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ProducerConsumerTest, CommitAndRestore) {
  Producer producer(broker_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        producer.send_to_partition("t", 0, "k", payload("x")).is_ok());
  }
  {
    Consumer consumer(broker_, "c1");
    ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());
    auto batch = consumer.poll(4);
    ASSERT_TRUE(batch.is_ok());
    ASSERT_TRUE(consumer.commit().is_ok());
  }  // consumer leaves the group on destruction

  Consumer resumed(broker_, "c2");
  ASSERT_TRUE(resumed.subscribe("g", {"t"}).is_ok());
  ASSERT_TRUE(resumed.restore_committed().is_ok());
  auto rest = resumed.poll(100);
  ASSERT_TRUE(rest.is_ok());
  EXPECT_EQ(rest.value().size(), 6u);  // 10 - 4 already committed
}

TEST_F(ProducerConsumerTest, GroupMembersShareTheTopicDisjointly) {
  Producer producer(broker_);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(producer
                    .send_to_partition("t", static_cast<std::uint32_t>(i % 2),
                                       "k" + std::to_string(i), payload("x"))
                    .is_ok());
  }
  Consumer c1(broker_, "m1"), c2(broker_, "m2");
  ASSERT_TRUE(c1.subscribe("g", {"t"}).is_ok());
  ASSERT_TRUE(c2.subscribe("g", {"t"}).is_ok());

  std::multiset<std::string> seen;
  for (Consumer* c : {&c1, &c2}) {
    while (true) {
      auto batch = c->poll(8);
      ASSERT_TRUE(batch.is_ok());
      if (batch.value().empty()) break;
      for (const auto& r : batch.value()) seen.insert(r.key);
    }
  }
  EXPECT_EQ(seen.size(), 40u);  // everything seen exactly once
}

TEST_F(ProducerConsumerTest, ProducerCountsBytesAndRecords) {
  Producer producer(broker_);
  ASSERT_TRUE(producer.send("t", "k", payload("hello")).is_ok());
  ASSERT_TRUE(producer.send("t", "k", payload("world!")).is_ok());
  EXPECT_EQ(producer.records_sent(), 2u);
  EXPECT_GT(producer.bytes_sent(), 11u);
}

TEST_F(ProducerConsumerTest, BoundStatsTrackLagAndWatermarkAge) {
#ifdef APPROXIOT_NO_STATS
  GTEST_SKIP() << "observability hooks compiled out";
#endif
  Producer producer(broker_);
  Consumer consumer(broker_, "c");
  ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());

  obs::StatsRegistry stats;
  consumer.bind_stats(stats, "flowqueue/c");
  obs::Gauge& lag = stats.gauge("flowqueue/c/lag");
  obs::Gauge& age = stats.gauge("flowqueue/c/watermark_age_us");
  obs::Gauge& caught_up = stats.gauge("flowqueue/c/caught_up");

  // Freshly subscribed against an empty topic: caught up, no lag.
  EXPECT_DOUBLE_EQ(lag.value(), 0.0);
  EXPECT_DOUBLE_EQ(age.value(), 0.0);
  EXPECT_DOUBLE_EQ(caught_up.value(), 1.0);
  EXPECT_DOUBLE_EQ(stats.gauge("flowqueue/c/assigned_partitions").value(),
                   2.0);

  // Appends with spread-out stream timestamps: lag counts records, age is
  // the stream-time distance from the next unread record to the newest.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(producer
                    .send_to_partition("t", 0, "k", payload("x"),
                                       SimTime::from_micros(1000 * i))
                    .is_ok());
  }
  consumer.update_stats();
  EXPECT_DOUBLE_EQ(lag.value(), 4.0);
  EXPECT_DOUBLE_EQ(age.value(), 3000.0);  // ts 0 .. 3000us unread
  EXPECT_DOUBLE_EQ(caught_up.value(), 0.0);

  // Gauges refresh at the end of every poll without explicit updates.
  ASSERT_TRUE(consumer.poll(3).is_ok());
  EXPECT_DOUBLE_EQ(lag.value(), 1.0);
  EXPECT_DOUBLE_EQ(age.value(), 0.0);  // only the newest record is unread
  EXPECT_EQ(stats.counter("flowqueue/c/records_polled").value(), 3u);

  ASSERT_TRUE(consumer.poll(10).is_ok());
  EXPECT_DOUBLE_EQ(lag.value(), 0.0);
  EXPECT_DOUBLE_EQ(caught_up.value(), 1.0);
  EXPECT_EQ(stats.counter("flowqueue/c/records_polled").value(), 4u);
}

TEST_F(ProducerConsumerTest, LagReflectsUnconsumedRecords) {
  Producer producer(broker_);
  Consumer consumer(broker_, "c");
  ASSERT_TRUE(consumer.subscribe("g", {"t"}).is_ok());
  EXPECT_EQ(consumer.total_lag(), 0);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(producer.send("t", std::to_string(i), payload("x")).is_ok());
  }
  EXPECT_EQ(consumer.total_lag(), 6);
  ASSERT_TRUE(consumer.poll(3).is_ok());
  EXPECT_EQ(consumer.total_lag(), 3);
}

}  // namespace
}  // namespace approxiot::flowqueue
