#include "workload/generators.hpp"

#include <memory>
#include <stdexcept>

namespace approxiot::workload {

namespace {

SubStreamSpec make_spec(std::uint64_t id, std::string name,
                        std::shared_ptr<const stats::ValueDistribution> dist,
                        double rate) {
  SubStreamSpec spec;
  spec.id = SubStreamId{id};
  spec.name = std::move(name);
  spec.values = std::move(dist);
  spec.rate_items_per_s = rate;
  return spec;
}

}  // namespace

std::vector<SubStreamSpec> gaussian_quad(double rate_per_stream) {
  std::vector<SubStreamSpec> specs;
  specs.push_back(make_spec(
      1, "A", std::make_shared<stats::GaussianDistribution>(10.0, 5.0),
      rate_per_stream));
  specs.push_back(make_spec(
      2, "B", std::make_shared<stats::GaussianDistribution>(1000.0, 50.0),
      rate_per_stream));
  specs.push_back(make_spec(
      3, "C", std::make_shared<stats::GaussianDistribution>(10000.0, 500.0),
      rate_per_stream));
  specs.push_back(make_spec(
      4, "D", std::make_shared<stats::GaussianDistribution>(100000.0, 5000.0),
      rate_per_stream));
  return specs;
}

std::vector<SubStreamSpec> poisson_quad(double rate_per_stream) {
  std::vector<SubStreamSpec> specs;
  specs.push_back(make_spec(
      1, "A", std::make_shared<stats::PoissonDistribution>(10.0),
      rate_per_stream));
  specs.push_back(make_spec(
      2, "B", std::make_shared<stats::PoissonDistribution>(100.0),
      rate_per_stream));
  specs.push_back(make_spec(
      3, "C", std::make_shared<stats::PoissonDistribution>(1000.0),
      rate_per_stream));
  specs.push_back(make_spec(
      4, "D", std::make_shared<stats::PoissonDistribution>(10000.0),
      rate_per_stream));
  return specs;
}

std::vector<SubStreamSpec> fluctuating_setting(int setting, bool gaussian) {
  std::vector<double> rates;
  switch (setting) {
    case 1:
      rates = {50000.0, 25000.0, 12500.0, 625.0};
      break;
    case 2:
      rates = {25000.0, 25000.0, 25000.0, 25000.0};
      break;
    case 3:
      rates = {625.0, 12500.0, 25000.0, 50000.0};
      break;
    default:
      throw std::invalid_argument("setting must be 1, 2 or 3");
  }
  auto specs = gaussian ? gaussian_quad() : poisson_quad();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].rate_items_per_s = rates[i];
  }
  return specs;
}

std::vector<SubStreamSpec> skewed_poisson(double total_rate) {
  std::vector<SubStreamSpec> specs;
  specs.push_back(make_spec(
      1, "A", std::make_shared<stats::PoissonDistribution>(10.0),
      total_rate * 0.80));
  specs.push_back(make_spec(
      2, "B", std::make_shared<stats::PoissonDistribution>(100.0),
      total_rate * 0.1989));
  specs.push_back(make_spec(
      3, "C", std::make_shared<stats::PoissonDistribution>(1000.0),
      total_rate * 0.001));
  specs.push_back(make_spec(
      4, "D", std::make_shared<stats::PoissonDistribution>(10000000.0),
      total_rate * 0.0001));
  return specs;
}

double expected_mean_value(const std::vector<SubStreamSpec>& specs) {
  double weighted = 0.0;
  double rate_total = 0.0;
  for (const auto& spec : specs) {
    weighted += spec.values->mean() * spec.rate_items_per_s;
    rate_total += spec.rate_items_per_s;
  }
  return rate_total > 0.0 ? weighted / rate_total : 0.0;
}

}  // namespace approxiot::workload
