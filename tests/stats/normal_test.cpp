#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace approxiot::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232306167813, 1e-7);
}

TEST(NormalQuantileTest, RoundTripsThroughCdf) {
  for (double p = 0.001; p < 1.0; p += 0.013) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantileTest, TailsAreInfinite) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_LT(normal_quantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_GT(normal_quantile(1.0), 0.0);
}

TEST(NormalQuantileTest, SymmetricAroundHalf) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(ZForConfidenceTest, SigmaRuleValues) {
  // The "68-95-99.7" rule: these confidences correspond to 1, 2, 3 sigma.
  EXPECT_NEAR(z_for_confidence(kConfidence68), 1.0, 1e-8);
  EXPECT_NEAR(z_for_confidence(kConfidence95), 2.0, 1e-8);
  EXPECT_NEAR(z_for_confidence(kConfidence997), 3.0, 1e-7);
}

TEST(ZForConfidenceTest, EdgeCases) {
  EXPECT_EQ(z_for_confidence(0.0), 0.0);
  EXPECT_EQ(z_for_confidence(-1.0), 0.0);
  EXPECT_TRUE(std::isinf(z_for_confidence(1.0)));
}

TEST(ZForConfidenceTest, MonotoneInConfidence) {
  double prev = 0.0;
  for (double c = 0.1; c < 0.999; c += 0.05) {
    const double z = z_for_confidence(c);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

}  // namespace
}  // namespace approxiot::stats
