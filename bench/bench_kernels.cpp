// Per-kernel microbench for src/core/kernels: one JSON row per kernel
// (count, scatter, algo_r, algo_l, encode) with items/s at every dispatch
// tier this CPU supports, so a regression in a single kernel/tier is
// visible instead of averaged into bench_hotpath's end-to-end rate.
//
// Before timing anything each tier's output is asserted bit-identical to
// the scalar oracle on the same inputs — the kernels' core contract —
// including RNG-state continuation for the reservoir kernels (a second
// span is offered after the first and must still agree).
//
// Output: human table + one bench_util JSON line per kernel (x-axis =
// tier index, see kernels::Tier) + a stats-registry snapshot from the
// PR 6 obs:: hooks. `--smoke` shrinks the run for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/kernels/kernels.hpp"
#include "obs/stats.hpp"
#include "sampling/reservoir.hpp"

namespace {

using namespace approxiot;
namespace kernels = approxiot::core::kernels;

constexpr std::uint64_t kSeed = 20180701;
constexpr std::uint64_t kStreams = 16;

std::vector<Item> make_interval(std::size_t n) {
  Rng rng(7);
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(Item{SubStreamId{1 + rng.next_below(kStreams)},
                         rng.next_double(),
                         static_cast<std::int64_t>(i)});
  }
  return items;
}

[[noreturn]] void die(const char* kernel, kernels::Tier tier,
                      const char* what) {
  std::fprintf(stderr, "%s@%s diverged from scalar oracle: %s\n", kernel,
               kernels::tier_name(tier), what);
  std::exit(1);
}

// --- Counting pass ----------------------------------------------------------

struct CountBuffers {
  std::vector<SubStreamId> ids;
  std::vector<std::size_t> counts;
  std::vector<std::uint32_t> index;
  std::vector<std::uint32_t> item_slots;

  explicit CountBuffers(std::size_t n) : index(256, 0), item_slots(n) {}

  kernels::CountScratch scratch() {
    return kernels::CountScratch{&ids, &counts, &index};
  }
  void reset() {
    ids.clear();
    counts.clear();
    std::fill(index.begin(), index.end(), 0);
  }
};

void run_count(kernels::Tier tier, const std::vector<Item>& items,
               CountBuffers& b) {
  b.reset();
  kernels::count_pass(tier, items.data(), items.size(), b.scratch(),
                      b.item_slots.data());
}

void check_count(kernels::Tier tier, const std::vector<Item>& items) {
  CountBuffers oracle(items.size()), got(items.size());
  run_count(kernels::Tier::kScalar, items, oracle);
  run_count(tier, items, got);
  if (got.ids != oracle.ids || got.counts != oracle.counts) {
    die("count", tier, "slot directory");
  }
  if (got.item_slots != oracle.item_slots) die("count", tier, "item slots");
}

// --- Scatter pass -----------------------------------------------------------

std::vector<std::size_t> seed_cursors(const std::vector<std::size_t>& counts) {
  std::vector<std::size_t> cursors(counts.size());
  std::size_t offset = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    cursors[k] = offset;
    offset += counts[k];
  }
  return cursors;
}

void check_scatter(kernels::Tier tier, const std::vector<Item>& items,
                   const CountBuffers& counted) {
  std::vector<Item> oracle(items.size()), got(items.size());
  auto c1 = seed_cursors(counted.counts);
  auto c2 = c1;
  kernels::scatter_pass(kernels::Tier::kScalar, items.data(), items.size(),
                        counted.item_slots.data(), c1.data(), oracle.data());
  kernels::scatter_pass(tier, items.data(), items.size(),
                        counted.item_slots.data(), c2.data(), got.data());
  if (std::memcmp(got.data(), oracle.data(), got.size() * sizeof(Item)) != 0) {
    die("scatter", tier, "arena permutation");
  }
  if (c1 != c2) die("scatter", tier, "final cursors");
}

// --- Reservoir kernels (through the real offer_span call path) --------------

std::vector<Item> run_reservoir(kernels::Tier tier,
                                sampling::ReservoirAlgorithm algorithm,
                                const std::vector<Item>& items,
                                std::size_t cap, std::size_t spans) {
  kernels::force_tier(tier);
  sampling::ReservoirSampler<Item> res(cap, Rng(kSeed), algorithm);
  // Split the input into several spans: the kernel must leave (seen, rng,
  // and Algorithm L's w/skip) exactly where the scalar loop would, or the
  // later spans diverge.
  const std::size_t chunk = items.size() / spans;
  for (std::size_t s = 0; s < spans; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = s + 1 == spans ? items.size() : begin + chunk;
    res.offer_span(items.data() + begin, end - begin);
  }
  std::vector<Item> out(res.contents().begin(), res.contents().end());
  kernels::force_tier(kernels::detected_tier());
  return out;
}

void check_reservoir(kernels::Tier tier,
                     sampling::ReservoirAlgorithm algorithm, const char* name,
                     const std::vector<Item>& items, std::size_t cap) {
  const auto oracle =
      run_reservoir(kernels::Tier::kScalar, algorithm, items, cap, 3);
  const auto got = run_reservoir(tier, algorithm, items, cap, 3);
  if (!(oracle == got)) die(name, tier, "reservoir contents");
}

// --- Encoder ----------------------------------------------------------------

void check_encode(kernels::Tier tier, const std::vector<Item>& items) {
  std::vector<std::uint8_t> oracle(items.size() * kernels::kMaxItemWireBytes);
  std::vector<std::uint8_t> got(oracle.size());
  const std::size_t n1 = kernels::encode_items(
      kernels::Tier::kScalar, oracle.data(), items.data(), items.size());
  const std::size_t n2 =
      kernels::encode_items(tier, got.data(), items.data(), items.size());
  if (n1 != n2 || std::memcmp(oracle.data(), got.data(), n1) != 0) {
    die("encode", tier, "wire bytes");
  }
}

// --- Timing -----------------------------------------------------------------

/// Best-of-`reps` items/s for `fn`, each rep looping `fn` until it has
/// run at least `min_seconds` (one untimed warmup call first).
template <typename Fn>
double best_rate(std::size_t items_per_call, std::size_t reps,
                 double min_seconds, Fn&& fn) {
  fn();
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    std::size_t calls = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::chrono::duration<double> elapsed{};
    do {
      fn();
      ++calls;
      elapsed = std::chrono::steady_clock::now() - t0;
    } while (elapsed.count() < min_seconds);
    best = std::max(best, static_cast<double>(items_per_call * calls) /
                              elapsed.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  approxiot::bench::pin_allocator();

  const std::size_t n = smoke ? 16384 : 262144;
  const std::size_t cap = n / 10;
  const std::size_t reps = smoke ? 2 : 5;
  const double min_seconds = smoke ? 0.002 : 0.010;
  const auto items = make_interval(n);

  obs::StatsRegistry stats;
  kernels::bind_stats(&stats);

  const auto max_tier = static_cast<int>(kernels::detected_tier());
  std::vector<int> tiers;
  for (int t = 0; t <= max_tier; ++t) tiers.push_back(t);

  approxiot::bench::print_header(
      "sampling kernels: items/sec per kernel per dispatch tier",
      "count/scatter = stratification build, algo_r/algo_l = reservoir "
      "span ingestion, encode = wire bytes");
  std::printf("detected tier: %s  (%zu items, %zu streams, cap %zu)\n",
              kernels::tier_name(kernels::detected_tier()), n, kStreams, cap);

  CountBuffers counted(n);
  run_count(kernels::Tier::kScalar, items, counted);

  struct Row {
    const char* name;
    std::vector<double> rate;
  };
  std::vector<Row> rows = {{"count", {}},
                           {"scatter", {}},
                           {"algo_r", {}},
                           {"algo_l", {}},
                           {"encode", {}}};

  for (const int t : tiers) {
    const auto tier = static_cast<kernels::Tier>(t);
    // Identity first: a kernel that is fast but wrong must not get a row.
    check_count(tier, items);
    check_scatter(tier, items, counted);
    check_reservoir(tier, sampling::ReservoirAlgorithm::kAlgorithmR,
                    "algo_r", items, cap);
    check_reservoir(tier, sampling::ReservoirAlgorithm::kAlgorithmL,
                    "algo_l", items, cap);
    check_encode(tier, items);

    CountBuffers b(n);
    rows[0].rate.push_back(best_rate(n, reps, min_seconds, [&] {
      run_count(tier, items, b);
    }));

    std::vector<Item> arena(n);
    std::vector<std::size_t> cursors;
    rows[1].rate.push_back(best_rate(n, reps, min_seconds, [&] {
      cursors = seed_cursors(counted.counts);
      kernels::scatter_pass(tier, items.data(), n, counted.item_slots.data(),
                            cursors.data(), arena.data());
    }));

    kernels::force_tier(tier);
    sampling::ReservoirSampler<Item> res_r(
        cap, Rng(kSeed), sampling::ReservoirAlgorithm::kAlgorithmR);
    rows[2].rate.push_back(best_rate(n, reps, min_seconds, [&] {
      res_r.rearm(cap, Rng(kSeed));
      res_r.offer_span(items.data(), n);
    }));
    sampling::ReservoirSampler<Item> res_l(
        cap, Rng(kSeed), sampling::ReservoirAlgorithm::kAlgorithmL);
    rows[3].rate.push_back(best_rate(n, reps, min_seconds, [&] {
      res_l.rearm(cap, Rng(kSeed));
      res_l.offer_span(items.data(), n);
    }));
    kernels::force_tier(kernels::detected_tier());

    std::vector<std::uint8_t> wire(n * kernels::kMaxItemWireBytes);
    rows[4].rate.push_back(best_rate(n, reps, min_seconds, [&] {
      kernels::encode_items(tier, wire.data(), items.data(), n);
    }));
  }

  for (const Row& row : rows) {
    std::printf("%-8s", row.name);
    for (std::size_t i = 0; i < row.rate.size(); ++i) {
      std::printf("  %s %10.0f it/s",
                  kernels::tier_name(static_cast<kernels::Tier>(tiers[i])),
                  row.rate[i]);
    }
    std::printf("  (%.2fx)\n",
                row.rate.front() > 0.0 ? row.rate.back() / row.rate.front()
                                       : 0.0);
    std::vector<double> speedup;
    for (const double r : row.rate) {
      speedup.push_back(row.rate.front() > 0.0 ? r / row.rate.front() : 0.0);
    }
    approxiot::bench::print_json_result(
        std::string("kernels/") + row.name, "ApproxIoT", "tier", tiers,
        {{"items_per_s", row.rate}, {"speedup_vs_scalar", speedup}});
  }
  approxiot::bench::print_stats_json("kernels", "ApproxIoT", stats.snapshot());
  kernels::bind_stats(nullptr);
  return 0;
}
