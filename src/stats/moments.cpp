#include "stats/moments.hpp"

#include <cmath>

namespace approxiot::stats {

double RunningMoments::sample_stddev() const noexcept {
  return std::sqrt(sample_variance());
}

}  // namespace approxiot::stats
