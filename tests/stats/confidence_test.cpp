#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"

namespace approxiot::stats {
namespace {

TEST(ConfidenceIntervalTest, BoundsAndCoverage) {
  ConfidenceInterval ci{10.0, 2.0, 0.95};
  EXPECT_DOUBLE_EQ(ci.lower(), 8.0);
  EXPECT_DOUBLE_EQ(ci.upper(), 12.0);
  EXPECT_TRUE(ci.covers(10.0));
  EXPECT_TRUE(ci.covers(8.0));
  EXPECT_TRUE(ci.covers(12.0));
  EXPECT_FALSE(ci.covers(7.99));
  EXPECT_FALSE(ci.covers(12.01));
}

TEST(ConfidenceIntervalTest, RelativeMargin) {
  ConfidenceInterval ci{100.0, 5.0, 0.95};
  EXPECT_DOUBLE_EQ(ci.relative_margin(), 0.05);
  ConfidenceInterval negative{-100.0, 5.0, 0.95};
  EXPECT_DOUBLE_EQ(negative.relative_margin(), 0.05);
  ConfidenceInterval zero{0.0, 5.0, 0.95};
  EXPECT_TRUE(std::isinf(zero.relative_margin()));
  ConfidenceInterval both_zero{0.0, 0.0, 0.95};
  EXPECT_EQ(both_zero.relative_margin(), 0.0);
}

TEST(MakeIntervalTest, TwoSigmaAt95) {
  const ConfidenceInterval ci = make_interval(50.0, 16.0, kConfidence95);
  // variance 16 -> stddev 4 -> margin 2 sigma = 8.
  EXPECT_NEAR(ci.margin, 8.0, 1e-6);
  EXPECT_DOUBLE_EQ(ci.point, 50.0);
}

TEST(MakeIntervalTest, NegativeVarianceClampsToZero) {
  const ConfidenceInterval ci = make_interval(1.0, -4.0, kConfidence95);
  EXPECT_EQ(ci.margin, 0.0);
}

TEST(MakeIntervalTest, WiderConfidenceWiderInterval) {
  const auto narrow = make_interval(0.0, 1.0, kConfidence68);
  const auto mid = make_interval(0.0, 1.0, kConfidence95);
  const auto wide = make_interval(0.0, 1.0, kConfidence997);
  EXPECT_LT(narrow.margin, mid.margin);
  EXPECT_LT(mid.margin, wide.margin);
}

TEST(MakeIntervalTest, StreamOutput) {
  std::ostringstream os;
  os << make_interval(5.0, 0.0, 0.95);
  EXPECT_NE(os.str().find("±"), std::string::npos);
}

// Property: an interval built from the true sampling variance of a sample
// mean covers the true mean at roughly its nominal rate.
TEST(MakeIntervalTest, EmpiricalCoverageOfSampleMean) {
  approxiot::Rng rng(99);
  const double mu = 10.0, sigma = 3.0;
  const int n = 50;
  const int trials = 2000;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += mu + sigma * rng.next_gaussian();
    const double mean = sum / n;
    const double var_of_mean = sigma * sigma / n;
    if (make_interval(mean, var_of_mean, kConfidence95).covers(mu)) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_NEAR(rate, kConfidence95, 0.02);
}

}  // namespace
}  // namespace approxiot::stats
