#include "runtime/thread_pool.hpp"

#include <utility>

#include "common/logging.hpp"

namespace approxiot::runtime {

namespace {
// Deep enough that submitters rarely block, bounded so a runaway producer
// exerts backpressure instead of growing the heap.
constexpr std::size_t kQueueDepth = 1024;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads, std::uint64_t seed)
    : queue_(kQueueDepth, BackpressurePolicy::kBlock) {
  if (threads == 0) threads = 1;
  Rng base(seed);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    WorkerContext context{WorkerId{i}, base};
    base.jump();
    workers_.emplace_back(
        [this, context = std::move(context)]() mutable {
          worker_loop(std::move(context));
        });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void(WorkerContext&)> task) {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    if (shut_down_) return false;
    ++submitted_;
  }
  if (!queue_.push(std::move(task))) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    --submitted_;
    return false;
  }
  return true;
}

bool ThreadPool::submit(std::function<void()> task) {
  return submit([task = std::move(task)](WorkerContext&) { task(); });
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return completed_ == submitted_; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    shut_down_ = true;
  }
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop(WorkerContext context) {
  while (auto task = queue_.pop()) {
    try {
      (*task)(context);
    } catch (const std::exception& e) {
      // A throwing task must not take the whole process down with
      // std::terminate; record it and keep the worker alive.
      AIOT_LOG(kError, "runtime.pool")
          << "task on worker " << context.id << " threw: " << e.what();
      std::lock_guard<std::mutex> lock(idle_mutex_);
      ++failed_;
    } catch (...) {
      AIOT_LOG(kError, "runtime.pool")
          << "task on worker " << context.id << " threw non-std exception";
      std::lock_guard<std::mutex> lock(idle_mutex_);
      ++failed_;
    }
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      ++completed_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace approxiot::runtime
