// Deterministic discrete-event simulator.
//
// The paper's latency/throughput/bandwidth experiments ran on a 25-node
// testbed with tc-shaped WAN links (20/40/80 ms RTTs, 1 Gbps). netsim
// replaces that testbed: events (item arrivals, service completions,
// interval ticks, link deliveries) execute in strict timestamp order with
// a monotonically advancing virtual clock, so every run is exactly
// reproducible. Ties break by schedule order (FIFO), which keeps
// causality intuitive: an event scheduled first fires first.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace approxiot::netsim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules `fn` after a delay relative to now.
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events at exactly `until` still run. Returns events executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the queue drains completely.
  std::uint64_t run();

  /// Drops all pending events (used between benchmark repetitions).
  void clear();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime at{};
    std::uint64_t seq{0};
    std::function<void()> fn;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return b.at < a.at;  // min-heap on time
      return b.seq < a.seq;                  // FIFO among equals
    }
  };

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
};

}  // namespace approxiot::netsim
