#include "sampling/bernoulli.hpp"

#include <algorithm>

namespace approxiot::sampling {

BernoulliSampler::BernoulliSampler(double p, Rng rng)
    : p_(std::clamp(p, 0.0, 1.0)), rng_(rng) {}

void BernoulliSampler::set_probability(double p) noexcept {
  p_ = std::clamp(p, 0.0, 1.0);
}

double BernoulliSampler::weight() const noexcept {
  return p_ > 0.0 ? 1.0 / p_ : 0.0;
}

}  // namespace approxiot::sampling
