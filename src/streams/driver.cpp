#include "streams/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/logging.hpp"
#include "obs/hooks.hpp"

namespace approxiot::streams {

/// Per-node ProcessorContext: forwards to the node's children, writing to
/// the sink topic when a child is a sink.
class TopologyDriver::ContextImpl final : public ProcessorContext {
 public:
  ContextImpl(TopologyDriver& driver, std::string node_name)
      : driver_(&driver), node_name_(std::move(node_name)) {}

  void forward(flowqueue::Record record) override {
    const TopologyNode& node = driver_->topology_.nodes().at(node_name_);
    for (const std::string& child : node.children) {
      driver_->route(child, record);
    }
  }

  void schedule(SimTime interval) override {
    if (interval.us <= 0) return;
    Punctuation p;
    p.interval = interval;
    p.next_fire = SimTime{((driver_->stream_time_.us / interval.us) + 1) *
                          interval.us};
    driver_->punctuations_[node_name_] = p;
  }

  [[nodiscard]] SimTime stream_time() const override {
    return driver_->stream_time_;
  }

  [[nodiscard]] const std::string& node_name() const override {
    return node_name_;
  }

 private:
  TopologyDriver* driver_;
  std::string node_name_;
};

TopologyDriver::TopologyDriver(flowqueue::Broker& broker, Topology topology,
                               std::string application_id)
    : broker_(&broker),
      topology_(std::move(topology)),
      application_id_(std::move(application_id)) {}

TopologyDriver::~TopologyDriver() {
  if (started_) (void)stop();
}

Status TopologyDriver::start() {
  if (started_) return Status::failed_precondition("driver already started");

  producer_ = std::make_unique<flowqueue::Producer>(*broker_);

  for (const auto& [name, node] : topology_.nodes()) {
    switch (node.kind) {
      case TopologyNode::Kind::kSource: {
        // Member names must be unique per consumer instance: two drivers
        // sharing an application id (one group) would otherwise collide
        // on the same member and double-consume every partition.
        static std::atomic<std::uint64_t> instance_counter{0};
        const std::uint64_t instance =
            instance_counter.fetch_add(1, std::memory_order_relaxed);
        auto consumer = std::make_unique<flowqueue::Consumer>(
            *broker_, application_id_ + "/" + name + "#" +
                          std::to_string(instance));
        Status s = consumer->subscribe(application_id_, {node.topic});
        if (!s.is_ok()) return s;
        consumers_.emplace(name, std::move(consumer));
        break;
      }
      case TopologyNode::Kind::kProcessor: {
        auto processor = node.factory();
        auto context = std::make_unique<ContextImpl>(*this, name);
        processor->init(*context);
        contexts_.emplace(name, std::move(context));
        processors_.emplace(name, std::move(processor));
        break;
      }
      case TopologyNode::Kind::kSink:
        break;
    }
  }
  started_ = true;
  AIOT_OBS(if (obs_stats_ != nullptr) {
    for (auto& [name, consumer] : consumers_) {
      consumer->bind_stats(*obs_stats_,
                           "streams/" + application_id_ + "/source/" + name);
    }
  });
  return Status::ok();
}

void TopologyDriver::bind_obs(obs::StatsRegistry* stats, obs::Tracer* tracer) {
  AIOT_OBS(
      obs_stats_ = stats; obs_tracer_ = tracer;
      const std::string scope = "streams/" + application_id_;
      if (stats != nullptr) {
        punctuate_us_ = &stats->histogram(scope + "/punctuate_us");
        punctuate_lateness_us_ =
            &stats->histogram(scope + "/punctuate_lateness_us");
        records_processed_ = &stats->counter(scope + "/records_processed");
        punctuations_fired_ = &stats->counter(scope + "/punctuations");
        for (auto& [name, consumer] : consumers_) {
          consumer->bind_stats(*stats, scope + "/source/" + name);
        }
      } if (tracer != nullptr) { track_ = tracer->register_track(scope); });
  (void)stats;
  (void)tracer;
}

void TopologyDriver::route(const std::string& node_name,
                           const flowqueue::Record& record) {
  const TopologyNode& node = topology_.nodes().at(node_name);
  switch (node.kind) {
    case TopologyNode::Kind::kProcessor:
      processors_.at(node_name)->process(record);
      break;
    case TopologyNode::Kind::kSink: {
      auto sent = producer_->send(node.topic, record.key, record.value,
                                  record.timestamp);
      if (!sent) {
        AIOT_LOG(kError, "streams.driver")
            << "sink '" << node_name << "' failed: " << sent.status().to_string();
      }
      break;
    }
    case TopologyNode::Kind::kSource:
      // Sources never appear as children (no parents allowed on them).
      break;
  }
}

void TopologyDriver::maybe_punctuate() {
  // Fire punctuations in time order until none are due. A punctuate() may
  // forward records but not move stream time, so this terminates.
  bool fired = true;
  while (fired) {
    fired = false;
    std::string due_node;
    SimTime due_time{};
    for (const auto& [name, p] : punctuations_) {
      if (p.next_fire <= stream_time_ &&
          (due_node.empty() || p.next_fire < due_time)) {
        due_node = name;
        due_time = p.next_fire;
      }
    }
    if (!due_node.empty()) {
      Punctuation& p = punctuations_.at(due_node);
      p.next_fire = p.next_fire + p.interval;
      [[maybe_unused]] std::chrono::steady_clock::time_point t0{};
      [[maybe_unused]] std::int64_t trace_begin = 0;
      AIOT_OBS(if (punctuate_us_ != nullptr) t0 =
                   std::chrono::steady_clock::now();
               if (obs_tracer_ != nullptr) trace_begin = obs_tracer_->now_us(););
      processors_.at(due_node)->punctuate(due_time);
      AIOT_OBS(
          if (punctuate_us_ != nullptr) {
            const auto dt = std::chrono::steady_clock::now() - t0;
            punctuate_us_->record(
                std::chrono::duration<double, std::micro>(dt).count());
          } if (punctuate_lateness_us_ != nullptr) {
            punctuate_lateness_us_->record(
                static_cast<double>((stream_time_ - due_time).us));
          } if (punctuations_fired_ != nullptr) {
            punctuations_fired_->increment();
          } if (obs_tracer_ != nullptr) {
            obs_tracer_->complete(track_, "punctuate", trace_begin,
                                  obs_tracer_->now_us());
          });
      fired = true;
    }
  }
}

Result<std::size_t> TopologyDriver::run_once(std::size_t max_records) {
  if (!started_) return Status::failed_precondition("driver not started");

  std::size_t consumed = 0;
  for (const auto& source_name : topology_.sources()) {
    auto batch = consumers_.at(source_name)->poll(max_records);
    if (!batch) return batch.status();
    for (const flowqueue::Record& record : batch.value()) {
      stream_time_ = std::max(stream_time_, record.timestamp);
      // Deliver to the source's children directly (a source itself has no
      // processing logic).
      for (const std::string& child :
           topology_.nodes().at(source_name).children) {
        route(child, record);
      }
      ++consumed;
      maybe_punctuate();
    }
  }
  AIOT_OBS(if (records_processed_ != nullptr) {
    records_processed_->increment(consumed);
  });
  return consumed;
}

Status TopologyDriver::run_until_idle(std::size_t max_cycles) {
  for (std::size_t i = 0; i < max_cycles; ++i) {
    auto consumed = run_once();
    if (!consumed) return consumed.status();
    if (consumed.value() == 0) return Status::ok();
  }
  return Status::resource_exhausted("run_until_idle exceeded max_cycles");
}

void TopologyDriver::advance_stream_time(SimTime to) {
  stream_time_ = std::max(stream_time_, to);
  maybe_punctuate();
}

Status TopologyDriver::stop() {
  if (!started_) return Status::ok();
  // Push stream time past every pending punctuation so buffered intervals
  // flush, then close processors.
  SimTime max_fire = stream_time_;
  for (const auto& [_, p] : punctuations_) {
    max_fire = std::max(max_fire, p.next_fire);
  }
  advance_stream_time(max_fire);
  for (auto& [_, processor] : processors_) processor->close();
  started_ = false;
  return Status::ok();
}

}  // namespace approxiot::streams
