// GroundTruth: exact per-sub-stream statistics over every generated item,
// kept alongside the approximate pipeline so benches can report the
// paper's accuracy-loss metric |approx − exact| / exact (§V-A Metrics).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "stats/moments.hpp"

namespace approxiot::workload {

class GroundTruth {
 public:
  void add(const Item& item) { moments_[item.source].add(item.value); }

  void add_all(const std::vector<Item>& items) {
    for (const Item& item : items) add(item);
  }

  void reset() { moments_.clear(); }

  [[nodiscard]] double sum(SubStreamId id) const;
  [[nodiscard]] std::uint64_t count(SubStreamId id) const;

  [[nodiscard]] double total_sum() const;
  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] double total_mean() const;

  [[nodiscard]] std::vector<SubStreamId> sub_streams() const;

 private:
  std::map<SubStreamId, stats::RunningMoments> moments_;
};

/// The paper's accuracy-loss metric, in *percent* (its plots' unit):
/// 100 · |approx − exact| / |exact|. Returns +inf when exact == 0 but
/// approx != 0; 0 when both are 0.
[[nodiscard]] double accuracy_loss_percent(double approx, double exact);

}  // namespace approxiot::workload
