// Sampling overhead microbenchmarks (google-benchmark).
//
// Backs the §V-B observation that at a 100% fraction ApproxIoT, SRS and
// native execution have near-identical throughput (11003 / 11046 / 11134
// items/s in the paper) — i.e. the sampling machinery itself is cheap.
// Also measures Algorithm R vs Algorithm L reservoir cost at low
// fractions, where L's skip-ahead pays off.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/node.hpp"
#include "core/srs_node.hpp"
#include "sampling/reservoir.hpp"

namespace {

using namespace approxiot;

std::vector<Item> make_items(std::size_t n, std::size_t streams) {
  std::vector<Item> items;
  items.reserve(n);
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(
        Item{SubStreamId{i % streams + 1}, rng.next_double() * 100.0, 0});
  }
  return items;
}

void BM_NativePassthrough(benchmark::State& state) {
  const auto items = make_items(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    double sum = 0.0;
    for (const Item& item : items) sum += item.value;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NativePassthrough)->Arg(100000);

void BM_WHSampNode(benchmark::State& state) {
  const auto items = make_items(static_cast<std::size_t>(state.range(0)), 4);
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  core::NodeConfig config;
  config.cost_function = "fixed";
  config.budget.fixed_sample_size =
      static_cast<std::size_t>(fraction * static_cast<double>(items.size()));
  core::SamplingNode node(config);
  core::ItemBundle bundle;
  bundle.items = items;
  for (auto _ : state) {
    auto out = node.process_interval({bundle});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WHSampNode)
    ->Args({100000, 100})
    ->Args({100000, 60})
    ->Args({100000, 10});

void BM_SrsNode(benchmark::State& state) {
  const auto items = make_items(static_cast<std::size_t>(state.range(0)), 4);
  core::SrsNode node(core::SrsNodeConfig{
      NodeId{1}, static_cast<double>(state.range(1)) / 100.0, 7});
  core::ItemBundle bundle;
  bundle.items = items;
  for (auto _ : state) {
    auto out = node.process_interval({bundle});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SrsNode)
    ->Args({100000, 100})
    ->Args({100000, 60})
    ->Args({100000, 10});

template <sampling::ReservoirAlgorithm Algo>
void BM_Reservoir(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto capacity = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    sampling::ReservoirSampler<double> reservoir(capacity, Rng(3), Algo);
    for (std::size_t i = 0; i < n; ++i) {
      reservoir.offer(static_cast<double>(i));
    }
    benchmark::DoNotOptimize(reservoir.contents());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_TEMPLATE(BM_Reservoir, sampling::ReservoirAlgorithm::kAlgorithmR)
    ->Args({1000000, 100000})
    ->Args({1000000, 1000});
BENCHMARK_TEMPLATE(BM_Reservoir, sampling::ReservoirAlgorithm::kAlgorithmL)
    ->Args({1000000, 100000})
    ->Args({1000000, 1000});

}  // namespace

BENCHMARK_MAIN();
