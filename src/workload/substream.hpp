// Workload generation: sub-stream specifications and the stream generator
// that turns them into timestamped items.
//
// Each sub-stream (stratum) has a value distribution and an arrival rate.
// The generator is deterministic given its seed: item counts per tick use
// a fractional accumulator (exactly rate*dt items in the long run), which
// keeps ground-truth bookkeeping simple and experiments reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "stats/distribution.hpp"

namespace approxiot::workload {

struct SubStreamSpec {
  SubStreamId id{};
  std::string name;
  std::shared_ptr<const stats::ValueDistribution> values;
  double rate_items_per_s{1000.0};
};

class StreamGenerator {
 public:
  StreamGenerator(std::vector<SubStreamSpec> specs, std::uint64_t seed);

  /// Items arriving in [now, now+dt) across all sub-streams, stamped with
  /// created_at == now (batch arrival at tick granularity).
  [[nodiscard]] std::vector<Item> tick(SimTime now, SimTime dt);

  /// Exactly `count` items of one sub-stream (unit tests, microbenches).
  [[nodiscard]] std::vector<Item> generate(SubStreamId id, std::size_t count,
                                           SimTime now = SimTime::zero());

  /// Changes one sub-stream's rate (fluctuating-rate experiments).
  void set_rate(SubStreamId id, double rate_items_per_s);

  [[nodiscard]] const std::vector<SubStreamSpec>& specs() const noexcept {
    return specs_;
  }

  /// Total configured arrival rate (items/s).
  [[nodiscard]] double total_rate() const noexcept;

 private:
  std::vector<SubStreamSpec> specs_;
  std::vector<double> accumulators_;  // fractional items owed per spec
  Rng rng_;
};

/// Splits a tick's items across `leaves` so that all items of one
/// sub-stream land on the same leaf (sub-stream affinity, matching the
/// paper's sources-to-edge wiring).
[[nodiscard]] std::vector<std::vector<Item>> shard_by_substream(
    const std::vector<Item>& items, std::size_t leaves);

}  // namespace approxiot::workload
