#include "netsim/sim_node.hpp"

#include <algorithm>
#include <utility>

namespace approxiot::netsim {

SimNode::SimNode(Simulator& sim, std::unique_ptr<core::PipelineStage> stage,
                 SimNodeConfig config)
    : sim_(&sim), stage_(std::move(stage)), config_(std::move(config)) {}

void SimNode::connect_uplink(Link* uplink, SimNode* parent) {
  uplink_ = uplink;
  parent_ = parent;
}

void SimNode::connect_root_sink(RootSink sink) {
  root_sink_ = std::move(sink);
}

void SimNode::start() {
  if (started_) return;
  started_ = true;
  sim_->schedule_after(config_.interval, [this]() { on_tick(); });
}

void SimNode::deliver(core::ItemBundle bundle) {
  if (bundle.items.empty()) return;
  items_arrived_ += bundle.items.size();

  // Single-server FIFO service: this bundle's processing completes after
  // everything already queued plus its own service demand.
  const double rate = config_.charge_on_output
                          ? config_.ingest_rate_items_per_s
                          : config_.service_rate_items_per_s;
  const double service_seconds =
      rate > 0.0 ? static_cast<double>(bundle.items.size()) / rate : 0.0;
  service_free_at_ = std::max(service_free_at_, sim_->now()) +
                     SimTime::from_seconds(service_seconds);

  // The bundle becomes visible to the interval machinery once serviced.
  auto shared = std::make_shared<core::ItemBundle>(std::move(bundle));
  sim_->schedule_at(service_free_at_,
                    [this, shared]() { psi_.push_back(std::move(*shared)); });
}

SimTime SimNode::backlog() const noexcept {
  const SimTime now = sim_->now();
  const SimTime busiest = std::max(service_free_at_, output_free_at_);
  return busiest > now ? busiest - now : SimTime::zero();
}

std::uint64_t SimNode::wire_size(
    const core::SampledBundle& bundle) const noexcept {
  return config_.bytes_header +
         bundle.w_out.size() * config_.bytes_per_weight_entry +
         bundle.item_count() * config_.bytes_per_item;
}

void SimNode::on_tick() {
  if (!psi_.empty()) {
    std::vector<core::ItemBundle> psi;
    psi.swap(psi_);
    auto outputs = stage_->process_interval(psi);
    for (core::SampledBundle& out : outputs) {
      if (out.item_count() == 0) continue;
      items_forwarded_ += out.item_count();

      // Post-sampling service charge (datacenter query engine): the
      // surviving items occupy the server; delivery downstream happens
      // when their processing completes.
      SimTime ready = sim_->now();
      if (config_.charge_on_output &&
          config_.service_rate_items_per_s > 0.0) {
        const double seconds = static_cast<double>(out.item_count()) /
                               config_.service_rate_items_per_s;
        output_free_at_ = std::max(output_free_at_, sim_->now()) +
                          SimTime::from_seconds(seconds);
        ready = output_free_at_;
      }

      if (root_sink_) {
        if (ready > sim_->now()) {
          auto shared = std::make_shared<core::SampledBundle>(std::move(out));
          sim_->schedule_at(ready, [this, shared]() {
            root_sink_(*shared, sim_->now());
          });
        } else {
          root_sink_(out, sim_->now());
        }
      } else if (uplink_ != nullptr && parent_ != nullptr) {
        const std::uint64_t bytes = wire_size(out);
        auto bundle =
            std::make_shared<core::ItemBundle>(std::move(out).to_bundle());
        SimNode* parent = parent_;
        Link* uplink = uplink_;
        if (ready > sim_->now()) {
          sim_->schedule_at(ready, [uplink, bytes, parent, bundle]() {
            uplink->transfer(bytes, [parent, bundle]() {
              parent->deliver(std::move(*bundle));
            });
          });
        } else {
          uplink->transfer(bytes, [parent, bundle]() {
            parent->deliver(std::move(*bundle));
          });
        }
      }
    }
  }
  if (sim_->now() < tick_deadline_) {
    sim_->schedule_after(config_.interval, [this]() { on_tick(); });
  }
}

}  // namespace approxiot::netsim
