// ConcurrentEdgeTree: the paper's no-coordination claim, executed.
//
// core::EdgeTree ticks its layers in lockstep from one thread. This
// runtime gives every tree node its own worker: a node consumes one
// IntervalMessage per interval from each child's BoundedChannel, runs the
// exact same core::PipelineStage (WHS / SRS / native / snapshot), and
// pushes its (W^out, sample) output upstream. Layers therefore *pipeline*
// — the leaves may be sampling interval k+3 while the root is still on
// interval k — and the only inter-thread contact is the channels, mirroring
// how ApproxIoT's layers coordinate solely through Kafka topics.
//
// Determinism: stages are built with core::edge_tree_stage_config, so with
// kBlock backpressure (lossless) and workers_per_node == 1, the ConcurrentEdgeTree
// produces bit-identical samples, weights and Θ to a sequential EdgeTree
// fed the same input — the equivalence the runtime test suite pins down.
// With workers_per_node > 1, every node shards its reservoirs over one
// shared core::PooledSamplingExecutor (§III-E): the shard workers are
// created once, with the tree, and per-interval sampling only dispatches
// closures to them — no thread is spawned on the hot path. Samples then
// differ from the sequential tree but the Eq. 8 weight invariant still
// holds.
//
// Backpressure: kBlock propagates pressure source-wards and loses
// nothing. kDropNewest sheds whole interval messages at full channels and
// counts them — a coarse extra sampling stage for overload; see
// bounded_channel.hpp for why ApproxIoT can absorb that.
//
// Two execution substrates run the SAME logical node graph:
//   kThreads — one long-running OS thread per node (the original
//              runtime; node count capped by OS thread limits);
//   kEvents  — every node is a parkable task on a fixed-size
//              work-stealing JobScheduler, woken by channel readiness
//              (see job_scheduler.hpp). Node count becomes a data-
//              structure dimension: one process runs 10k+ logical nodes
//              on an 8-worker pool.
// Both modes produce bit-identical output for equal tree configs: a task
// never runs on two workers at once, Ψ is assembled in child order either
// way, and every RNG lives in the node's stage (not in any worker), so
// the only thing the scheduler can change is wall-clock interleaving.
// kThreads is kept as the oracle the equivalence tests pin kEvents to.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/adaptive.hpp"
#include "core/batch.hpp"
#include "core/checkpoint.hpp"
#include "core/control_plane.hpp"
#include "core/pipeline.hpp"
#include "core/theta_store.hpp"
#include "obs/trace.hpp"
#include "runtime/bounded_channel.hpp"
#include "runtime/job_scheduler.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace approxiot::runtime {

/// Which execution substrate runs the node graph (see file comment).
enum class RuntimeMode {
  kThreads,  ///< one OS thread per node — the oracle
  kEvents,   ///< nodes are tasks on a work-stealing JobScheduler
};

[[nodiscard]] constexpr const char* runtime_mode_name(
    RuntimeMode mode) noexcept {
  switch (mode) {
    case RuntimeMode::kThreads:
      return "threads";
    case RuntimeMode::kEvents:
      return "events";
  }
  return "?";
}

/// One interval's worth of Ψ contribution travelling over one tree edge.
/// `bundles` may be empty (an interval in which the child produced
/// nothing); the message still flows so receivers can align intervals.
struct IntervalMessage {
  std::int64_t interval{0};
  std::vector<core::ItemBundle> bundles;
};

struct ConcurrentTreeConfig {
  /// Topology, engine, fractions, seeds — shared with core::EdgeTree.
  core::EdgeTreeConfig tree{};
  /// Interval messages in flight per edge before backpressure kicks in.
  std::size_t channel_capacity{8};
  BackpressurePolicy backpressure{BackpressurePolicy::kBlock};
  /// Execution substrate. kThreads spends one OS thread per node (caps
  /// trees at a few hundred nodes); kEvents multiplexes every node over
  /// `event_workers` scheduler workers and is bit-identical to kThreads
  /// for equal tree configs.
  RuntimeMode runtime_mode{RuntimeMode::kThreads};
  /// Worker pool size for kEvents (0 = hardware concurrency), clamped to
  /// the node count. The pool size never changes the sampling output —
  /// only how many nodes make progress at once.
  std::size_t event_workers{0};
  /// Reservoir-sharding workers inside each WHS node (§III-E). With > 1
  /// the tree builds one shared PooledSamplingExecutor for all nodes
  /// (unless `sampling_executor` is supplied).
  std::size_t workers_per_node{1};
  /// Optional externally owned execution substrate for within-node
  /// sharded sampling; overrides workers_per_node-driven construction so
  /// several trees (or a tree plus stream processors) can share one
  /// persistent worker pool.
  std::shared_ptr<core::SamplingExecutor> sampling_executor{};
  /// Optional: called from the root's thread for every sampled bundle the
  /// root adds to Θ (e.g. to republish results into a flowqueue topic).
  std::function<void(const core::SampledBundle&)> root_tap{};

  /// §IV-B live feedback: the root observes its window's confidence
  /// interval, an AdaptiveController proposes the next end-to-end
  /// fraction, and the tree publishes policy epoch N+1 on the control
  /// plane — all without stopping the node workers, which pick the new
  /// epoch up at their next interval boundary.
  struct AdaptiveFeedback {
    bool enabled{false};
    core::AdaptiveConfig controller{};
    /// Root intervals between mid-window observations of Θ. 0 == observe
    /// only at close_window() (window-synchronous: with a drain() before
    /// each close the whole loop is deterministic); > 0 additionally
    /// observes the running window every N completed root intervals,
    /// adapting mid-stream.
    std::size_t intervals_per_observation{0};
    /// Confidence level for mid-window observations. Keep it equal to
    /// the confidence passed to close_window(): the controller's target
    /// relative error is defined against ONE interval width, and mixing
    /// sigma levels would give the loop two different fixed points.
    double confidence{stats::kConfidence95};
  };
  AdaptiveFeedback adaptive{};

  /// Observability (optional, unowned; must outlive the tree). When
  /// `stats` is null the tree falls back to the `metrics` registry passed
  /// to the constructor (its obs backend), so existing call sites get the
  /// hierarchical stats for free. Per node "tree/L{layer}/n{i}" (root:
  /// "tree/root"): exec/wait-latency histograms, an input-occupancy
  /// histogram, item/interval counters, and per-edge channel depth/block/
  /// drop stats. A `tracer` additionally gives every node its own track
  /// with channel-wait / stage-execute / root-merge spans (plus
  /// window-close and policy-publish events on "tree/control"), each
  /// annotated with the resolved policy_epoch. Instrumentation reads
  /// clocks and counters only — sampling output is bit-identical with or
  /// without it.
  obs::StatsRegistry* stats{nullptr};
  obs::Tracer* tracer{nullptr};

  /// Built-in chaos driver: every `kill_every_n_intervals` completed root
  /// intervals the tree kills one random non-root node (optionally
  /// capturing its state first), leaves it dead for `dead_intervals` root
  /// intervals, then revives it (optionally restoring the capture). Runs
  /// entirely on the root worker inside complete_root_interval, so it is
  /// deterministic for a fixed seed and interval schedule. Intervals that
  /// reach a dead node are swallowed into lost_weight/lost_items — the
  /// surviving sub-streams stay exact per Eq. 8 and the window result is
  /// flagged degraded.
  struct ChaosConfig {
    bool enabled{false};
    /// Root intervals between kills (>= 1 when enabled).
    std::size_t kill_every_n_intervals{8};
    /// Root intervals a victim stays dead before its scheduled revival.
    std::size_t dead_intervals{2};
    /// Capture the victim's stage state at kill and restore it at
    /// revival. Off = the revived node restarts from its constructed
    /// state (cold restart; weights re-derive from remembered carry).
    bool checkpoint_restore{true};
    std::uint64_t seed{42};
  };
  ChaosConfig chaos{};
};

class ConcurrentEdgeTree {
 public:
  /// Builds the tree and starts one worker per node immediately.
  /// `metrics` (optional, unowned) receives runtime counters/latencies.
  explicit ConcurrentEdgeTree(ConcurrentTreeConfig config,
                              MetricsRegistry* metrics = nullptr);

  ConcurrentEdgeTree(const ConcurrentEdgeTree&) = delete;
  ConcurrentEdgeTree& operator=(const ConcurrentEdgeTree&) = delete;

  ~ConcurrentEdgeTree();

  [[nodiscard]] std::size_t leaf_count() const noexcept;
  [[nodiscard]] std::size_t node_count() const noexcept;

  /// Feeds one interval of source data (one item vector per leaf).
  /// Under kBlock this blocks when the leaves are saturated; under
  /// kDropNewest it may shed the interval at full leaf channels.
  void push_interval(const std::vector<std::vector<Item>>& items_per_leaf);

  /// Blocks until every pushed interval has been folded into the root's
  /// Θ. Only meaningful under kBlock (lossless): with drops in play some
  /// intervals never reach the root and stop() is the only full barrier.
  void drain();

  /// Closes the source channels and joins every node worker. All pushed
  /// data still in flight is flushed through the tree first. Idempotent.
  void stop();

  /// drain()s (kBlock only — under kDropNewest a shed interval would make
  /// a full drain wait forever, so the window closes over whatever has
  /// reached the root), runs the window query over Θ, clears Θ.
  core::ApproxResult close_window(double confidence = stats::kConfidence95);

  /// Query without clearing. Safe while workers run (Θ is locked), but
  /// the result is a snapshot of whatever has reached the root so far.
  [[nodiscard]] core::ApproxResult run_query(
      double confidence = stats::kConfidence95) const;

  /// Root Θ. Call only when quiescent (after drain() or stop()).
  [[nodiscard]] const core::ThetaStore& theta() const noexcept {
    return theta_;
  }

  struct TreeMetrics {
    std::uint64_t items_ingested{0};
    std::uint64_t items_at_root{0};
    std::uint64_t intervals_pushed{0};
    std::uint64_t intervals_completed{0};  // by the root
    std::uint64_t messages_dropped{0};     // kDropNewest sheds, all edges
    std::vector<std::uint64_t> items_forwarded_per_layer;
  };
  /// Interval/ingest counters are always consistent (taken under lock);
  /// items_forwarded_per_layer reads the node stages' plain counters, so
  /// like theta() it is exact only when quiescent (after drain()/stop()).
  /// Polling it mid-flight races with the node workers.
  [[nodiscard]] TreeMetrics metrics() const;

  [[nodiscard]] core::EngineKind engine() const noexcept {
    return config_.tree.engine;
  }

  // --- live control plane (§IV-B) ---------------------------------------

  /// The policy store every stage resolves at its interval boundaries.
  /// Non-null when the config carried one or adaptive feedback is on.
  [[nodiscard]] const std::shared_ptr<core::ControlPlane>& control_plane()
      const noexcept {
    return config_.tree.control_plane;
  }
  /// Current policy epoch (0 without a control plane).
  [[nodiscard]] core::PolicyEpoch policy_epoch() const noexcept {
    return config_.tree.control_plane != nullptr
               ? config_.tree.control_plane->epoch()
               : 0;
  }
  /// Publishes a new end-to-end fraction as epoch N+1 (manual feedback —
  /// the adaptive loop does this on its own when enabled). Requires a
  /// control plane. Safe while workers run.
  core::PolicyEpoch publish_fraction(double end_to_end);
  /// The adaptive controller's current end-to-end fraction (the config's
  /// initial fraction until the first observation; requires adaptive
  /// feedback enabled, otherwise returns the frozen config fraction).
  [[nodiscard]] double adaptive_fraction() const;
  /// Fraction trajectory of the adaptive controller (empty when feedback
  /// is disabled). Snapshot by value: the controller lives on the root's
  /// feedback path, so the history may grow concurrently.
  [[nodiscard]] std::vector<double> adaptive_history() const;

  /// kEvents chaos/recovery hook: wakes every node task spuriously (see
  /// JobScheduler::notify_all). Correctness must not depend on wake
  /// precision, so a storm of kicks may change nothing but wasted cycles
  /// — the property the chaos tests hammer on. No-op under kThreads.
  /// Safe while workers run.
  void kick();

  // --- fault injection & recovery ----------------------------------------

  /// Marks node (layer, index) dead. Its worker keeps draining channels
  /// (so the tree never deadlocks under kBlock) but swallows every
  /// interval into lost_weight/lost_items instead of sampling, and
  /// forwards empty interval messages so parents stay aligned. With
  /// `capture` the worker snapshots the stage's state (reservoir, RNG,
  /// weight carry, epoch) at its next interval — the capture revive_node
  /// can restore. Safe while workers run; the root cannot be killed
  /// (kill the whole tree instead). Addressing: layer == layer_widths
  /// indexes the root, same convention as core::EdgeTree.
  void kill_node(std::size_t layer, std::size_t index, bool capture = true);

  /// Brings a killed node back. With `restore` (and a capture available)
  /// the worker restores the captured stage state before its next
  /// interval — continuing the reservoir streak bit-identically; without
  /// it the node restarts cold from its constructed state.
  void revive_node(std::size_t layer, std::size_t index,
                   bool restore = true);

  [[nodiscard]] bool node_dead(std::size_t layer, std::size_t index) const;

  struct FaultMetrics {
    std::uint64_t kills{0};
    std::uint64_t revives{0};
    std::uint64_t lost_items{0};
    double lost_weight{0.0};
  };
  [[nodiscard]] FaultMetrics fault_metrics() const;

  // --- checkpoint / restore ----------------------------------------------

  /// Serializes the full tree state (stages, Θ, control plane, fault
  /// accounting) in the SAME byte layout as core::EdgeTree::checkpoint,
  /// so snapshots are interchangeable between the sequential and
  /// concurrent executions. Call only when quiescent (after drain() with
  /// no concurrent push, or before the first push): a mid-flight snapshot
  /// would tear across layers that are pipelining different intervals.
  [[nodiscard]] core::Checkpoint checkpoint() const;

  /// Restores a kTree checkpoint (from this class or core::EdgeTree) into
  /// this tree. Same quiescence requirement as checkpoint(). Interval
  /// sequence numbers restart at 0 — the channel protocol is private to
  /// one run; only sampling state carries over.
  void restore(const core::Checkpoint& checkpoint);

 private:
  /// Event-mode task state. Only the one worker currently running the
  /// node's task touches it (the JobScheduler's state machine guarantees
  /// a task never runs on two workers at once), so no locks: the hand-off
  /// between successive runs synchronises through the scheduler.
  struct EventState {
    JobScheduler::TaskId task{0};
    /// Interval currently being assembled.
    std::int64_t interval{0};
    /// Next input (child index) to resolve for `interval`. Parking at the
    /// FIRST unready input — instead of taking whatever is ready — is
    /// what keeps Ψ in child order, and therefore every RNG draw
    /// bit-identical to the thread-per-node runtime.
    std::size_t gather_cursor{0};
    /// Ψ gathered so far for `interval`, in child order.
    std::vector<core::ItemBundle> psi;
    /// One buffered message per child that already sent a LATER interval.
    std::vector<std::optional<IntervalMessage>> held;
    std::vector<bool> finished;
    /// Output built but not yet accepted by a full downstream channel
    /// (kBlock only); re-offered on the next writable wake.
    std::optional<IntervalMessage> pending_out;
    bool done{false};
  };

  /// Per-node kill/revive state. The atomics are the cross-thread
  /// surface: kill_node/revive_node (any thread) flip request flags, and
  /// the node's own worker — the only thread ever touching the stage —
  /// acts on them at its next interval boundary. `saved` is written by
  /// the worker (self-capture) and read by the worker (restore), with
  /// `mutex` guarding against a concurrent external checkpoint() reading
  /// it; the dead flag's release/acquire pairing orders the request flags.
  struct FaultState {
    std::atomic<bool> dead{false};
    std::atomic<bool> capture_requested{false};
    std::atomic<bool> restore_requested{false};
    std::mutex mutex;
    std::optional<core::Checkpoint> saved;
  };

  struct NodeRuntime {
    std::unique_ptr<core::PipelineStage> stage;
    std::vector<BoundedChannel<IntervalMessage>*> inputs;
    BoundedChannel<IntervalMessage>* output{nullptr};  // null at the root
    std::size_t layer{0};
    /// unique_ptr so NodeRuntime stays movable (FaultState holds a mutex
    /// and atomics). Allocated for every node at construction.
    std::unique_ptr<FaultState> fault;
    std::unique_ptr<EventState> event;  // kEvents only
    // Per-node observability sinks, resolved once at construction (null /
    // kNoTrack when unbound — the loop hooks then cost one null check,
    // and APPROXIOT_NO_STATS compiles even that away).
    obs::Histogram* exec_us{nullptr};
    obs::Histogram* wait_us{nullptr};
    obs::LinearHistogram* occupancy{nullptr};
    obs::Counter* items_in{nullptr};
    obs::Counter* intervals{nullptr};
    obs::TrackId track{obs::ScopedSpan::kNoTrack};
  };

  void node_loop(NodeRuntime& node);
  /// Event-mode task body: makes every kind of progress possible (flush
  /// parked output, gather, execute, repeat) and returns when blocked;
  /// channel readiness waiters re-queue it via the scheduler.
  void event_pump(NodeRuntime& node);
  /// Runs the node's stage over the assembled Ψ — shared by both modes so
  /// the per-interval semantics (root Θ fold, tap, interval completion,
  /// exec spans) cannot diverge. Root: returns nullopt after folding into
  /// Θ; non-root: returns the message to forward upstream.
  std::optional<IntervalMessage> execute_node_interval(
      NodeRuntime& node, std::int64_t interval,
      const std::vector<core::ItemBundle>& psi);
  /// Builds the scheduler, registers one task per node, wires channel
  /// readiness to task wakes, and starts the workers.
  void start_event_runtime();
  void complete_root_interval(std::int64_t interval);
  /// Registers per-node/per-edge stats and trace tracks; called from the
  /// constructor before any worker starts (registration is not
  /// synchronised against the node loops).
  void bind_observability();
  [[nodiscard]] std::string node_scope(std::size_t layer,
                                       std::size_t index) const;
  /// Timestamp source for spans/latency: tracer-relative when tracing
  /// (span timestamps must share the tracer's epoch), steady-clock
  /// microseconds otherwise. Durations are valid on either.
  [[nodiscard]] std::int64_t obs_now_us() const;
  /// Feeds one observed result into the controller and publishes a new
  /// epoch when the proposed fraction moved. Called from the root worker
  /// (mid-window observations) and from close_window() callers.
  void observe_and_publish(const core::ApproxResult& result);

  [[nodiscard]] NodeRuntime& node_at(std::size_t layer, std::size_t index);
  [[nodiscard]] const NodeRuntime& node_at(std::size_t layer,
                                           std::size_t index) const;
  /// Dead-node interval path: optional self-capture, swallow Ψ into the
  /// lost accounting, count the interval. Runs on the node's own worker.
  void absorb_dead_interval(NodeRuntime& node,
                            const std::vector<core::ItemBundle>& psi);
  /// Chaos driver step; runs on the root worker only (single-threaded in
  /// both runtime modes — complete_root_interval is only ever called from
  /// the root node's task/thread), so its state needs no lock.
  void chaos_step();

  ConcurrentTreeConfig config_;
  MetricsRegistry* metrics_{nullptr};

  /// Resolved observability sinks (config_.stats, or the metrics
  /// registry's obs backend, or null).
  obs::StatsRegistry* stats_{nullptr};
  obs::Tracer* tracer_{nullptr};
  obs::TrackId control_track_{obs::ScopedSpan::kNoTrack};
  obs::Counter* windows_closed_{nullptr};

  /// §IV-B loop state; adaptive_mutex_ serialises the root worker's
  /// mid-window observations against close_window() observations.
  mutable std::mutex adaptive_mutex_;
  std::unique_ptr<core::AdaptiveController> controller_;
  std::size_t intervals_since_observation_{0};

  /// Shared shard-execution substrate for every node's sampling lane.
  /// Declared before nodes_ so it outlives the lanes created from it.
  std::shared_ptr<core::SamplingExecutor> sampling_executor_;

  std::vector<std::unique_ptr<BoundedChannel<IntervalMessage>>> channels_;
  std::vector<BoundedChannel<IntervalMessage>*> leaf_inputs_;
  // nodes_[layer][index]; the root is the single node of the last layer.
  std::vector<std::vector<NodeRuntime>> nodes_;

  core::ThetaStore theta_;
  mutable std::mutex theta_mutex_;

  /// Serialises whole push_interval calls: interval seqs must reach the
  /// leaf channels in assignment order or receivers would mistake a
  /// reordered interval for a dropped one. Separate from state_mutex_ so
  /// a producer blocked on a full leaf channel does not stall the root's
  /// completion bookkeeping.
  std::mutex push_mutex_;
  mutable std::mutex state_mutex_;
  std::condition_variable drained_cv_;
  std::int64_t next_interval_{0};
  std::uint64_t items_ingested_{0};
  std::uint64_t items_at_root_{0};
  std::uint64_t intervals_completed_{0};
  std::map<std::int64_t, std::int64_t> push_times_us_;
  bool stopped_{false};
  /// Fault accounting, guarded by state_mutex_ (written by whichever
  /// worker owns a dead node's interval, read by close_window/run_query).
  double lost_weight_{0.0};
  std::uint64_t lost_items_{0};
  bool window_degraded_{false};
  /// Cumulative across windows (fault_metrics); the per-window pair above
  /// resets at close_window like EdgeTree's.
  double total_lost_weight_{0.0};
  std::uint64_t total_lost_items_{0};
  std::uint64_t kills_{0};
  std::uint64_t revives_{0};
  /// Chaos driver state; root-worker-only (see chaos_step).
  Rng chaos_rng_{0};
  std::size_t chaos_since_kill_{0};
  /// (layer, index, revive-at-completed-interval-count) per dead victim.
  std::vector<std::tuple<std::size_t, std::size_t, std::uint64_t>>
      chaos_pending_;
  /// kEvents: the root task observed end-of-stream (all closes cascaded
  /// through); guarded by state_mutex_, signalled on drained_cv_.
  bool root_finished_{false};

  // Last members: one of these is the execution substrate, and its
  // destructor joins every worker before channels/stages die.
  std::unique_ptr<ThreadPool> pool_;          // kThreads
  std::unique_ptr<JobScheduler> scheduler_;   // kEvents
};

}  // namespace approxiot::runtime
