#include "core/weight_map.hpp"

namespace approxiot::core {

std::ostream& operator<<(std::ostream& os, const WeightMap& m) {
  os << "{";
  bool first = true;
  for (const auto& [id, w] : m.weights_) {
    if (!first) os << ", ";
    os << "S" << id << ": " << w;
    first = false;
  }
  return os << "}";
}

}  // namespace approxiot::core
