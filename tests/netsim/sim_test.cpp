#include "netsim/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace approxiot::netsim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_millis(30), [&]() { order.push_back(3); });
  sim.schedule_at(SimTime::from_millis(10), [&]() { order.push_back(1); });
  sim.schedule_at(SimTime::from_millis(20), [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::from_millis(30));
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime::from_millis(10), [&order, i]() {
      order.push_back(i);
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired{};
  sim.schedule_at(SimTime::from_millis(100), [&]() {
    sim.schedule_after(SimTime::from_millis(50),
                       [&]() { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime::from_millis(150));
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(SimTime::from_millis(100), [&]() {
    // Scheduling in the past is clamped, not time-travel.
    sim.schedule_at(SimTime::from_millis(1), [&]() {
      EXPECT_GE(sim.now(), SimTime::from_millis(100));
    });
  });
  sim.run();
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::from_millis(10), [&]() { ++fired; });
  sim.schedule_at(SimTime::from_millis(20), [&]() { ++fired; });
  sim.schedule_at(SimTime::from_millis(30), [&]() { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime::from_millis(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::from_millis(20));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(SimTime::from_seconds(5.0)), 0u);
  EXPECT_EQ(sim.now(), SimTime::from_seconds(5.0));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&]() {
    if (++chain < 10) {
      sim.schedule_after(SimTime::from_millis(1), step);
    }
  };
  sim.schedule_at(SimTime::zero(), step);
  sim.run();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(sim.executed(), 10u);
}

TEST(SimulatorTest, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::from_millis(10), [&]() { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace approxiot::netsim
