// Wire format: (weight map, items) bundles <-> flowqueue record payloads.
//
// Layout (all varint/fixed little-endian via flowqueue::serde):
//   magic byte 0xA7, version byte (0x01 or 0x02)
//   [v2 only] varint policy_epoch — the control-plane epoch (§IV-B) the
//             producing node resolved for the interval; v1 payloads imply
//             epoch 0. Encoders emit v1 whenever the epoch is 0, so a
//             runtime without a live policy produces byte-identical
//             payloads to the pre-control-plane format.
//   varint  n_weights; n_weights × { varint sub_stream_id, double weight }
//   varint  n_items;   n_items   × { varint sub_stream_id, double value,
//                                    fixed64 created_at_us }
//
// The metadata really does travel with the data — the paper forwards
// "sampled sub-streams associated with a small amount of metadata"
// (§III-B) — so bandwidth accounting in the benches charges for it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "core/batch.hpp"

namespace approxiot::core {

/// Serialises a bundle into a payload for flowqueue.
[[nodiscard]] std::vector<std::uint8_t> encode_bundle(const ItemBundle& bundle);

/// Serialises a sampled bundle directly from its flat sample arena —
/// byte-identical to flattening into an ItemBundle first, without the
/// intermediate copy.
[[nodiscard]] std::vector<std::uint8_t> encode_bundle(
    const SampledBundle& bundle);

/// Parses a payload back into a bundle; rejects bad magic/version and
/// truncated input.
[[nodiscard]] Result<ItemBundle> decode_bundle(
    const std::vector<std::uint8_t>& payload);

}  // namespace approxiot::core
