// Kafka-style pipeline: the paper's Fig. 4 architecture end to end —
// sources publish to a flowqueue topic, an edge-layer topology driver
// runs the sampling processor and forwards to the next topic, a
// datacenter driver samples again, and the root Θ answers the query with
// error bounds. This is the deployment shape of the original prototype
// (Kafka + Kafka Streams), reproduced on the in-process substrates.
//
// Run: ./build/examples/kafka_style_pipeline [seconds=3]
#include <cstdio>
#include <memory>

#include "common/config.hpp"
#include "core/error.hpp"
#include "core/wire.hpp"
#include "flowqueue/broker.hpp"
#include "flowqueue/producer.hpp"
#include "streams/driver.hpp"
#include "streams/sampling_processor.hpp"
#include "workload/generators.hpp"
#include "workload/ground_truth.hpp"

using namespace approxiot;

namespace {

core::NodeConfig fraction_node(double fraction) {
  core::NodeConfig config;
  config.cost_function = "fraction";
  config.budget.sampling_fraction = fraction;
  config.interval = SimTime::from_seconds(1.0);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  auto config = Config::from_args({argv + 1, argv + argc});
  if (!config) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const auto seconds =
      static_cast<int>(config.value().get_int_or("seconds", 3));

  flowqueue::Broker broker;
  for (const char* topic : {"sources", "layer1", "root"}) {
    if (Status s = broker.create_topic(topic, 1); !s.is_ok()) {
      std::fprintf(stderr, "create_topic: %s\n", s.to_string().c_str());
      return 1;
    }
  }

  // Edge layer: 35% per-layer fraction.
  streams::TopologyBuilder edge_builder;
  edge_builder.add_source("in", "sources")
      .add_processor("edge-sampler",
                     []() {
                       return std::make_unique<streams::SamplingProcessor>(
                           fraction_node(0.35));
                     },
                     {"in"})
      .add_sink("out", "layer1", {"edge-sampler"});
  auto edge_topo = edge_builder.build();
  if (!edge_topo) {
    std::fprintf(stderr, "%s\n", edge_topo.status().to_string().c_str());
    return 1;
  }

  // Datacenter layer: samples again before the query.
  streams::TopologyBuilder dc_builder;
  dc_builder.add_source("in", "layer1")
      .add_processor("dc-sampler",
                     []() {
                       return std::make_unique<streams::SamplingProcessor>(
                           fraction_node(0.35));
                     },
                     {"in"})
      .add_sink("out", "root", {"dc-sampler"});
  auto dc_topo = dc_builder.build();
  if (!dc_topo) {
    std::fprintf(stderr, "%s\n", dc_topo.status().to_string().c_str());
    return 1;
  }

  streams::TopologyDriver edge(broker, std::move(edge_topo).value(), "edge");
  streams::TopologyDriver dc(broker, std::move(dc_topo).value(), "dc");
  if (!edge.start().is_ok() || !dc.start().is_ok()) return 1;

  // Publish the Gaussian microbenchmark mix, 10 ticks per second.
  workload::StreamGenerator gen(workload::gaussian_quad(5000.0), 55);
  workload::GroundTruth truth;
  flowqueue::Producer producer(broker);
  SimTime now = SimTime::from_millis(1);
  for (int tick = 0; tick < seconds * 10; ++tick) {
    auto items = gen.tick(now, SimTime::from_millis(100));
    truth.add_all(items);
    core::ItemBundle bundle;
    bundle.items = std::move(items);
    (void)producer.send("sources", "gen", core::encode_bundle(bundle), now);
    now = now + SimTime::from_millis(100);

    // Pump both layers after each tick, like the poll loops of the
    // original prototype's stream tasks.
    (void)edge.run_until_idle();
    (void)dc.run_until_idle();
  }
  (void)edge.stop();          // flushes the edge's open interval to layer1
  (void)dc.run_until_idle();  // drain that flush before closing the dc
  (void)dc.stop();

  // Drain the root topic into Θ and answer the query.
  core::ThetaStore theta;
  std::vector<flowqueue::Record> records;
  auto root_topic = broker.topic("root");
  if (!root_topic) return 1;
  root_topic.value()->partition(0).read(0, 1 << 20, records);
  for (const auto& record : records) {
    auto bundle = core::decode_bundle(record.value);
    if (!bundle) continue;
    core::SampledBundle sampled;
    sampled.w_out = bundle.value().w_in;
    for (const Item& item : bundle.value().items) {
      sampled.sample[item.source].push_back(item);
    }
    theta.add(sampled);
  }

  const core::ApproxResult result = core::approximate_query(theta);
  std::printf("kafka-style pipeline over %d s of stream\n", seconds);
  std::printf("  items generated : %llu\n",
              static_cast<unsigned long long>(truth.total_count()));
  std::printf("  items at root   : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(theta.total_sampled()),
              100.0 * static_cast<double>(theta.total_sampled()) /
                  static_cast<double>(truth.total_count()));
  std::printf("  SUM estimate    : %.0f ± %.0f\n", result.sum.point,
              result.sum.margin);
  std::printf("  SUM exact       : %.0f\n", truth.total_sum());
  std::printf("  accuracy loss   : %.4f%%\n",
              workload::accuracy_loss_percent(result.sum.point,
                                              truth.total_sum()));
  return 0;
}
