#include "core/wire.hpp"

#include "core/kernels/kernels.hpp"
#include "flowqueue/serde.hpp"

namespace approxiot::core {

namespace {
constexpr std::uint8_t kMagic = 0xA7;
constexpr std::uint8_t kVersion = 0x01;
/// v2 == v1 plus a varint policy epoch between the version byte and the
/// weights. Encoders emit v1 whenever the epoch is 0 so payloads from a
/// runtime that never publishes a policy stay byte-identical to the
/// pre-control-plane format; decoders accept both.
constexpr std::uint8_t kVersionEpoch = 0x02;
}  // namespace

namespace {

void encode_header(flowqueue::Encoder& enc, std::uint64_t policy_epoch) {
  enc.put_varint(kMagic);
  if (policy_epoch == 0) {
    enc.put_varint(kVersion);
  } else {
    enc.put_varint(kVersionEpoch);
    enc.put_varint(policy_epoch);
  }
}

void encode_weights(flowqueue::Encoder& enc, const WeightMap& weights) {
  enc.put_varint(weights.size());
  for (const auto& [id, weight] : weights) {
    enc.put_varint(id.value());
    enc.put_double(weight);
  }
}

void encode_items(flowqueue::Encoder& enc, const Item* items, std::size_t n) {
  enc.put_varint(n);
  // Block path: one buffer reservation and raw cursor writes for the
  // whole item array instead of a bounds-checked push_back per byte.
  // The bytes are identical to the per-field loop below (the kernels
  // test pins this); the scalar tier keeps the loop as the oracle.
  const kernels::Tier tier = kernels::active_tier();
  if (tier != kernels::Tier::kScalar && n > 0) {
    std::uint8_t* out = enc.reserve_tail(n * kernels::kMaxItemWireBytes);
    enc.commit_tail(kernels::encode_items(tier, out, items, n));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    enc.put_varint(items[i].source.value());
    enc.put_double(items[i].value);
    enc.put_fixed64(static_cast<std::uint64_t>(items[i].created_at_us));
  }
}

}  // namespace

std::vector<std::uint8_t> encode_bundle(const ItemBundle& bundle) {
  flowqueue::Encoder enc;
  encode_header(enc, bundle.policy_epoch);
  encode_weights(enc, bundle.w_in);
  encode_items(enc, bundle.items.data(), bundle.items.size());
  return enc.take();
}

std::vector<std::uint8_t> encode_bundle(const SampledBundle& bundle) {
  // Serialise straight from the flat sample: the arena already holds the
  // items in stratum order (identical bytes to flattening first), so the
  // old to_bundle() round trip — one full copy of every item and weight —
  // is gone.
  flowqueue::Encoder enc;
  encode_header(enc, bundle.policy_epoch);
  encode_weights(enc, bundle.w_out);
  encode_items(enc, bundle.sample.items().data(), bundle.sample.item_count());
  return enc.take();
}

Result<ItemBundle> decode_bundle(const std::vector<std::uint8_t>& payload) {
  flowqueue::Decoder dec(payload);

  auto magic = dec.get_varint();
  if (!magic) return magic.status();
  if (magic.value() != kMagic) {
    return Status::invalid_argument("bad magic byte in bundle payload");
  }
  auto version = dec.get_varint();
  if (!version) return version.status();
  if (version.value() != kVersion && version.value() != kVersionEpoch) {
    return Status::invalid_argument("unsupported bundle version " +
                                    std::to_string(version.value()));
  }

  ItemBundle bundle;

  if (version.value() == kVersionEpoch) {
    auto epoch = dec.get_varint();
    if (!epoch) return epoch.status();
    bundle.policy_epoch = epoch.value();
  }

  auto n_weights = dec.get_varint();
  if (!n_weights) return n_weights.status();
  for (std::uint64_t i = 0; i < n_weights.value(); ++i) {
    auto id = dec.get_varint();
    if (!id) return id.status();
    auto weight = dec.get_double();
    if (!weight) return weight.status();
    bundle.w_in.set(SubStreamId{id.value()}, weight.value());
  }

  auto n_items = dec.get_varint();
  if (!n_items) return n_items.status();
  bundle.items.reserve(static_cast<std::size_t>(n_items.value()));
  for (std::uint64_t i = 0; i < n_items.value(); ++i) {
    auto id = dec.get_varint();
    if (!id) return id.status();
    auto value = dec.get_double();
    if (!value) return value.status();
    auto ts = dec.get_fixed64();
    if (!ts) return ts.status();
    Item item;
    item.source = SubStreamId{id.value()};
    item.value = value.value();
    item.created_at_us = static_cast<std::int64_t>(ts.value());
    bundle.items.push_back(item);
  }

  if (!dec.exhausted()) {
    return Status::invalid_argument("trailing bytes after bundle payload");
  }
  return bundle;
}

}  // namespace approxiot::core
