#include "streams/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace approxiot::streams {
namespace {

class NoopProcessor final : public Processor {
 public:
  void init(ProcessorContext&) override {}
  void process(const flowqueue::Record&) override {}
};

std::function<std::unique_ptr<Processor>()> noop_factory() {
  return []() { return std::make_unique<NoopProcessor>(); };
}

TEST(TopologyBuilderTest, BuildsLinearPipeline) {
  TopologyBuilder builder;
  builder.add_source("src", "in")
      .add_processor("samp", noop_factory(), {"src"})
      .add_sink("out", "downstream", {"samp"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());
  EXPECT_EQ(topo.value().nodes().size(), 3u);
  EXPECT_EQ(topo.value().sources(), std::vector<std::string>{"src"});
  EXPECT_EQ(topo.value().sinks(), std::vector<std::string>{"out"});
  EXPECT_EQ(topo.value().nodes().at("src").children,
            std::vector<std::string>{"samp"});
}

TEST(TopologyBuilderTest, TopologicalOrderRespectsEdges) {
  TopologyBuilder builder;
  builder.add_source("s", "t")
      .add_processor("a", noop_factory(), {"s"})
      .add_processor("b", noop_factory(), {"a"})
      .add_processor("c", noop_factory(), {"a"})
      .add_sink("k", "o", {"b", "c"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());
  const auto& order = topo.value().order();
  auto pos = [&](const std::string& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("s"), pos("a"));
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("a"), pos("c"));
  EXPECT_LT(pos("b"), pos("k"));
}

TEST(TopologyBuilderTest, RejectsDuplicateNames) {
  TopologyBuilder builder;
  builder.add_source("x", "t").add_source("x", "t2");
  EXPECT_EQ(builder.build().status().code(), StatusCode::kAlreadyExists);
}

TEST(TopologyBuilderTest, RejectsEmptyName) {
  TopologyBuilder builder;
  builder.add_source("", "t");
  EXPECT_FALSE(builder.build().is_ok());
}

TEST(TopologyBuilderTest, RejectsSourceWithoutTopic) {
  TopologyBuilder builder;
  builder.add_source("s", "");
  EXPECT_FALSE(builder.build().is_ok());
}

TEST(TopologyBuilderTest, RejectsProcessorWithoutParents) {
  TopologyBuilder builder;
  builder.add_processor("p", noop_factory(), {});
  EXPECT_FALSE(builder.build().is_ok());
}

TEST(TopologyBuilderTest, RejectsProcessorWithoutFactory) {
  TopologyBuilder builder;
  builder.add_source("s", "t").add_processor("p", nullptr, {"s"});
  EXPECT_FALSE(builder.build().is_ok());
}

TEST(TopologyBuilderTest, RejectsUnknownParent) {
  TopologyBuilder builder;
  builder.add_source("s", "t").add_processor("p", noop_factory(), {"ghost"});
  EXPECT_EQ(builder.build().status().code(), StatusCode::kNotFound);
}

TEST(TopologyBuilderTest, RejectsSinkAsParent) {
  TopologyBuilder builder;
  builder.add_source("s", "t")
      .add_sink("k", "o", {"s"})
      .add_processor("p", noop_factory(), {"k"});
  EXPECT_FALSE(builder.build().is_ok());
}

TEST(TopologyBuilderTest, RejectsSourceWithParents) {
  // Sources are roots by definition; the builder API cannot even express
  // a source with parents, so this guards the validation of cycles among
  // processors instead.
  TopologyBuilder builder;
  builder.add_source("s", "t")
      .add_processor("a", noop_factory(), {"s", "b"})
      .add_processor("b", noop_factory(), {"a"});
  auto topo = builder.build();
  ASSERT_FALSE(topo.is_ok());
  EXPECT_NE(topo.status().message().find("cycle"), std::string::npos);
}

}  // namespace
}  // namespace approxiot::streams
