#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace approxiot::core {
namespace {

TEST(AdaptiveControllerTest, ValidatesConfig) {
  AdaptiveConfig bad_target;
  bad_target.target_relative_error = 0.0;
  EXPECT_THROW(AdaptiveController(0.5, bad_target), std::invalid_argument);

  AdaptiveConfig bad_range;
  bad_range.min_fraction = 0.5;
  bad_range.max_fraction = 0.1;
  EXPECT_THROW(AdaptiveController(0.5, bad_range), std::invalid_argument);
}

TEST(AdaptiveControllerTest, ClampsInitialFraction) {
  AdaptiveConfig config;
  config.min_fraction = 0.1;
  config.max_fraction = 0.9;
  EXPECT_DOUBLE_EQ(AdaptiveController(5.0, config).fraction(), 0.9);
  EXPECT_DOUBLE_EQ(AdaptiveController(0.0001, config).fraction(), 0.1);
}

TEST(AdaptiveControllerTest, ErrorAboveTargetRaisesFraction) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  AdaptiveController controller(0.2, config);
  const double next = controller.observe_relative_error(0.04);
  EXPECT_GT(next, 0.2);
}

TEST(AdaptiveControllerTest, ErrorBelowTargetLowersFraction) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  AdaptiveController controller(0.8, config);
  const double next = controller.observe_relative_error(0.001);
  EXPECT_LT(next, 0.8);
}

TEST(AdaptiveControllerTest, HysteresisBandHolds) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.tolerance = 0.2;
  AdaptiveController controller(0.5, config);
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(0.0101), 0.5);
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(0.0095), 0.5);
}

TEST(AdaptiveControllerTest, StepIsBounded) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.max_step = 2.0;
  AdaptiveController controller(0.1, config);
  // Huge error: still at most doubles.
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(10.0), 0.2);
  // Tiny error: at most halves.
  AdaptiveController down(0.8, config);
  EXPECT_DOUBLE_EQ(down.observe_relative_error(1e-9), 0.4);
}

TEST(AdaptiveControllerTest, FractionStaysInRange) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.min_fraction = 0.05;
  config.max_fraction = 0.9;
  AdaptiveController controller(0.5, config);
  for (int i = 0; i < 20; ++i) controller.observe_relative_error(100.0);
  EXPECT_DOUBLE_EQ(controller.fraction(), 0.9);
  for (int i = 0; i < 40; ++i) controller.observe_relative_error(1e-12);
  EXPECT_DOUBLE_EQ(controller.fraction(), 0.05);
}

TEST(AdaptiveControllerTest, NonFiniteErrorTakesMaxStepUp) {
  AdaptiveConfig config;
  config.max_step = 2.0;
  AdaptiveController controller(0.25, config);
  const double next = controller.observe_relative_error(
      std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(next, 0.5);
}

TEST(AdaptiveControllerTest, HistoryRecordsTrajectory) {
  AdaptiveController controller(0.5);
  controller.observe_relative_error(1.0);
  controller.observe_relative_error(1.0);
  EXPECT_EQ(controller.history().size(), 3u);  // initial + 2 observations
  EXPECT_DOUBLE_EQ(controller.history()[0], 0.5);
}

TEST(AdaptiveControllerTest, ObserveFromInterval) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  AdaptiveController controller(0.3, config);
  stats::ConfidenceInterval noisy{100.0, 10.0, 0.95};  // 10% rel error
  EXPECT_GT(controller.observe(noisy), 0.3);
}

// --- edge cases ---------------------------------------------------------

TEST(AdaptiveControllerEdgeTest, ZeroEstimateMeansInfiniteRelativeError) {
  // A window whose point estimate is 0 has relative_margin() == inf; the
  // controller must treat it like a degenerate interval (max step up),
  // not feed inf into pow() and produce NaN.
  AdaptiveConfig config;
  config.max_step = 2.0;
  AdaptiveController controller(0.25, config);
  stats::ConfidenceInterval degenerate{0.0, 5.0, 0.95};
  EXPECT_DOUBLE_EQ(controller.observe(degenerate), 0.5);
  EXPECT_TRUE(std::isfinite(controller.fraction()));
}

TEST(AdaptiveControllerEdgeTest, NearZeroEstimateStaysFiniteAndClamped) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.max_step = 4.0;
  config.max_fraction = 0.8;
  AdaptiveController controller(0.5, config);
  // margin/|point| astronomically large but finite: the step is clamped
  // to max_step, then the fraction to max_fraction.
  stats::ConfidenceInterval huge{1e-300, 1.0, 0.95};
  EXPECT_DOUBLE_EQ(controller.observe(huge), 0.8);
}

TEST(AdaptiveControllerEdgeTest, ClampPinsAtMinFraction) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.min_fraction = 0.2;
  AdaptiveController controller(0.2, config);
  // Already at the floor; a tiny error cannot push below it.
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(1e-6), 0.2);
  EXPECT_DOUBLE_EQ(controller.fraction(), 0.2);
}

TEST(AdaptiveControllerEdgeTest, ClampPinsAtMaxFraction) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.max_fraction = 0.6;
  AdaptiveController controller(0.6, config);
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(50.0), 0.6);
}

TEST(AdaptiveControllerEdgeTest, HysteresisBandEdgesHold) {
  // target == 1 so ratio == error exactly, keeping the band-edge
  // comparisons free of division rounding.
  AdaptiveConfig config;
  config.target_relative_error = 1.0;
  config.tolerance = 0.1;
  AdaptiveController controller(0.5, config);
  // Exactly on the band edges (ratio 1 ± tolerance): still "close
  // enough" — the band is closed, not open.
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(1.0 - 0.1), 0.5);
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(1.0 + 0.1), 0.5);
  // Just outside: adjusts.
  EXPECT_NE(controller.observe_relative_error(1.2), 0.5);
}

TEST(AdaptiveControllerEdgeTest, MaxStepLimitsBothDirections) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.max_step = 1.5;
  AdaptiveController up(0.2, config);
  EXPECT_DOUBLE_EQ(up.observe_relative_error(1000.0), 0.2 * 1.5);
  AdaptiveController down(0.9, config);
  EXPECT_DOUBLE_EQ(down.observe_relative_error(1e-12), 0.9 / 1.5);
}

// --- bounded history ----------------------------------------------------

TEST(AdaptiveControllerHistoryTest, HistoryIsBoundedByConfiguredCap) {
  AdaptiveConfig config;
  config.history_limit = 8;
  AdaptiveController controller(0.5, config);
  for (int i = 0; i < 100; ++i) controller.observe_relative_error(100.0);
  EXPECT_EQ(controller.history().size(), 8u);
  EXPECT_EQ(controller.observations(), 100u);
  // The kept entries are the most recent ones (the fraction saturates at
  // max, so every survivor equals the final fraction).
  for (double f : controller.history()) {
    EXPECT_DOUBLE_EQ(f, controller.fraction());
  }
}

TEST(AdaptiveControllerHistoryTest, RejectsZeroCap) {
  AdaptiveConfig config;
  config.history_limit = 0;
  EXPECT_THROW(AdaptiveController(0.5, config), std::invalid_argument);
}

TEST(AdaptiveControllerHistoryTest, CapOneKeepsOnlyLatest) {
  AdaptiveConfig config;
  config.history_limit = 1;
  AdaptiveController controller(0.5, config);
  controller.observe_relative_error(100.0);
  ASSERT_EQ(controller.history().size(), 1u);
  EXPECT_DOUBLE_EQ(controller.history()[0], controller.fraction());
}

// Simulated closed loop: relative error ~ k/sqrt(fraction); the
// controller should settle near the fraction solving k/sqrt(f) = target.
TEST(AdaptiveControllerTest, ClosedLoopConverges) {
  AdaptiveConfig config;
  config.target_relative_error = 0.02;
  config.tolerance = 0.05;
  AdaptiveController controller(0.9, config);
  const double k = 0.004;  // error at fraction 1 is 0.4%
  for (int i = 0; i < 60; ++i) {
    const double error = k / std::sqrt(controller.fraction());
    controller.observe_relative_error(error);
  }
  const double expected = (k / 0.02) * (k / 0.02);  // f* = (k/target)^2
  EXPECT_NEAR(controller.fraction(), expected, expected * 0.35);
}

}  // namespace
}  // namespace approxiot::core
