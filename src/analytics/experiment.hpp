// Shared accuracy-experiment harness.
//
// Every accuracy figure in the paper (Figs. 5, 10, 11a) follows the same
// recipe: stream a workload through an edge tree at some sampling
// fraction, close query windows, and report accuracy loss against the
// exact (native) answer. run_accuracy_experiment() implements that recipe
// once; the per-figure bench binaries only vary the workload and the
// parameter sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "core/pipeline.hpp"
#include "workload/ground_truth.hpp"

namespace approxiot::analytics {

/// Produces the items arriving in [now, now+dt) (adapts StreamGenerator,
/// TaxiGenerator, PollutionGenerator, ...).
using TickSource = std::function<std::vector<Item>(SimTime now, SimTime dt)>;

struct AccuracyExperimentConfig {
  core::EdgeTreeConfig tree{};
  std::size_t windows{10};
  std::size_t ticks_per_window{10};
  SimTime tick{SimTime::from_millis(100)};
};

struct AccuracyResult {
  // Accuracy loss (percent, the paper's unit) of the windowed SUM query.
  double mean_sum_loss_pct{0.0};
  double max_sum_loss_pct{0.0};
  // Accuracy loss of the windowed MEAN query.
  double mean_mean_loss_pct{0.0};
  // Mean relative error bound the system *reported* (margin/|point|).
  double mean_reported_rel_error{0.0};
  // Fraction of windows whose reported interval covered the exact sum.
  double sum_coverage{0.0};
  // Volume accounting.
  std::uint64_t items_total{0};
  std::uint64_t items_sampled{0};
  std::size_t windows_measured{0};

  [[nodiscard]] double effective_fraction() const noexcept {
    return items_total > 0 ? static_cast<double>(items_sampled) /
                                 static_cast<double>(items_total)
                           : 0.0;
  }
};

/// Streams `source` through a fresh EdgeTree built from `config.tree`,
/// closing one query window every `ticks_per_window` ticks, and compares
/// against exact per-window ground truth.
[[nodiscard]] AccuracyResult run_accuracy_experiment(
    const AccuracyExperimentConfig& config, const TickSource& source);

}  // namespace approxiot::analytics
