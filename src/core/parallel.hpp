// Distributed execution within a node (§III-E) — convenience front-end.
//
// The shard/offer/merge protocol itself (SubStreamWorker, WorkerGroup)
// and the execution substrate live in core/executor.hpp; this header
// keeps the standalone ParallelSampler used by the ablation bench and
// the §III-E unit tests. It owns a private PooledSamplingExecutor, so
// its worker threads are created once at construction and reused every
// call — no thread spawn/join on the sampling hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/executor.hpp"

namespace approxiot::core {

/// Multi-worker WHSamp over one interval: stratifies items, shards each
/// sub-stream's reservoir across `threads` persistent workers with zero
/// cross-thread coordination, then merges under the Eq. 8 weight rule.
/// Semantics match WHSampler::sample with equal allocation; at 1 worker
/// the output is bit-identical to it.
class ParallelSampler {
 public:
  ParallelSampler(std::size_t threads, Rng rng);

  [[nodiscard]] SampledBundle sample(const std::vector<Item>& items,
                                     std::size_t sample_size,
                                     const WeightMap& w_in);

  [[nodiscard]] std::size_t threads() const noexcept {
    return executor_->workers_per_lane();
  }

 private:
  std::shared_ptr<SamplingExecutor> executor_;
  std::unique_ptr<SamplingLane> lane_;
};

}  // namespace approxiot::core
