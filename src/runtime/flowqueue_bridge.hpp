// Bridges between the flowqueue (Kafka-style) pipeline and the concurrent
// runtime, so the two transports compose instead of competing:
//
//   FlowQueueSource — consumes wire-encoded bundles from a topic, groups
//   them into intervals by record timestamp, and feeds them to a
//   ConcurrentEdgeTree as if they came from local sensors. Items are
//   sharded over the leaves by sub-stream id, the same sharding the
//   sequential drivers use.
//
//   FlowQueueSink — publishes the root's sampled output bundles back into
//   a topic (hook it up via ConcurrentTreeConfig::root_tap), closing the
//   loop for downstream analytics consumers.
//
// Both report through the MetricsRegistry (records bridged, bytes,
// decode errors, bundles published).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "flowqueue/broker.hpp"
#include "flowqueue/consumer.hpp"
#include "flowqueue/producer.hpp"
#include "runtime/concurrent_tree.hpp"
#include "runtime/metrics.hpp"

namespace approxiot::runtime {

struct FlowQueueSourceConfig {
  std::string topic;
  std::string group{"runtime-bridge"};
  /// Interval length used to bucket record timestamps into tree ticks.
  SimTime interval{SimTime::from_seconds(1.0)};
  std::size_t poll_batch{512};
  /// Safety valve: when more than this many intervals are buffered (the
  /// topic never goes idle), the oldest are force-flushed. Records for a
  /// force-flushed interval that arrive later are counted as late and
  /// discarded, so size this above the consumer's worst poll lag.
  std::size_t max_buffered_intervals{1024};
  /// Sanity bound on quiet gaps: at most this many *empty* ticks are
  /// pushed per flush; a larger gap (e.g. one corrupt far-future
  /// timestamp) is skipped and counted instead of flooding the tree
  /// with empty intervals for hours.
  std::size_t max_gap_intervals{1000};
};

class FlowQueueSource {
 public:
  FlowQueueSource(flowqueue::Broker& broker, ConcurrentEdgeTree& tree,
                  FlowQueueSourceConfig config,
                  MetricsRegistry* metrics = nullptr);

  /// Joins the consumer group; call once before pumping.
  Status start();

  /// Polls until the topic is drained. Completed intervals flush as soon
  /// as every assigned partition is provably read past them: either the
  /// consumer's per-partition watermarks show all partitions caught up
  /// to their end offsets (the mid-stream path — essential on
  /// continuously hot topics that never poll empty), or a poll comes
  /// back empty. A timestamp-only watermark would not be safe here (poll
  /// round-robins partitions, so a mid-stream timestamp could outrun a
  /// lagging partition and lose its records); the offset check is.
  /// Returns the number of intervals pushed. Call flush() afterwards to
  /// release the trailing interval.
  Result<std::size_t> run_until_idle(std::size_t max_cycles = 1'000'000);

  /// Pushes everything still buffered (including gaps, as empty
  /// intervals, so window alignment survives quiet periods).
  std::size_t flush();

  [[nodiscard]] std::uint64_t records_bridged() const noexcept {
    return records_bridged_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const noexcept {
    return decode_errors_;
  }
  /// Records discarded because their interval was already flushed (only
  /// possible after a max_buffered_intervals force-flush).
  [[nodiscard]] std::uint64_t late_records() const noexcept {
    return late_records_;
  }
  /// Empty gap ticks elided by the max_gap_intervals bound.
  [[nodiscard]] std::uint64_t gap_intervals_skipped() const noexcept {
    return gap_intervals_skipped_;
  }
  /// Intervals flushed mid-stream because the consumer's per-partition
  /// watermarks showed every partition read to its end (no idle poll
  /// needed — the hot-topic path).
  [[nodiscard]] std::uint64_t watermark_flushes() const noexcept {
    return watermark_flushes_;
  }

  /// Serializes the replay cursor: per-partition consumer offsets, the
  /// interval counters, and the tree's control-plane epoch + budget. Call
  /// after flush() — a non-empty interval buffer throws, because those
  /// records sit behind already-advanced offsets and a restore would skip
  /// them silently.
  [[nodiscard]] core::Checkpoint checkpoint() const;

  /// Resumes from a checkpoint() snapshot: seeks every partition back to
  /// its recorded offset and re-installs the policy epoch on the tree's
  /// control plane (so replayed output carries the same epoch stamps).
  /// Call after start(). Re-polled records whose interval is below the
  /// restored cursor are counted as late_records and dropped — the
  /// mechanism that makes replay double-count-free even when offsets are
  /// rewound conservatively.
  void restore(const core::Checkpoint& checkpoint);

 private:
  std::size_t flush_through(std::int64_t last_interval);

  ConcurrentEdgeTree* tree_;
  FlowQueueSourceConfig config_;
  MetricsRegistry* metrics_{nullptr};
  flowqueue::Consumer consumer_;
  IntervalClock clock_;

  /// interval seq -> per-leaf item buffers.
  std::map<std::int64_t, std::vector<std::vector<Item>>> buffered_;
  std::int64_t next_interval_{0};
  std::int64_t max_seen_interval_{-1};
  std::uint64_t records_bridged_{0};
  std::uint64_t decode_errors_{0};
  std::uint64_t late_records_{0};
  std::uint64_t gap_intervals_skipped_{0};
  std::uint64_t watermark_flushes_{0};
};

class FlowQueueSink {
 public:
  /// Publishes to `topic` (created with one partition if absent).
  FlowQueueSink(flowqueue::Broker& broker, std::string topic,
                MetricsRegistry* metrics = nullptr);

  /// Thread-safe: callable from the runtime's root worker.
  void publish(const core::SampledBundle& bundle);

  /// Adapter for ConcurrentTreeConfig::root_tap.
  [[nodiscard]] std::function<void(const core::SampledBundle&)> as_root_tap();

  [[nodiscard]] std::uint64_t bundles_published() const noexcept {
    return bundles_published_;
  }
  [[nodiscard]] std::uint64_t publish_errors() const noexcept {
    return publish_errors_;
  }

 private:
  flowqueue::Producer producer_;
  std::string topic_;
  MetricsRegistry* metrics_{nullptr};
  std::mutex mutex_;
  std::uint64_t bundles_published_{0};
  std::uint64_t publish_errors_{0};
};

}  // namespace approxiot::runtime
