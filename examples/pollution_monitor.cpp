// Pollution monitor: the paper's §VI-B case study — "what is the total
// pollution value of PM, CO, SO2 and NO2 in every time window?" — on the
// synthetic Brasov-style sensor workload, reporting per-pollutant totals
// with error bounds at all three of the paper's confidence levels.
//
// Run: ./build/examples/pollution_monitor [fraction=0.2] [windows=5]
#include <cstdio>

#include "analytics/executor.hpp"
#include "common/config.hpp"
#include "core/pipeline.hpp"
#include "stats/normal.hpp"
#include "workload/ground_truth.hpp"
#include "workload/pollution.hpp"
#include "workload/substream.hpp"

using namespace approxiot;

int main(int argc, char** argv) {
  auto config = Config::from_args({argv + 1, argv + argc});
  if (!config) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const double fraction = config.value().get_double_or("fraction", 0.20);
  const auto windows =
      static_cast<std::size_t>(config.value().get_int_or("windows", 5));

  core::EdgeTreeConfig tree_config;
  tree_config.engine = core::EngineKind::kApproxIoT;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = fraction;
  core::EdgeTree tree(tree_config);

  workload::PollutionGenerator pollution;
  workload::GroundTruth truth;

  std::printf("Brasov-style pollution monitor, fraction %.0f%%\n\n",
              fraction * 100.0);

  SimTime now = SimTime::zero();
  for (std::size_t w = 0; w < windows; ++w) {
    truth.reset();
    for (int tick = 0; tick < 10; ++tick) {
      auto items = pollution.tick(now, SimTime::from_millis(100));
      truth.add_all(items);
      tree.tick(workload::shard_by_substream(items, tree.leaf_count()));
      now = now + SimTime::from_millis(100);
    }

    std::printf("window %zu:\n", w);
    std::printf("  %-8s%14s%14s%26s\n", "channel", "approx", "exact",
                "error bound 68/95/99.7%");
    for (const auto& spec : pollution.specs()) {
      analytics::Query query;
      query.aggregate = analytics::Aggregate::kSum;
      query.group = {spec.id};

      // The "68-95-99.7" rule: one estimate, three interval widths.
      query.confidence = stats::kConfidence68;
      const auto one_sigma = analytics::execute_approximate(query,
                                                            tree.theta());
      query.confidence = stats::kConfidence95;
      const auto two_sigma = analytics::execute_approximate(query,
                                                            tree.theta());
      query.confidence = stats::kConfidence997;
      const auto three_sigma = analytics::execute_approximate(query,
                                                              tree.theta());

      std::printf("  %-8s%14.0f%14.0f     ±%7.0f/±%7.0f/±%7.0f\n",
                  spec.name.c_str(), two_sigma.value.point,
                  truth.sum(spec.id), one_sigma.value.margin,
                  two_sigma.value.margin, three_sigma.value.margin);
    }
    (void)tree.close_window();
  }
  return 0;
}
