// Message types exchanged between nodes in the logical tree.
//
// ItemBundle is the paper's (W^in, items) pair consumed from Ψ
// (Algorithm 2 line 7); SampledBundle is the (W^out, sample) pair a node
// produces (line 10) and either forwards to its parent or stores in Θ.
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"
#include "core/weight_map.hpp"

namespace approxiot::core {

/// Input to WHSamp: a weight map plus items possibly spanning many
/// sub-streams. Sub-streams absent from `w_in` are interpreted via the
/// node's remembered weights (Fig. 3 rule), falling back to 1 at sources.
struct ItemBundle {
  WeightMap w_in;
  std::vector<Item> items;

  [[nodiscard]] bool empty() const noexcept { return items.empty(); }
};

/// Output of WHSamp: per-sub-stream updated weights and sampled items.
struct SampledBundle {
  WeightMap w_out;
  std::map<SubStreamId, std::vector<Item>> sample;

  [[nodiscard]] std::size_t item_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [_, items] : sample) n += items.size();
    return n;
  }

  /// Flattens into an ItemBundle for transmission to the parent node.
  [[nodiscard]] ItemBundle to_bundle() const {
    ItemBundle out;
    out.w_in = w_out;
    out.items.reserve(item_count());
    for (const auto& [_, items] : sample) {
      out.items.insert(out.items.end(), items.begin(), items.end());
    }
    return out;
  }
};

}  // namespace approxiot::core
