// BoundedChannel: FIFO order, capacity blocking, close semantics, the
// drop-with-count policy, and a multi-producer stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "runtime/bounded_channel.hpp"

namespace approxiot::runtime {
namespace {

TEST(BoundedChannelTest, FifoOrder) {
  BoundedChannel<int> channel(4);
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  EXPECT_TRUE(channel.push(3));
  EXPECT_EQ(channel.size(), 3u);
  EXPECT_EQ(channel.pop().value(), 1);
  EXPECT_EQ(channel.pop().value(), 2);
  EXPECT_EQ(channel.pop().value(), 3);
  EXPECT_EQ(channel.try_pop(), std::nullopt);
}

TEST(BoundedChannelTest, TryPushFailsWhenFullWithoutCountingDrops) {
  BoundedChannel<int> channel(2);
  EXPECT_TRUE(channel.try_push(1));
  EXPECT_TRUE(channel.try_push(2));
  EXPECT_FALSE(channel.try_push(3));
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(BoundedChannelTest, DropNewestCountsSheddedValues) {
  BoundedChannel<int> channel(2, BackpressurePolicy::kDropNewest);
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  EXPECT_FALSE(channel.push(3));  // shed
  EXPECT_FALSE(channel.push(4));  // shed
  EXPECT_EQ(channel.dropped(), 2u);
  EXPECT_EQ(channel.pop().value(), 1);
  EXPECT_TRUE(channel.push(5));  // space again
  EXPECT_EQ(channel.dropped(), 2u);
}

TEST(BoundedChannelTest, BlockingPushWaitsForSpace) {
  BoundedChannel<int> channel(1);
  ASSERT_TRUE(channel.push(1));

  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    channel.push(2);  // blocks until the consumer pops
    second_pushed.store(true);
  });

  // The producer must not complete while the channel is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());

  EXPECT_EQ(channel.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(channel.pop().value(), 2);
}

TEST(BoundedChannelTest, CloseDrainsPendingThenSignalsEnd) {
  BoundedChannel<int> channel(4);
  channel.push(7);
  channel.push(8);
  channel.close();
  EXPECT_FALSE(channel.push(9));  // rejected after close
  EXPECT_EQ(channel.pop().value(), 7);
  EXPECT_EQ(channel.pop().value(), 8);
  EXPECT_EQ(channel.pop(), std::nullopt);  // closed and drained
}

TEST(BoundedChannelTest, CloseWakesBlockedConsumer) {
  BoundedChannel<int> channel(1);
  std::thread consumer([&] { EXPECT_EQ(channel.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.close();
  consumer.join();
}

TEST(BoundedChannelTest, MultiProducerStressDeliversEveryValue) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedChannel<int> channel(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.push(p * kPerProducer + i));
      }
    });
  }

  std::set<int> received;
  std::thread consumer([&] {
    while (auto v = channel.pop()) received.insert(*v);
  });

  for (auto& t : producers) t.join();
  channel.close();
  consumer.join();

  EXPECT_EQ(received.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(channel.pushed(), static_cast<std::uint64_t>(kProducers *
                                                         kPerProducer));
  EXPECT_EQ(channel.popped(), channel.pushed());
  EXPECT_EQ(channel.dropped(), 0u);
}

}  // namespace
}  // namespace approxiot::runtime
