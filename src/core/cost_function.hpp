// Cost function (Algorithm 2 line 3): translates a node's resource budget
// into a per-interval reservoir size.
//
// The paper assumes "there exists a cost function which translates a given
// query budget (latency/throughput/accuracy guarantees) into the
// appropriate sample size" and adjusts it manually; we provide the three
// obvious concrete policies plus the feedback hook the adaptive controller
// (§IV-B) drives.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/time.hpp"

namespace approxiot::core {

/// A node's resource budget for one interval.
struct ResourceBudget {
  /// Target sampling fraction in (0, 1]; used by FractionCostFunction.
  double sampling_fraction{1.0};
  /// Hard cap on forwarded items per second; used by RateCostFunction.
  double max_items_per_second{0.0};
  /// Fixed reservoir size; used by FixedCostFunction.
  std::size_t fixed_sample_size{0};
};

class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// Reservoir budget for the next interval. `observed_items_last_interval`
  /// feeds the estimate of incoming volume; `interval` is the window size.
  [[nodiscard]] virtual std::size_t sample_size(
      const ResourceBudget& budget, std::uint64_t observed_items_last_interval,
      SimTime interval) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Cross-interval smoothing state, for checkpointing. Stateless cost
  /// functions return 0; FractionCostFunction exposes its EWMA (with -1
  /// meaning "no observation yet"). Restoring the saved value makes the
  /// first post-restore budget identical to the uninterrupted run's.
  [[nodiscard]] virtual double smoothing_state() const noexcept { return 0.0; }
  virtual void set_smoothing_state(double state) noexcept {
    static_cast<void>(state);
  }
};

/// size = ceil(fraction × EWMA(items per interval)). The EWMA smooths rate
/// fluctuation so the reservoir does not thrash between intervals.
class FractionCostFunction final : public CostFunction {
 public:
  explicit FractionCostFunction(double ewma_alpha = 0.5);

  [[nodiscard]] std::size_t sample_size(const ResourceBudget& budget,
                                        std::uint64_t observed,
                                        SimTime interval) override;
  [[nodiscard]] std::string name() const override { return "fraction"; }

  [[nodiscard]] double smoothed_rate() const noexcept { return ewma_; }

  [[nodiscard]] double smoothing_state() const noexcept override {
    return ewma_;
  }
  void set_smoothing_state(double state) noexcept override { ewma_ = state; }

 private:
  double alpha_;
  double ewma_{-1.0};  // <0 means "no observation yet"
};

/// size = max_items_per_second × interval_seconds (bandwidth-style cap).
class RateCostFunction final : public CostFunction {
 public:
  [[nodiscard]] std::size_t sample_size(const ResourceBudget& budget,
                                        std::uint64_t observed,
                                        SimTime interval) override;
  [[nodiscard]] std::string name() const override { return "rate"; }
};

/// size = budget.fixed_sample_size, unconditionally.
class FixedCostFunction final : public CostFunction {
 public:
  [[nodiscard]] std::size_t sample_size(const ResourceBudget& budget,
                                        std::uint64_t observed,
                                        SimTime interval) override;
  [[nodiscard]] std::string name() const override { return "fixed"; }
};

[[nodiscard]] std::unique_ptr<CostFunction> make_cost_function(
    const std::string& name);

}  // namespace approxiot::core
