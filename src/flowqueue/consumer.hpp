// Consumer: polls assigned partitions in round-robin order and tracks
// per-partition positions. Supports both standalone assignment (assign())
// and group membership via the Broker's coordinator (subscribe()).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flowqueue/broker.hpp"

namespace approxiot::flowqueue {

/// One assigned partition's read position against its log end — the
/// consumer-side watermark. `caught_up()` means every record appended to
/// the partition so far has been consumed; nothing older than what the
/// consumer already saw can still arrive from it (until new appends).
struct PartitionWatermark {
  TopicPartition tp{};
  Offset position{0};
  Offset end_offset{0};

  [[nodiscard]] bool caught_up() const noexcept {
    return position >= end_offset;
  }
  [[nodiscard]] std::int64_t lag() const noexcept {
    return end_offset - position;
  }
};

class Consumer {
 public:
  /// Standalone consumer with an explicit partition assignment.
  Consumer(Broker& broker, std::string client_id);

  /// Not copyable: a consumer owns its group membership.
  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;
  ~Consumer();

  /// Joins `group` subscribed to `topics`; the broker assigns partitions.
  /// Re-joining with more topics widens the subscription.
  Status subscribe(const std::string& group,
                   const std::vector<std::string>& topics);

  /// Standalone mode: consume exactly these partitions, no group.
  Status assign(std::vector<TopicPartition> partitions);

  /// Pulls up to `max_records` records across assigned partitions, advancing
  /// local positions. Returns the batch (possibly empty).
  Result<std::vector<Record>> poll(std::size_t max_records);

  /// Seeks one partition's position.
  Status seek(const TopicPartition& tp, Offset offset);

  /// Commits current positions to the broker (group mode only).
  Status commit();

  /// Resumes positions from the broker's committed offsets (group mode).
  Status restore_committed();

  [[nodiscard]] const std::vector<TopicPartition>& assignment() const noexcept {
    return assignment_;
  }
  [[nodiscard]] Offset position(const TopicPartition& tp) const;

  /// Records lag (end_offset - position) summed over the assignment.
  [[nodiscard]] std::int64_t total_lag() const;

  /// Per-partition positions against log ends, one entry per assigned
  /// partition. Lets callers flush mid-stream the moment every partition
  /// is provably read past a point, instead of waiting for an idle poll
  /// (see runtime::FlowQueueSource).
  [[nodiscard]] std::vector<PartitionWatermark> partition_watermarks() const;

  /// True when every assigned partition is read to its end offset.
  /// False for an empty assignment (nothing is provably consumed).
  [[nodiscard]] bool caught_up() const;

 private:
  void refresh_assignment_if_stale();

  Broker* broker_;
  std::string client_id_;
  std::string group_;
  bool in_group_{false};
  std::uint64_t seen_generation_{0};
  std::vector<std::string> subscribed_topics_;
  std::vector<TopicPartition> assignment_;
  std::map<TopicPartition, Offset> positions_;
  std::size_t next_partition_index_{0};
};

}  // namespace approxiot::flowqueue
