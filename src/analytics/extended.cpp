#include "analytics/extended.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/estimators.hpp"

namespace approxiot::analytics {

std::vector<TopKEntry> execute_topk(const core::ThetaStore& theta,
                                    std::size_t k, double confidence) {
  const auto summaries = core::summarize(theta);

  std::vector<TopKEntry> entries;
  entries.reserve(summaries.size());
  for (const auto& s : summaries) {
    // Per-stratum variance: the Eq. 11 term of this sub-stream alone.
    double variance = 0.0;
    if (s.sampled > 0) {
      const double zeta = static_cast<double>(s.sampled);
      const double fpc =
          s.estimated_count > zeta ? s.estimated_count - zeta : 0.0;
      variance = s.estimated_count * fpc * s.sample_variance / zeta;
    }
    TopKEntry entry;
    entry.id = s.id;
    entry.sum = stats::make_interval(s.sum, variance, confidence);
    entry.estimated_count = s.estimated_count;
    entries.push_back(entry);
  }

  std::sort(entries.begin(), entries.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.sum.point != b.sum.point) return a.sum.point > b.sum.point;
              return a.id < b.id;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

bool topk_winner_is_significant(const std::vector<TopKEntry>& entries) {
  if (entries.empty()) return false;
  if (entries.size() == 1) return true;
  return entries[0].sum.lower() > entries[1].sum.upper();
}

Result<double> execute_quantile(const core::ThetaStore& theta, double q) {
  if (q < 0.0 || q > 1.0) {
    return Status::invalid_argument("quantile must be in [0, 1]");
  }

  // Collect (value, weight) pairs across all sub-streams.
  std::vector<std::pair<double, double>> weighted;
  for (SubStreamId id : theta.sub_streams()) {
    for (const core::WeightedSample& pair : theta.pairs(id)) {
      for (const Item& item : pair.items) {
        weighted.emplace_back(item.value, pair.weight);
      }
    }
  }
  if (weighted.empty()) {
    return Status::failed_precondition("no sampled items in theta");
  }

  std::sort(weighted.begin(), weighted.end());
  double total = 0.0;
  for (const auto& [_, w] : weighted) total += w;

  // Walk the weighted CDF to the q-th mass point.
  const double target = q * total;
  double cum = 0.0;
  for (const auto& [value, weight] : weighted) {
    cum += weight;
    if (cum >= target) return value;
  }
  return weighted.back().first;
}

}  // namespace approxiot::analytics
