#include "core/whsamp.hpp"

#include <utility>

namespace approxiot::core {

std::map<SubStreamId, std::vector<Item>> stratify(
    const std::vector<Item>& items) {
  std::map<SubStreamId, std::vector<Item>> strata;
  for (const Item& item : items) {
    strata[item.source].push_back(item);
  }
  return strata;
}

WHSampler::WHSampler(Rng rng, WHSampConfig config)
    : rng_(rng), config_(std::move(config)),
      policy_(sampling::make_allocation_policy(config_.allocation_policy)) {}

SampledBundle WHSampler::sample(const std::vector<Item>& items,
                                std::size_t sample_size,
                                const WeightMap& w_in) {
  SampledBundle out;
  if (items.empty()) return out;

  // Line 5: stratify into sub-streams.
  auto strata = stratify(items);

  // Line 7: decide each sub-stream's reservoir size N_i.
  std::vector<sampling::SubStreamInfo> infos;
  infos.reserve(strata.size());
  for (const auto& [id, stratum] : strata) {
    infos.push_back(sampling::SubStreamInfo{id, stratum.size(), 0.0});
  }
  const sampling::SizeMap sizes = policy_->allocate(sample_size, infos);

  // Lines 8-19: reservoir-sample each sub-stream and update its weight.
  for (auto& [id, stratum] : strata) {
    const std::uint64_t c_i = stratum.size();
    auto size_it = sizes.find(id);
    const std::size_t n_i = size_it == sizes.end() ? 0 : size_it->second;

    sampling::ReservoirSampler<Item> reservoir(n_i, rng_.split(),
                                               config_.reservoir_algorithm);
    rng_.jump();  // keep per-stratum streams independent
    for (Item& item : stratum) reservoir.offer(std::move(item));

    const double w_in_i = w_in.get(id);
    if (c_i > n_i) {
      // Overflow: each kept item stands for c_i / N_i originals (Eq. 1-2).
      // A zero reservoir keeps nothing, so its weight never reaches Θ; we
      // still record it (weight unchanged) for observability.
      const double w_i = n_i > 0 ? static_cast<double>(c_i) /
                                       static_cast<double>(n_i)
                                 : 1.0;
      out.w_out.set(id, w_in_i * w_i);
    } else {
      out.w_out.set(id, w_in_i);
    }
    out.sample.emplace(id, reservoir.drain());
  }
  return out;
}

}  // namespace approxiot::core
