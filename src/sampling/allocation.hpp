// Sample-size allocation: Algorithm 1's getSampleSize(sampleSize, S).
//
// Given a node's total per-interval reservoir budget and the set of
// sub-streams seen in the interval, decide each sub-stream's reservoir
// capacity N_i. The paper leaves the policy open ("the core design is
// agnostic to the ways of choosing the sample size"); we implement the
// fair equal split its evaluation implies, plus two alternatives used by
// the ablation bench.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace approxiot::sampling {

/// Per-sub-stream observation the allocator may use. The samplers also
/// use it to carry per-stratum context resolved once per interval —
/// `weight` is the effective W^in_i, looked up a single time when the
/// infos are built instead of re-queried per stratum in the merge loop.
struct SubStreamInfo {
  SubStreamId id{};
  std::uint64_t count{0};     // items seen this interval so far
  double value_stddev{0.0};   // running dispersion (Neyman only)
  double weight{1.0};         // resolved W^in_i (not used by allocators)
};

using SizeMap = std::map<SubStreamId, std::size_t>;

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  /// Splits `total_budget` reservoir slots across `streams`. Every
  /// sub-stream must receive >= 1 slot whenever total_budget >= |streams|
  /// (the fairness property stratification exists to provide).
  [[nodiscard]] virtual SizeMap allocate(
      std::size_t total_budget,
      const std::vector<SubStreamInfo>& streams) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Equal split: each of the k sub-streams gets floor(budget/k), with the
/// remainder dealt to the lowest ids. Matches the paper's fairness story:
/// no sub-stream is neglected regardless of its arrival rate.
class EqualAllocation final : public AllocationPolicy {
 public:
  [[nodiscard]] SizeMap allocate(
      std::size_t total_budget,
      const std::vector<SubStreamInfo>& streams) const override;
  [[nodiscard]] std::string name() const override { return "equal"; }
};

/// Proportional to observed counts — this collapses stratified sampling
/// back towards SRS behaviour; included to quantify (ablation) how much of
/// ApproxIoT's accuracy win comes from equal allocation.
class ProportionalAllocation final : public AllocationPolicy {
 public:
  [[nodiscard]] SizeMap allocate(
      std::size_t total_budget,
      const std::vector<SubStreamInfo>& streams) const override;
  [[nodiscard]] std::string name() const override { return "proportional"; }
};

/// Neyman allocation: proportional to count * stddev, the
/// variance-minimising split for estimating a total. An extension beyond
/// the paper (its future-work "automated cost function" direction).
class NeymanAllocation final : public AllocationPolicy {
 public:
  [[nodiscard]] SizeMap allocate(
      std::size_t total_budget,
      const std::vector<SubStreamInfo>& streams) const override;
  [[nodiscard]] std::string name() const override { return "neyman"; }
};

/// Factory by policy name ("equal" | "proportional" | "neyman").
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_allocation_policy(
    const std::string& name);

}  // namespace approxiot::sampling
