// SamplingExecutor: one execution layer for every parallel sampling path.
//
// The paper's §III-E no-coordination argument is about *where* sampling
// work runs, not *what* it computes: a sub-stream's reservoir may be
// sharded across w workers that never synchronise while items flow, and
// the merged output is indistinguishable to the estimators because the
// weight is recomputed from summed counters (Eq. 8):
//     c_i = Σ_w c_{i,w},   c̃_i = Σ_w |reservoir_w|,
//     W^out · c̃_i = W^in · c_i.
//
// Historically the repo had three divergent executions of that idea —
// WHSampler (sequential), ParallelSampler (OS threads spawned per
// sub-stream per interval), and ConcurrentEdgeTree's per-node worker
// plumbing. This header is the single abstraction they all sit on now:
//
//   SamplingExecutor — process-wide policy + resources (the thread pool).
//   SamplingLane     — one node's session: owns the node's RNG stream and
//                      its long-lived per-sub-stream shard state, so the
//                      per-interval hot path allocates no threads and
//                      reuses reservoir buffers.
//   WorkerGroup      — the reference shard/offer/merge protocol for one
//                      sub-stream (extracted from core/parallel.hpp).
//                      The pooled lane runs a slice-based variant of the
//                      same protocol tuned for zero-copy merges; the
//                      executor tests pin both to the same Eq. 8
//                      behaviour (clamp included) through the lane API.
//
// Two implementations:
//   SequentialSamplingExecutor — lanes are plain WHSampler (Algorithm 1).
//   PooledSamplingExecutor     — lanes shard items over reusable
//     runtime::ThreadPool workers. Workers are created once at executor
//     construction; the per-interval path only pushes closures into the
//     pool's queue. A 1-worker pooled lane is bit-identical to WHSampler
//     (same RNG consumption, same offers, same weights) — the regression
//     tests pin this down — and inline vs pooled dispatch of the same
//     lane produces identical samples (the shard assignment is a pure
//     function of item position), so dispatch is a performance decision
//     only.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/whsamp.hpp"
#include "sampling/reservoir.hpp"

namespace approxiot::runtime {
class ThreadPool;  // depends only on common/ — no layering cycle
}  // namespace approxiot::runtime

namespace approxiot::obs {
class StatsRegistry;  // obs depends only on the standard library
class Tracer;
}  // namespace approxiot::obs

namespace approxiot::core {

class CheckpointWriter;
class CheckpointReader;

/// One worker's state for one sub-stream: a reservoir of at most N_i/w
/// items plus the local arrival counter. Single-threaded by itself; the
/// group shards items across workers.
class SubStreamWorker {
 public:
  SubStreamWorker(std::size_t capacity, Rng rng,
                  sampling::ReservoirAlgorithm algorithm =
                      sampling::ReservoirAlgorithm::kAlgorithmR);

  void offer(const Item& item);

  /// Re-seeds and re-sizes for a new interval, keeping the reservoir's
  /// heap buffer (the long-lived-worker fast path).
  void rearm(std::size_t capacity, const Rng& rng);

  [[nodiscard]] std::uint64_t local_count() const noexcept {
    return reservoir_.seen();
  }
  [[nodiscard]] std::size_t sample_size() const noexcept {
    return reservoir_.size();
  }
  /// Appends the kept items to `out` and resets counters; the internal
  /// buffer survives for the next interval.
  void collect_into(std::vector<Item>& out);
  [[nodiscard]] std::vector<Item> drain() { return reservoir_.drain(); }
  void set_capacity(std::size_t capacity) { reservoir_.set_capacity(capacity); }

 private:
  sampling::ReservoirSampler<Item> reservoir_;
};

/// The shard/offer/merge protocol for one sub-stream. The worker count is
/// clamped to the total capacity (a worker with a zero-slot reservoir
/// could keep nothing, risking a merged c̃ of 0 for a sub-stream that did
/// receive items); shards routed beyond the clamped count only count
/// arrivals, preserving c_i.
class WorkerGroup {
 public:
  /// `total_capacity` is N_i; each active worker gets floor(N_i/w) with
  /// the remainder spread over the first workers so Σ capacities == N_i.
  WorkerGroup(std::size_t workers, std::size_t total_capacity, Rng rng,
              sampling::ReservoirAlgorithm algorithm =
                  sampling::ReservoirAlgorithm::kAlgorithmR);

  /// Re-splits capacity and re-seeds worker RNG streams for a new
  /// interval. Worker 0's stream is `rng.split()` — exactly the stream
  /// WHSampler hands its single reservoir, which is what makes a
  /// one-worker group bit-identical to the sequential path; workers
  /// beyond 0 reseed from values drawn off that stream. Reservoir
  /// buffers are kept.
  void rearm(std::size_t workers, std::size_t total_capacity, const Rng& rng);

  /// Offers items round-robin across active workers (single-threaded
  /// sharding).
  void shard(const std::vector<Item>& items);

  /// Offers one item to a specific active worker (callers doing their own
  /// sharding). `worker` must be < worker_count().
  void offer_to(std::size_t worker, const Item& item);

  /// Offers via a shard id in [0, shard_width()): shards below
  /// worker_count() feed that worker's reservoir; shards at or above it
  /// only count the arrival (capacity ran out before them). Thread-safe
  /// across *distinct* shard ids — shard t touches only slot t.
  void offer_routed(std::size_t shard, const Item& item);

  struct MergeResult {
    std::vector<Item> sample;
    std::uint64_t total_count{0};   // c_i
    double weight_multiplier{1.0};  // c_i / c̃_i when overflowed, else 1
  };

  /// Merges worker reservoirs (kept items are copied out so buffers
  /// survive), resets counters for the next interval.
  [[nodiscard]] MergeResult merge();

  /// Active (capacity-clamped) worker count.
  [[nodiscard]] std::size_t worker_count() const noexcept { return active_; }
  /// Routing width accepted by offer_routed (the requested worker count).
  [[nodiscard]] std::size_t shard_width() const noexcept {
    return overflow_seen_.size();
  }

 private:
  std::vector<SubStreamWorker> workers_;  // storage; first active_ live
  std::vector<std::uint64_t> overflow_seen_;
  std::size_t active_{0};
  sampling::ReservoirAlgorithm algorithm_;
  std::size_t next_worker_{0};
};

/// One node's sampling session. Semantically one call to sample() is one
/// invocation of Algorithm 1 on a (W^in, items) pair — the same contract
/// as WHSampler::sample — but the lane owns cross-interval state (RNG
/// stream, persistent worker groups, a stratification scratch arena) so
/// implementations can keep workers warm between intervals.
class SamplingLane {
 public:
  virtual ~SamplingLane() = default;

  /// Convenience entry point: stratifies `items` into the lane's reused
  /// scratch batch, then runs the span-based path below.
  [[nodiscard]] SampledBundle sample(const std::vector<Item>& items,
                                     std::size_t sample_size,
                                     const WeightMap& w_in) {
    if (items.empty()) return SampledBundle{};
    scratch_.assign(items);
    return sample_strata(scratch_, sample_size, w_in);
  }

  /// Span-based hot path: one invocation of Algorithm 1 on input already
  /// stratified into a flat arena. Callers that stratify once per bundle
  /// (the node layer) call this directly and skip the scratch copy.
  [[nodiscard]] virtual SampledBundle sample_strata(
      const StratifiedBatch& strata, std::size_t sample_size,
      const WeightMap& w_in) = 0;

  /// Reservoir shards per sub-stream (1 == the sequential path).
  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;

  /// Serializes the lane's cross-interval state — the RNG stream plus any
  /// call counters; shard groups and scratch arenas are rearmed every
  /// call and carry nothing forward. Implementations tag their payload so
  /// a checkpoint taken on one lane type cannot be silently restored into
  /// another. Pure virtual on purpose: a lane that forgot to implement
  /// this would silently break checkpoint bit-identity.
  virtual void save_state(CheckpointWriter& writer) const = 0;
  virtual void restore_state(CheckpointReader& reader) = 0;

 private:
  StratifiedBatch scratch_;
};

/// Factory for lanes plus the shared resources (thread pool) they run on.
/// One executor is typically shared by every sampling node of a runtime
/// (e.g. all nodes of a ConcurrentEdgeTree), each holding its own lane.
class SamplingExecutor {
 public:
  virtual ~SamplingExecutor() = default;

  /// Creates an independent per-node lane. `rng` roots the lane's random
  /// stream (the node's seed); `config` carries allocation policy and
  /// reservoir algorithm. Safe to call from multiple threads.
  [[nodiscard]] virtual std::unique_ptr<SamplingLane> create_lane(
      Rng rng, WHSampConfig config) = 0;

  [[nodiscard]] virtual std::size_t workers_per_lane() const noexcept = 0;

  /// Binds observability sinks for lanes created *after* this call: each
  /// new lane gets "{scope}/lane{k}" stats (dispatch/merge timing, item
  /// counts) and, when a tracer is given, its own trace track with
  /// executor-dispatch spans. Default: no instrumentation. Timing reads
  /// clocks only — lane RNG streams and sampling output are untouched, so
  /// binding never perturbs what gets sampled.
  virtual void bind_obs(obs::StatsRegistry* stats, obs::Tracer* tracer,
                        const std::string& scope) {
    (void)stats;
    (void)tracer;
    (void)scope;
  }
};

/// Lanes are plain WHSampler instances — the reference sequential path.
class SequentialSamplingExecutor final : public SamplingExecutor {
 public:
  [[nodiscard]] std::unique_ptr<SamplingLane> create_lane(
      Rng rng, WHSampConfig config) override;
  [[nodiscard]] std::size_t workers_per_lane() const noexcept override {
    return 1;
  }
};

/// Shared stateless instance used by nodes constructed without an
/// explicit executor handle.
[[nodiscard]] SamplingExecutor& sequential_executor() noexcept;

/// Persistent-pool executor: shards every lane's sub-streams across
/// `workers_per_lane` reservoir shards executed on a long-lived
/// runtime::ThreadPool. No std::thread is constructed after the executor
/// itself — the per-interval hot path is queue pushes only.
class PooledSamplingExecutor final : public SamplingExecutor {
 public:
  struct Options {
    /// Reservoir shards per sub-stream per lane (§III-E's w). 0 -> 1.
    std::size_t workers_per_lane{2};
    /// OS threads backing shard dispatch. 0 = auto: `workers_per_lane`
    /// threads when the hardware has more than one core, otherwise no
    /// pool at all (shards then run inline on the caller — identical
    /// samples, no pointless context switching on a single core).
    std::size_t pool_threads{0};
    std::uint64_t pool_seed{0x5eed5eedULL};
    /// Intervals smaller than this run inline even when a pool exists;
    /// dispatch overhead only pays off for meaty intervals. Performance
    /// knob only — inline and pooled execution produce identical output.
    std::size_t min_items_to_dispatch{8192};
  };

  explicit PooledSamplingExecutor(Options options);
  ~PooledSamplingExecutor() override;

  /// Canonical private-pool construction used by nodes and runtimes that
  /// derive the pool seed from their own: one place for the derivation,
  /// so call sites cannot drift apart.
  [[nodiscard]] static std::shared_ptr<PooledSamplingExecutor> for_seed(
      std::size_t workers, std::uint64_t seed);

  PooledSamplingExecutor(const PooledSamplingExecutor&) = delete;
  PooledSamplingExecutor& operator=(const PooledSamplingExecutor&) = delete;

  [[nodiscard]] std::unique_ptr<SamplingLane> create_lane(
      Rng rng, WHSampConfig config) override;
  [[nodiscard]] std::size_t workers_per_lane() const noexcept override {
    return options_.workers_per_lane;
  }
  /// False when shards always run inline (single-core auto mode).
  [[nodiscard]] bool has_pool() const noexcept { return pool_ != nullptr; }

  void bind_obs(obs::StatsRegistry* stats, obs::Tracer* tracer,
                const std::string& scope) override;

 private:
  Options options_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  obs::StatsRegistry* obs_stats_{nullptr};
  obs::Tracer* obs_tracer_{nullptr};
  std::string obs_scope_;
  std::atomic<std::size_t> lane_counter_{0};
};

}  // namespace approxiot::core
