// Byte-level serialization helpers (varint, fixed64, doubles, strings)
// used to encode ApproxIoT wire messages into flowqueue record payloads.
// Decoding is bounds-checked and reports precise errors rather than
// reading past the buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace approxiot::flowqueue {

/// Append-only encoder over a byte vector.
class Encoder {
 public:
  Encoder() = default;

  void put_varint(std::uint64_t v);
  void put_fixed64(std::uint64_t v);
  void put_double(double v);
  void put_string(const std::string& s);
  void put_bytes(const std::vector<std::uint8_t>& bytes);

  /// Bulk-append seam for block encoders (the core/kernels item
  /// encoder): grows the buffer by `max_bytes` and returns the write
  /// cursor. The caller writes up to max_bytes sequentially and then
  /// calls commit_tail() with the count actually written; the buffer
  /// shrinks back to exactly the bytes produced. No other Encoder call
  /// may intervene between the pair.
  [[nodiscard]] std::uint8_t* reserve_tail(std::size_t max_bytes) {
    committed_ = buffer_.size();
    buffer_.resize(committed_ + max_bytes);
    return buffer_.data() + committed_;
  }
  void commit_tail(std::size_t used) { buffer_.resize(committed_ + used); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buffer_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  /// Buffer size at the last reserve_tail(), the base commit_tail()
  /// truncates back to.
  std::size_t committed_{0};
};

/// Cursor-based decoder over a byte span.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& bytes)
      : Decoder(bytes.data(), bytes.size()) {}

  [[nodiscard]] Result<std::uint64_t> get_varint();
  [[nodiscard]] Result<std::uint64_t> get_fixed64();
  [[nodiscard]] Result<double> get_double();
  [[nodiscard]] Result<std::string> get_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - cursor_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ >= size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_{0};
};

}  // namespace approxiot::flowqueue
