// Compile-time instrumentation switch.
//
// Every stats/tracing site in the runtimes goes through these macros, so
// building a translation unit with -DAPPROXIOT_NO_STATS strips its
// instrumentation to literally nothing — no atomic ops, no clock reads,
// no branches. Only the *macro expansions* change; every obs class stays
// defined identically in both modes, so objects compiled with and without
// the flag link into one binary without ODR violations (bench_overhead
// relies on this to compare all three modes in a single run).
//
//   AIOT_OBS(stmt;...)               statement block, removed when off
//   AIOT_OBS_SPAN(var, tracer, track, name)
//                                    declares `var` as a ScopedSpan
//                                    (or an inert NullSpan when off);
//                                    var.set_epoch(e) works either way
//
// Instrumentation must never perturb sampling: hooks may read clocks and
// counters but never touch RNG streams — sampling output is bit-identical
// with stats on or off, which tests/obs and bench_overhead assert.
#pragma once

#include "obs/stats.hpp"
#include "obs/trace.hpp"

#ifndef APPROXIOT_NO_STATS
#define AIOT_OBS_ENABLED 1
#define AIOT_OBS(...)  \
  do {                 \
    __VA_ARGS__        \
  } while (false)
#define AIOT_OBS_SPAN(var, tracer, track, name) \
  ::approxiot::obs::ScopedSpan var((tracer), (track), (name))
#else
#define AIOT_OBS_ENABLED 0
#define AIOT_OBS(...) \
  do {                \
  } while (false)
#define AIOT_OBS_SPAN(var, tracer, track, name)                            \
  [[maybe_unused]] ::approxiot::obs::NullSpan var((tracer), (track), (name))
#endif
