// Fan-out/fan-in topology coverage for the streams driver: one source
// feeding two parallel processors whose outputs converge on one sink —
// the DAG shape (not just linear chains) the Kafka Streams model allows.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "flowqueue/producer.hpp"
#include "streams/driver.hpp"

namespace approxiot::streams {
namespace {

/// Appends a tag to the record key and forwards.
class TagProcessor final : public Processor {
 public:
  explicit TagProcessor(std::string tag) : tag_(std::move(tag)) {}

  void init(ProcessorContext& context) override { context_ = &context; }

  void process(const flowqueue::Record& record) override {
    flowqueue::Record out = record;
    out.key += tag_;
    context_->forward(std::move(out));
  }

 private:
  std::string tag_;
  ProcessorContext* context_{nullptr};
};

class FanoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.create_topic("in", 1).is_ok());
    ASSERT_TRUE(broker_.create_topic("out", 1).is_ok());
  }

  std::vector<std::string> sink_keys() {
    std::vector<flowqueue::Record> records;
    auto topic = broker_.topic("out");
    EXPECT_TRUE(topic.is_ok());
    topic.value()->partition(0).read(0, 1000, records);
    std::vector<std::string> keys;
    for (const auto& r : records) keys.push_back(r.key);
    return keys;
  }

  flowqueue::Broker broker_;
};

TEST_F(FanoutTest, SourceFansOutToParallelProcessors) {
  TopologyBuilder builder;
  builder.add_source("src", "in")
      .add_processor("a",
                     []() { return std::make_unique<TagProcessor>("-A"); },
                     {"src"})
      .add_processor("b",
                     []() { return std::make_unique<TagProcessor>("-B"); },
                     {"src"})
      .add_sink("sink", "out", {"a", "b"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());

  TopologyDriver driver(broker_, std::move(topo).value(), "fanout");
  ASSERT_TRUE(driver.start().is_ok());

  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(producer.send("in", "r1", {}).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());

  // Both branches processed the record; the sink saw both outputs.
  auto keys = sink_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "r1-A");
  EXPECT_EQ(keys[1], "r1-B");
}

TEST_F(FanoutTest, ChainedProcessorsComposeInOrder) {
  TopologyBuilder builder;
  builder.add_source("src", "in")
      .add_processor("first",
                     []() { return std::make_unique<TagProcessor>("-1"); },
                     {"src"})
      .add_processor("second",
                     []() { return std::make_unique<TagProcessor>("-2"); },
                     {"first"})
      .add_sink("sink", "out", {"second"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());

  TopologyDriver driver(broker_, std::move(topo).value(), "chain");
  ASSERT_TRUE(driver.start().is_ok());

  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(producer.send("in", "x", {}).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());

  auto keys = sink_keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "x-1-2");
}

TEST_F(FanoutTest, ProcessorFeedsTwoSinks) {
  ASSERT_TRUE(broker_.create_topic("out2", 1).is_ok());
  TopologyBuilder builder;
  builder.add_source("src", "in")
      .add_processor("p",
                     []() { return std::make_unique<TagProcessor>("-P"); },
                     {"src"})
      .add_sink("sink1", "out", {"p"})
      .add_sink("sink2", "out2", {"p"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());

  TopologyDriver driver(broker_, std::move(topo).value(), "dual");
  ASSERT_TRUE(driver.start().is_ok());
  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(producer.send("in", "y", {}).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());

  EXPECT_EQ(sink_keys().size(), 1u);
  std::vector<flowqueue::Record> second;
  auto topic = broker_.topic("out2");
  ASSERT_TRUE(topic.is_ok());
  topic.value()->partition(0).read(0, 1000, second);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].key, "y-P");
}

TEST_F(FanoutTest, TwoSourcesMergeIntoOneProcessor) {
  ASSERT_TRUE(broker_.create_topic("in2", 1).is_ok());
  TopologyBuilder builder;
  builder.add_source("src1", "in")
      .add_source("src2", "in2")
      .add_processor("merge",
                     []() { return std::make_unique<TagProcessor>("-M"); },
                     {"src1", "src2"})
      .add_sink("sink", "out", {"merge"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());

  TopologyDriver driver(broker_, std::move(topo).value(), "merge");
  ASSERT_TRUE(driver.start().is_ok());
  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(producer.send("in", "a", {}).is_ok());
  ASSERT_TRUE(producer.send("in2", "b", {}).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());

  auto keys = sink_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a-M");
  EXPECT_EQ(keys[1], "b-M");
}

}  // namespace
}  // namespace approxiot::streams
