// ThetaStore: the root node's Θ (Algorithm 2 line 16) — the collection of
// (W^out, sample) pairs accumulated within one computation window, grouped
// by sub-stream so the estimators can evaluate Eq. 3 directly.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "core/batch.hpp"

namespace approxiot::core {

/// One (weight, items) pair for a single sub-stream, as seen at the root.
struct WeightedSample {
  double weight{1.0};
  std::vector<Item> items;
};

class ThetaStore {
 public:
  /// Splits a SampledBundle into per-sub-stream (weight, items) pairs and
  /// appends them. Pairs with no items are dropped: they contribute
  /// nothing to any estimator. The bundle's policy epoch is folded into
  /// the window's epoch span so the query result can attribute its error
  /// bound to the policy generation(s) that produced the samples.
  void add(const SampledBundle& bundle);

  /// Appends a single pair directly (used by tests and the SRS path).
  /// `policy_epoch` attributes the pair to a policy generation.
  void add_pair(SubStreamId id, WeightedSample pair,
                std::uint64_t policy_epoch = 0);

  void clear() noexcept {
    pairs_.clear();
    epoch_min_ = 0;
    epoch_max_ = 0;
    epoch_seen_ = false;
  }

  [[nodiscard]] bool empty() const noexcept { return pairs_.empty(); }

  /// All sub-streams with at least one pair.
  [[nodiscard]] std::vector<SubStreamId> sub_streams() const;

  /// Pairs for one sub-stream (empty vector if unseen).
  [[nodiscard]] const std::vector<WeightedSample>& pairs(SubStreamId id) const;

  /// ζ_i: total number of sampled items of sub-stream i at the root.
  [[nodiscard]] std::uint64_t sampled_count(SubStreamId id) const;

  /// ĉ_{i,b}: the estimate of the sub-stream's original item count,
  /// Σ |I| · W^out — exact by the Eq. 8 invariant.
  [[nodiscard]] double estimated_original_count(SubStreamId id) const;

  /// Total sampled items across all sub-streams.
  [[nodiscard]] std::uint64_t total_sampled() const;

  /// Oldest/newest policy epoch among the bundles accumulated in this
  /// window (both 0 for an empty window). Equal values mean every sample
  /// was produced under one policy generation; a span means the window
  /// straddled a live policy swap.
  [[nodiscard]] std::uint64_t min_policy_epoch() const noexcept {
    return epoch_seen_ ? epoch_min_ : 0;
  }
  [[nodiscard]] std::uint64_t max_policy_epoch() const noexcept {
    return epoch_seen_ ? epoch_max_ : 0;
  }

  /// Raw epoch-span state, for checkpointing. add_pair() cannot rebuild it
  /// faithfully (it folds its own epoch argument into the span), so a
  /// restore replays the pairs first and then overwrites the span with the
  /// exact values the checkpoint recorded.
  struct EpochSpan {
    std::uint64_t min{0};
    std::uint64_t max{0};
    bool seen{false};
  };
  [[nodiscard]] EpochSpan epoch_span() const noexcept {
    return EpochSpan{epoch_min_, epoch_max_, epoch_seen_};
  }
  void restore_epoch_span(const EpochSpan& span) noexcept {
    epoch_min_ = span.min;
    epoch_max_ = span.max;
    epoch_seen_ = span.seen;
  }

 private:
  void note_epoch(std::uint64_t epoch) noexcept;

  std::map<SubStreamId, std::vector<WeightedSample>> pairs_;
  std::uint64_t epoch_min_{0};
  std::uint64_t epoch_max_{0};
  bool epoch_seen_{false};
  static const std::vector<WeightedSample> kEmpty;
};

}  // namespace approxiot::core
