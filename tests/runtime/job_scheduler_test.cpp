// JobScheduler: task completion on a small pool, the 4-state wake
// machine (coalescing, notify-while-running re-run, mutual exclusion),
// work stealing, the notify_all chaos hook, and the obs surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/stats.hpp"
#include "runtime/job_scheduler.hpp"

namespace approxiot::runtime {
namespace {

/// Spin-waits (with yields) until `done` or the deadline; the scheduler
/// has no "quiescent" query by design (tasks are long-lived), so tests
/// watch their own completion flags.
template <typename Pred>
bool wait_for(Pred done, std::chrono::milliseconds deadline =
                             std::chrono::milliseconds(5000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!done()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(JobSchedulerTest, RunsEveryNotifiedTaskOnAFixedPool) {
  JobScheduler::Options options;
  options.workers = 2;
  JobScheduler scheduler(std::move(options));

  constexpr std::size_t kTasks = 100;
  std::atomic<std::size_t> runs{0};
  for (std::size_t i = 0; i < kTasks; ++i) {
    scheduler.add_task("t" + std::to_string(i),
                       [&runs] { runs.fetch_add(1); });
  }
  EXPECT_EQ(scheduler.task_count(), kTasks);
  EXPECT_EQ(scheduler.worker_count(), 2u);

  scheduler.start();
  scheduler.notify_all();
  EXPECT_TRUE(wait_for([&] { return runs.load() >= kTasks; }));
  scheduler.shutdown();

  // Every task ran at least once; coalescing may not have folded anything
  // here (one notify each), so the counts match exactly.
  EXPECT_EQ(runs.load(), kTasks);
  EXPECT_EQ(scheduler.tasks_run(), kTasks);
}

TEST(JobSchedulerTest, AddTaskAfterStartIsRejected) {
  JobScheduler scheduler({});
  scheduler.add_task("before", [] {});
  scheduler.start();
  EXPECT_THROW(scheduler.add_task("after", [] {}), std::logic_error);
  scheduler.shutdown();
}

TEST(JobSchedulerTest, NotifiesCoalesceWhileQueued) {
  // A burst of notifies against an idle task must fold into ONE run: the
  // first moves kIdle->kQueued, the rest see kQueued and return. A body
  // observes everything the notifiers made ready, so nothing is lost.
  JobScheduler::Options options;
  options.workers = 1;
  JobScheduler scheduler(std::move(options));

  std::atomic<int> gate_runs{0};
  std::atomic<int> burst_runs{0};
  std::atomic<bool> gate_entered{false};
  std::atomic<bool> gate_release{false};
  // Task 0 occupies the single worker while we burst-notify task 1.
  scheduler.add_task("gate", [&] {
    gate_runs.fetch_add(1);
    gate_entered.store(true);
    while (!gate_release.load()) std::this_thread::yield();
  });
  const auto burst = scheduler.add_task("burst",
                                        [&] { burst_runs.fetch_add(1); });

  scheduler.start();
  scheduler.notify(0);
  ASSERT_TRUE(wait_for([&] { return gate_entered.load(); }));
  for (int i = 0; i < 1000; ++i) scheduler.notify(burst);  // all coalesce
  gate_release.store(true);

  EXPECT_TRUE(wait_for([&] { return burst_runs.load() >= 1; }));
  scheduler.shutdown();
  EXPECT_EQ(burst_runs.load(), 1);
  EXPECT_EQ(gate_runs.load(), 1);
}

TEST(JobSchedulerTest, NotifyDuringRunForcesExactlyOneReRun) {
  // The kRunning -> kRunningNotified edge: a readiness event landing
  // while the body executes may have been missed by it, so the task must
  // run once more — and a second notify in the same window coalesces.
  JobScheduler::Options options;
  options.workers = 1;
  JobScheduler scheduler(std::move(options));

  std::atomic<int> runs{0};
  std::atomic<bool> in_body{false};
  std::atomic<bool> release{false};
  const auto id = scheduler.add_task("self", [&] {
    runs.fetch_add(1);
    if (runs.load() == 1) {
      in_body.store(true);
      while (!release.load()) std::this_thread::yield();
    }
  });

  scheduler.start();
  scheduler.notify(id);
  ASSERT_TRUE(wait_for([&] { return in_body.load(); }));
  scheduler.notify(id);  // kRunning -> kRunningNotified
  scheduler.notify(id);  // coalesces into the pending re-run
  release.store(true);

  EXPECT_TRUE(wait_for([&] { return runs.load() >= 2; }));
  // Give a wrong implementation the chance to over-run before asserting.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.shutdown();
  EXPECT_EQ(runs.load(), 2);
}

TEST(JobSchedulerTest, ATaskNeverRunsOnTwoWorkersAtOnce) {
  // The property the event-driven tree's lock-free node state rests on.
  JobScheduler::Options options;
  options.workers = 4;
  JobScheduler scheduler(std::move(options));

  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<int> runs{0};
  const auto id = scheduler.add_task("exclusive", [&] {
    const int now = concurrent.fetch_add(1) + 1;
    int seen = max_concurrent.load();
    while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::yield();
    concurrent.fetch_sub(1);
    runs.fetch_add(1);
  });

  scheduler.start();
  std::vector<std::thread> notifiers;
  for (int t = 0; t < 4; ++t) {
    notifiers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) scheduler.notify(id);
    });
  }
  for (auto& t : notifiers) t.join();
  EXPECT_TRUE(wait_for([&] { return runs.load() >= 1; }));
  scheduler.shutdown();

  EXPECT_EQ(max_concurrent.load(), 1);
  EXPECT_GE(runs.load(), 1);
}

TEST(JobSchedulerTest, IdleWorkersStealQueuedWork) {
  // One task body wakes many siblings: all those wakes land on the
  // waking worker's own deque (the LIFO fast path), so the only way the
  // other workers ever run one is by stealing.
  JobScheduler::Options options;
  options.workers = 3;
  JobScheduler scheduler(std::move(options));

  constexpr std::size_t kChildren = 64;
  std::atomic<std::size_t> child_runs{0};
  std::mutex worker_ids_mutex;
  std::set<std::thread::id> worker_ids;
  for (std::size_t i = 0; i < kChildren; ++i) {
    scheduler.add_task("child" + std::to_string(i), [&] {
      {
        std::lock_guard<std::mutex> lock(worker_ids_mutex);
        worker_ids.insert(std::this_thread::get_id());
      }
      // Linger long enough that one worker cannot drain everything
      // before its siblings wake up and come stealing.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      child_runs.fetch_add(1);
    });
  }
  const auto fan_out = scheduler.add_task("fan-out", [&] {
    for (std::size_t i = 0; i < kChildren; ++i) scheduler.notify(i);
  });

  scheduler.start();
  scheduler.notify(fan_out);
  EXPECT_TRUE(wait_for([&] { return child_runs.load() >= kChildren; }));
  scheduler.shutdown();

  EXPECT_EQ(child_runs.load(), kChildren);
  EXPECT_GE(scheduler.steals(), 1u);
  // More than one worker actually participated.
  EXPECT_GE(worker_ids.size(), 2u);
}

TEST(JobSchedulerTest, NotifyAllStormIsHarmless) {
  // The chaos hook: storms of spurious wakes may only waste cycles.
  JobScheduler::Options options;
  options.workers = 2;
  JobScheduler scheduler(std::move(options));

  constexpr int kTasks = 16;
  std::atomic<int> work_done{0};
  for (int i = 0; i < kTasks; ++i) {
    // Each task does its "real work" exactly once; later (spurious) runs
    // find nothing to do, like an event task re-checking its channels.
    auto flag = std::make_shared<std::atomic<bool>>(false);
    scheduler.add_task("t" + std::to_string(i), [&work_done, flag] {
      bool expected = false;
      if (flag->compare_exchange_strong(expected, true)) {
        work_done.fetch_add(1);
      }
    });
  }
  scheduler.start();
  for (int storm = 0; storm < 50; ++storm) scheduler.notify_all();
  EXPECT_TRUE(wait_for([&] { return work_done.load() >= kTasks; }));
  scheduler.shutdown();
  EXPECT_EQ(work_done.load(), kTasks);
  EXPECT_GE(scheduler.tasks_run(), static_cast<std::uint64_t>(kTasks));
}

TEST(JobSchedulerTest, RegistersPerWorkerStats) {
  obs::StatsRegistry stats;
  JobScheduler::Options options;
  options.workers = 2;
  options.stats = &stats;
  options.scope = "testsched";
  JobScheduler scheduler(std::move(options));

  std::atomic<int> runs{0};
  const auto id = scheduler.add_task("only", [&] { runs.fetch_add(1); });
  scheduler.start();
  scheduler.notify(id);
  ASSERT_TRUE(wait_for([&] { return runs.load() >= 1; }));
  scheduler.shutdown();

#ifdef APPROXIOT_NO_STATS
  // Hooks compiled out: nothing registers, and that is the contract.
  EXPECT_TRUE(stats.snapshot().counters.empty());
#else
  const auto snapshot = stats.snapshot();
  ASSERT_TRUE(snapshot.counters.count("testsched/w0/runs"));
  ASSERT_TRUE(snapshot.counters.count("testsched/w1/runs"));
  ASSERT_TRUE(snapshot.counters.count("testsched/w0/steals"));
  ASSERT_TRUE(snapshot.gauges.count("testsched/w0/runq_depth"));
  EXPECT_EQ(snapshot.counters.at("testsched/w0/runs") +
                snapshot.counters.at("testsched/w1/runs"),
            scheduler.tasks_run());
#endif
}

TEST(JobSchedulerTest, ShutdownDrainsQueuedWakesAndIsIdempotent) {
  JobScheduler::Options options;
  options.workers = 2;
  JobScheduler scheduler(std::move(options));

  constexpr std::size_t kTasks = 32;
  std::atomic<std::size_t> runs{0};
  for (std::size_t i = 0; i < kTasks; ++i) {
    scheduler.add_task("t" + std::to_string(i),
                       [&runs] { runs.fetch_add(1); });
  }
  scheduler.start();
  scheduler.notify_all();
  scheduler.shutdown();  // must drain the queued wakes before joining
  EXPECT_EQ(runs.load(), kTasks);
  scheduler.shutdown();  // idempotent
  EXPECT_EQ(runs.load(), kTasks);
}

}  // namespace
}  // namespace approxiot::runtime
