#include "runtime/concurrent_tree.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/hooks.hpp"

namespace approxiot::runtime {

namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ConcurrentEdgeTree::ConcurrentEdgeTree(ConcurrentTreeConfig config,
                                       MetricsRegistry* metrics)
    : config_(std::move(config)), metrics_(metrics) {
  core::validate_edge_tree_config(config_.tree);
  const auto& widths = config_.tree.layer_widths;

  // Resolve observability sinks before anything that registers against
  // them (the executor binds lanes at stage construction time).
  stats_ = config_.stats;
  if (stats_ == nullptr && metrics_ != nullptr) stats_ = &metrics_->stats();
  tracer_ = config_.tracer;

  // Live feedback needs a control plane to publish on. When none was
  // supplied, seed one whose epoch-0 policy mirrors the tree config —
  // behaviour-neutral until the first observation publishes epoch 1.
  if (config_.adaptive.enabled) {
    if (config_.tree.engine == core::EngineKind::kNative) {
      // Native stages never bind a policy (no budget to steer): the
      // controller would publish epochs nobody applies and report a
      // fraction trajectory disconnected from reality.
      throw std::invalid_argument(
          "adaptive feedback requires a sampling engine (native stages "
          "have no budget to adapt)");
    }
    if (config_.tree.control_plane == nullptr) {
      config_.tree.control_plane = core::make_control_plane(config_.tree);
    }
    controller_ = std::make_unique<core::AdaptiveController>(
        config_.tree.sampling_fraction, config_.adaptive.controller);
  }

  // One persistent shard-execution substrate shared by every node: its
  // workers are created here, once, and per-interval sampling only
  // enqueues work on them (the ROADMAP's "persistent per-node sampling
  // workers"). An externally supplied executor wins, so callers can pool
  // several runtimes on one worker set.
  sampling_executor_ = config_.sampling_executor;
  if (sampling_executor_ == nullptr && config_.workers_per_node > 1 &&
      config_.tree.engine == core::EngineKind::kApproxIoT) {
    // Only WHS stages consume the executor; building one for SRS/native
    // trees would spawn pool threads nothing ever dispatches to.
    sampling_executor_ = core::PooledSamplingExecutor::for_seed(
        config_.workers_per_node, config_.tree.rng_seed);
    // Privately constructed substrate: safe to bind our sinks (a shared,
    // caller-owned executor may already be bound elsewhere — hands off).
    AIOT_OBS(if (sampling_executor_ != nullptr &&
                 (stats_ != nullptr || tracer_ != nullptr)) {
      sampling_executor_->bind_obs(stats_, tracer_, "executor");
    });
  }

  auto new_channel = [this]() {
    channels_.push_back(std::make_unique<BoundedChannel<IntervalMessage>>(
        config_.channel_capacity, config_.backpressure));
    return channels_.back().get();
  };

  // Source -> leaf channels.
  leaf_inputs_.reserve(widths[0]);
  for (std::size_t i = 0; i < widths[0]; ++i) {
    leaf_inputs_.push_back(new_channel());
  }

  // Nodes, layer by layer; the root is the single node of layer n.
  nodes_.resize(widths.size() + 1);
  for (std::size_t layer = 0; layer <= widths.size(); ++layer) {
    const std::size_t width = layer < widths.size() ? widths[layer] : 1;
    nodes_[layer].resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      core::StageConfig sc =
          core::edge_tree_stage_config(config_.tree, layer, i);
      sc.executor = sampling_executor_;
      NodeRuntime& node = nodes_[layer][i];
      node.stage = core::make_pipeline_stage(sc);
      node.layer = layer;
      node.fault = std::make_unique<FaultState>();
      node.output = layer < widths.size() ? new_channel() : nullptr;
    }
  }

  if (config_.chaos.enabled) {
    if (config_.chaos.kill_every_n_intervals == 0) {
      throw std::invalid_argument(
          "chaos: kill_every_n_intervals must be >= 1");
    }
    chaos_rng_.reseed(config_.chaos.seed);
  }

  // Wiring. Leaves read the source channels; node i of layer L feeds
  // parent i * next_width / width (the EdgeTree block mapping), and a
  // parent's inputs keep child-index order so Ψ ordering — and therefore
  // every RNG draw — matches the sequential tree exactly.
  for (std::size_t i = 0; i < widths[0]; ++i) {
    nodes_[0][i].inputs.push_back(leaf_inputs_[i]);
  }
  for (std::size_t layer = 0; layer < widths.size(); ++layer) {
    const std::size_t next_width =
        layer + 1 < widths.size() ? widths[layer + 1] : 1;
    for (std::size_t i = 0; i < widths[layer]; ++i) {
      const std::size_t parent = i * next_width / widths[layer];
      nodes_[layer + 1][parent].inputs.push_back(nodes_[layer][i].output);
    }
  }

  // Register stats and trace tracks before any worker exists — the node
  // loops read their NodeRuntime sinks without synchronisation.
  bind_observability();

  if (config_.runtime_mode == RuntimeMode::kEvents) {
    start_event_runtime();
    return;
  }

  // kThreads: one long-running worker per node; the pool is sized to
  // match, so each node loop owns a thread for the runtime's lifetime.
  std::size_t total_nodes = 0;
  for (const auto& layer : nodes_) total_nodes += layer.size();
  pool_ = std::make_unique<ThreadPool>(total_nodes, config_.tree.rng_seed);
  for (auto& layer : nodes_) {
    for (NodeRuntime& node : layer) {
      pool_->submit([this, &node](WorkerContext&) { node_loop(node); });
    }
  }
}

void ConcurrentEdgeTree::start_event_runtime() {
  std::size_t total_nodes = 0;
  for (const auto& layer : nodes_) total_nodes += layer.size();

  std::size_t workers = config_.event_workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, total_nodes);

  JobScheduler::Options options;
  options.workers = workers;
  options.stats = stats_;
  options.tracer = tracer_;
  options.scope = "tree/sched";
  scheduler_ = std::make_unique<JobScheduler>(std::move(options));

  // One task per node. The task body makes all possible progress and
  // parks; channel readiness re-queues it. Registration happens before
  // start(), so workers never see a half-built task table.
  for (std::size_t layer = 0; layer < nodes_.size(); ++layer) {
    for (std::size_t i = 0; i < nodes_[layer].size(); ++i) {
      NodeRuntime& node = nodes_[layer][i];
      node.event = std::make_unique<EventState>();
      node.event->held.resize(node.inputs.size());
      node.event->finished.assign(node.inputs.size(), false);
      core::PipelineStage* stage = node.stage.get();
      node.event->task = scheduler_->add_task(
          node_scope(layer, i), [this, &node] { event_pump(node); },
          [stage] {
            return static_cast<std::int64_t>(stage->policy_epoch());
          });
    }
  }

  // Readiness wiring: a push into (or close of) any input wakes the
  // consumer; a pop from (or close of) a node's output wakes the
  // producer so a parked forward can be re-offered. Set before start()
  // — waiter installation is not synchronised against channel traffic.
  for (auto& layer : nodes_) {
    for (NodeRuntime& node : layer) {
      const JobScheduler::TaskId task = node.event->task;
      for (auto* input : node.inputs) {
        input->set_readable_waiter(
            [this, task] { scheduler_->notify(task); });
      }
      if (node.output != nullptr) {
        node.output->set_writable_waiter(
            [this, task] { scheduler_->notify(task); });
      }
    }
  }

  scheduler_->start();
}

std::string ConcurrentEdgeTree::node_scope(std::size_t layer,
                                           std::size_t index) const {
  if (layer + 1 == nodes_.size()) return "tree/root";
  return "tree/L" + std::to_string(layer) + "/n" + std::to_string(index);
}

std::int64_t ConcurrentEdgeTree::obs_now_us() const {
  return tracer_ != nullptr ? tracer_->now_us() : now_us();
}

void ConcurrentEdgeTree::bind_observability() {
  AIOT_OBS(
      if (stats_ == nullptr && tracer_ == nullptr) return;
      for (std::size_t layer = 0; layer < nodes_.size(); ++layer) {
        for (std::size_t i = 0; i < nodes_[layer].size(); ++i) {
          NodeRuntime& node = nodes_[layer][i];
          const std::string scope = node_scope(layer, i);
          if (stats_ != nullptr) {
            node.exec_us = &stats_->histogram(scope + "/exec_us");
            node.wait_us = &stats_->histogram(scope + "/wait_us");
            node.occupancy =
                &stats_->linear_histogram(scope + "/occupancy", 0.0, 1.0, 20);
            node.items_in = &stats_->counter(scope + "/items_in");
            node.intervals = &stats_->counter(scope + "/intervals");
            for (std::size_t c = 0; c < node.inputs.size(); ++c) {
              const std::string edge = scope + "/in" + std::to_string(c);
              ChannelStats cs;
              cs.depth = &stats_->gauge(edge + "/depth");
              cs.block_wait_us = &stats_->histogram(edge + "/block_wait_us");
              cs.dropped = &stats_->counter(edge + "/dropped");
              node.inputs[c]->bind_stats(cs);
            }
          }
          if (tracer_ != nullptr) node.track = tracer_->register_track(scope);
        }
      }
      if (stats_ != nullptr) {
        windows_closed_ = &stats_->counter("tree/windows_closed");
      }
      if (tracer_ != nullptr) {
        control_track_ = tracer_->register_track("tree/control");
      }
      // Epoch-publish events: observed at the plane itself, so manual
      // publish_fraction() calls are recorded exactly like the adaptive
      // loop's. (Rebinds any hook a caller set on a shared plane.)
      if (config_.tree.control_plane != nullptr) {
        obs::Counter* publishes =
            stats_ != nullptr ? &stats_->counter("tree/policy/publishes")
                              : nullptr;
        obs::Gauge* epoch_gauge =
            stats_ != nullptr ? &stats_->gauge("tree/policy/epoch") : nullptr;
        obs::Gauge* fraction_gauge =
            stats_ != nullptr ? &stats_->gauge("tree/policy/fraction")
                              : nullptr;
        config_.tree.control_plane->set_publish_hook(
            [publishes, epoch_gauge, fraction_gauge, tracer = tracer_,
             track = control_track_](const core::SamplingPolicy& policy) {
              if (publishes != nullptr) publishes->increment();
              if (epoch_gauge != nullptr) {
                epoch_gauge->set(static_cast<double>(policy.epoch));
              }
              if (fraction_gauge != nullptr) {
                fraction_gauge->set(policy.budget.sampling_fraction);
              }
              if (tracer != nullptr &&
                  track != obs::ScopedSpan::kNoTrack) {
                tracer->instant(track, "policy-publish",
                                static_cast<std::int64_t>(policy.epoch));
              }
            });
      });
}

ConcurrentEdgeTree::~ConcurrentEdgeTree() { stop(); }

std::size_t ConcurrentEdgeTree::leaf_count() const noexcept {
  return config_.tree.layer_widths.front();
}

std::size_t ConcurrentEdgeTree::node_count() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : nodes_) n += layer.size();
  return n;
}

void ConcurrentEdgeTree::push_interval(
    const std::vector<std::vector<Item>>& items_per_leaf) {
  if (items_per_leaf.size() != leaf_count()) {
    throw std::invalid_argument(
        "push_interval() expects one item vector per leaf");
  }

  // One lock across seq assignment AND the channel pushes: two producers
  // interleaving their pushes would deliver seqs out of order, and a
  // receiver treats a lower-seq message arriving late as stale.
  std::lock_guard<std::mutex> push_lock(push_mutex_);

  std::int64_t seq = 0;
  std::uint64_t total_items = 0;
  for (const auto& items : items_per_leaf) total_items += items.size();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopped_) {
      throw std::logic_error("push_interval() after stop()");
    }
    seq = next_interval_++;
    items_ingested_ += total_items;
    push_times_us_[seq] = now_us();
  }

  // Pushes happen outside the state lock: under kBlock a saturated leaf
  // parks the producer right here — that is the backpressure surface.
  for (std::size_t i = 0; i < items_per_leaf.size(); ++i) {
    IntervalMessage msg;
    msg.interval = seq;
    if (!items_per_leaf[i].empty()) {
      core::ItemBundle bundle;
      bundle.items = items_per_leaf[i];
      msg.bundles.push_back(std::move(bundle));
    }
    leaf_inputs_[i]->push(std::move(msg));
  }

  if (metrics_ != nullptr) {
    metrics_->counter("runtime.intervals_pushed").increment();
    metrics_->counter("runtime.items_ingested").increment(total_items);
  }
}

void ConcurrentEdgeTree::drain() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  drained_cv_.wait(lock, [this] {
    return stopped_ ||
           intervals_completed_ >= static_cast<std::uint64_t>(next_interval_);
  });
}

void ConcurrentEdgeTree::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  for (auto* channel : leaf_inputs_) channel->close();
  if (pool_ != nullptr) {
    pool_->shutdown();
  } else {
    // kEvents: the closes cascade layer by layer (each finishing node
    // closes its output, waking its parent) until the root task observes
    // end-of-stream; only then is the worker pool quiescent and safe to
    // join. Everything still in flight is flushed through, exactly like
    // the thread-per-node shutdown.
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      drained_cv_.wait(lock, [this] { return root_finished_; });
    }
    scheduler_->shutdown();
  }
  drained_cv_.notify_all();

  if (metrics_ != nullptr) {
    const TreeMetrics m = metrics();
    metrics_->gauge("runtime.messages_dropped")
        .set(static_cast<double>(m.messages_dropped));
    for (std::size_t layer = 0; layer < m.items_forwarded_per_layer.size();
         ++layer) {
      metrics_
          ->gauge("runtime.items_forwarded.layer" + std::to_string(layer))
          .set(static_cast<double>(m.items_forwarded_per_layer[layer]));
    }
  }
}

core::ApproxResult ConcurrentEdgeTree::close_window(double confidence) {
  [[maybe_unused]] std::int64_t t_close = 0;
  AIOT_OBS(t_close = obs_now_us(););
  // Under kDropNewest a shed trailing interval never completes, so a full
  // drain() could wait forever; the window then closes over whatever
  // reached the root (the drop already was a sampling decision).
  if (config_.backpressure == BackpressurePolicy::kBlock) drain();
  core::ApproxResult result;
  {
    std::lock_guard<std::mutex> lock(theta_mutex_);
    result = core::approximate_query(theta_, confidence);
    theta_.clear();
  }
  // Loss accounting is per window, same semantics as EdgeTree: report and
  // reset; the next window opens degraded only if some node is still dead.
  bool any_dead = false;
  for (const auto& layer : nodes_) {
    for (const NodeRuntime& node : layer) {
      if (node.fault->dead.load(std::memory_order_acquire)) any_dead = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    result.lost_weight = lost_weight_;
    result.lost_items = lost_items_;
    result.degraded = window_degraded_ || lost_items_ > 0;
    lost_weight_ = 0.0;
    lost_items_ = 0;
    window_degraded_ = any_dead;
  }
  AIOT_OBS(
      if (windows_closed_ != nullptr) windows_closed_->increment();
      if (tracer_ != nullptr &&
          control_track_ != obs::ScopedSpan::kNoTrack) {
        tracer_->complete(control_track_, "window-close", t_close,
                          obs_now_us(),
                          static_cast<std::int64_t>(policy_epoch()));
      });
  // §IV-B: the closed window's error bound drives the next policy epoch.
  // Outside theta_mutex_ — publishing must never block the root worker's
  // Θ additions.
  if (controller_ != nullptr) observe_and_publish(result);
  return result;
}

void ConcurrentEdgeTree::observe_and_publish(
    const core::ApproxResult& result) {
  // An empty window (no samples at all) carries no error signal the
  // controller should act on — relative_margin() would be infinite and
  // spuriously ramp the fraction to max.
  if (result.sampled_items == 0) return;
  // adaptive_mutex_ spans observe AND compare-and-publish: a mid-window
  // observation racing a close_window() observation must publish in the
  // order the controller moved, or the plane could settle on the older
  // of two proposals while controller_->fraction() reports the newer.
  std::lock_guard<std::mutex> lock(adaptive_mutex_);
  const double next = controller_->observe(result.sum);
  intervals_since_observation_ = 0;
  auto& plane = config_.tree.control_plane;
  if (plane != nullptr &&
      plane->snapshot()->budget.sampling_fraction != next) {
    const core::PolicyEpoch epoch = plane->publish_fraction(next);
    if (metrics_ != nullptr) {
      metrics_->counter("runtime.policy_publishes").increment();
      metrics_->gauge("runtime.policy_epoch")
          .set(static_cast<double>(epoch));
      metrics_->gauge("runtime.policy_fraction").set(next);
    }
  }
}

void ConcurrentEdgeTree::kick() {
  if (scheduler_ != nullptr) scheduler_->notify_all();
}

core::PolicyEpoch ConcurrentEdgeTree::publish_fraction(double end_to_end) {
  if (config_.tree.control_plane == nullptr) {
    throw std::logic_error("publish_fraction() without a control plane");
  }
  return config_.tree.control_plane->publish_fraction(end_to_end);
}

double ConcurrentEdgeTree::adaptive_fraction() const {
  if (controller_ == nullptr) return config_.tree.sampling_fraction;
  std::lock_guard<std::mutex> lock(adaptive_mutex_);
  return controller_->fraction();
}

std::vector<double> ConcurrentEdgeTree::adaptive_history() const {
  if (controller_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(adaptive_mutex_);
  return controller_->history();
}

core::ApproxResult ConcurrentEdgeTree::run_query(double confidence) const {
  core::ApproxResult result;
  {
    std::lock_guard<std::mutex> lock(theta_mutex_);
    result = core::approximate_query(theta_, confidence);
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  result.lost_weight = lost_weight_;
  result.lost_items = lost_items_;
  result.degraded = window_degraded_ || lost_items_ > 0;
  return result;
}

ConcurrentEdgeTree::TreeMetrics ConcurrentEdgeTree::metrics() const {
  TreeMetrics m;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    m.items_ingested = items_ingested_;
    m.items_at_root = items_at_root_;
    m.intervals_pushed = static_cast<std::uint64_t>(next_interval_);
    m.intervals_completed = intervals_completed_;
  }
  for (const auto& channel : channels_) {
    m.messages_dropped += channel->dropped();
  }
  // Per-layer forwarded counts (excluding the root, matching EdgeTree).
  for (std::size_t layer = 0; layer + 1 < nodes_.size(); ++layer) {
    std::uint64_t forwarded = 0;
    for (const NodeRuntime& node : nodes_[layer]) {
      forwarded += node.stage->metrics().items_out;
    }
    m.items_forwarded_per_layer.push_back(forwarded);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Fault injection & recovery

ConcurrentEdgeTree::NodeRuntime& ConcurrentEdgeTree::node_at(
    std::size_t layer, std::size_t index) {
  if (layer >= nodes_.size() || index >= nodes_[layer].size()) {
    throw std::invalid_argument("concurrent tree: no node at (layer, index)");
  }
  return nodes_[layer][index];
}

const ConcurrentEdgeTree::NodeRuntime& ConcurrentEdgeTree::node_at(
    std::size_t layer, std::size_t index) const {
  return const_cast<ConcurrentEdgeTree*>(this)->node_at(layer, index);
}

void ConcurrentEdgeTree::kill_node(std::size_t layer, std::size_t index,
                                   bool capture) {
  NodeRuntime& node = node_at(layer, index);
  if (node.output == nullptr) {
    throw std::invalid_argument(
        "the root cannot be killed (stop() the tree instead)");
  }
  FaultState& fault = *node.fault;
  if (fault.dead.load(std::memory_order_acquire)) return;  // idempotent
  // Request order matters: the capture flag must be visible before the
  // worker observes dead == true, which the release store guarantees.
  fault.capture_requested.store(capture, std::memory_order_relaxed);
  fault.dead.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++kills_;
    window_degraded_ = true;
  }
  AIOT_OBS(
      if (stats_ != nullptr) stats_->counter("tree/faults/kills").increment();
      if (tracer_ != nullptr && control_track_ != obs::ScopedSpan::kNoTrack) {
        tracer_->instant(control_track_, "node-kill",
                         static_cast<std::int64_t>((layer << 16) | index));
      });
}

void ConcurrentEdgeTree::revive_node(std::size_t layer, std::size_t index,
                                     bool restore) {
  NodeRuntime& node = node_at(layer, index);
  FaultState& fault = *node.fault;
  if (!fault.dead.load(std::memory_order_acquire)) return;  // idempotent
  // A capture the worker never serviced (killed and revived between two
  // of its intervals) must be cancelled: a stale self-capture AFTER
  // revival would pass live state off as the at-death snapshot.
  fault.capture_requested.store(false, std::memory_order_relaxed);
  bool has_capture = false;
  {
    std::lock_guard<std::mutex> lock(fault.mutex);
    has_capture = fault.saved.has_value();
  }
  fault.restore_requested.store(restore && has_capture,
                                std::memory_order_relaxed);
  fault.dead.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++revives_;
  }
  AIOT_OBS(
      if (stats_ != nullptr) {
        stats_->counter("tree/faults/revives").increment();
      } if (tracer_ != nullptr &&
            control_track_ != obs::ScopedSpan::kNoTrack) {
        tracer_->instant(control_track_, "node-revive",
                         static_cast<std::int64_t>((layer << 16) | index));
      });
}

bool ConcurrentEdgeTree::node_dead(std::size_t layer,
                                   std::size_t index) const {
  return node_at(layer, index).fault->dead.load(std::memory_order_acquire);
}

ConcurrentEdgeTree::FaultMetrics ConcurrentEdgeTree::fault_metrics() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  FaultMetrics m;
  m.kills = kills_;
  m.revives = revives_;
  m.lost_items = total_lost_items_;
  m.lost_weight = total_lost_weight_;
  return m;
}

void ConcurrentEdgeTree::absorb_dead_interval(
    NodeRuntime& node, const std::vector<core::ItemBundle>& psi) {
  // Σ over items of W^in(source) — the same Eq. 8 identity EdgeTree's
  // swallow_lost relies on: interior bundles carry a weight per stratum
  // and leaf input is raw weight-1 data, so the sum equals the original
  // delivered count of the dead subtree, exactly.
  double weight = 0.0;
  std::uint64_t items = 0;
  for (const core::ItemBundle& bundle : psi) {
    for (const Item& item : bundle.items) {
      weight += bundle.w_in.get(item.source);
      ++items;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    lost_weight_ += weight;
    lost_items_ += items;
    total_lost_weight_ += weight;
    total_lost_items_ += items;
    window_degraded_ = true;
  }
  AIOT_OBS(if (stats_ != nullptr && items > 0) {
    stats_->counter("tree/faults/lost_items").increment(items);
    stats_->gauge("tree/faults/lost_weight").set(total_lost_weight_);
  });
}

void ConcurrentEdgeTree::chaos_step() {
  // Root-worker-only: complete_root_interval is called exclusively from
  // the root node's thread (kThreads) or task (kEvents — a task never
  // runs on two workers at once), so this state is single-threaded.
  std::uint64_t completed = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    completed = intervals_completed_;
  }
  for (auto it = chaos_pending_.begin(); it != chaos_pending_.end();) {
    if (std::get<2>(*it) <= completed) {
      revive_node(std::get<0>(*it), std::get<1>(*it),
                  config_.chaos.checkpoint_restore);
      it = chaos_pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (++chaos_since_kill_ < config_.chaos.kill_every_n_intervals) return;
  chaos_since_kill_ = 0;
  // Victim: a uniformly random alive non-root node.
  std::vector<std::pair<std::size_t, std::size_t>> alive;
  for (std::size_t layer = 0; layer + 1 < nodes_.size(); ++layer) {
    for (std::size_t i = 0; i < nodes_[layer].size(); ++i) {
      if (!nodes_[layer][i].fault->dead.load(std::memory_order_acquire)) {
        alive.emplace_back(layer, i);
      }
    }
  }
  if (alive.empty()) return;
  const auto [layer, index] = alive[chaos_rng_.next_below(alive.size())];
  kill_node(layer, index, config_.chaos.checkpoint_restore);
  chaos_pending_.emplace_back(layer, index,
                              completed + config_.chaos.dead_intervals);
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
//
// Section order (shared byte-for-byte with core::EdgeTree::checkpoint so
// snapshots are interchangeable between the two executions): fingerprint,
// live end-to-end fraction, control plane, stages in layer-major order
// with the root last, Θ, tree counters, fault state.

core::Checkpoint ConcurrentEdgeTree::checkpoint() const {
  core::CheckpointWriter writer(core::CheckpointKind::kTree);
  core::write_tree_fingerprint(writer, config_.tree);
  writer.put_double(config_.tree.sampling_fraction);
  core::write_control_plane(writer, config_.tree.control_plane.get());
  for (const auto& layer : nodes_) {
    for (const NodeRuntime& node : layer) node.stage->save_state(writer);
  }
  {
    std::lock_guard<std::mutex> lock(theta_mutex_);
    writer.put_theta(theta_);
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    writer.put_u64(items_ingested_);
    writer.put_u64(items_at_root_);
  }
  // Dead flags take the detach-flag slots: one bool per node, layer-major,
  // root last — a dead node restores as a detached subtree in EdgeTree
  // and vice versa.
  for (const auto& layer : nodes_) {
    for (const NodeRuntime& node : layer) {
      writer.put_bool(node.fault->dead.load(std::memory_order_acquire));
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    writer.put_double(lost_weight_);
    writer.put_u64(lost_items_);
    writer.put_bool(window_degraded_);
  }
  return writer.finish();
}

void ConcurrentEdgeTree::restore(const core::Checkpoint& checkpoint) {
  core::CheckpointReader reader(checkpoint, core::CheckpointKind::kTree);
  core::verify_tree_fingerprint(reader, config_.tree);
  config_.tree.sampling_fraction = reader.get_double();
  core::restore_control_plane(reader, config_.tree.control_plane.get());
  for (auto& layer : nodes_) {
    for (NodeRuntime& node : layer) node.stage->restore_state(reader);
  }
  {
    std::lock_guard<std::mutex> lock(theta_mutex_);
    reader.get_theta(theta_);
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    items_ingested_ = reader.get_u64();
    items_at_root_ = reader.get_u64();
  }
  for (auto& layer : nodes_) {
    for (NodeRuntime& node : layer) {
      FaultState& fault = *node.fault;
      fault.capture_requested.store(false, std::memory_order_relaxed);
      fault.restore_requested.store(false, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(fault.mutex);
        fault.saved.reset();
      }
      fault.dead.store(reader.get_bool(), std::memory_order_release);
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    lost_weight_ = reader.get_double();
    lost_items_ = reader.get_u64();
    window_degraded_ = reader.get_bool();
  }
  reader.expect_exhausted();
}

void ConcurrentEdgeTree::node_loop(NodeRuntime& node) {
  const std::size_t n_inputs = node.inputs.size();
  std::vector<std::optional<IntervalMessage>> held(n_inputs);
  std::vector<bool> finished(n_inputs, false);

  for (std::int64_t interval = 0;; ++interval) {
    [[maybe_unused]] std::int64_t t_phase = 0;
    AIOT_OBS(t_phase = obs_now_us(););

    // Assemble this interval's Ψ: one contribution per child, in child
    // order. A child whose message for this interval was shed (drop
    // policy) shows up as a held message for a later interval — it then
    // contributes nothing now, exactly as if its sensors were silent.
    std::vector<core::ItemBundle> psi;
    for (std::size_t c = 0; c < n_inputs; ++c) {
      if (held[c].has_value()) {
        if (held[c]->interval == interval) {
          for (core::ItemBundle& bundle : held[c]->bundles) {
            psi.push_back(std::move(bundle));
          }
          held[c].reset();
        }
        continue;
      }
      if (finished[c]) continue;
      for (;;) {
        auto msg = node.inputs[c]->pop();
        if (!msg.has_value()) {
          finished[c] = true;
          break;
        }
        if (msg->interval < interval) continue;  // stale; cannot happen
        if (msg->interval == interval) {
          for (core::ItemBundle& bundle : msg->bundles) {
            psi.push_back(std::move(bundle));
          }
        } else {
          held[c] = std::move(*msg);
        }
        break;
      }
    }

    // End of stream: every input closed and drained, nothing held back,
    // nothing gathered. Deciding this *after* gathering keeps the last
    // real interval in and phantom trailing intervals out — each node
    // processes exactly the intervals that were fed to it, like EdgeTree.
    bool all_finished = true;
    bool any_held = false;
    for (std::size_t c = 0; c < n_inputs; ++c) {
      all_finished = all_finished && finished[c];
      any_held = any_held || held[c].has_value();
    }
    if (all_finished && !any_held && psi.empty()) break;

    // The gather phase is over: everything between t_phase and here was
    // spent blocked on (or checking) the input channels.
    AIOT_OBS(
        if (node.wait_us != nullptr || node.track != obs::ScopedSpan::kNoTrack ||
            node.occupancy != nullptr || node.items_in != nullptr) {
          const std::int64_t t_ready = obs_now_us();
          if (node.wait_us != nullptr) {
            node.wait_us->record(static_cast<double>(t_ready - t_phase));
          }
          if (tracer_ != nullptr &&
              node.track != obs::ScopedSpan::kNoTrack && t_ready > t_phase) {
            tracer_->complete(node.track, "channel-wait", t_phase, t_ready);
          }
          if (node.occupancy != nullptr && n_inputs > 0) {
            double depth = 0.0;
            double capacity = 0.0;
            for (auto* input : node.inputs) {
              depth += static_cast<double>(input->size());
              capacity += static_cast<double>(input->capacity());
            }
            node.occupancy->record(capacity > 0.0 ? depth / capacity : 0.0);
          }
          if (node.items_in != nullptr) {
            std::uint64_t gathered = 0;
            for (const core::ItemBundle& bundle : psi) {
              gathered += bundle.items.size();
            }
            node.items_in->increment(gathered);
          }
          if (node.intervals != nullptr) node.intervals->increment();
          t_phase = t_ready;  // the execute phase starts here
        });

    // Run the stage even on an empty Ψ — interval bookkeeping (budget
    // history, snapshot periods) must advance exactly as in EdgeTree.
    std::optional<IntervalMessage> out =
        execute_node_interval(node, interval, psi);
    if (out.has_value()) node.output->push(std::move(*out));
  }

  if (node.output != nullptr) node.output->close();
}

std::optional<IntervalMessage> ConcurrentEdgeTree::execute_node_interval(
    NodeRuntime& node, std::int64_t interval,
    const std::vector<core::ItemBundle>& psi) {
  const bool is_root = node.output == nullptr;

  // Fault gate. All stage access stays on this worker — the only thread
  // that ever touches node.stage — so capture/restore need no stage lock:
  // kill_node/revive_node only flip request flags, and the dead flag's
  // release/acquire pairing publishes them to us.
  FaultState& fault = *node.fault;
  if (fault.dead.load(std::memory_order_acquire)) {
    if (fault.capture_requested.exchange(false, std::memory_order_acq_rel)) {
      // Self-capture at the moment of death: the stage state after the
      // last interval it completed alive.
      core::Checkpoint saved = core::checkpoint_stage(*node.stage);
      std::lock_guard<std::mutex> lock(fault.mutex);
      fault.saved = std::move(saved);
    }
    absorb_dead_interval(node, psi);
    if (is_root) {
      // A dead root still completes the interval (drain() must not hang)
      // — it just folds nothing into Θ.
      complete_root_interval(interval);
      return std::nullopt;
    }
    // Forward an empty message so the parent's interval alignment — and
    // the end-of-stream cascade — survive the outage.
    IntervalMessage out;
    out.interval = interval;
    return out;
  }
  if (fault.restore_requested.exchange(false, std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(fault.mutex);
    if (fault.saved.has_value()) {
      core::restore_stage(*node.stage, *fault.saved);
    }
  }

  [[maybe_unused]] std::int64_t t_phase = 0;
  AIOT_OBS(t_phase = obs_now_us(););

  if (is_root) {
    std::uint64_t arrived = 0;
    for (const core::ItemBundle& bundle : psi) {
      arrived += bundle.items.size();
    }
    std::vector<core::SampledBundle> outputs =
        node.stage->process_interval(psi);
    AIOT_OBS(
        const std::int64_t epoch =
            static_cast<std::int64_t>(node.stage->policy_epoch());
        const std::int64_t t_done = obs_now_us();
        if (node.exec_us != nullptr) {
          node.exec_us->record(static_cast<double>(t_done - t_phase));
        }
        if (tracer_ != nullptr &&
            node.track != obs::ScopedSpan::kNoTrack) {
          tracer_->complete(node.track, "stage-execute", t_phase, t_done,
                            epoch);
        }
        t_phase = t_done;);
    {
      std::lock_guard<std::mutex> lock(theta_mutex_);
      for (const core::SampledBundle& bundle : outputs) {
        theta_.add(bundle);
      }
    }
    AIOT_OBS(
        if (tracer_ != nullptr &&
            node.track != obs::ScopedSpan::kNoTrack) {
          tracer_->complete(
              node.track, "root-merge", t_phase, obs_now_us(),
              static_cast<std::int64_t>(node.stage->policy_epoch()));
        });
    if (config_.root_tap) {
      for (const core::SampledBundle& bundle : outputs) {
        config_.root_tap(bundle);
      }
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      items_at_root_ += arrived;
    }
    complete_root_interval(interval);
    return std::nullopt;
  }

  IntervalMessage out;
  out.interval = interval;
  std::vector<core::SampledBundle> outputs =
      node.stage->process_interval(psi);
  AIOT_OBS(
      if (node.exec_us != nullptr ||
          node.track != obs::ScopedSpan::kNoTrack) {
        const std::int64_t t_done = obs_now_us();
        if (node.exec_us != nullptr) {
          node.exec_us->record(static_cast<double>(t_done - t_phase));
        }
        if (tracer_ != nullptr &&
            node.track != obs::ScopedSpan::kNoTrack) {
          tracer_->complete(
              node.track, "stage-execute", t_phase, t_done,
              static_cast<std::int64_t>(node.stage->policy_epoch()));
        }
      });
  out.bundles.reserve(outputs.size());
  for (core::SampledBundle& bundle : outputs) {
    out.bundles.push_back(std::move(bundle).to_bundle());
  }
  return out;
}

void ConcurrentEdgeTree::event_pump(NodeRuntime& node) {
  EventState& ev = *node.event;
  if (ev.done) return;  // late spurious wake after end-of-stream

  for (;;) {
    // Phase 0: a forward parked on a full downstream channel (kBlock)
    // must leave before anything else — output order is interval order.
    if (ev.pending_out.has_value()) {
      if (node.output->try_push_from(*ev.pending_out)) {
        ev.pending_out.reset();
      } else if (node.output->closed()) {
        ev.pending_out.reset();  // undeliverable, same as a failed push()
      } else {
        return;  // parked; the consumer's next pop wakes us
      }
    }

    // Phase 1: resolve inputs for ev.interval strictly in child order,
    // parking at the FIRST unready one (not skipping ahead keeps Ψ — and
    // every RNG draw — bit-identical to the thread-per-node gather).
    // Identical per-child semantics to node_loop: a held later-interval
    // message means the child contributes nothing this interval.
    while (ev.gather_cursor < node.inputs.size()) {
      const std::size_t c = ev.gather_cursor;
      if (ev.held[c].has_value()) {
        if (ev.held[c]->interval == ev.interval) {
          for (core::ItemBundle& bundle : ev.held[c]->bundles) {
            ev.psi.push_back(std::move(bundle));
          }
          ev.held[c].reset();
        }
        ++ev.gather_cursor;
        continue;
      }
      if (ev.finished[c]) {
        ++ev.gather_cursor;
        continue;
      }
      bool resolved = false;
      for (;;) {
        auto msg = node.inputs[c]->try_pop();
        if (!msg.has_value()) {
          if (node.inputs[c]->drained()) {
            ev.finished[c] = true;
            resolved = true;
          }
          break;
        }
        if (msg->interval < ev.interval) continue;  // stale; cannot happen
        if (msg->interval == ev.interval) {
          for (core::ItemBundle& bundle : msg->bundles) {
            ev.psi.push_back(std::move(bundle));
          }
        } else {
          ev.held[c] = std::move(*msg);
        }
        resolved = true;
        break;
      }
      if (!resolved) return;  // parked on input c; its next push wakes us
      ++ev.gather_cursor;
    }

    // End-of-stream test — same placement as node_loop: after gathering,
    // so the last real interval is in and phantom trailing ones are out.
    bool all_finished = true;
    bool any_held = false;
    for (std::size_t c = 0; c < node.inputs.size(); ++c) {
      all_finished = all_finished && ev.finished[c];
      any_held = any_held || ev.held[c].has_value();
    }
    if (all_finished && !any_held && ev.psi.empty()) {
      ev.done = true;
      if (node.output != nullptr) {
        node.output->close();  // cascades the shutdown to the parent
      } else {
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          root_finished_ = true;
        }
        drained_cv_.notify_all();  // stop() waits for the root to finish
      }
      return;
    }

    AIOT_OBS(
        if (node.occupancy != nullptr && !node.inputs.empty()) {
          double depth = 0.0;
          double capacity = 0.0;
          for (auto* input : node.inputs) {
            depth += static_cast<double>(input->size());
            capacity += static_cast<double>(input->capacity());
          }
          node.occupancy->record(capacity > 0.0 ? depth / capacity : 0.0);
        } if (node.items_in != nullptr) {
          std::uint64_t gathered = 0;
          for (const core::ItemBundle& bundle : ev.psi) {
            gathered += bundle.items.size();
          }
          node.items_in->increment(gathered);
        } if (node.intervals != nullptr) node.intervals->increment(););

    std::optional<IntervalMessage> out =
        execute_node_interval(node, ev.interval, ev.psi);
    ev.psi.clear();
    ev.gather_cursor = 0;
    ++ev.interval;

    if (out.has_value()) {
      if (config_.backpressure == BackpressurePolicy::kBlock) {
        // Offer via the pending slot so a full channel parks us instead
        // of blocking a pool worker (which could deadlock the pool).
        ev.pending_out = std::move(out);
      } else {
        // kDropNewest never blocks: push() sheds at a full channel and
        // counts the loss, exactly like the thread-per-node runtime.
        node.output->push(std::move(*out));
      }
    }
  }
}

void ConcurrentEdgeTree::complete_root_interval(std::int64_t interval) {
  std::int64_t latency_us = -1;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++intervals_completed_;
    auto it = push_times_us_.find(interval);
    if (it != push_times_us_.end()) {
      latency_us = now_us() - it->second;
      push_times_us_.erase(it);
    }
  }
  drained_cv_.notify_all();

  if (metrics_ != nullptr) {
    metrics_->counter("runtime.intervals_completed").increment();
    if (latency_us >= 0) {
      metrics_->histogram("runtime.interval_latency_us")
          .record(static_cast<double>(latency_us));
    }
  }

  // Built-in chaos: kill/revive decisions ride the root's own interval
  // completions, so the fault schedule is deterministic per seed.
  if (config_.chaos.enabled) chaos_step();

  // Mid-window feedback (§IV-B live): every N completed root intervals,
  // observe the running window's confidence interval and let the
  // controller republish — from the root's own thread, while every other
  // worker keeps flowing. Upstream nodes adopt the new epoch at their
  // next interval boundary: the feedback edge is out-of-band, carried by
  // the control plane instead of the data channels.
  if (controller_ != nullptr &&
      config_.adaptive.intervals_per_observation > 0) {
    bool due = false;
    {
      std::lock_guard<std::mutex> lock(adaptive_mutex_);
      due = ++intervals_since_observation_ >=
            config_.adaptive.intervals_per_observation;
    }
    if (due) observe_and_publish(run_query(config_.adaptive.confidence));
  }
}

}  // namespace approxiot::runtime
