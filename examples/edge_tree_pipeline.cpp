// Edge-tree pipeline: the paper's Fig. 1 topology in memory.
//
// Eight simulated sources feed a 4-2-1 edge tree; every node runs the
// weighted hierarchical sampling algorithm independently; the root closes
// a query window each second and prints the approximate SUM with error
// bounds next to the exact answer.
//
// Run: ./build/examples/edge_tree_pipeline [fraction=0.2] [windows=8]
#include <cstdio>

#include "common/config.hpp"
#include "core/pipeline.hpp"
#include "workload/generators.hpp"
#include "workload/ground_truth.hpp"
#include "workload/substream.hpp"

using namespace approxiot;

int main(int argc, char** argv) {
  auto config = Config::from_args({argv + 1, argv + argc});
  if (!config) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const double fraction = config.value().get_double_or("fraction", 0.20);
  const auto windows =
      static_cast<std::size_t>(config.value().get_int_or("windows", 8));

  core::EdgeTreeConfig tree_config;
  tree_config.engine = core::EngineKind::kApproxIoT;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = fraction;
  tree_config.rng_seed = 20180702;  // ICDCS'18 presentation day
  core::EdgeTree tree(tree_config);

  workload::StreamGenerator gen(workload::gaussian_quad(5000.0), 99);
  workload::GroundTruth truth;

  std::printf("edge tree 4-2-1, end-to-end fraction %.0f%%\n",
              fraction * 100.0);
  std::printf("%-8s%16s%16s%14s%12s%10s\n", "window", "approx SUM",
              "exact SUM", "error bound", "loss %", "sampled");

  SimTime now = SimTime::zero();
  for (std::size_t w = 0; w < windows; ++w) {
    truth.reset();
    for (int tick = 0; tick < 10; ++tick) {
      auto items = gen.tick(now, SimTime::from_millis(100));
      truth.add_all(items);
      tree.tick(workload::shard_by_substream(items, tree.leaf_count()));
      now = now + SimTime::from_millis(100);
    }
    const core::ApproxResult result = tree.close_window();
    std::printf("%-8zu%16.0f%16.0f%14.0f%12.4f%10llu\n", w,
                result.sum.point, truth.total_sum(), result.sum.margin,
                workload::accuracy_loss_percent(result.sum.point,
                                                truth.total_sum()),
                static_cast<unsigned long long>(result.sampled_items));
  }

  const auto metrics = tree.metrics();
  std::printf("\nitems ingested at leaves : %llu\n",
              static_cast<unsigned long long>(metrics.items_ingested));
  std::printf("items reaching the root  : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(metrics.items_at_root),
              100.0 * static_cast<double>(metrics.items_at_root) /
                  static_cast<double>(metrics.items_ingested));
  return 0;
}
