// MetricsRegistry: process-wide observability for the concurrent runtime.
//
// Counters and gauges are single atomics (lock-free fast path — safe to
// bump from every node thread on every interval). Histograms bucket
// values into base-2 exponential bins with atomic counts, so recording a
// latency is a handful of atomic adds and percentile queries never block
// writers. The registry itself only takes a mutex on first registration;
// returned references stay valid for the registry's lifetime, so hot
// paths capture them once.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace approxiot::runtime {

/// Monotonic event count (items forwarded, intervals processed, drops).
class Counter {
 public:
  void increment(std::uint64_t by = 1) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, sampling fraction).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential-bucket histogram over non-negative values (latencies in
/// microseconds, batch sizes). Bucket b holds values in [2^b, 2^(b+1))
/// with bucket 0 covering [0, 2). Percentiles interpolate within the
/// winning bucket — ~2x relative resolution, plenty for p50/p99 curves.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double max_value() const noexcept;

  /// Approximate q-quantile, q in [0, 1]. Returns 0 when empty.
  [[nodiscard]] double percentile(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time view of every metric, for reports and the bench JSON.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramStats {
    std::uint64_t count{0};
    double mean{0.0};
    double p50{0.0};
    double p99{0.0};
    double max{0.0};
  };
  std::map<std::string, HistogramStats> histograms;

  /// One-line-per-metric JSON object (stable key order).
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. References remain valid until the registry dies.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace approxiot::runtime
