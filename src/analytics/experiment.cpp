#include "analytics/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "workload/substream.hpp"

namespace approxiot::analytics {

AccuracyResult run_accuracy_experiment(const AccuracyExperimentConfig& config,
                                       const TickSource& source) {
  core::EdgeTree tree(config.tree);
  workload::GroundTruth truth;

  AccuracyResult result;
  double sum_loss_total = 0.0;
  double mean_loss_total = 0.0;
  double rel_error_total = 0.0;
  std::size_t covered = 0;

  SimTime now = SimTime::zero();
  for (std::size_t w = 0; w < config.windows; ++w) {
    truth.reset();
    for (std::size_t t = 0; t < config.ticks_per_window; ++t) {
      std::vector<Item> items = source(now, config.tick);
      truth.add_all(items);
      tree.tick(workload::shard_by_substream(items, tree.leaf_count()));
      now = now + config.tick;
    }

    const core::ApproxResult approx = tree.close_window();
    const double exact_sum = truth.total_sum();
    const double exact_mean = truth.total_mean();

    // Skip windows with no data at all (can happen for very low rates).
    if (truth.total_count() == 0) continue;

    sum_loss_total +=
        workload::accuracy_loss_percent(approx.sum.point, exact_sum);
    mean_loss_total +=
        workload::accuracy_loss_percent(approx.mean.point, exact_mean);
    result.max_sum_loss_pct = std::max(
        result.max_sum_loss_pct,
        workload::accuracy_loss_percent(approx.sum.point, exact_sum));
    rel_error_total += approx.sum.relative_margin();
    if (approx.sum.covers(exact_sum)) ++covered;

    result.items_total += truth.total_count();
    result.items_sampled += approx.sampled_items;
    ++result.windows_measured;
  }

  if (result.windows_measured > 0) {
    const auto n = static_cast<double>(result.windows_measured);
    result.mean_sum_loss_pct = sum_loss_total / n;
    result.mean_mean_loss_pct = mean_loss_total / n;
    result.mean_reported_rel_error = rel_error_total / n;
    result.sum_coverage = static_cast<double>(covered) / n;
  }
  return result;
}

}  // namespace approxiot::analytics
