#include "streams/driver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "flowqueue/producer.hpp"

namespace approxiot::streams {
namespace {

/// Uppercases record keys and forwards; counts punctuations.
class UppercaseProcessor final : public Processor {
 public:
  explicit UppercaseProcessor(std::vector<SimTime>* punctuations = nullptr,
                              SimTime schedule_every = SimTime::zero())
      : punctuations_(punctuations), schedule_every_(schedule_every) {}

  void init(ProcessorContext& context) override {
    context_ = &context;
    if (schedule_every_.us > 0) context.schedule(schedule_every_);
  }

  void process(const flowqueue::Record& record) override {
    flowqueue::Record out = record;
    for (char& c : out.key) c = static_cast<char>(std::toupper(c));
    context_->forward(std::move(out));
  }

  void punctuate(SimTime now) override {
    if (punctuations_ != nullptr) punctuations_->push_back(now);
  }

 private:
  ProcessorContext* context_{nullptr};
  std::vector<SimTime>* punctuations_;
  SimTime schedule_every_;
};

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.create_topic("in", 1).is_ok());
    ASSERT_TRUE(broker_.create_topic("out", 1).is_ok());
  }

  Topology make_linear_topology(
      std::function<std::unique_ptr<Processor>()> factory) {
    TopologyBuilder builder;
    builder.add_source("src", "in")
        .add_processor("proc", std::move(factory), {"src"})
        .add_sink("sink", "out", {"proc"});
    auto topo = builder.build();
    EXPECT_TRUE(topo.is_ok());
    return std::move(topo).value();
  }

  std::vector<flowqueue::Record> read_all(const std::string& topic) {
    std::vector<flowqueue::Record> out;
    auto t = broker_.topic(topic);
    EXPECT_TRUE(t.is_ok());
    t.value()->partition(0).read(0, 100000, out);
    return out;
  }

  flowqueue::Broker broker_;
};

TEST_F(DriverTest, PumpsRecordsSourceToSink) {
  TopologyDriver driver(broker_, make_linear_topology([]() {
    return std::make_unique<UppercaseProcessor>();
  }),
                        "app");
  ASSERT_TRUE(driver.start().is_ok());

  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(producer.send("in", "hello", {1, 2, 3}).is_ok());
  ASSERT_TRUE(producer.send("in", "world", {4}).is_ok());

  ASSERT_TRUE(driver.run_until_idle().is_ok());
  auto records = read_all("out");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "HELLO");
  EXPECT_EQ(records[1].key, "WORLD");
}

TEST_F(DriverTest, RunOnceReportsConsumedCount) {
  TopologyDriver driver(broker_, make_linear_topology([]() {
    return std::make_unique<UppercaseProcessor>();
  }),
                        "app");
  ASSERT_TRUE(driver.start().is_ok());
  flowqueue::Producer producer(broker_);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(producer.send("in", std::to_string(i), {}).is_ok());
  }
  auto consumed = driver.run_once();
  ASSERT_TRUE(consumed.is_ok());
  EXPECT_EQ(consumed.value(), 5u);
  consumed = driver.run_once();
  ASSERT_TRUE(consumed.is_ok());
  EXPECT_EQ(consumed.value(), 0u);
}

TEST_F(DriverTest, RunBeforeStartFails) {
  TopologyDriver driver(broker_, make_linear_topology([]() {
    return std::make_unique<UppercaseProcessor>();
  }),
                        "app");
  EXPECT_FALSE(driver.run_once().is_ok());
}

TEST_F(DriverTest, DoubleStartFails) {
  TopologyDriver driver(broker_, make_linear_topology([]() {
    return std::make_unique<UppercaseProcessor>();
  }),
                        "app");
  ASSERT_TRUE(driver.start().is_ok());
  EXPECT_EQ(driver.start().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DriverTest, StreamTimeFollowsRecordTimestamps) {
  TopologyDriver driver(broker_, make_linear_topology([]() {
    return std::make_unique<UppercaseProcessor>();
  }),
                        "app");
  ASSERT_TRUE(driver.start().is_ok());
  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(
      producer.send("in", "a", {}, SimTime::from_seconds(3.0)).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  EXPECT_EQ(driver.stream_time(), SimTime::from_seconds(3.0));
}

TEST_F(DriverTest, PunctuationFiresOnStreamTime) {
  auto punctuations = std::make_shared<std::vector<SimTime>>();
  TopologyDriver driver(
      broker_, make_linear_topology([punctuations]() {
        return std::make_unique<UppercaseProcessor>(
            punctuations.get(), SimTime::from_seconds(1.0));
      }),
      "app");
  ASSERT_TRUE(driver.start().is_ok());

  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(
      producer.send("in", "a", {}, SimTime::from_millis(100)).is_ok());
  ASSERT_TRUE(
      producer.send("in", "b", {}, SimTime::from_millis(2500)).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());

  // Crossing 2.5 s fires boundaries at 1 s and 2 s.
  ASSERT_EQ(punctuations->size(), 2u);
  EXPECT_EQ((*punctuations)[0], SimTime::from_seconds(1.0));
  EXPECT_EQ((*punctuations)[1], SimTime::from_seconds(2.0));
}

TEST_F(DriverTest, AdvanceStreamTimeFiresPendingPunctuation) {
  auto punctuations = std::make_shared<std::vector<SimTime>>();
  TopologyDriver driver(
      broker_, make_linear_topology([punctuations]() {
        return std::make_unique<UppercaseProcessor>(
            punctuations.get(), SimTime::from_seconds(1.0));
      }),
      "app");
  ASSERT_TRUE(driver.start().is_ok());
  driver.advance_stream_time(SimTime::from_seconds(3.5));
  EXPECT_EQ(punctuations->size(), 3u);
}

TEST_F(DriverTest, StopFlushesAndCloses) {
  auto punctuations = std::make_shared<std::vector<SimTime>>();
  TopologyDriver driver(
      broker_, make_linear_topology([punctuations]() {
        return std::make_unique<UppercaseProcessor>(
            punctuations.get(), SimTime::from_seconds(1.0));
      }),
      "app");
  ASSERT_TRUE(driver.start().is_ok());
  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(
      producer.send("in", "a", {}, SimTime::from_millis(300)).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  EXPECT_TRUE(punctuations->empty());  // 1 s boundary not reached yet
  ASSERT_TRUE(driver.stop().is_ok());
  EXPECT_FALSE(punctuations->empty());  // stop advanced past the boundary
}

}  // namespace
}  // namespace approxiot::streams
