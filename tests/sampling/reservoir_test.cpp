#include "sampling/reservoir.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace approxiot::sampling {
namespace {

using IntReservoir = ReservoirSampler<int>;

class ReservoirAlgorithmTest
    : public ::testing::TestWithParam<ReservoirAlgorithm> {};

TEST_P(ReservoirAlgorithmTest, KeepsEverythingUnderCapacity) {
  IntReservoir r(10, Rng(1), GetParam());
  for (int i = 0; i < 7; ++i) r.offer(i);
  EXPECT_EQ(r.size(), 7u);
  EXPECT_EQ(r.seen(), 7u);
  EXPECT_FALSE(r.overflowed());
  std::set<int> contents(r.contents().begin(), r.contents().end());
  EXPECT_EQ(contents.size(), 7u);
}

TEST_P(ReservoirAlgorithmTest, NeverExceedsCapacity) {
  IntReservoir r(5, Rng(2), GetParam());
  for (int i = 0; i < 1000; ++i) {
    r.offer(i);
    ASSERT_LE(r.size(), 5u);
  }
  EXPECT_EQ(r.seen(), 1000u);
  EXPECT_TRUE(r.overflowed());
}

TEST_P(ReservoirAlgorithmTest, SampleElementsComeFromStream) {
  IntReservoir r(8, Rng(3), GetParam());
  for (int i = 100; i < 400; ++i) r.offer(i);
  for (int x : r.contents()) {
    EXPECT_GE(x, 100);
    EXPECT_LT(x, 400);
  }
}

// The statistical core: every stream position must be included with
// probability R/n. We check the mean selected *value* over many trials:
// for a uniform inclusion over values 0..n-1 it converges to (n-1)/2.
TEST_P(ReservoirAlgorithmTest, InclusionIsUniformOverPositions) {
  const std::size_t capacity = 20;
  const int n = 400;
  const int trials = 600;
  double sum = 0.0;
  std::uint64_t count = 0;
  std::vector<int> position_hits(n, 0);
  for (int t = 0; t < trials; ++t) {
    IntReservoir r(capacity, Rng(1000 + static_cast<std::uint64_t>(t)),
                   GetParam());
    for (int i = 0; i < n; ++i) r.offer(i);
    for (int x : r.contents()) {
      sum += x;
      ++count;
      ++position_hits[static_cast<std::size_t>(x)];
    }
  }
  EXPECT_EQ(count, capacity * trials);
  const double mean = sum / static_cast<double>(count);
  // Uniform over 0..399 has mean 199.5, stddev of the trial mean is small.
  EXPECT_NEAR(mean, 199.5, 6.0);

  // Early, middle and late positions should all be hit at roughly
  // R/n * trials = 30 times.
  const double expected = static_cast<double>(capacity) / n * trials;
  for (int pos : {0, 1, n / 2, n - 2, n - 1}) {
    EXPECT_NEAR(position_hits[static_cast<std::size_t>(pos)], expected,
                expected * 0.6)
        << "position " << pos;
  }
}

TEST_P(ReservoirAlgorithmTest, DrainResetsAndReturnsSample) {
  IntReservoir r(4, Rng(5), GetParam());
  for (int i = 0; i < 100; ++i) r.offer(i);
  auto sample = r.drain();
  EXPECT_EQ(sample.size(), 4u);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.seen(), 0u);
  // Works again after drain.
  for (int i = 0; i < 10; ++i) r.offer(i);
  EXPECT_EQ(r.seen(), 10u);
  EXPECT_EQ(r.size(), 4u);
}

TEST_P(ReservoirAlgorithmTest, ZeroCapacityCountsButKeepsNothing) {
  IntReservoir r(0, Rng(6), GetParam());
  for (int i = 0; i < 50; ++i) r.offer(i);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.seen(), 50u);
}

INSTANTIATE_TEST_SUITE_P(
    BothAlgorithms, ReservoirAlgorithmTest,
    ::testing::Values(ReservoirAlgorithm::kAlgorithmR,
                      ReservoirAlgorithm::kAlgorithmL),
    [](const ::testing::TestParamInfo<ReservoirAlgorithm>& info) {
      return info.param == ReservoirAlgorithm::kAlgorithmR ? "AlgorithmR"
                                                           : "AlgorithmL";
    });

TEST(ReservoirTest, AlgorithmsProduceSameDistribution) {
  // Compare the mean selected value of R and L over many trials: both
  // must estimate the stream mean without bias.
  const int n = 1000;
  const std::size_t capacity = 10;
  const int trials = 400;
  double sum_r = 0.0, sum_l = 0.0;
  for (int t = 0; t < trials; ++t) {
    IntReservoir rr(capacity, Rng(t * 2 + 1), ReservoirAlgorithm::kAlgorithmR);
    IntReservoir rl(capacity, Rng(t * 2 + 2), ReservoirAlgorithm::kAlgorithmL);
    for (int i = 0; i < n; ++i) {
      rr.offer(i);
      rl.offer(i);
    }
    sum_r = std::accumulate(rr.contents().begin(), rr.contents().end(), sum_r);
    sum_l = std::accumulate(rl.contents().begin(), rl.contents().end(), sum_l);
  }
  const double denom = static_cast<double>(capacity) * trials;
  EXPECT_NEAR(sum_r / denom, 499.5, 18.0);
  EXPECT_NEAR(sum_l / denom, 499.5, 18.0);
}

TEST(ReservoirTest, SetCapacityShrinksUniformly) {
  IntReservoir r(10, Rng(7));
  for (int i = 0; i < 10; ++i) r.offer(i);
  r.set_capacity(4);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.capacity(), 4u);
  std::set<int> contents(r.contents().begin(), r.contents().end());
  EXPECT_EQ(contents.size(), 4u);  // distinct survivors
}

TEST(ReservoirTest, SetCapacityGrowAllowsMoreItems) {
  IntReservoir r(2, Rng(8));
  r.offer(1);
  r.offer(2);
  r.set_capacity(5);
  r.reset();
  for (int i = 0; i < 5; ++i) r.offer(i);
  EXPECT_EQ(r.size(), 5u);
}

TEST(ReservoirTest, ResetClearsWithoutReturning) {
  IntReservoir r(4, Rng(9));
  for (int i = 0; i < 9; ++i) r.offer(i);
  r.reset();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.seen(), 0u);
}

// offer_span is the bulk entry point of the flat data plane: it must be
// BIT-IDENTICAL to per-item offer() — same RNG consumption, same kept
// items in the same slots — for both algorithms, across arbitrary span
// boundaries (a span may fill the reservoir mid-way, or be consumed
// entirely by one Algorithm L skip).
class OfferSpanIdentityTest
    : public ::testing::TestWithParam<ReservoirAlgorithm> {};

TEST_P(OfferSpanIdentityTest, SpanOffersBitIdenticalToPerItem) {
  Rng workload(0xface);
  for (int round = 0; round < 40; ++round) {
    const std::size_t capacity = workload.next_below(20);
    const std::size_t n = workload.next_below(3000);
    std::vector<int> stream(n);
    for (std::size_t i = 0; i < n; ++i) stream[i] = static_cast<int>(i);

    const Rng seed(1000 + static_cast<std::uint64_t>(round));
    IntReservoir per_item(capacity, seed, GetParam());
    IntReservoir spanned(capacity, seed, GetParam());

    for (int x : stream) per_item.offer(x);

    // Feed the same stream as randomly sized spans (including empty
    // ones), so fill/steady-state transitions land inside spans.
    std::size_t i = 0;
    while (i < n) {
      const std::size_t len =
          std::min<std::size_t>(workload.next_below(200), n - i);
      spanned.offer_span(stream.data() + i, len);
      i += len;
    }
    spanned.offer_span(stream.data() + n, 0);  // empty span is a no-op

    ASSERT_EQ(per_item.seen(), spanned.seen()) << "round " << round;
    ASSERT_EQ(per_item.size(), spanned.size()) << "round " << round;
    for (std::size_t k = 0; k < per_item.size(); ++k) {
      ASSERT_EQ(per_item.contents()[k], spanned.contents()[k])
          << "round " << round << " slot " << k;
    }
    // And the generators must be in the same state afterwards: the next
    // interval's draws agree too.
    per_item.rearm(5, Rng(42));
    spanned.rearm(5, Rng(42));
    for (int x = 0; x < 100; ++x) per_item.offer(x);
    std::vector<int> tail(100);
    for (int x = 0; x < 100; ++x) tail[static_cast<std::size_t>(x)] = x;
    spanned.offer_span(tail.data(), tail.size());
    ASSERT_EQ(per_item.contents(), spanned.contents()) << "round " << round;
  }
}

TEST_P(OfferSpanIdentityTest, ZeroCapacityCountsOnly) {
  IntReservoir r(0, Rng(5), GetParam());
  std::vector<int> stream = {1, 2, 3, 4};
  r.offer_span(stream.data(), stream.size());
  EXPECT_EQ(r.seen(), 4u);
  EXPECT_EQ(r.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, OfferSpanIdentityTest,
                         ::testing::Values(ReservoirAlgorithm::kAlgorithmR,
                                           ReservoirAlgorithm::kAlgorithmL));

TEST(ReservoirTest, MoveOnlyPayloadWorks) {
  ReservoirSampler<std::unique_ptr<int>> r(2, Rng(10));
  for (int i = 0; i < 20; ++i) r.offer(std::make_unique<int>(i));
  EXPECT_EQ(r.size(), 2u);
  for (const auto& p : r.contents()) {
    ASSERT_NE(p, nullptr);
    EXPECT_GE(*p, 0);
    EXPECT_LT(*p, 20);
  }
}

}  // namespace
}  // namespace approxiot::sampling
