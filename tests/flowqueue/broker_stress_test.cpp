// Concurrency stress for the Broker's consumer-group coordinator:
// join/leave/commit hammered from many threads must never leave a
// partition unowned or doubly-owned once the dust settles, and
// generations must move strictly forward.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "flowqueue/broker.hpp"

namespace approxiot::flowqueue {
namespace {

constexpr char kGroup[] = "stress-group";
constexpr char kTopicA[] = "stress-a";
constexpr char kTopicB[] = "stress-b";
constexpr std::uint32_t kPartitionsA = 8;
constexpr std::uint32_t kPartitionsB = 5;

/// Asserts every partition of both topics has exactly one owner among
/// `members` (queried single-threaded, between rounds).
void expect_exactly_one_owner(Broker& broker,
                              const std::set<std::string>& members) {
  std::map<TopicPartition, int> owners;
  for (const std::string& member : members) {
    auto assignment = broker.assignment(kGroup, member);
    ASSERT_TRUE(assignment.is_ok()) << "member " << member;
    for (const TopicPartition& tp : assignment.value()) {
      ++owners[tp];
    }
  }
  std::size_t total = 0;
  for (const auto& [tp, count] : owners) {
    EXPECT_EQ(count, 1) << tp.topic << "/" << tp.partition
                        << " owned " << count << " times";
    total += static_cast<std::size_t>(count);
  }
  if (!members.empty()) {
    EXPECT_EQ(total, kPartitionsA + kPartitionsB);
  }
}

TEST(BrokerStressTest, RebalanceStormKeepsSinglePartitionOwnership) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic(kTopicA, kPartitionsA).is_ok());
  ASSERT_TRUE(broker.create_topic(kTopicB, kPartitionsB).is_ok());

  constexpr int kThreads = 6;
  constexpr int kRounds = 15;
  const std::vector<std::string> topics = {kTopicA, kTopicB};

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&broker, &topics, t, round] {
        const std::string member = "m" + std::to_string(t);
        // A burst of churn: join, commit a few offsets, maybe bounce.
        auto joined = broker.join_group(kGroup, member, topics);
        ASSERT_TRUE(joined.is_ok());
        for (const TopicPartition& tp : joined.value()) {
          ASSERT_TRUE(
              broker.commit_offset(kGroup, tp, Offset{round}).is_ok());
        }
        if ((t + round) % 3 == 0) {
          ASSERT_TRUE(broker.leave_group(kGroup, member).is_ok());
          ASSERT_TRUE(broker.join_group(kGroup, member, topics).is_ok());
        }
        // Threads whose index parity matches the round end outside the
        // group, so membership varies round to round.
        if (t % 2 == round % 2) {
          ASSERT_TRUE(broker.leave_group(kGroup, member).is_ok());
        }
      });
    }
    for (auto& thread : threads) thread.join();

    // Deterministic post-churn membership for this round.
    std::set<std::string> members;
    for (int t = 0; t < kThreads; ++t) {
      if (t % 2 != round % 2) members.insert("m" + std::to_string(t));
    }
    expect_exactly_one_owner(broker, members);
  }
}

TEST(BrokerStressTest, GenerationAdvancesMonotonicallyUnderChurn) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic(kTopicA, kPartitionsA).is_ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread watcher([&] {
    std::uint64_t last = 0;
    while (!stop.load()) {
      const std::uint64_t gen = broker.group_generation(kGroup);
      if (gen < last) violation.store(true);
      last = gen;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&broker, t] {
      const std::string member = "g" + std::to_string(t);
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(
            broker.join_group(kGroup, member, {kTopicA}).is_ok());
        ASSERT_TRUE(broker.leave_group(kGroup, member).is_ok());
      }
    });
  }
  for (auto& thread : churners) thread.join();
  stop.store(true);
  watcher.join();

  EXPECT_FALSE(violation.load());
  // 4 threads x 50 join+leave pairs = 400 rebalances at least.
  EXPECT_GE(broker.group_generation(kGroup), 400u);
}

TEST(BrokerStressTest, ConcurrentCommitsLandOnTheLatestOwner) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic(kTopicA, kPartitionsA).is_ok());

  // One stable member owns everything; many threads commit concurrently.
  auto joined = broker.join_group(kGroup, "stable", {kTopicA});
  ASSERT_TRUE(joined.is_ok());
  ASSERT_EQ(joined.value().size(), kPartitionsA);

  std::vector<std::thread> committers;
  for (int t = 0; t < 4; ++t) {
    committers.emplace_back([&broker, t] {
      for (int i = 1; i <= 100; ++i) {
        const TopicPartition tp{kTopicA,
                                static_cast<std::uint32_t>(t * 2 % 8)};
        ASSERT_TRUE(
            broker.commit_offset(kGroup, tp, Offset{i}).is_ok());
      }
    });
  }
  for (auto& thread : committers) thread.join();

  // Every hammered partition ends at the max committed offset.
  for (std::uint32_t p : {0u, 2u, 4u, 6u}) {
    EXPECT_EQ(broker.committed_offset(kGroup, TopicPartition{kTopicA, p}),
              Offset{100});
  }
}

}  // namespace
}  // namespace approxiot::flowqueue
