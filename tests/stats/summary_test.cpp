#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace approxiot::stats {
namespace {

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinsAndTotals) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 2.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bin(2), 0u);
}

TEST(QuantileSketchTest, ExactWhenUnderCapacity) {
  QuantileSketch q(100);
  for (int i = 1; i <= 99; ++i) q.add(static_cast<double>(i));
  EXPECT_EQ(q.total(), 99u);
  EXPECT_NEAR(q.median(), 50.0, 1e-9);
  EXPECT_NEAR(q.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(q.quantile(1.0), 99.0, 1e-9);
}

TEST(QuantileSketchTest, ApproximateOverCapacity) {
  QuantileSketch q(512, 7);
  approxiot::Rng rng(21);
  for (int i = 0; i < 100000; ++i) q.add(rng.next_double() * 1000.0);
  EXPECT_EQ(q.total(), 100000u);
  EXPECT_NEAR(q.median(), 500.0, 60.0);
  EXPECT_NEAR(q.quantile(0.95), 950.0, 60.0);
}

TEST(QuantileSketchTest, EmptyIsZero) {
  QuantileSketch q;
  EXPECT_EQ(q.quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, ResetClears) {
  QuantileSketch q(8);
  q.add(5.0);
  q.reset();
  EXPECT_EQ(q.total(), 0u);
  EXPECT_EQ(q.median(), 0.0);
}

TEST(QuantileSketchTest, ZeroCapacityStillWorks) {
  QuantileSketch q(0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_EQ(q.total(), 2u);
}

}  // namespace
}  // namespace approxiot::stats
