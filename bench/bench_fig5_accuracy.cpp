// Figure 5: accuracy loss vs sampling fraction, Gaussian (a) and
// Poisson (b) microbenchmarks, ApproxIoT vs the SRS baseline.
//
// Paper's result: ApproxIoT's loss stays at or below ~0.035% (Gaussian)
// and ~0.013% (Poisson); SRS is up to 10x / 30x worse at 10%.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/generators.hpp"

namespace {

using namespace approxiot;
using namespace approxiot::bench;

void run_distribution(const char* name, bool gaussian,
                      std::uint64_t seed_base) {
  std::printf("\n--- Fig 5(%s): %s distribution ---\n",
              gaussian ? "a" : "b", name);
  std::printf("%-24s", "fraction(%)");
  for (int f : paper_fractions()) std::printf("%12d", f);
  std::printf("\n");

  for (core::EngineKind engine :
       {core::EngineKind::kApproxIoT, core::EngineKind::kSrs}) {
    std::vector<double> losses;
    for (int f : paper_fractions()) {
      auto specs = gaussian ? workload::gaussian_quad(5000.0)
                            : workload::poisson_quad(5000.0);
      auto result = analytics::run_accuracy_experiment(
          accuracy_config(engine, f / 100.0, seed_base + f),
          make_source(std::move(specs), seed_base + f));
      losses.push_back(result.mean_sum_loss_pct);
    }
    print_row(std::string("loss% ") + core::engine_kind_name(engine),
              losses, "%12.5f");
  }
}

}  // namespace

int main() {
  print_header("Figure 5: accuracy loss vs sampling fraction",
               "ApproxIoT loss << SRS loss at low fractions; both -> 0 at "
               "high fractions");
  run_distribution("Gaussian", true, 1000);
  run_distribution("Poisson", false, 2000);
  return 0;
}
