#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace approxiot::core {
namespace {

TEST(AdaptiveControllerTest, ValidatesConfig) {
  AdaptiveConfig bad_target;
  bad_target.target_relative_error = 0.0;
  EXPECT_THROW(AdaptiveController(0.5, bad_target), std::invalid_argument);

  AdaptiveConfig bad_range;
  bad_range.min_fraction = 0.5;
  bad_range.max_fraction = 0.1;
  EXPECT_THROW(AdaptiveController(0.5, bad_range), std::invalid_argument);
}

TEST(AdaptiveControllerTest, ClampsInitialFraction) {
  AdaptiveConfig config;
  config.min_fraction = 0.1;
  config.max_fraction = 0.9;
  EXPECT_DOUBLE_EQ(AdaptiveController(5.0, config).fraction(), 0.9);
  EXPECT_DOUBLE_EQ(AdaptiveController(0.0001, config).fraction(), 0.1);
}

TEST(AdaptiveControllerTest, ErrorAboveTargetRaisesFraction) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  AdaptiveController controller(0.2, config);
  const double next = controller.observe_relative_error(0.04);
  EXPECT_GT(next, 0.2);
}

TEST(AdaptiveControllerTest, ErrorBelowTargetLowersFraction) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  AdaptiveController controller(0.8, config);
  const double next = controller.observe_relative_error(0.001);
  EXPECT_LT(next, 0.8);
}

TEST(AdaptiveControllerTest, HysteresisBandHolds) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.tolerance = 0.2;
  AdaptiveController controller(0.5, config);
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(0.0101), 0.5);
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(0.0095), 0.5);
}

TEST(AdaptiveControllerTest, StepIsBounded) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.max_step = 2.0;
  AdaptiveController controller(0.1, config);
  // Huge error: still at most doubles.
  EXPECT_DOUBLE_EQ(controller.observe_relative_error(10.0), 0.2);
  // Tiny error: at most halves.
  AdaptiveController down(0.8, config);
  EXPECT_DOUBLE_EQ(down.observe_relative_error(1e-9), 0.4);
}

TEST(AdaptiveControllerTest, FractionStaysInRange) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  config.min_fraction = 0.05;
  config.max_fraction = 0.9;
  AdaptiveController controller(0.5, config);
  for (int i = 0; i < 20; ++i) controller.observe_relative_error(100.0);
  EXPECT_DOUBLE_EQ(controller.fraction(), 0.9);
  for (int i = 0; i < 40; ++i) controller.observe_relative_error(1e-12);
  EXPECT_DOUBLE_EQ(controller.fraction(), 0.05);
}

TEST(AdaptiveControllerTest, NonFiniteErrorTakesMaxStepUp) {
  AdaptiveConfig config;
  config.max_step = 2.0;
  AdaptiveController controller(0.25, config);
  const double next = controller.observe_relative_error(
      std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(next, 0.5);
}

TEST(AdaptiveControllerTest, HistoryRecordsTrajectory) {
  AdaptiveController controller(0.5);
  controller.observe_relative_error(1.0);
  controller.observe_relative_error(1.0);
  EXPECT_EQ(controller.history().size(), 3u);  // initial + 2 observations
  EXPECT_DOUBLE_EQ(controller.history()[0], 0.5);
}

TEST(AdaptiveControllerTest, ObserveFromInterval) {
  AdaptiveConfig config;
  config.target_relative_error = 0.01;
  AdaptiveController controller(0.3, config);
  stats::ConfidenceInterval noisy{100.0, 10.0, 0.95};  // 10% rel error
  EXPECT_GT(controller.observe(noisy), 0.3);
}

// Simulated closed loop: relative error ~ k/sqrt(fraction); the
// controller should settle near the fraction solving k/sqrt(f) = target.
TEST(AdaptiveControllerTest, ClosedLoopConverges) {
  AdaptiveConfig config;
  config.target_relative_error = 0.02;
  config.tolerance = 0.05;
  AdaptiveController controller(0.9, config);
  const double k = 0.004;  // error at fraction 1 is 0.4%
  for (int i = 0; i < 60; ++i) {
    const double error = k / std::sqrt(controller.fraction());
    controller.observe_relative_error(error);
  }
  const double expected = (k / 0.02) * (k / 0.02);  // f* = (k/target)^2
  EXPECT_NEAR(controller.fraction(), expected, expected * 0.35);
}

}  // namespace
}  // namespace approxiot::core
