// Reservoir sampling (§II-B2): maintain a uniform random sample of at most
// R items from a stream of unknown length.
//
// Two algorithms are provided behind one interface:
//   * Algorithm R (Vitter 1985): one random number per arriving item.
//     offer(i-th item) keeps it with probability R/i, replacing a random
//     victim. Simple and branch-light; the paper's prototype uses this.
//   * Algorithm L (Li 1994): skip-based. Once the reservoir is full it
//     draws how many items to *skip* before the next replacement, making
//     the per-item cost O(R(1+log(n/R))/n) amortised — much faster at low
//     sampling fractions. Offered as an ablation (bench_ablation).
//
// Both produce samples with identical distribution: every prefix item has
// inclusion probability R/i. The property tests verify this empirically
// for both variants.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/kernels/kernels.hpp"

namespace approxiot::sampling {

enum class ReservoirAlgorithm { kAlgorithmR, kAlgorithmL };

template <typename T>
class ReservoirSampler {
 public:
  /// `capacity` == R. A zero-capacity reservoir accepts nothing but still
  /// counts offers (needed for weight bookkeeping of starved sub-streams).
  explicit ReservoirSampler(
      std::size_t capacity, Rng rng = Rng{},
      ReservoirAlgorithm algorithm = ReservoirAlgorithm::kAlgorithmR)
      : capacity_(capacity), rng_(rng), algorithm_(algorithm) {
    reserve_bounded();
  }

  /// Offers one item from the stream.
  void offer(T item) {
    ++seen_;
    if (capacity_ == 0) return;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(std::move(item));
      if (reservoir_.size() == capacity_ &&
          algorithm_ == ReservoirAlgorithm::kAlgorithmL) {
        init_skip();
      }
      return;
    }
    if (algorithm_ == ReservoirAlgorithm::kAlgorithmR) {
      // Keep the i-th item with probability R/i.
      const std::uint64_t j = rng_.next_below(seen_);
      if (j < capacity_) reservoir_[static_cast<std::size_t>(j)] = std::move(item);
    } else {
      if (skip_ > 0) {
        --skip_;
        return;
      }
      const std::uint64_t victim = rng_.next_below(capacity_);
      reservoir_[static_cast<std::size_t>(victim)] = std::move(item);
      advance_skip();
    }
  }

  /// Offers `n` contiguous items — bit-identical to calling offer() on
  /// each in order, but the fill/capacity branches are hoisted out of the
  /// per-item loop and Algorithm L consumes its skip counter across the
  /// whole span at once (a full skip-over costs O(1), not O(n)).
  /// For Item streams with a SIMD tier active, the full-reservoir loop
  /// runs through the core/kernels block kernels (ring-buffered RNG
  /// draws, branchless stores) — same results, draw for draw; the loop
  /// below is the retained scalar oracle.
  void offer_span(const T* data, std::size_t n) {
    if (capacity_ == 0) {
      seen_ += n;
      return;
    }
    if constexpr (std::is_same_v<T, Item>) {
      const core::kernels::Tier tier = core::kernels::active_tier();
      if (tier != core::kernels::Tier::kScalar) {
        offer_span_kernel(data, n, tier);
        return;
      }
    }
    std::size_t i = 0;
    // Fill phase: runs at most once per interval, not once per item.
    while (i < n && reservoir_.size() < capacity_) {
      ++seen_;
      reservoir_.push_back(data[i++]);
      if (reservoir_.size() == capacity_ &&
          algorithm_ == ReservoirAlgorithm::kAlgorithmL) {
        init_skip();
      }
    }
    if (algorithm_ == ReservoirAlgorithm::kAlgorithmR) {
      for (; i < n; ++i) {
        const std::uint64_t j = rng_.next_below(++seen_);
        if (j < capacity_) {
          reservoir_[static_cast<std::size_t>(j)] = data[i];
        }
      }
    } else {
      while (i < n) {
        const std::uint64_t remaining = n - i;
        if (skip_ >= remaining) {
          skip_ -= remaining;
          seen_ += remaining;
          break;
        }
        // Jump straight to the accepted item.
        i += static_cast<std::size_t>(skip_);
        seen_ += skip_ + 1;
        skip_ = 0;
        const std::uint64_t victim = rng_.next_below(capacity_);
        reservoir_[static_cast<std::size_t>(victim)] = data[i++];
        advance_skip();
      }
    }
  }

  /// Number of items offered since the last reset (the paper's c_i).
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }

  /// Number of items currently held (the paper's c̃_i = min(c_i, N_i)).
  [[nodiscard]] std::size_t size() const noexcept { return reservoir_.size(); }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool overflowed() const noexcept { return seen_ > capacity_; }

  [[nodiscard]] const std::vector<T>& contents() const noexcept {
    return reservoir_;
  }

  /// Moves the sample out and resets counters for the next interval.
  [[nodiscard]] std::vector<T> drain() {
    std::vector<T> out = std::move(reservoir_);
    reservoir_.clear();
    reserve_bounded();
    seen_ = 0;
    w_ = 1.0;
    skip_ = 0;
    return out;
  }

  /// Resets counters and clears the sample without returning it.
  void reset() {
    reservoir_.clear();
    seen_ = 0;
    w_ = 1.0;
    skip_ = 0;
  }

  /// Re-seeds and re-sizes for a new interval in one step, keeping the
  /// heap buffer — the long-lived-worker fast path (no allocation when
  /// the new capacity fits what the buffer already grew to).
  void rearm(std::size_t capacity, const Rng& rng) {
    capacity_ = capacity;
    rng_ = rng;
    reset();
    reserve_bounded();
  }

  /// Changes the capacity for subsequent intervals. If the reservoir
  /// currently holds more than `capacity` items, excess items are evicted
  /// uniformly at random so the remaining set is still a uniform sample.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (reservoir_.size() > capacity_) {
      const std::uint64_t victim = rng_.next_below(reservoir_.size());
      reservoir_[static_cast<std::size_t>(victim)] = std::move(reservoir_.back());
      reservoir_.pop_back();
    }
    reserve_bounded();
  }

 private:
  /// The kernel-dispatched span path (T == Item, SIMD tier active).
  /// Bulk-fills, then hands the full-reservoir loop to the block
  /// kernels with this sampler's live state — counters, Algorithm L's
  /// (w, skip) pair and the generator advance exactly as the scalar
  /// loop advances them, so a later offer()/offer_span() continues the
  /// identical random sequence.
  void offer_span_kernel(const Item* data, std::size_t n,
                         core::kernels::Tier tier) {
    std::size_t i = 0;
    if (reservoir_.size() < capacity_) {
      const std::size_t take = std::min(n, capacity_ - reservoir_.size());
      reservoir_.insert(reservoir_.end(), data, data + take);
      seen_ += take;
      i = take;
      if (reservoir_.size() == capacity_ &&
          algorithm_ == ReservoirAlgorithm::kAlgorithmL) {
        init_skip();
      }
    }
    if (i == n) return;
    if (algorithm_ == ReservoirAlgorithm::kAlgorithmR) {
      core::kernels::algo_r_full(tier, reservoir_.data(), capacity_,
                                 data + i, n - i, seen_, rng_);
    } else {
      core::kernels::algo_l_full(tier, reservoir_.data(), capacity_,
                                 data + i, n - i, seen_, w_, skip_, rng_);
    }
  }

  // Callers may pass a huge capacity to mean "keep everything" (native
  // execution); cap the eager reservation so that stays cheap.
  void reserve_bounded() {
    reservoir_.reserve(std::min(capacity_, std::size_t{4096}));
  }

  // Algorithm L bookkeeping. w_ is the running product of U^(1/R); the
  // next accepted item is geometric in log(U)/log(1-w_).
  void init_skip() {
    w_ = 1.0;
    advance_skip();
  }

  void advance_skip() {
    const double r = static_cast<double>(capacity_);
    w_ *= std::exp(std::log(uniform_nonzero()) / r);
    const double gap =
        std::floor(std::log(uniform_nonzero()) / std::log(1.0 - w_));
    // gap can be enormous for tiny reservoirs; saturate safely.
    skip_ = gap > 1e18 ? static_cast<std::uint64_t>(1e18)
                       : static_cast<std::uint64_t>(gap);
  }

  double uniform_nonzero() {
    double u;
    do {
      u = rng_.next_double();
    } while (u <= 0.0);
    return u;
  }

  std::size_t capacity_;
  Rng rng_;
  ReservoirAlgorithm algorithm_;
  std::vector<T> reservoir_;
  std::uint64_t seen_{0};
  double w_{1.0};
  std::uint64_t skip_{0};
};

}  // namespace approxiot::sampling
