// Adaptive feedback (§IV-B): "in the case the error bound of the
// approximate result exceeds the desired budget of the user, an adaptive
// feedback mechanism is activated to refine the sampling parameters at
// all layers to improve the accuracy in subsequent runs."
//
// AdaptiveController implements that loop as a multiplicative-increase /
// multiplicative-decrease controller on the end-to-end sampling fraction:
// after every window it compares the observed relative error bound with
// the user's target and nudges the fraction, clamped to [min, max]. The
// controller is deliberately conservative (bounded step) so the fraction
// does not oscillate on noisy windows; hysteresis skips adjustments when
// the error is within a tolerance band of the target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/confidence.hpp"

namespace approxiot::core {

struct AdaptiveConfig {
  /// Target relative error bound (margin / |estimate|), e.g. 0.01 == 1 %.
  double target_relative_error{0.01};
  /// Multiplicative band around the target treated as "close enough".
  double tolerance{0.1};
  /// Largest single-step multiplier applied to the fraction.
  double max_step{2.0};
  /// Fraction clamp range.
  double min_fraction{0.01};
  double max_fraction{1.0};
  /// Exponent of the proportional response; < 1 damps the controller.
  double gain{0.5};
  /// Most recent fractions kept in history() (oldest entries are evicted
  /// first). Bounded so long-lived deployments observing every window do
  /// not grow memory without limit. Must be >= 1.
  std::size_t history_limit{1024};
};

class AdaptiveController {
 public:
  AdaptiveController(double initial_fraction, AdaptiveConfig config = {});

  /// Feeds one window's result; returns the fraction to use next window.
  double observe(const stats::ConfidenceInterval& result);

  /// Same, from a pre-computed relative error.
  double observe_relative_error(double relative_error);

  [[nodiscard]] double fraction() const noexcept { return fraction_; }
  [[nodiscard]] const AdaptiveConfig& config() const noexcept {
    return config_;
  }
  /// Most recent fractions, oldest first — at most
  /// `config().history_limit` entries (older ones are evicted).
  [[nodiscard]] const std::vector<double>& history() const noexcept {
    return history_;
  }
  /// Observations fed so far (unlike history().size(), never capped).
  [[nodiscard]] std::uint64_t observations() const noexcept {
    return observations_;
  }

 private:
  void record(double fraction);

  AdaptiveConfig config_;
  double fraction_;
  std::vector<double> history_;
  std::uint64_t observations_{0};
};

}  // namespace approxiot::core
