#include "core/estimators.hpp"

#include "stats/moments.hpp"

namespace approxiot::core {

std::vector<SubStreamEstimate> summarize(const ThetaStore& theta) {
  std::vector<SubStreamEstimate> out;
  for (SubStreamId id : theta.sub_streams()) {
    SubStreamEstimate est;
    est.id = id;
    stats::RunningMoments moments;
    for (const WeightedSample& pair : theta.pairs(id)) {
      double pair_sum = 0.0;
      for (const Item& item : pair.items) {
        pair_sum += item.value;
        moments.add(item.value);
      }
      est.sum += pair_sum * pair.weight;
      est.estimated_count +=
          static_cast<double>(pair.items.size()) * pair.weight;
    }
    est.sampled = moments.count();
    est.sample_mean = moments.mean();
    est.sample_variance = moments.sample_variance();
    out.push_back(est);
  }
  return out;
}

double estimate_sum(const ThetaStore& theta, SubStreamId id) {
  double sum = 0.0;
  for (const WeightedSample& pair : theta.pairs(id)) {
    double pair_sum = 0.0;
    for (const Item& item : pair.items) pair_sum += item.value;
    sum += pair_sum * pair.weight;
  }
  return sum;
}

double estimate_total_sum(const ThetaStore& theta) {
  double total = 0.0;
  for (SubStreamId id : theta.sub_streams()) {
    total += estimate_sum(theta, id);
  }
  return total;
}

double estimate_count(const ThetaStore& theta, SubStreamId id) {
  return theta.estimated_original_count(id);
}

double estimate_total_count(const ThetaStore& theta) {
  double total = 0.0;
  for (SubStreamId id : theta.sub_streams()) {
    total += theta.estimated_original_count(id);
  }
  return total;
}

double estimate_total_mean(const ThetaStore& theta) {
  const double count = estimate_total_count(theta);
  if (count <= 0.0) return 0.0;
  return estimate_total_sum(theta) / count;
}

}  // namespace approxiot::core
