#include "core/node.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "core/checkpoint.hpp"

namespace approxiot::core {

SamplingNode::SamplingNode(NodeConfig config)
    : config_(std::move(config)),
      cost_function_(make_cost_function(config_.cost_function)) {
  SamplingExecutor* executor = config_.executor.get();
  if (executor == nullptr && config_.parallel_workers > 1) {
    // No shared runtime to ride on: the node owns a private pool.
    owned_executor_ = PooledSamplingExecutor::for_seed(
        config_.parallel_workers, config_.rng_seed);
    executor = owned_executor_.get();
  }
  if (executor == nullptr) executor = &sequential_executor();
  // Constraint checking is the executor's job (e.g. the pooled lane
  // rejects Algorithm L with >1 worker at create_lane time) — it cannot
  // be bypassed there, and the node stays agnostic to which constraints
  // a given execution substrate has.
  lane_ = executor->create_lane(Rng(config_.rng_seed), config_.whsamp);
}

std::vector<SampledBundle> SamplingNode::process_interval(
    const std::vector<ItemBundle>& psi) {
  // Interval boundary = policy boundary (§IV-B live): resolve the current
  // control-plane snapshot before deriving this interval's budget. One
  // wait-free read; mid-interval publishes take effect next interval.
  if (config_.policy.bound()) {
    const PolicyDecision decision = config_.policy.resolve(config_.budget);
    policy_epoch_ = decision.epoch;
    config_.budget = decision.budget;
  }

  // Line 3: derive the reservoir budget for this interval. The volume
  // estimate is last interval's arrival count; on the very first interval
  // (no history) the already-buffered Ψ stands in so the fraction-based
  // cost function does not start from a degenerate budget.
  std::uint64_t psi_items = 0;
  for (const ItemBundle& bundle : psi) psi_items += bundle.items.size();
  const std::uint64_t observed =
      last_interval_items_ > 0 ? last_interval_items_ : psi_items;
  const std::size_t size =
      cost_function_->sample_size(config_.budget, observed, config_.interval);

  std::vector<SampledBundle> outputs;
  outputs.reserve(psi.size());

  std::uint64_t items_this_interval = 0;
  // Lines 5-19: consume Ψ pair by pair. Algorithm 2 passes `size` to
  // every WHSamp call; with many pairs per interval that would multiply
  // the effective budget, so the interval budget is shared across pairs
  // in proportion to their item counts (Σ pair budgets ≈ size).
  for (const ItemBundle& bundle : psi) {
    if (bundle.items.empty()) continue;
    items_this_interval += bundle.items.size();

    std::size_t pair_budget =
        psi_items > 0
            ? static_cast<std::size_t>(
                  (static_cast<double>(size) *
                       static_cast<double>(bundle.items.size()) +
                   static_cast<double>(psi_items) / 2.0) /
                  static_cast<double>(psi_items))
            : size;
    // Stratify once, here: the batch (a reused flat arena) feeds both
    // the fairness floor below and the lane's span-based sampling — no
    // second stratification pass inside the lane.
    strata_scratch_.assign(bundle.items);

    // Fairness floor: stratification promises every sub-stream at least
    // one reservoir slot (§II-B1). A tiny pair (e.g. one rare high-value
    // item arriving alone) must not round its share down to zero, so the
    // pair budget is at least the number of sub-streams it carries —
    // which the stratum directory now gives for free.
    if (size > 0) {
      pair_budget = std::max(pair_budget, strata_scratch_.size());
    }

    // Fig. 3 rule: resolve the effective input weights. Weights that
    // travelled with this bundle win; otherwise fall back to the last
    // weight remembered for the sub-stream (default 1 at sources).
    WeightMap effective = remembered_weights_;
    effective.update_from(bundle.w_in);

    SampledBundle out =
        lane_->sample_strata(strata_scratch_, pair_budget, effective);
    out.policy_epoch = policy_epoch_;

    // Remember the *input* weights for sub-streams whose weight arrived
    // with this bundle, so later intervals can resolve weight-less items.
    remembered_weights_.update_from(bundle.w_in);

    metrics_.items_out += out.item_count();
    outputs.push_back(std::move(out));
  }

  metrics_.items_in += items_this_interval;
  ++metrics_.intervals;
  last_interval_items_ = items_this_interval;

  AIOT_LOG(kDebug, "core.node")
      << "node " << config_.id << " interval done: in=" << items_this_interval
      << " budget=" << size << " pairs=" << outputs.size();
  return outputs;
}

void SamplingNode::save_state(CheckpointWriter& writer) const {
  writer.put_double(config_.budget.sampling_fraction);
  writer.put_double(config_.budget.max_items_per_second);
  writer.put_u64(config_.budget.fixed_sample_size);
  writer.put_double(cost_function_->smoothing_state());
  writer.put_u64(last_interval_items_);
  writer.put_u64(policy_epoch_);
  writer.put_weight_map(remembered_weights_);
  lane_->save_state(writer);
}

void SamplingNode::restore_state(CheckpointReader& reader) {
  config_.budget.sampling_fraction = reader.get_double();
  config_.budget.max_items_per_second = reader.get_double();
  config_.budget.fixed_sample_size =
      static_cast<std::size_t>(reader.get_u64());
  cost_function_->set_smoothing_state(reader.get_double());
  last_interval_items_ = reader.get_u64();
  policy_epoch_ = reader.get_u64();
  reader.get_weight_map(remembered_weights_);
  lane_->restore_state(reader);
}

RootNode::RootNode(NodeConfig config) : node_(std::move(config)) {}

void RootNode::ingest_interval(const std::vector<ItemBundle>& psi) {
  for (SampledBundle& bundle : node_.process_interval(psi)) {
    theta_.add(bundle);
  }
}

ApproxResult RootNode::run_query(double confidence) const {
  return approximate_query(theta_, confidence);
}

ApproxResult RootNode::close_window(double confidence) {
  ApproxResult result = run_query(confidence);
  theta_.clear();
  return result;
}

}  // namespace approxiot::core
