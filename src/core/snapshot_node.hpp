// Snapshot-sampling baseline.
//
// The paper's related work (§VII) contrasts ApproxIoT with sensor-side
// "snapshot sampling" schemes [38, 39] that "take the input data stream
// every certain time interval": the node forwards *all* items of every
// k-th interval and drops the intervals in between. The kept snapshots
// are weighted by k (each snapshot stands for k intervals), which makes
// SUM estimates unbiased when the stream is stationary — but strongly
// biased the moment arrival rates or values drift between snapshots,
// which is exactly the weakness item-level sampling avoids. Implemented
// as a third engine so the ablation bench can quantify that gap.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/control_plane.hpp"
#include "core/node.hpp"

namespace approxiot::core {

struct SnapshotNodeConfig {
  NodeId id{};
  /// Keep one interval out of `period` (period == 1 keeps everything).
  /// Matches a sampling fraction of 1/period.
  std::uint32_t period{10};
  /// Which interval within the period is kept (0 <= phase < period).
  std::uint32_t phase{0};
  /// Live control plane view (§IV-B): when bound, the decimation period
  /// tracks the resolved fraction at interval boundaries (kEndToEnd at
  /// leaves, kHold elsewhere so decimation never compounds) and outputs
  /// carry the resolved epoch.
  PolicyHandle policy{};
};

class SnapshotNode {
 public:
  explicit SnapshotNode(SnapshotNodeConfig config);

  /// Keeps the whole interval when (interval_index % period) == phase,
  /// scaling weights by `period`; drops everything otherwise.
  [[nodiscard]] std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi);

  /// Sets the period so the long-run kept fraction approximates
  /// `fraction` (period = round(1/fraction), at least 1).
  void set_fraction(double fraction);

  [[nodiscard]] std::uint32_t period() const noexcept {
    return config_.period;
  }
  [[nodiscard]] NodeId id() const noexcept { return config_.id; }
  [[nodiscard]] const NodeMetrics& metrics() const noexcept {
    return metrics_;
  }

  /// Policy epoch resolved for the most recent interval (0 when unbound).
  [[nodiscard]] PolicyEpoch policy_epoch() const noexcept {
    return policy_epoch_;
  }

  /// Checkpoint hooks: period, phase, interval counter, resolved epoch —
  /// the full decimation state (no RNG; the scheme is deterministic).
  void save_state(CheckpointWriter& writer) const;
  void restore_state(CheckpointReader& reader);

 private:
  SnapshotNodeConfig config_;
  std::uint64_t interval_index_{0};
  PolicyEpoch policy_epoch_{0};
  NodeMetrics metrics_;
  StratifyScratch stratify_scratch_;
};

}  // namespace approxiot::core
