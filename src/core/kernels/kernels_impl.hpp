// Internal seams of the kernel layer: the per-tier entry points that
// live in their own translation units (each compiled with exactly the
// -m flags its intrinsics need) and the helpers they share. Nothing
// here is part of the library API — include kernels.hpp instead.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/kernels/kernels.hpp"

// Compiled-in SIMD support: the build opts in (APPROXIOT_SIMD=1 from
// CMake) and the target is x86-64. The per-tier TUs compile to nothing
// without it and dispatch never leaves kScalar.
#if defined(APPROXIOT_SIMD) && APPROXIOT_SIMD && defined(__x86_64__)
#define AIOT_KERNELS_X86 1
#else
#define AIOT_KERNELS_X86 0
#endif

namespace approxiot::core::kernels::detail {

/// Hash-probe counting pass (the oracle's algorithm, re-rolled here so
/// tier TUs can fall back to it): one mix64 + short linear probe per
/// item, growing the index past half load. Appends new ids first-seen.
void count_pass_hash(const Item* data, std::size_t n, CountScratch s,
                     std::uint32_t* item_slots);

/// Rebuilds the open-addressing index from slot_ids (used after the
/// index grows). Mirrors StratifyScratch::reindex sizing: never
/// shrinks, 4x headroom over the live slot count.
void reindex(CountScratch s);

#if AIOT_KERNELS_X86
// Tier entry points — defined in kernels_<tier>.cpp with matching
// target flags. Only dispatch (kernels.cpp) may call them, and only
// after __builtin_cpu_supports confirmed the tier.
void count_pass_avx2(const Item* data, std::size_t n, CountScratch s,
                     std::uint32_t* item_slots);
void count_pass_avx512(const Item* data, std::size_t n, CountScratch s,
                       std::uint32_t* item_slots);
void scatter_pass_sse42(const Item* data, std::size_t n,
                        const std::uint32_t* item_slots, std::size_t* cursors,
                        Item* arena);
#endif

}  // namespace approxiot::core::kernels::detail
