// Full-stack integration: workload generator -> flowqueue topics ->
// streams drivers running sampling processors per layer -> root Θ ->
// approximate query with error bounds, checked against exact ground
// truth. This is the architecture of the paper's Fig. 4 wired end to end
// inside one process.
#include <gtest/gtest.h>

#include <memory>

#include "analytics/executor.hpp"
#include "core/error.hpp"
#include "core/estimators.hpp"
#include "core/wire.hpp"
#include "flowqueue/broker.hpp"
#include "flowqueue/producer.hpp"
#include "streams/driver.hpp"
#include "streams/sampling_processor.hpp"
#include "workload/generators.hpp"
#include "workload/ground_truth.hpp"

namespace approxiot {
namespace {

core::NodeConfig fixed_node(std::size_t sample_size) {
  core::NodeConfig config;
  config.cost_function = "fixed";
  config.budget.fixed_sample_size = sample_size;
  config.interval = SimTime::from_seconds(1.0);
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.create_topic("sources", 1).is_ok());
    ASSERT_TRUE(broker_.create_topic("layer1", 1).is_ok());
    ASSERT_TRUE(broker_.create_topic("root", 1).is_ok());
  }

  flowqueue::Broker broker_;
};

TEST_F(EndToEndTest, TwoLayerKafkaStylePipeline) {
  // Layer 1: edge sampling node, reservoir 200 per pair.
  streams::TopologyBuilder l1;
  l1.add_source("in", "sources")
      .add_processor("edge",
                     []() {
                       return std::make_unique<streams::SamplingProcessor>(
                           fixed_node(200));
                     },
                     {"in"})
      .add_sink("out", "layer1", {"edge"});
  auto topo1 = l1.build();
  ASSERT_TRUE(topo1.is_ok());

  // Layer 2 (datacenter): reservoir 50 per pair.
  streams::TopologyBuilder l2;
  l2.add_source("in", "layer1")
      .add_processor("dc",
                     []() {
                       return std::make_unique<streams::SamplingProcessor>(
                           fixed_node(50));
                     },
                     {"in"})
      .add_sink("out", "root", {"dc"});
  auto topo2 = l2.build();
  ASSERT_TRUE(topo2.is_ok());

  streams::TopologyDriver edge(broker_, std::move(topo1).value(), "edge");
  streams::TopologyDriver dc(broker_, std::move(topo2).value(), "dc");
  ASSERT_TRUE(edge.start().is_ok());
  ASSERT_TRUE(dc.start().is_ok());

  // Publish four Gaussian sub-streams (the paper's microbenchmark mix).
  workload::StreamGenerator gen(workload::gaussian_quad(2000.0), 13);
  workload::GroundTruth truth;
  flowqueue::Producer producer(broker_);
  SimTime now = SimTime::from_millis(1);
  for (int tick = 0; tick < 10; ++tick) {
    auto items = gen.tick(now, SimTime::from_millis(100));
    truth.add_all(items);
    core::ItemBundle bundle;
    bundle.items = std::move(items);
    ASSERT_TRUE(
        producer.send("sources", "gen", core::encode_bundle(bundle), now)
            .is_ok());
    now = now + SimTime::from_millis(100);
  }

  ASSERT_TRUE(edge.run_until_idle().is_ok());
  ASSERT_TRUE(edge.stop().is_ok());
  ASSERT_TRUE(dc.run_until_idle().is_ok());
  ASSERT_TRUE(dc.stop().is_ok());

  // Drain the root topic into Θ.
  core::ThetaStore theta;
  std::vector<flowqueue::Record> records;
  auto root_topic = broker_.topic("root");
  ASSERT_TRUE(root_topic.is_ok());
  root_topic.value()->partition(0).read(0, 1000000, records);
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    auto bundle = core::decode_bundle(record.value);
    ASSERT_TRUE(bundle.is_ok());
    core::SampledBundle sampled;
    sampled.w_out = bundle.value().w_in;
    for (const Item& item : bundle.value().items) {
      sampled.sample[item.source].push_back(item);
    }
    theta.add(sampled);
  }

  // 1. Count invariant: exact reconstruction of per-stream counts.
  for (SubStreamId id : theta.sub_streams()) {
    EXPECT_NEAR(theta.estimated_original_count(id),
                static_cast<double>(truth.count(id)),
                static_cast<double>(truth.count(id)) * 1e-9)
        << "stream " << id;
  }

  // 2. The sample at the root is a small subset of the input.
  EXPECT_LT(theta.total_sampled(), truth.total_count() / 4);

  // 3. SUM estimate lands within a few percent of the exact answer on
  //    this well-behaved mix, and the error bound is honest about it.
  const core::ApproxResult result = core::approximate_query(theta);
  const double exact = truth.total_sum();
  EXPECT_NEAR(result.sum.point / exact, 1.0, 0.10);
  EXPECT_GT(result.sum.margin, 0.0);

  // 4. The analytics executor agrees with the core estimator.
  analytics::Query query;
  query.aggregate = analytics::Aggregate::kSum;
  EXPECT_DOUBLE_EQ(analytics::execute_approximate(query, theta).value.point,
                   result.sum.point);
}

TEST_F(EndToEndTest, ConsumerGroupSplitsLayerWork) {
  // Two edge drivers in one consumer group share the source topic's
  // partitions; together they must process everything exactly once.
  ASSERT_TRUE(broker_.create_topic("wide", 2).is_ok());

  auto build = []() {
    streams::TopologyBuilder builder;
    builder.add_source("in", "wide")
        .add_processor("edge",
                       []() {
                         return std::make_unique<streams::SamplingProcessor>(
                             fixed_node(1000000));  // keep everything
                       },
                       {"in"})
        .add_sink("out", "layer1", {"edge"});
    auto topo = builder.build();
    EXPECT_TRUE(topo.is_ok());
    return std::move(topo).value();
  };

  streams::TopologyDriver worker_a(broker_, build(), "edge-group");
  streams::TopologyDriver worker_b(broker_, build(), "edge-group");
  ASSERT_TRUE(worker_a.start().is_ok());
  ASSERT_TRUE(worker_b.start().is_ok());

  flowqueue::Producer producer(broker_);
  std::size_t total_items = 0;
  for (int i = 0; i < 20; ++i) {
    core::ItemBundle bundle;
    for (int k = 0; k < 10; ++k) {
      bundle.items.push_back(Item{SubStreamId{1}, 1.0, 0});
    }
    total_items += bundle.items.size();
    ASSERT_TRUE(producer
                    .send_to_partition("wide",
                                       static_cast<std::uint32_t>(i % 2),
                                       "k", core::encode_bundle(bundle),
                                       SimTime::from_millis(i * 10))
                    .is_ok());
  }

  ASSERT_TRUE(worker_a.run_until_idle().is_ok());
  ASSERT_TRUE(worker_b.run_until_idle().is_ok());
  ASSERT_TRUE(worker_a.stop().is_ok());
  ASSERT_TRUE(worker_b.stop().is_ok());

  std::vector<flowqueue::Record> out;
  auto layer1 = broker_.topic("layer1");
  ASSERT_TRUE(layer1.is_ok());
  layer1.value()->partition(0).read(0, 1000000, out);
  std::size_t forwarded = 0;
  for (const auto& record : out) {
    auto bundle = core::decode_bundle(record.value);
    ASSERT_TRUE(bundle.is_ok());
    forwarded += bundle.value().items.size();
  }
  EXPECT_EQ(forwarded, total_items);
}

}  // namespace
}  // namespace approxiot
