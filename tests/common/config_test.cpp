#include "common/config.hpp"

#include <gtest/gtest.h>

namespace approxiot {
namespace {

TEST(ConfigTest, ParsesArgs) {
  auto cfg = Config::from_args({"fraction=0.1", "windows=20", "engine=srs"});
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg.value().get_double_or("fraction", 0), 0.1);
  EXPECT_EQ(cfg.value().get_int_or("windows", 0), 20);
  EXPECT_EQ(cfg.value().get_string_or("engine", ""), "srs");
}

TEST(ConfigTest, RejectsTokenWithoutEquals) {
  auto cfg = Config::from_args({"fraction"});
  EXPECT_FALSE(cfg.is_ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, RejectsEmptyKey) {
  auto cfg = Config::from_args({"=3"});
  EXPECT_FALSE(cfg.is_ok());
}

TEST(ConfigTest, ParsesTextWithCommentsAndBlankLines) {
  const std::string text = R"(
# experiment setup
fraction = 0.6   # inline comment
windows=5

engine = approxiot
)";
  auto cfg = Config::from_text(text);
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_DOUBLE_EQ(cfg.value().get_double_or("fraction", 0), 0.6);
  EXPECT_EQ(cfg.value().get_int_or("windows", 0), 5);
  EXPECT_EQ(cfg.value().get_string_or("engine", ""), "approxiot");
}

TEST(ConfigTest, TextErrorsNameTheLine) {
  auto cfg = Config::from_text("good=1\nbad line\n");
  ASSERT_FALSE(cfg.is_ok());
  EXPECT_NE(cfg.status().message().find("line 2"), std::string::npos);
}

TEST(ConfigTest, GetIntRejectsNonInteger) {
  Config cfg;
  cfg.set("x", "12abc");
  EXPECT_FALSE(cfg.get_int("x").is_ok());
  cfg.set("y", "3.5");
  EXPECT_FALSE(cfg.get_int("y").is_ok());
}

TEST(ConfigTest, GetDoubleParsesScientific) {
  Config cfg;
  cfg.set("bw", "1e9");
  ASSERT_TRUE(cfg.get_double("bw").is_ok());
  EXPECT_DOUBLE_EQ(cfg.get_double("bw").value(), 1e9);
}

TEST(ConfigTest, GetBoolAcceptsCommonSpellings) {
  Config cfg;
  for (const char* t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
    cfg.set("b", t);
    ASSERT_TRUE(cfg.get_bool("b").is_ok()) << t;
    EXPECT_TRUE(cfg.get_bool("b").value()) << t;
  }
  for (const char* f : {"false", "0", "no", "off", "FALSE"}) {
    cfg.set("b", f);
    ASSERT_TRUE(cfg.get_bool("b").is_ok()) << f;
    EXPECT_FALSE(cfg.get_bool("b").value()) << f;
  }
  cfg.set("b", "maybe");
  EXPECT_FALSE(cfg.get_bool("b").is_ok());
}

TEST(ConfigTest, MissingKeyIsNotFound) {
  Config cfg;
  EXPECT_EQ(cfg.get_string("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(cfg.contains("nope"));
}

TEST(ConfigTest, FallbackGetters) {
  Config cfg;
  EXPECT_EQ(cfg.get_int_or("k", 9), 9);
  EXPECT_EQ(cfg.get_double_or("k", 2.5), 2.5);
  EXPECT_EQ(cfg.get_string_or("k", "d"), "d");
  EXPECT_TRUE(cfg.get_bool_or("k", true));
}

TEST(ConfigTest, KeysAreSortedAndComplete) {
  Config cfg;
  cfg.set("b", "2");
  cfg.set("a", "1");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace approxiot
