// IntervalScheduler: virtual pacing determinism, wall-clock pacing, and
// cooperative stop.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/scheduler.hpp"

namespace approxiot::runtime {
namespace {

ConcurrentTreeConfig small_tree_config() {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {2};
  config.tree.engine = core::EngineKind::kNative;
  return config;
}

TEST(IntervalSchedulerTest, VirtualPaceDrivesEveryTick) {
  ConcurrentEdgeTree tree(small_tree_config());
  SchedulerConfig config;
  config.tick = SimTime::from_millis(100);
  config.ticks = 25;

  std::vector<SimTime> seen_times;
  IntervalScheduler scheduler(
      tree, config,
      [&seen_times](std::size_t leaf, SimTime now, SimTime dt) {
        if (leaf == 0) seen_times.push_back(now);
        EXPECT_EQ(dt.us, SimTime::from_millis(100).us);
        return std::vector<Item>{Item{SubStreamId{leaf + 1}, 1.0, now.us}};
      });
  scheduler.run();
  tree.drain();
  tree.stop();

  EXPECT_EQ(scheduler.ticks_fired(), 25u);
  ASSERT_EQ(seen_times.size(), 25u);
  for (std::size_t k = 0; k < seen_times.size(); ++k) {
    EXPECT_EQ(seen_times[k].us,
              static_cast<std::int64_t>(k) * SimTime::from_millis(100).us);
  }
  EXPECT_EQ(tree.metrics().intervals_completed, 25u);
  EXPECT_EQ(tree.metrics().items_at_root, 50u);  // 2 leaves x 25 ticks
}

TEST(IntervalSchedulerTest, RejectsZeroAndNegativeTick) {
  ConcurrentEdgeTree tree(small_tree_config());
  auto source = [](std::size_t, SimTime, SimTime) {
    return std::vector<Item>{};
  };

  SchedulerConfig zero;
  zero.tick = SimTime{0};  // zero-duration interval: [t, t) forever
  EXPECT_THROW(IntervalScheduler(tree, zero, source), std::invalid_argument);

  SchedulerConfig negative;
  negative.tick = SimTime{-1000};  // clock running backwards
  EXPECT_THROW(IntervalScheduler(tree, negative, source),
               std::invalid_argument);
  tree.stop();
}

TEST(IntervalSchedulerTest, ZeroTicksIsANoOp) {
  ConcurrentEdgeTree tree(small_tree_config());
  SchedulerConfig config;
  config.ticks = 0;
  bool source_called = false;
  IntervalScheduler scheduler(tree, config,
                              [&](std::size_t, SimTime, SimTime) {
                                source_called = true;
                                return std::vector<Item>{};
                              });
  scheduler.run();
  tree.stop();

  EXPECT_FALSE(source_called);
  EXPECT_EQ(scheduler.ticks_fired(), 0u);
  EXPECT_EQ(scheduler.now().us, 0);
}

TEST(IntervalSchedulerTest, ClockNeverRunsAheadOfTheData) {
  // Regression: now() used to be stored BEFORE tick k's push, so at every
  // interval boundary an observer could read k*tick while interval k's
  // items did not exist yet. The invariant is now() == ticks_fired()*tick
  // at every observable instant — checked here from inside the source
  // callback, which runs exactly at the boundary.
  ConcurrentEdgeTree tree(small_tree_config());
  const SimTime tick = SimTime::from_millis(10);
  SchedulerConfig config;
  config.tick = tick;
  config.ticks = 8;

  IntervalScheduler* observer = nullptr;
  IntervalScheduler scheduler(
      tree, config, [&observer, tick](std::size_t, SimTime now, SimTime) {
        // Tick k is firing: its data has not been pushed yet, so the
        // published clock must still cover only the k intervals already
        // in the tree — never the one being assembled.
        EXPECT_EQ(observer->now().us,
                  static_cast<std::int64_t>(observer->ticks_fired()) *
                      tick.us);
        EXPECT_EQ(observer->now().us, now.us);
        return std::vector<Item>{};
      });
  observer = &scheduler;
  scheduler.run();
  tree.stop();

  EXPECT_EQ(scheduler.ticks_fired(), 8u);
  EXPECT_EQ(scheduler.now().us, 8 * tick.us);  // final boundary, not 7*tick
}

TEST(IntervalSchedulerTest, EarlyStopLeavesClockAtLastCompletedBoundary) {
  ConcurrentEdgeTree tree(small_tree_config());
  const SimTime tick = SimTime::from_millis(10);
  SchedulerConfig config;
  config.tick = tick;
  config.ticks = 100;

  IntervalScheduler* self = nullptr;
  IntervalScheduler scheduler(tree, config,
                              [&self](std::size_t leaf, SimTime, SimTime) {
                                // Ask for a stop mid-run; the current tick
                                // still completes (items already sourced).
                                if (self->ticks_fired() == 4 && leaf == 0) {
                                  self->request_stop();
                                }
                                return std::vector<Item>{};
                              });
  self = &scheduler;
  scheduler.run();
  tree.stop();

  EXPECT_EQ(scheduler.ticks_fired(), 5u);
  EXPECT_EQ(scheduler.now().us,
            static_cast<std::int64_t>(scheduler.ticks_fired()) * tick.us);
}

TEST(IntervalSchedulerTest, WallClockPaceTakesAtLeastTheScheduledTime) {
  ConcurrentEdgeTree tree(small_tree_config());
  SchedulerConfig config;
  config.tick = SimTime::from_millis(5);
  config.ticks = 6;
  config.pace = SchedulerConfig::Pace::kWallClock;

  IntervalScheduler scheduler(
      tree, config, [](std::size_t, SimTime, SimTime) {
        return std::vector<Item>{};
      });
  const auto start = std::chrono::steady_clock::now();
  scheduler.run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  tree.stop();

  // Tick k fires at >= k * 5 ms, so 6 ticks take at least 25 ms.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  EXPECT_EQ(scheduler.ticks_fired(), 6u);
}

TEST(IntervalSchedulerTest, BackgroundStartAndRequestStop) {
  ConcurrentEdgeTree tree(small_tree_config());
  SchedulerConfig config;
  config.tick = SimTime::from_millis(1);
  config.ticks = 1'000'000;  // far more than we let it run
  config.pace = SchedulerConfig::Pace::kWallClock;

  IntervalScheduler scheduler(
      tree, config, [](std::size_t, SimTime, SimTime) {
        return std::vector<Item>{};
      });
  scheduler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.request_stop();
  scheduler.join();
  tree.stop();

  EXPECT_GT(scheduler.ticks_fired(), 0u);
  EXPECT_LT(scheduler.ticks_fired(), 1'000'000u);
  EXPECT_EQ(tree.metrics().intervals_pushed, scheduler.ticks_fired());
}

}  // namespace
}  // namespace approxiot::runtime
