// Weighted hierarchical sampling — Algorithm 1 of the paper.
//
// WHSamp(items, sampleSize, W^in):
//   1. stratify `items` into sub-streams by source;
//   2. split `sampleSize` across the sub-streams (allocation policy —
//      the paper's getSampleSize);
//   3. reservoir-sample each sub-stream S_i to at most N_i items;
//   4. update weights:  w_i = c_i / N_i         if c_i > N_i   (Eq. 1)
//                       W^out_i = W^in_i * w_i   if c_i > N_i   (Eq. 2)
//                       W^out_i = W^in_i         otherwise.
//
// The sampler is semantically stateless between calls except for its RNG;
// the node layer owns the cross-interval weight memory (Fig. 3 rule). It
// does keep reusable buffers (the stratification arena and the reservoir)
// so steady-state intervals run without item-sized allocations — pure
// performance state, invisible to the output.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/stratified.hpp"
#include "sampling/allocation.hpp"
#include "sampling/reservoir.hpp"

namespace approxiot::core {

struct WHSampConfig {
  sampling::ReservoirAlgorithm reservoir_algorithm{
      sampling::ReservoirAlgorithm::kAlgorithmR};
  /// Allocation policy name (see sampling::make_allocation_policy).
  std::string allocation_policy{"equal"};
};

class WHSampler {
 public:
  explicit WHSampler(Rng rng = Rng{}, WHSampConfig config = {});

  /// One invocation of Algorithm 1 on a (W^in, items) pair. `sample_size`
  /// is the node's per-call reservoir budget N. Returns (W^out, sample);
  /// W^out carries entries only for sub-streams present in `items`.
  /// Stratifies into an internal scratch batch, then runs the span path.
  [[nodiscard]] SampledBundle sample(const std::vector<Item>& items,
                                     std::size_t sample_size,
                                     const WeightMap& w_in);

  /// Span-based hot path: samples pre-stratified input directly from the
  /// batch arena — no per-stratum item copies. Callers that already hold
  /// a StratifiedBatch (the node layer) use this entry point.
  [[nodiscard]] SampledBundle sample_strata(const StratifiedBatch& strata,
                                            std::size_t sample_size,
                                            const WeightMap& w_in);

  [[nodiscard]] const WHSampConfig& config() const noexcept { return config_; }

  /// The sampler's only cross-call state is its RNG (the reservoir and
  /// scratch arenas are rearmed every call); exposing it is all a
  /// checkpoint needs to resume the exact draw sequence.
  [[nodiscard]] Rng::State rng_state() const noexcept {
    return rng_.save_state();
  }
  void set_rng_state(const Rng::State& state) noexcept {
    rng_.restore_state(state);
  }

 private:
  Rng rng_;
  WHSampConfig config_;
  std::unique_ptr<sampling::AllocationPolicy> policy_;
  /// Rearmed per stratum; its heap buffer persists across strata and
  /// intervals (rearm keeps capacity).
  sampling::ReservoirSampler<Item> reservoir_;
  /// Reused stratification arena for the vector entry point.
  StratifiedBatch scratch_;
  std::vector<sampling::SubStreamInfo> infos_;
  /// Per-interval W^in_i, resolved in one get_for_strata() block pass.
  std::vector<double> weights_scratch_;
};

/// Stratifies a flat item vector by source id (Algorithm 1 line 5) into a
/// map of vectors. This is the LEGACY node-based representation, kept as
/// the reference for the StratifiedBatch bit-identity tests and the
/// bench_hotpath comparison mode; the samplers themselves stratify into a
/// flat StratifiedBatch (same order, same contents, no node allocations).
[[nodiscard]] std::map<SubStreamId, std::vector<Item>> stratify(
    const std::vector<Item>& items);

}  // namespace approxiot::core
