#include "analytics/query.hpp"

namespace approxiot::analytics {

const char* aggregate_name(Aggregate a) noexcept {
  switch (a) {
    case Aggregate::kSum:
      return "sum";
    case Aggregate::kMean:
      return "mean";
    case Aggregate::kCount:
      return "count";
  }
  return "?";
}

Result<Aggregate> parse_aggregate(const std::string& text) {
  if (text == "sum") return Aggregate::kSum;
  if (text == "mean") return Aggregate::kMean;
  if (text == "count") return Aggregate::kCount;
  return Status::invalid_argument("unknown aggregate '" + text + "'");
}

core::AdaptiveConfig adaptive_config_for(const Query& query,
                                         core::AdaptiveConfig base) {
  if (query.target_relative_error > 0.0) {
    base.target_relative_error = query.target_relative_error;
  }
  return base;
}

bool wants_adaptive(const Query& query) noexcept {
  return query.target_relative_error > 0.0;
}

}  // namespace approxiot::analytics
