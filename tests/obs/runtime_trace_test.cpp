// End-to-end observability across every runtime: a 64-node
// ConcurrentEdgeTree (plus a flowqueue-fed streams driver sharing the
// registry) must produce a chrome://tracing-loadable trace whose spans
// carry policy-epoch annotations, and one Prometheus snapshot covering
// tree, executor, flowqueue, and streams metrics. Instrumentation must
// never perturb sampling: stats-on and stats-off runs are bit-identical.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "flowqueue/producer.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "runtime/concurrent_tree.hpp"
#include "streams/driver.hpp"

namespace approxiot::runtime {
namespace {

std::vector<std::vector<std::vector<Item>>> make_workload(std::size_t ticks,
                                                          std::size_t leaves,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::vector<Item>>> workload(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    workload[t].resize(leaves);
    for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
      const std::size_t n = rng.next_below(60);
      for (std::size_t i = 0; i < n; ++i) {
        workload[t][leaf].push_back(Item{SubStreamId{1 + rng.next_below(4)},
                                         rng.next_double() * 10.0,
                                         static_cast<std::int64_t>(t) * 1000});
      }
    }
  }
  return workload;
}

/// Forwards records untouched; schedules a stream-time punctuation.
class PassThroughProcessor final : public streams::Processor {
 public:
  void init(streams::ProcessorContext& context) override {
    context_ = &context;
    context.schedule(SimTime::from_millis(1));
  }
  void process(const flowqueue::Record& record) override {
    context_->forward(record);
  }
  void punctuate(SimTime) override {}

 private:
  streams::ProcessorContext* context_{nullptr};
};

TEST(ObsRuntimeTraceTest, SixtyFourNodeTraceAndCrossRuntimePrometheus) {
#ifdef APPROXIOT_NO_STATS
  GTEST_SKIP() << "observability hooks compiled out";
#endif
  obs::StatsRegistry stats;
  obs::Tracer tracer;

  // --- the 64-node tree (63 sampling nodes + root) --------------------
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {32, 16, 8, 4, 2, 1};
  config.tree.sampling_fraction = 0.4;
  config.tree.rng_seed = 20180701;
  config.tree.control_plane = core::make_control_plane(config.tree);
  config.workers_per_node = 2;  // pooled executor lanes get instrumented
  config.stats = &stats;
  config.tracer = &tracer;
  ConcurrentEdgeTree tree(config);

  const auto workload = make_workload(6, tree.leaf_count(), 42);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    if (t == 3) {
      // Quiesce first so the earlier intervals demonstrably execute
      // under epoch 0 (nodes resolve the policy at processing time, not
      // push time), then switch to epoch 1 mid-run.
      tree.drain();
      tree.publish_fraction(0.2);
    }
    tree.push_interval(workload[t]);
  }
  tree.drain();
  (void)tree.close_window();
  tree.stop();

  // One track per node plus the control track.
  EXPECT_GE(tracer.track_count(), 65u);
  EXPECT_GT(tracer.event_count(), 0u);

  const std::string trace = tracer.to_chrome_json();
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(trace.back(), '}');
  // Per-node spans with the policy epoch resolved at execution time.
  EXPECT_NE(trace.find("\"name\":\"stage-execute\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"window-close\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"policy-publish\""), std::string::npos);
  EXPECT_NE(trace.find("\"policy_epoch\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"policy_epoch\":1"), std::string::npos);
  // Track names span the whole topology.
  EXPECT_NE(trace.find("tree/L0/n0"), std::string::npos);
  EXPECT_NE(trace.find("tree/L0/n31"), std::string::npos);
  EXPECT_NE(trace.find("tree/L5/n0"), std::string::npos);
  EXPECT_NE(trace.find("tree/root"), std::string::npos);

  // --- flowqueue + streams on the same registry -----------------------
  flowqueue::Broker broker;
  ASSERT_TRUE(broker.create_topic("in", 1).is_ok());
  ASSERT_TRUE(broker.create_topic("out", 1).is_ok());
  streams::TopologyBuilder builder;
  builder.add_source("src", "in")
      .add_processor("proc",
                     [] { return std::make_unique<PassThroughProcessor>(); },
                     {"src"})
      .add_sink("sink", "out", {"proc"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());
  streams::TopologyDriver driver(broker, std::move(topo).value(), "app");
  driver.bind_obs(&stats, &tracer);
  ASSERT_TRUE(driver.start().is_ok());

  flowqueue::Producer producer(broker);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(producer
                    .send("in", "k" + std::to_string(i), {1},
                          SimTime::from_millis(i))
                    .is_ok());
  }
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  ASSERT_TRUE(driver.stop().is_ok());
  broker.export_stats(stats, "flowqueue");

  // --- one Prometheus snapshot covering all four runtimes -------------
  const std::string prom = stats.snapshot().to_prometheus();
  // tree: per-node interval latency + occupancy + policy state
  EXPECT_NE(prom.find("approxiot_tree_root_exec_us"), std::string::npos);
  EXPECT_NE(prom.find("approxiot_tree_L0_n0_occupancy"), std::string::npos);
  EXPECT_NE(prom.find("approxiot_tree_L0_n0_in0_depth"), std::string::npos);
  EXPECT_NE(prom.find("approxiot_tree_policy_epoch"), std::string::npos);
  EXPECT_NE(prom.find("approxiot_tree_windows_closed"), std::string::npos);
  // executor: per-lane dispatch/merge timing
  EXPECT_NE(prom.find("approxiot_executor_lane0_dispatch_us"),
            std::string::npos);
  EXPECT_NE(prom.find("approxiot_executor_lane0_merge_us"),
            std::string::npos);
  // flowqueue: consumer watermarks + broker topic depth
  EXPECT_NE(prom.find("approxiot_streams_app_source_src_lag"),
            std::string::npos);
  EXPECT_NE(prom.find("approxiot_flowqueue_topic_in_records"),
            std::string::npos);
  // streams: punctuation latency
  EXPECT_NE(prom.find("approxiot_streams_app_punctuate_us"),
            std::string::npos);

  // Policy gauges reflect the mid-run publish.
  const auto snap = stats.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("tree/policy/epoch"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("tree/policy/fraction"), 0.2);
  EXPECT_EQ(snap.counters.at("tree/windows_closed"), 1u);
}

// The acceptance bar for zero perturbation: the same seeded workload
// produces bit-identical query answers with instrumentation fully on
// (stats + tracer) and fully off (no registry, no tracer) — the hooks
// read clocks and counters, never the sampling RNG streams.
TEST(ObsRuntimeTraceTest, InstrumentationIsBitIdenticalOnAndOff) {
  auto run = [](bool instrumented) {
    obs::StatsRegistry stats;
    obs::Tracer tracer;
    ConcurrentTreeConfig config;
    config.tree.layer_widths = {4, 2};
    config.tree.sampling_fraction = 0.4;
    config.tree.rng_seed = 20180701;
    config.tree.control_plane = core::make_control_plane(config.tree);
    config.workers_per_node = 2;
    if (instrumented) {
      config.stats = &stats;
      config.tracer = &tracer;
    }
    ConcurrentEdgeTree tree(config);
    const auto workload = make_workload(10, tree.leaf_count(), 7);
    for (std::size_t t = 0; t < workload.size(); ++t) {
      if (t == 5) tree.publish_fraction(0.8);
      tree.push_interval(workload[t]);
      if (t == 4) tree.drain();  // quiesce so the swap lands identically
    }
    tree.drain();
    auto result = tree.close_window();
    tree.stop();
    return result;
  };

  const auto on = run(true);
  const auto off = run(false);
  EXPECT_EQ(on.sum.point, off.sum.point);
  EXPECT_EQ(on.sum.margin, off.sum.margin);
  EXPECT_EQ(on.mean.point, off.mean.point);
  EXPECT_EQ(on.estimated_count, off.estimated_count);
  EXPECT_EQ(on.sampled_items, off.sampled_items);
  EXPECT_EQ(on.policy_epoch, off.policy_epoch);
}

}  // namespace
}  // namespace approxiot::runtime
