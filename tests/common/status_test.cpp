#include "common/status.hpp"

#include <gtest/gtest.h>

namespace approxiot {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  const Status s = Status::not_found("topic 'x'");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "topic 'x'");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: topic 'x'");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(status_code_name(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::invalid_argument("bad"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // A Result constructed from an OK status has no value to give; that is
  // a caller bug and must surface as an error, not silently succeed.
  Result<int> r{Status::ok()};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ValueOrPrefersValue) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(0), 7);
}

}  // namespace
}  // namespace approxiot
