// Node roles in the logical tree (Algorithm 2).
//
// SamplingNode: per interval, derives its reservoir budget from the cost
// function, consumes the interval's (W^in, items) pairs, runs WHSamp on
// each, and emits (W^out, sample) pairs for the parent. It remembers the
// last known weight of every sub-stream across intervals to implement the
// Fig. 3 rule for weight/items arriving in different intervals.
//
// RootNode: same sampling step, but accumulates the pairs into Θ and, when
// the window closes, runs the query with error estimation.
//
// Both are transport-agnostic: callers (the in-memory pipeline, the
// streams engine, or netsim) hand bundles in and receive bundles out.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/control_plane.hpp"
#include "core/cost_function.hpp"
#include "core/error.hpp"
#include "core/executor.hpp"
#include "core/theta_store.hpp"
#include "core/whsamp.hpp"

namespace approxiot::core {

class CheckpointWriter;
class CheckpointReader;

struct NodeConfig {
  NodeId id{};
  SimTime interval{SimTime::from_seconds(1.0)};
  ResourceBudget budget{};
  std::string cost_function{"fraction"};
  WHSampConfig whsamp{};
  std::uint64_t rng_seed{0x5eed5eedULL};
  /// Workers sharding each sub-stream's reservoir (§III-E) when no
  /// `executor` handle is given: 1 keeps the sequential WHSampler path;
  /// >1 makes the node own a private PooledSamplingExecutor (any
  /// allocation policy; Algorithm R reservoirs only). Ignored when
  /// `executor` is set.
  std::size_t parallel_workers{1};
  /// Execution substrate for the node's sampling. Null -> sequential (or
  /// a private pool, see parallel_workers). Runtimes that host many
  /// nodes (ConcurrentEdgeTree, streams topologies) share one executor
  /// here so every node's shards run on the same persistent worker pool.
  std::shared_ptr<SamplingExecutor> executor{};
  /// Live control plane view (§IV-B). When bound, the node resolves its
  /// budget through this handle at every interval boundary — the policy
  /// wins over the frozen `budget` above — and stamps its outputs with
  /// the resolved epoch. Unbound (default) keeps the frozen budget.
  PolicyHandle policy{};
};

/// Counters a node exposes for the throughput/bandwidth benches.
struct NodeMetrics {
  std::uint64_t items_in{0};
  std::uint64_t items_out{0};
  std::uint64_t intervals{0};

  [[nodiscard]] double forward_ratio() const noexcept {
    return items_in > 0
               ? static_cast<double>(items_out) / static_cast<double>(items_in)
               : 1.0;
  }
};

class SamplingNode {
 public:
  explicit SamplingNode(NodeConfig config);

  /// Processes one interval's worth of input pairs (the paper's Ψ) and
  /// returns the sampled pairs destined for the parent node.
  [[nodiscard]] std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi);

  /// Updates the budget between intervals (legacy synchronous feedback,
  /// §IV-B). With a bound policy handle the control plane wins: the next
  /// interval's resolve overwrites whatever is set here.
  void set_budget(const ResourceBudget& budget) { config_.budget = budget; }
  [[nodiscard]] const ResourceBudget& budget() const noexcept {
    return config_.budget;
  }

  /// Policy epoch resolved for the most recent interval (0 before the
  /// first interval and whenever no control plane is bound).
  [[nodiscard]] PolicyEpoch policy_epoch() const noexcept {
    return policy_epoch_;
  }

  [[nodiscard]] NodeId id() const noexcept { return config_.id; }
  [[nodiscard]] SimTime interval() const noexcept { return config_.interval; }
  [[nodiscard]] const NodeMetrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_ = NodeMetrics{}; }

  /// Reservoir shards per sub-stream this node samples with (1 == the
  /// sequential WHSampler path).
  [[nodiscard]] std::size_t sampling_workers() const noexcept {
    return lane_->workers();
  }

  /// Last known weight per sub-stream (exposed for tests of the Fig. 3
  /// carry-over rule).
  [[nodiscard]] const WeightMap& remembered_weights() const noexcept {
    return remembered_weights_;
  }

  /// Checkpoint hooks: serialize/restore every piece of cross-interval
  /// state (budget, cost-function EWMA, volume history, resolved epoch,
  /// remembered weights, the lane's RNG stream). A restored node's next
  /// process_interval is bit-identical to the uninterrupted run's.
  void save_state(CheckpointWriter& writer) const;
  void restore_state(CheckpointReader& reader);

 private:
  NodeConfig config_;
  // owned_executor_ must outlive lane_ (declaration order matters).
  std::shared_ptr<SamplingExecutor> owned_executor_;
  std::unique_ptr<SamplingLane> lane_;
  std::unique_ptr<CostFunction> cost_function_;
  WeightMap remembered_weights_;
  /// Reused per-bundle stratification arena (zero steady-state allocs).
  StratifiedBatch strata_scratch_;
  std::uint64_t last_interval_items_{0};
  PolicyEpoch policy_epoch_{0};
  NodeMetrics metrics_;
};

/// Root node: samples, accumulates Θ across the window, answers queries.
class RootNode {
 public:
  explicit RootNode(NodeConfig config);

  /// Consumes one interval's pairs into Θ (after local sampling).
  void ingest_interval(const std::vector<ItemBundle>& psi);

  /// Runs the query over the current Θ: `result ± error` (Algorithm 2
  /// lines 21-25). Does not clear Θ.
  [[nodiscard]] ApproxResult run_query(
      double confidence = stats::kConfidence95) const;

  /// Closes the window: returns the query result and clears Θ.
  ApproxResult close_window(double confidence = stats::kConfidence95);

  [[nodiscard]] const ThetaStore& theta() const noexcept { return theta_; }
  [[nodiscard]] const NodeMetrics& metrics() const noexcept {
    return node_.metrics();
  }
  [[nodiscard]] NodeId id() const noexcept { return node_.id(); }
  void set_budget(const ResourceBudget& budget) { node_.set_budget(budget); }
  [[nodiscard]] PolicyEpoch policy_epoch() const noexcept {
    return node_.policy_epoch();
  }

 private:
  SamplingNode node_;
  ThetaStore theta_;
};

}  // namespace approxiot::core
