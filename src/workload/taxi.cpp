#include "workload/taxi.hpp"

#include <cmath>
#include <memory>
#include <string>

namespace approxiot::workload {

namespace {

std::vector<SubStreamSpec> build_specs(const TaxiConfig& config) {
  // Zipf region popularity: share_k ∝ 1/k^s.
  std::vector<double> shares(config.regions);
  double norm = 0.0;
  for (std::size_t k = 0; k < config.regions; ++k) {
    shares[k] = 1.0 / std::pow(static_cast<double>(k + 1), config.zipf_s);
    norm += shares[k];
  }

  std::vector<SubStreamSpec> specs;
  specs.reserve(config.regions);
  for (std::size_t k = 0; k < config.regions; ++k) {
    SubStreamSpec spec;
    spec.id = SubStreamId{100 + k};
    spec.name = "region-" + std::to_string(k);
    // Outer regions have slightly longer (pricier) trips: scale log-mu up
    // as popularity falls, like airport/suburb runs.
    const double mu = config.fare_log_mu +
                      0.08 * static_cast<double>(k);
    spec.values = std::make_shared<stats::LogNormalDistribution>(
        mu, config.fare_log_sigma);
    spec.rate_items_per_s =
        config.mean_rate_items_per_s * shares[k] / norm;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

TaxiGenerator::TaxiGenerator(TaxiConfig config)
    : config_(config), generator_(build_specs(config), config.seed) {
  base_rates_.reserve(generator_.specs().size());
  for (const auto& spec : generator_.specs()) {
    base_rates_.push_back(spec.rate_items_per_s);
  }
}

double TaxiGenerator::diurnal_factor(SimTime t) const noexcept {
  // Two-harmonic day curve: deep night trough, morning rise, evening
  // peak. Coefficients keep the factor positive with mean ~1.
  const double phase = 2.0 * M_PI *
                       static_cast<double>(t.us % config_.day_length.us) /
                       static_cast<double>(config_.day_length.us);
  return 1.0 + 0.55 * std::sin(phase - M_PI / 2.0) +
         0.20 * std::sin(2.0 * phase);
}

std::vector<Item> TaxiGenerator::tick(SimTime now, SimTime dt) {
  const double factor = diurnal_factor(now);
  const auto& specs = generator_.specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    generator_.set_rate(specs[i].id, base_rates_[i] * factor);
  }
  return generator_.tick(now, dt);
}

}  // namespace approxiot::workload
