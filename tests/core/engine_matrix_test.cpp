// Parameterized sweep over (engine, fraction, tree shape): the system
// invariants that must hold for EVERY configuration of the pipeline, not
// just the defaults the other tests exercise.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "core/pipeline.hpp"

namespace approxiot::core {
namespace {

using MatrixParams = std::tuple<EngineKind, double, std::vector<std::size_t>>;

class EngineMatrixTest : public ::testing::TestWithParam<MatrixParams> {
 protected:
  static std::vector<std::vector<Item>> make_leaves(std::size_t leaves,
                                                    Rng& rng) {
    // Three sub-streams of different sizes and value scales, spread
    // across the leaves.
    std::vector<std::vector<Item>> out(leaves);
    const std::size_t counts[] = {2000, 400, 40};
    const double values[] = {1.0, 100.0, 10000.0};
    for (std::uint64_t s = 0; s < 3; ++s) {
      auto& leaf = out[s % leaves];
      for (std::size_t i = 0; i < counts[s]; ++i) {
        leaf.push_back(Item{SubStreamId{s + 1},
                            values[s] * (0.9 + 0.2 * rng.next_double()), 0});
      }
    }
    return out;
  }
};

TEST_P(EngineMatrixTest, InvariantsHoldAcrossConfigurations) {
  const auto& [engine, fraction, widths] = GetParam();

  EdgeTreeConfig config;
  config.engine = engine;
  config.layer_widths = widths;
  config.sampling_fraction = fraction;
  config.rng_seed = 2024;
  EdgeTree tree(config);

  Rng rng(55);
  double exact_total = 0.0;
  double approx_total = 0.0;
  double count_total = 0.0;
  std::uint64_t exact_items = 0;

  const int windows = 8;
  for (int w = 0; w < windows; ++w) {
    auto leaves = make_leaves(tree.leaf_count(), rng);
    for (const auto& leaf : leaves) {
      for (const Item& item : leaf) {
        exact_total += item.value;
        ++exact_items;
      }
    }
    tree.tick(leaves);
    const ApproxResult result = tree.close_window();

    // Invariant 1: results are finite and non-negative for this workload.
    ASSERT_TRUE(std::isfinite(result.sum.point));
    ASSERT_GE(result.sum.point, 0.0);
    ASSERT_TRUE(std::isfinite(result.sum.margin));

    approx_total += result.sum.point;
    count_total += result.estimated_count;
  }

  // Invariant 2 (ApproxIoT + native): the count estimate reconstructs the
  // generated item count exactly (Eq. 8); snapshot reconstructs it in
  // expectation over full periods; SRS only in expectation.
  if (engine == EngineKind::kApproxIoT || engine == EngineKind::kNative) {
    EXPECT_NEAR(count_total / static_cast<double>(exact_items), 1.0, 1e-9);
  } else {
    EXPECT_NEAR(count_total / static_cast<double>(exact_items), 1.0, 0.25);
  }

  // Invariant 3: the multi-window SUM tracks the exact total. Tolerance
  // scales with how aggressive the sampling is; native must be exact.
  if (engine == EngineKind::kNative) {
    EXPECT_NEAR(approx_total / exact_total, 1.0, 1e-9);
  } else {
    EXPECT_NEAR(approx_total / exact_total, 1.0, 0.30);
  }

  // Invariant 4: metrics add up — the root never sees more items than
  // were ingested, and sampling engines see strictly fewer.
  const auto metrics = tree.metrics();
  EXPECT_EQ(metrics.items_ingested, exact_items);
  EXPECT_LE(metrics.items_at_root, metrics.items_ingested);
  if (engine != EngineKind::kNative && fraction < 0.5) {
    EXPECT_LT(metrics.items_at_root, metrics.items_ingested);
  }
}

// Tree shapes named outside the macro: commas inside braced initializers
// would otherwise split the macro arguments.
const std::vector<std::size_t> kSingleNode = {1};
const std::vector<std::size_t> kPaperTree = {4, 2};

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineMatrixTest,
    ::testing::Combine(
        ::testing::Values(EngineKind::kApproxIoT, EngineKind::kSrs,
                          EngineKind::kNative, EngineKind::kSnapshot),
        ::testing::Values(0.1, 0.5, 1.0),
        ::testing::Values(kSingleNode, kPaperTree)),
    [](const ::testing::TestParamInfo<MatrixParams>& info) {
      std::string name = engine_kind_name(std::get<0>(info.param));
      name += "_f" + std::to_string(
                         static_cast<int>(std::get<1>(info.param) * 100));
      name += "_L" + std::to_string(std::get<2>(info.param).size());
      return name;
    });

}  // namespace
}  // namespace approxiot::core
