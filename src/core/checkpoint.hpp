// Checkpoint: versioned, serializable snapshots of a runtime's sampling
// state — reservoir RNG streams, remembered weights (Fig. 3), the root's
// Θ window, and the resolved policy epoch (§IV-B).
//
// The restore contract is BIT-IDENTITY, not approximate resumption: a
// tree restored from a checkpoint and fed the remaining input produces
// the same future RNG draws, the same Θ, the same query answers, and the
// same wire bytes as the uninterrupted run. That is only possible because
// every piece of cross-interval state in the sampling path is explicit
// and enumerable: the xoshiro256** words (plus the gaussian cache), the
// per-node WeightMap, the cost-function EWMA, the SRS counters, the
// snapshot node's interval phase, and the policy epoch — everything else
// (reservoir buffers, stratification arenas, shard groups) is rearmed
// from scratch each call and carries nothing forward.
//
// Format: one flat byte stream over the flowqueue serde primitives
// (varint / fixed64 / IEEE double), headed by a magic byte (0xC4), a
// format version, and a KIND byte distinguishing whole-tree, single-stage
// and flowqueue-source checkpoints. Tree checkpoints embed a topology
// fingerprint (engine, layer widths, seed, interval, reservoir algorithm)
// and refuse to restore into a tree built differently — a checkpoint is a
// continuation of one specific configuration, not a migration tool. The
// byte layout is written identically by EdgeTree and ConcurrentEdgeTree,
// so a snapshot taken on the sequential reference restores into the
// concurrent runtime and vice versa.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flowqueue/serde.hpp"

namespace approxiot::core {

class ControlPlane;
struct EdgeTreeConfig;
class PipelineStage;
class ThetaStore;
class WeightMap;

/// A serialized snapshot. Opaque bytes on purpose: everything consumers
/// can do with one goes through restore()/CheckpointReader, so the layout
/// can evolve behind the version byte.
struct Checkpoint {
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return bytes.size();
  }
  [[nodiscard]] bool empty() const noexcept { return bytes.empty(); }
};

/// Thrown on malformed, truncated, or mismatched checkpoints. Restoring
/// is an explicit administrative action, so a corrupt snapshot is a hard
/// error, never a silent partial restore.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What a checkpoint snapshots. The byte is part of the wire format.
enum class CheckpointKind : std::uint8_t {
  kTree = 1,    ///< a whole Edge-/ConcurrentEdgeTree
  kStage = 2,   ///< one pipeline stage (node-level kill/restore)
  kSource = 3,  ///< a FlowQueueSource's replay cursor
};

/// Append-only typed writer. Components serialize themselves through the
/// put_* helpers; the header (magic, version, kind) is written by the
/// constructor so every checkpoint is self-describing.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(CheckpointKind kind);

  void put_u64(std::uint64_t v) { encoder_.put_varint(v); }
  /// Two's-complement fixed64 — safe for negative timestamps.
  void put_i64(std::int64_t v) {
    encoder_.put_fixed64(static_cast<std::uint64_t>(v));
  }
  void put_double(double v) { encoder_.put_double(v); }
  void put_bool(bool v) { encoder_.put_varint(v ? 1 : 0); }
  void put_string(const std::string& s) { encoder_.put_string(s); }

  void put_rng(const Rng::State& state);
  void put_weight_map(const WeightMap& weights);
  void put_theta(const ThetaStore& theta);

  [[nodiscard]] Checkpoint finish() { return Checkpoint{encoder_.take()}; }

 private:
  flowqueue::Encoder encoder_;
};

/// Cursor-based typed reader; the mirror of CheckpointWriter. Every
/// getter throws CheckpointError on truncation, and the constructor
/// validates magic, version, and kind up front.
class CheckpointReader {
 public:
  CheckpointReader(const Checkpoint& checkpoint, CheckpointKind expected);

  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64();
  [[nodiscard]] double get_double();
  [[nodiscard]] bool get_bool() { return get_u64() != 0; }
  [[nodiscard]] std::string get_string();

  [[nodiscard]] Rng::State get_rng();
  void get_weight_map(WeightMap& weights);
  void get_theta(ThetaStore& theta);

  /// Asserts the whole payload was consumed — trailing bytes mean the
  /// reader and writer disagree about the format.
  void expect_exhausted() const;

 private:
  flowqueue::Decoder decoder_;
};

// --- stage-level checkpoints (node kill/restore) ---------------------------

/// Snapshots one stage's cross-interval state as a standalone checkpoint.
[[nodiscard]] Checkpoint checkpoint_stage(const PipelineStage& stage);

/// Restores a checkpoint_stage() snapshot into a stage of the same engine
/// (the per-engine payload tag is validated; restoring a WHS snapshot
/// into an SRS stage throws CheckpointError).
void restore_stage(PipelineStage& stage, const Checkpoint& checkpoint);

// --- shared tree sections --------------------------------------------------
// EdgeTree and ConcurrentEdgeTree write byte-identical checkpoints by
// composing these sections in the same order: fingerprint, control plane,
// stages (layer-major, root last), theta, counters.

void write_tree_fingerprint(CheckpointWriter& writer,
                            const EdgeTreeConfig& config);
/// Throws CheckpointError unless the checkpointed topology matches
/// `config` exactly (engine, widths, seed, interval, reservoir algorithm,
/// allocation policy).
void verify_tree_fingerprint(CheckpointReader& reader,
                             const EdgeTreeConfig& config);

/// Records the plane's current epoch and end-to-end budget (null plane ==
/// "no control plane", also validated on restore).
void write_control_plane(CheckpointWriter& writer, const ControlPlane* plane);
/// Re-installs the checkpointed policy AT ITS RECORDED EPOCH via
/// ControlPlane::restore_policy, so post-restore bundles carry the same
/// epoch stamps the uninterrupted run would have produced.
void restore_control_plane(CheckpointReader& reader, ControlPlane* plane);

}  // namespace approxiot::core
