// Chaos harness: nodes die and come back mid-stream, and the tree must
// keep every promise the paper makes for the data it actually delivered.
//
// The invariants hammered here:
//   - a dead subtree's swallowed weight is quantified EXACTLY (Eq. 8:
//     each lost interval's Σ|I|·W^in equals the original item count the
//     subtree had delivered), so estimated_count + lost_weight
//     reconstructs the full pre-failure stream count;
//   - surviving sub-streams stay exact — a sibling's death changes their
//     estimates by nothing;
//   - checkpoints interchange between the sequential EdgeTree and the
//     concurrent runtime, and a restored run is bit-identical to an
//     uninterrupted one, down to the wire bytes the root emits;
//   - the built-in chaos driver (random kill/revive every N intervals)
//     preserves all of the above under both execution substrates, with
//     and without capture/restore, for every seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/wire.hpp"
#include "runtime/concurrent_tree.hpp"

namespace approxiot::runtime {
namespace {

using core::EdgeTree;
using core::EdgeTreeConfig;
using core::EngineKind;

/// One interval where every leaf contributes `per_leaf` items of its own
/// private sub-stream (leaf l -> sub-stream l+1): per-sub-stream counts
/// then map 1:1 to leaves, so loss is attributable exactly.
std::vector<std::vector<Item>> leaf_owned_interval(std::size_t leaves,
                                                   std::size_t per_leaf,
                                                   double value = 1.0) {
  std::vector<std::vector<Item>> items(leaves);
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    for (std::size_t i = 0; i < per_leaf; ++i) {
      items[leaf].push_back(Item{SubStreamId{leaf + 1}, value, 0});
    }
  }
  return items;
}

/// Mixed workload for the storm: every leaf carries every sub-stream.
/// Returns items[tick][leaf]; `total` (optional out) counts all items.
std::vector<std::vector<std::vector<Item>>> storm_workload(
    std::size_t ticks, std::size_t leaves, std::uint64_t seed,
    std::uint64_t* total = nullptr) {
  Rng rng(seed);
  std::vector<std::vector<std::vector<Item>>> workload(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    workload[t].resize(leaves);
    for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
      const std::size_t n = 30 + rng.next_below(30);
      if (total != nullptr) *total += n;
      for (std::size_t i = 0; i < n; ++i) {
        workload[t][leaf].push_back(Item{SubStreamId{1 + rng.next_below(4)},
                                         rng.next_double() * 10.0,
                                         static_cast<std::int64_t>(t)});
      }
    }
  }
  return workload;
}

void expect_theta_identical(const core::ThetaStore& a,
                            const core::ThetaStore& b) {
  const auto subs_a = a.sub_streams();
  const auto subs_b = b.sub_streams();
  ASSERT_EQ(subs_a.size(), subs_b.size());
  for (std::size_t s = 0; s < subs_a.size(); ++s) {
    EXPECT_EQ(subs_a[s], subs_b[s]);
    const auto& pa = a.pairs(subs_a[s]);
    const auto& pb = b.pairs(subs_a[s]);
    ASSERT_EQ(pa.size(), pb.size()) << "stream " << subs_a[s];
    for (std::size_t p = 0; p < pa.size(); ++p) {
      EXPECT_EQ(pa[p].weight, pb[p].weight);
      ASSERT_EQ(pa[p].items.size(), pb[p].items.size());
      for (std::size_t i = 0; i < pa[p].items.size(); ++i) {
        EXPECT_EQ(pa[p].items[i], pb[p].items[i]);
      }
    }
  }
}

TEST(ChaosTest, RootCannotBeKilledAndKillReviveAreIdempotent) {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {2};
  config.tree.engine = EngineKind::kNative;
  ConcurrentEdgeTree tree(config);

  EXPECT_THROW(tree.kill_node(1, 0), std::invalid_argument);  // the root
  EXPECT_THROW(tree.kill_node(0, 7), std::invalid_argument);  // no such node

  tree.kill_node(0, 1);
  tree.kill_node(0, 1);  // idempotent: one kill counted
  EXPECT_TRUE(tree.node_dead(0, 1));
  EXPECT_FALSE(tree.node_dead(0, 0));
  tree.revive_node(0, 1);
  tree.revive_node(0, 1);
  EXPECT_FALSE(tree.node_dead(0, 1));

  const auto faults = tree.fault_metrics();
  EXPECT_EQ(faults.kills, 1u);
  EXPECT_EQ(faults.revives, 1u);
  EXPECT_EQ(faults.lost_items, 0u);  // nothing flowed while dead
  tree.stop();
}

// Deterministic leaf loss under the exact (native) engine: the dead leaf
// swallows exactly the items sent to it, the result quantifies them, and
// the surviving leaves' counts are untouched. drain() before the kill
// parks every worker, so the kill lands at a known interval boundary.
TEST(ChaosTest, DeadLeafSwallowsExactlyItsDeliveredWeight) {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {4};
  config.tree.engine = EngineKind::kNative;
  ConcurrentEdgeTree tree(config);

  const auto interval = leaf_owned_interval(4, 25, 2.0);
  tree.push_interval(interval);
  tree.drain();

  tree.kill_node(0, 2, /*capture=*/false);
  tree.push_interval(interval);
  tree.push_interval(interval);
  tree.drain();

  // Survivors stay exact; the victim's sub-stream kept only interval 0.
  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    const double expected = leaf == 2 ? 25.0 : 75.0;
    EXPECT_DOUBLE_EQ(tree.theta().estimated_original_count(
                         SubStreamId{leaf + 1}),
                     expected);
  }

  const auto result = tree.close_window();
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.lost_items, 50u);
  EXPECT_DOUBLE_EQ(result.lost_weight, 50.0);
  EXPECT_DOUBLE_EQ(result.estimated_count + result.lost_weight, 300.0);

  const auto faults = tree.fault_metrics();
  EXPECT_EQ(faults.lost_items, 50u);
  EXPECT_DOUBLE_EQ(faults.lost_weight, 50.0);
  tree.stop();
}

// The same exactness under real sampling: WHS weights make every
// sub-stream's estimated original count EXACT (Eq. 8), dead or not — the
// victim's shortfall is exactly the quantified lost weight, and the
// survivors' estimates equal their true delivered counts to the last bit
// of floating-point error.
TEST(ChaosTest, WhsSurvivorsStayExactThroughKillAndColdRevive) {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {4, 2};
  config.tree.sampling_fraction = 0.3;
  config.tree.rng_seed = 9;
  ConcurrentEdgeTree tree(config);

  const auto interval = leaf_owned_interval(4, 40);
  auto push_n = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) tree.push_interval(interval);
    tree.drain();
  };

  push_n(3);                               // all alive
  tree.kill_node(0, 1, /*capture=*/false);
  push_n(3);                               // leaf 1's data swallowed
  tree.revive_node(0, 1, /*restore=*/false);  // cold restart
  push_n(3);                               // alive again

  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    const double delivered = leaf == 1 ? 6.0 * 40.0 : 9.0 * 40.0;
    EXPECT_NEAR(tree.theta().estimated_original_count(SubStreamId{leaf + 1}),
                delivered, 1e-9 * delivered);
  }

  const auto result = tree.close_window();
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.lost_items, 120u);  // 3 intervals × 40 weight-1 items
  EXPECT_DOUBLE_EQ(result.lost_weight, 120.0);
  EXPECT_NEAR(result.estimated_count + result.lost_weight, 4.0 * 9.0 * 40.0,
              1e-6);
  tree.stop();
}

// Capture-at-kill / restore-at-revive: the victim's sampling state
// (reservoir RNG streak, weight carry, counters) survives its death, and
// the post-revival stream stays exact. The capture is serviced lazily by
// the victim's own worker at its first dead interval — no other thread
// ever touches the stage.
TEST(ChaosTest, CaptureRestoreReviveKeepsEverySubStreamExact) {
  ConcurrentTreeConfig config;
  config.tree.layer_widths = {4, 2};
  config.tree.sampling_fraction = 0.3;
  config.tree.rng_seed = 10;
  ConcurrentEdgeTree tree(config);

  const auto interval = leaf_owned_interval(4, 40);
  auto push_n = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) tree.push_interval(interval);
    tree.drain();
  };

  push_n(3);
  tree.kill_node(0, 1, /*capture=*/true);
  push_n(2);  // swallowed — and the first one services the self-capture
  tree.revive_node(0, 1, /*restore=*/true);
  push_n(4);

  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    const double delivered = leaf == 1 ? 7.0 * 40.0 : 9.0 * 40.0;
    EXPECT_NEAR(tree.theta().estimated_original_count(SubStreamId{leaf + 1}),
                delivered, 1e-9 * delivered);
  }
  const auto result = tree.close_window();
  EXPECT_EQ(result.lost_items, 80u);
  EXPECT_DOUBLE_EQ(result.lost_weight, 80.0);
  EXPECT_TRUE(result.degraded);

  // The window AFTER a fully healed tree is clean again.
  push_n(1);
  const auto healed = tree.close_window();
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.lost_items, 0u);
  tree.stop();
}

// Snapshots interchange: a checkpoint taken by the sequential EdgeTree
// restores into the concurrent runtime (and vice versa), and the restored
// half-run continues bit-identically to the uninterrupted sequential run.
TEST(ChaosTest, SequentialAndConcurrentCheckpointsInterchange) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = 0.4;
  tree_config.rng_seed = 20180701;

  std::uint64_t ignored = 0;
  const auto workload = storm_workload(12, 4, 55, &ignored);

  EdgeTree uninterrupted(tree_config);
  for (const auto& tick : workload) uninterrupted.tick(tick);

  // Sequential first half -> concurrent second half.
  {
    EdgeTree first_half(tree_config);
    for (std::size_t t = 0; t < 6; ++t) first_half.tick(workload[t]);

    ConcurrentTreeConfig runtime_config;
    runtime_config.tree = tree_config;
    ConcurrentEdgeTree second_half(runtime_config);
    second_half.restore(first_half.checkpoint());  // quiescent: no pushes yet
    for (std::size_t t = 6; t < 12; ++t) second_half.push_interval(workload[t]);
    second_half.drain();

    expect_theta_identical(uninterrupted.theta(), second_half.theta());
    second_half.stop();
  }

  // Concurrent first half -> sequential second half.
  {
    ConcurrentTreeConfig runtime_config;
    runtime_config.tree = tree_config;
    ConcurrentEdgeTree first_half(runtime_config);
    for (std::size_t t = 0; t < 6; ++t) first_half.push_interval(workload[t]);
    first_half.drain();
    const core::Checkpoint snapshot = first_half.checkpoint();
    first_half.stop();

    EdgeTree second_half(tree_config);
    second_half.restore(snapshot);
    for (std::size_t t = 6; t < 12; ++t) second_half.tick(workload[t]);

    expect_theta_identical(uninterrupted.theta(), second_half.theta());
    const auto expected = uninterrupted.close_window();
    const auto actual = second_half.close_window();
    EXPECT_EQ(expected.sum.point, actual.sum.point);
    EXPECT_EQ(expected.sum.margin, actual.sum.margin);
    EXPECT_EQ(expected.estimated_count, actual.estimated_count);
    EXPECT_EQ(expected.sampled_items, actual.sampled_items);
  }
}

// The strongest restore statement: the bytes the root would put on the
// wire (encode_bundle of every Θ fold, §III-B metadata included) are
// IDENTICAL between an uninterrupted run and a checkpoint/restore pair —
// a downstream consumer cannot tell the failover happened.
TEST(ChaosTest, RestoredRunEmitsIdenticalWireBytes) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = 0.4;
  tree_config.rng_seed = 31;

  std::uint64_t ignored = 0;
  const auto workload = storm_workload(10, 4, 77, &ignored);

  auto run_taped = [&](ConcurrentEdgeTree& tree, std::size_t from,
                       std::size_t to) {
    for (std::size_t t = from; t < to; ++t) tree.push_interval(workload[t]);
    tree.drain();
  };
  auto make_config = [&](std::vector<std::uint8_t>& tape) {
    ConcurrentTreeConfig config;
    config.tree = tree_config;
    config.root_tap = [&tape](const core::SampledBundle& bundle) {
      const auto bytes = core::encode_bundle(bundle);
      tape.insert(tape.end(), bytes.begin(), bytes.end());
    };
    return config;
  };

  std::vector<std::uint8_t> uninterrupted_tape;
  {
    ConcurrentEdgeTree tree(make_config(uninterrupted_tape));
    run_taped(tree, 0, 10);
    tree.stop();
  }

  std::vector<std::uint8_t> restored_tape;
  core::Checkpoint snapshot;
  {
    ConcurrentEdgeTree tree(make_config(restored_tape));
    run_taped(tree, 0, 5);
    snapshot = tree.checkpoint();
    tree.stop();
  }
  {
    ConcurrentEdgeTree tree(make_config(restored_tape));
    tree.restore(snapshot);
    run_taped(tree, 5, 10);
    tree.stop();
  }

  ASSERT_FALSE(uninterrupted_tape.empty());
  EXPECT_EQ(uninterrupted_tape, restored_tape);
}

// The chaos storm proper: the built-in driver kills a random node every 5
// completed root intervals and revives it 2 intervals later, across both
// execution substrates, with and without capture/restore, for 5 seeds —
// 20 runs. Which intervals a victim swallows depends on pipelining
// timing, so the assertion is the timing-independent one: conservation.
// Delivered estimates plus quantified loss reconstruct the full stream,
// to relative 1e-6, every single run.
struct StormCase {
  RuntimeMode mode;
  bool checkpoint_restore;
  std::uint64_t seed;
};

class ChaosStormTest : public ::testing::TestWithParam<StormCase> {};

TEST_P(ChaosStormTest, ConservationHoldsThroughRandomKillsAndRevives) {
  const StormCase param = GetParam();

  ConcurrentTreeConfig config;
  config.tree.layer_widths = {4, 2};
  config.tree.sampling_fraction = 0.35;
  config.tree.rng_seed = 20180700 + param.seed;
  config.channel_capacity = 4;
  config.backpressure = BackpressurePolicy::kBlock;  // lossless: loss below
                                                     // is all fault-induced
  config.runtime_mode = param.mode;
  config.event_workers = 4;
  config.chaos.enabled = true;
  config.chaos.kill_every_n_intervals = 5;
  config.chaos.dead_intervals = 2;
  config.chaos.checkpoint_restore = param.checkpoint_restore;
  config.chaos.seed = param.seed;

  std::uint64_t total_items = 0;
  const auto workload = storm_workload(48, 4, 100 + param.seed, &total_items);

  ConcurrentEdgeTree tree(config);
  for (const auto& tick : workload) {
    tree.push_interval(tick);
    if (param.mode == RuntimeMode::kEvents) tree.kick();  // spurious wakes
  }
  tree.drain();

  const auto result = tree.close_window();
  const auto faults = tree.fault_metrics();
  tree.stop();

  EXPECT_GE(faults.kills, 5u);  // 48 intervals / kill-every-5, minus tail
  EXPECT_GE(faults.revives, 1u);
  EXPECT_LE(faults.revives, faults.kills);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.lost_items, 0u);
  EXPECT_EQ(faults.lost_items, result.lost_items);

  // Eq. 8 conservation through every kill, revival and (optional)
  // restore: nothing double-counted, nothing unaccounted.
  const double reconstructed = result.estimated_count + result.lost_weight;
  EXPECT_NEAR(reconstructed, static_cast<double>(total_items),
              1e-6 * static_cast<double>(total_items));
}

std::vector<StormCase> storm_matrix() {
  std::vector<StormCase> cases;
  for (const RuntimeMode mode : {RuntimeMode::kThreads, RuntimeMode::kEvents}) {
    for (const bool restore : {true, false}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        cases.push_back(StormCase{mode, restore, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllModes, ChaosStormTest,
                         ::testing::ValuesIn(storm_matrix()),
                         [](const auto& info) {
                           return std::string(
                                      runtime_mode_name(info.param.mode)) +
                                  (info.param.checkpoint_restore ? "_restore"
                                                                 : "_cold") +
                                  "_seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace approxiot::runtime
