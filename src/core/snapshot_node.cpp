#include "core/snapshot_node.hpp"

#include <cmath>
#include <stdexcept>

#include "core/checkpoint.hpp"

namespace approxiot::core {

SnapshotNode::SnapshotNode(SnapshotNodeConfig config) : config_(config) {
  if (config.period == 0) {
    throw std::invalid_argument("snapshot period must be >= 1");
  }
  if (config.phase >= config.period) {
    throw std::invalid_argument("snapshot phase must be < period");
  }
}

void SnapshotNode::set_fraction(double fraction) {
  if (fraction <= 0.0) {
    config_.period = 1000000;  // effectively drop everything
  } else if (fraction >= 1.0) {
    config_.period = 1;
  } else {
    config_.period =
        static_cast<std::uint32_t>(std::lround(1.0 / fraction));
    if (config_.period == 0) config_.period = 1;
  }
  if (config_.phase >= config_.period) config_.phase = 0;
}

void SnapshotNode::save_state(CheckpointWriter& writer) const {
  writer.put_u64(config_.period);
  writer.put_u64(config_.phase);
  writer.put_u64(interval_index_);
  writer.put_u64(policy_epoch_);
}

void SnapshotNode::restore_state(CheckpointReader& reader) {
  config_.period = static_cast<std::uint32_t>(reader.get_u64());
  config_.phase = static_cast<std::uint32_t>(reader.get_u64());
  interval_index_ = reader.get_u64();
  policy_epoch_ = reader.get_u64();
}

std::vector<SampledBundle> SnapshotNode::process_interval(
    const std::vector<ItemBundle>& psi) {
  // Interval boundary = policy boundary: re-derive the decimation period
  // from the resolved fraction. Only an actual epoch change re-rounds the
  // period, so an unchanged plane cannot drift the phase alignment.
  if (config_.policy.bound()) {
    ResourceBudget current;
    current.sampling_fraction = 1.0 / static_cast<double>(config_.period);
    const PolicyDecision decision = config_.policy.resolve(current);
    if (decision.epoch != policy_epoch_ || interval_index_ == 0) {
      set_fraction(decision.budget.sampling_fraction);
    }
    policy_epoch_ = decision.epoch;
  }

  const bool keep =
      (interval_index_ % config_.period) == config_.phase;
  ++interval_index_;
  ++metrics_.intervals;

  std::vector<SampledBundle> outputs;
  for (const ItemBundle& bundle : psi) {
    if (bundle.items.empty()) continue;
    metrics_.items_in += bundle.items.size();
    if (!keep) continue;

    SampledBundle out;
    out.sample.assign(bundle.items, stratify_scratch_);
    out.policy_epoch = policy_epoch_;
    // Each kept snapshot stands for `period` intervals.
    const double scale = static_cast<double>(config_.period);
    for (const Stratum& s : out.sample.strata()) {
      out.w_out.set(s.id, bundle.w_in.get(s.id) * scale);
      metrics_.items_out += s.len;
    }
    outputs.push_back(std::move(out));
  }
  return outputs;
}

}  // namespace approxiot::core
