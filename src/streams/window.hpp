// Tumbling-window aggregation helper for processors: assigns records to
// fixed, non-overlapping windows by timestamp and retires windows whose
// end has passed stream time (plus an optional grace period). This is the
// windowing model the paper's latency experiments use (window sizes of
// 0.5–4 s, Fig. 9).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/time.hpp"

namespace approxiot::streams {

/// Identifier of a tumbling window: window k covers [k*len, (k+1)*len).
struct WindowKey {
  std::int64_t index{0};

  friend bool operator<(WindowKey a, WindowKey b) noexcept {
    return a.index < b.index;
  }
  friend bool operator==(WindowKey a, WindowKey b) noexcept {
    return a.index == b.index;
  }
};

template <typename State>
class TumblingWindows {
 public:
  explicit TumblingWindows(SimTime window_size,
                           SimTime grace = SimTime::zero())
      : size_(window_size.us > 0 ? window_size : SimTime::from_seconds(1.0)),
        grace_(grace) {}

  [[nodiscard]] WindowKey window_of(SimTime t) const noexcept {
    // Floor division: plain `/` truncates towards zero, which would fold
    // every timestamp in (-size, 0) into window 0 instead of window -1.
    return WindowKey{floor_div(t.us, size_.us)};
  }

  [[nodiscard]] SimTime window_start(WindowKey k) const noexcept {
    return SimTime{k.index * size_.us};
  }
  [[nodiscard]] SimTime window_end(WindowKey k) const noexcept {
    return SimTime{(k.index + 1) * size_.us};
  }
  [[nodiscard]] SimTime window_size() const noexcept { return size_; }

  /// State for the window containing `t`, default-constructed on first
  /// access.
  State& state_at(SimTime t) { return windows_[window_of(t)]; }

  /// Extracts and removes every window whose end (+grace) is at or before
  /// `stream_time`, oldest first.
  [[nodiscard]] std::vector<std::pair<WindowKey, State>> close_expired(
      SimTime stream_time) {
    std::vector<std::pair<WindowKey, State>> out;
    auto it = windows_.begin();
    while (it != windows_.end()) {
      if (window_end(it->first) + grace_ <= stream_time) {
        out.emplace_back(it->first, std::move(it->second));
        it = windows_.erase(it);
      } else {
        break;  // map is ordered by window index == time order
      }
    }
    return out;
  }

  /// Extracts every remaining window (shutdown flush).
  [[nodiscard]] std::vector<std::pair<WindowKey, State>> close_all() {
    std::vector<std::pair<WindowKey, State>> out;
    for (auto& [key, state] : windows_) {
      out.emplace_back(key, std::move(state));
    }
    windows_.clear();
    return out;
  }

  [[nodiscard]] std::size_t open_windows() const noexcept {
    return windows_.size();
  }

 private:
  SimTime size_;
  SimTime grace_;
  std::map<WindowKey, State> windows_;
};

}  // namespace approxiot::streams
