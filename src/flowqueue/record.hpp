// flowqueue: an in-process, Kafka-style durable log abstraction.
//
// The original ApproxIoT prototype pipelines sampled sub-streams between
// edge layers over Apache Kafka topics. flowqueue reproduces the part of
// Kafka's contract the algorithm relies on: topics split into ordered
// partitions, append-only logs addressed by offsets, producers that
// partition by key, and consumer groups with at-least-once offset
// tracking. Everything lives in one process; "durability" is the lifetime
// of the Broker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace approxiot::flowqueue {

/// Offset of a record within one partition's log.
using Offset = std::int64_t;

/// A single log entry. Payloads are opaque bytes (like Kafka); the core
/// library serialises WeightedBatch messages into `value` via wire.hpp.
struct Record {
  std::string key;
  std::vector<std::uint8_t> value;
  SimTime timestamp{};
  Offset offset{-1};  // assigned by the partition log on append

  [[nodiscard]] std::size_t byte_size() const noexcept {
    return key.size() + value.size() + sizeof(timestamp) + sizeof(offset);
  }
};

/// Identifies one partition of one topic.
struct TopicPartition {
  std::string topic;
  std::uint32_t partition{0};

  friend bool operator==(const TopicPartition& a,
                         const TopicPartition& b) noexcept {
    return a.partition == b.partition && a.topic == b.topic;
  }
  friend bool operator<(const TopicPartition& a,
                        const TopicPartition& b) noexcept {
    if (a.topic != b.topic) return a.topic < b.topic;
    return a.partition < b.partition;
  }
};

}  // namespace approxiot::flowqueue
