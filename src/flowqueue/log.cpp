#include "flowqueue/log.hpp"

#include <algorithm>

namespace approxiot::flowqueue {

Offset PartitionLog::append(Record record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.offset = static_cast<Offset>(records_.size());
  bytes_appended_ += record.byte_size();
  records_.push_back(std::move(record));
  return records_.back().offset;
}

std::size_t PartitionLog::read(Offset from, std::size_t max_records,
                               std::vector<Record>& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (from < 0) from = 0;
  if (static_cast<std::size_t>(from) >= records_.size() || max_records == 0) {
    return 0;
  }
  const std::size_t available = records_.size() - static_cast<std::size_t>(from);
  const std::size_t n = std::min(available, max_records);
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(records_[static_cast<std::size_t>(from) + i]);
  }
  return n;
}

Offset PartitionLog::end_offset() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<Offset>(records_.size());
}

std::uint64_t PartitionLog::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_appended_;
}

std::optional<SimTime> PartitionLog::timestamp_at(Offset at) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (at < 0 || static_cast<std::size_t>(at) >= records_.size()) {
    return std::nullopt;
  }
  return records_[static_cast<std::size_t>(at)].timestamp;
}

}  // namespace approxiot::flowqueue
