#include "core/cost_function.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace approxiot::core {

FractionCostFunction::FractionCostFunction(double ewma_alpha)
    : alpha_(ewma_alpha) {
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    throw std::invalid_argument("EWMA alpha must be in (0, 1]");
  }
}

std::size_t FractionCostFunction::sample_size(const ResourceBudget& budget,
                                              std::uint64_t observed,
                                              SimTime /*interval*/) {
  const double x = static_cast<double>(observed);
  if (ewma_ < 0.0) {
    ewma_ = x;
  } else {
    ewma_ = alpha_ * x + (1.0 - alpha_) * ewma_;
  }
  const double fraction = std::clamp(budget.sampling_fraction, 0.0, 1.0);
  // First interval with no history yet: accept everything (weight stays 1,
  // so correctness is unaffected; only resource use is).
  if (ewma_ <= 0.0) return observed > 0 ? static_cast<std::size_t>(observed)
                                        : std::size_t{1};
  return static_cast<std::size_t>(std::ceil(fraction * ewma_));
}

std::size_t RateCostFunction::sample_size(const ResourceBudget& budget,
                                          std::uint64_t /*observed*/,
                                          SimTime interval) {
  const double cap = budget.max_items_per_second * interval.seconds();
  if (cap <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(cap));
}

std::size_t FixedCostFunction::sample_size(const ResourceBudget& budget,
                                           std::uint64_t /*observed*/,
                                           SimTime /*interval*/) {
  return budget.fixed_sample_size;
}

std::unique_ptr<CostFunction> make_cost_function(const std::string& name) {
  if (name == "fraction") return std::make_unique<FractionCostFunction>();
  if (name == "rate") return std::make_unique<RateCostFunction>();
  if (name == "fixed") return std::make_unique<FixedCostFunction>();
  throw std::invalid_argument("unknown cost function '" + name + "'");
}

}  // namespace approxiot::core
