// Accuracy-through-failure bench: a leaf node dies mid-run and comes back
// later, and the curve shows what that does to the window estimates —
// before, during, and after the outage — for both recovery flavours
// (capture/restore vs cold restart).
//
// Three series per window:
//   rel_err_sum   — |estimated sum − true sum of ALL produced data| /
//                   |true sum|. Healthy windows sit at sampling error;
//                   failure windows spike by the dead subtree's share —
//                   the estimate is exact for DELIVERED data only.
//   coverage      — 1 − lost_weight / true_count: the delivered fraction
//                   of the stream, the denominator a consumer would use
//                   to judge the degraded windows.
//   conservation  — |estimated_count + lost_weight − true_count| /
//                   true_count. The tentpole invariant: the quantified
//                   loss reconstructs the full stream count EXACTLY,
//                   through the kill, the dead windows, and the revival.
//
// Self-checks (enforced, non-zero exit on violation):
//   - conservation < 1e-6 in EVERY window, failure or not;
//   - degraded flags exactly the kill..revive windows (inclusive of the
//     revival window: the flag re-arms at the previous close while the
//     node is still dead — coverage is only provably full again one
//     close later);
//   - lost weight is zero outside the outage and positive inside it.
//
// Output: human table plus one JSON line per recovery mode in the shared
// bench_util shape. `--smoke` shrinks the run for CI.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "runtime/concurrent_tree.hpp"

namespace {

using namespace approxiot;

struct WindowPoint {
  double rel_err_sum{0.0};
  double coverage{1.0};
  double conservation{0.0};
  bool degraded{false};
  double lost_weight{0.0};
};

struct FailureCurve {
  std::vector<WindowPoint> windows;
  std::uint64_t kills{0};
  std::uint64_t revives{0};
};

struct CurveConfig {
  std::size_t windows{24};
  std::size_t intervals_per_window{10};
  std::size_t items_per_leaf{2000};
  std::size_t fail_window{0};    // kill at the start of this window
  std::size_t revive_window{0};  // revive at the start of this window
  bool checkpoint_restore{true};
};

FailureCurve run_curve(const CurveConfig& curve_config) {
  runtime::ConcurrentTreeConfig config;
  config.tree.layer_widths = {4, 2};
  config.tree.sampling_fraction = 0.4;
  config.tree.rng_seed = 20180701;
  config.channel_capacity = 8;
  config.backpressure = runtime::BackpressurePolicy::kBlock;
  runtime::ConcurrentEdgeTree tree(config);

  Rng rng(42);
  FailureCurve curve;
  curve.windows.reserve(curve_config.windows);

  for (std::size_t w = 0; w < curve_config.windows; ++w) {
    // Fault schedule at window boundaries: the tree is drained there, so
    // the kill/revival lands at a deterministic interval.
    if (w == curve_config.fail_window) {
      tree.kill_node(0, 1, curve_config.checkpoint_restore);
    }
    if (w == curve_config.revive_window) {
      tree.revive_node(0, 1, curve_config.checkpoint_restore);
    }

    double true_sum = 0.0;
    std::uint64_t true_count = 0;
    for (std::size_t tick = 0; tick < curve_config.intervals_per_window;
         ++tick) {
      std::vector<std::vector<Item>> interval(tree.leaf_count());
      for (auto& leaf : interval) {
        leaf.reserve(curve_config.items_per_leaf);
        for (std::size_t i = 0; i < curve_config.items_per_leaf; ++i) {
          const double value = rng.next_double() * 10.0;
          leaf.push_back(Item{SubStreamId{1 + rng.next_below(4)}, value,
                              static_cast<std::int64_t>(w)});
          true_sum += value;
          ++true_count;
        }
      }
      tree.push_interval(interval);
    }
    tree.drain();
    const core::ApproxResult result = tree.close_window();

    WindowPoint point;
    point.rel_err_sum = std::abs(result.sum.point - true_sum) / true_sum;
    point.coverage =
        1.0 - result.lost_weight / static_cast<double>(true_count);
    point.conservation =
        std::abs(result.estimated_count + result.lost_weight -
                 static_cast<double>(true_count)) /
        static_cast<double>(true_count);
    point.degraded = result.degraded;
    point.lost_weight = result.lost_weight;
    curve.windows.push_back(point);
  }

  const auto faults = tree.fault_metrics();
  curve.kills = faults.kills;
  curve.revives = faults.revives;
  tree.stop();
  return curve;
}

/// Enforces the curve's invariants; returns the number of violations.
int check_curve(const std::string& mode, const CurveConfig& config,
                const FailureCurve& curve) {
  int violations = 0;
  for (std::size_t w = 0; w < curve.windows.size(); ++w) {
    const WindowPoint& point = curve.windows[w];
    const bool in_outage =
        w >= config.fail_window && w < config.revive_window;
    // The degraded flag is conservative: it re-arms at each close while
    // the node is still dead, so the revival window — which starts with
    // the node already back — is still flagged (coverage was only
    // provably full again from the NEXT close on).
    const bool expect_degraded =
        w >= config.fail_window && w <= config.revive_window;
    if (point.conservation > 1e-6) {
      std::fprintf(stderr,
                   "[%s] window %zu: conservation %.3g exceeds 1e-6\n",
                   mode.c_str(), w, point.conservation);
      ++violations;
    }
    if (point.degraded != expect_degraded) {
      std::fprintf(stderr, "[%s] window %zu: degraded=%d, expected %d\n",
                   mode.c_str(), w, point.degraded ? 1 : 0,
                   expect_degraded ? 1 : 0);
      ++violations;
    }
    if (in_outage ? point.lost_weight <= 0.0 : point.lost_weight != 0.0) {
      std::fprintf(stderr, "[%s] window %zu: lost_weight %.3g %s outage\n",
                   mode.c_str(), w, point.lost_weight,
                   in_outage ? "despite" : "outside");
      ++violations;
    }
  }
  if (curve.kills != 1 || curve.revives != 1) {
    std::fprintf(stderr, "[%s] expected 1 kill + 1 revive, saw %llu/%llu\n",
                 mode.c_str(),
                 static_cast<unsigned long long>(curve.kills),
                 static_cast<unsigned long long>(curve.revives));
    ++violations;
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\nunknown argument: %s\n",
                   argv[0], argv[i]);
      return 2;
    }
  }
  bench::pin_allocator();

  CurveConfig config;
  config.windows = smoke ? 9 : 24;
  config.intervals_per_window = smoke ? 4 : 10;
  config.items_per_leaf = smoke ? 400 : 2000;
  config.fail_window = config.windows / 3;
  config.revive_window = 2 * config.windows / 3;

  bench::print_header("accuracy through failure",
                      "4-2-1 edge tree, leaf killed for the middle third "
                      "of the run");
  std::printf("windows %zu x %zu intervals x %zu items/leaf; outage "
              "windows [%zu, %zu)\n",
              config.windows, config.intervals_per_window,
              config.items_per_leaf, config.fail_window,
              config.revive_window);

  int violations = 0;
  for (const bool restore : {true, false}) {
    config.checkpoint_restore = restore;
    const std::string mode = restore ? "restore" : "cold";
    const FailureCurve curve = run_curve(config);
    violations += check_curve(mode, config, curve);

    std::vector<int> window_axis;
    std::vector<double> rel_err, coverage, conservation;
    for (std::size_t w = 0; w < curve.windows.size(); ++w) {
      window_axis.push_back(static_cast<int>(w));
      rel_err.push_back(curve.windows[w].rel_err_sum);
      coverage.push_back(curve.windows[w].coverage);
      conservation.push_back(curve.windows[w].conservation);
    }
    std::printf("\n-- recovery mode: %s --\n", mode.c_str());
    bench::print_row("rel_err_sum", rel_err, "%12.4g");
    bench::print_row("coverage", coverage, "%12.4f");
    bench::print_row("conservation", conservation, "%12.2e");
    bench::print_json_result(
        "failure", mode, "window", window_axis,
        {{"rel_err_sum", rel_err},
         {"coverage", coverage},
         {"conservation", conservation}});
  }

  if (violations > 0) {
    std::fprintf(stderr, "\n%d self-check violation(s)\n", violations);
    return 1;
  }
  std::printf("\nself-checks passed: conservation exact through the "
              "outage, degraded flags match the fault schedule\n");
  return 0;
}
