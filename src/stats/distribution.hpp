// Value distributions for workload generation. The paper's
// microbenchmarks use four Gaussian and four Poisson sub-streams (§V-A);
// the skew experiment adds λ = 10^7 (Fig. 10c). A small polymorphic
// hierarchy lets workload::SubStreamSpec mix distribution families.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"

namespace approxiot::stats {

/// Interface: draws item values. Implementations are cheap value objects;
/// clone() supports copying workload specs between experiment runs.
class ValueDistribution {
 public:
  virtual ~ValueDistribution() = default;

  [[nodiscard]] virtual double sample(Rng& rng) const = 0;
  /// Exact expectation of the distribution (for analytic ground truth).
  [[nodiscard]] virtual double mean() const = 0;
  /// Exact variance of the distribution.
  [[nodiscard]] virtual double variance() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual std::unique_ptr<ValueDistribution> clone() const = 0;
};

class GaussianDistribution final : public ValueDistribution {
 public:
  GaussianDistribution(double mu, double sigma);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return mu_; }
  [[nodiscard]] double variance() const override { return sigma_ * sigma_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<ValueDistribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

class PoissonDistribution final : public ValueDistribution {
 public:
  explicit PoissonDistribution(double lambda);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return lambda_; }
  [[nodiscard]] double variance() const override { return lambda_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<ValueDistribution> clone() const override;

 private:
  double lambda_;
};

class UniformDistribution final : public ValueDistribution {
 public:
  UniformDistribution(double lo, double hi);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<ValueDistribution> clone() const override;

 private:
  double lo_;
  double hi_;
};

class ExponentialDistribution final : public ValueDistribution {
 public:
  explicit ExponentialDistribution(double rate);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const override {
    return 1.0 / (rate_ * rate_);
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<ValueDistribution> clone() const override;

 private:
  double rate_;
};

/// Log-normal: heavy-tailed values used by the synthetic taxi-fare
/// generator (fares are right-skewed with a long tail).
class LogNormalDistribution final : public ValueDistribution {
 public:
  LogNormalDistribution(double log_mu, double log_sigma);

  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<ValueDistribution> clone() const override;

 private:
  double log_mu_;
  double log_sigma_;
};

}  // namespace approxiot::stats
