#include "obs/stats.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

namespace approxiot::obs {
namespace {

// Lock-free accumulate for atomic<double> (no fetch_add pre-C++20 on all
// targets; CAS loop matches the old runtime::Histogram idiom).
void atomic_fadd(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_fmax(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_fmin(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (cur > value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

std::size_t base2_bucket_of(double value) noexcept {
  if (!(value > 1.0)) return 0;  // [0,2) and non-finite negatives
  const int exp = std::ilogb(value);
  if (exp < 1) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(exp),
                               Histogram::kBuckets - 1);
}

// Shared interpolating quantile over an ordered bucket walk. `lows[i]` /
// `ups[i]` bound bucket i; the result is clamped to the observed
// [min, max] so single samples and one-bucket distributions report
// exactly what was recorded instead of a bucket-midpoint guess.
template <typename LowFn, typename UpFn, typename CountFn>
double bucketed_percentile(double q, std::uint64_t total, double min_v,
                           double max_v, std::size_t n_buckets, LowFn low_of,
                           UpFn up_of, CountFn count_of) noexcept {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_v;
  if (q >= 1.0) return max_v;
  const double target = q * static_cast<double>(total);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    const std::uint64_t in_bucket = count_of(b);
    if (in_bucket == 0) continue;
    running += in_bucket;
    if (static_cast<double>(running) >= target) {
      // Interpolate within the winning bucket, but never outside the
      // observed range (fixes the single-sample / all-in-one-bucket
      // cases where the bucket bounds overshoot reality).
      const double lo = std::max(low_of(b), min_v);
      const double hi = std::min(up_of(b), max_v);
      if (hi <= lo) return std::clamp(lo, min_v, max_v);
      const double before = static_cast<double>(running - in_bucket);
      const double frac =
          (target - before) / static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), min_v, max_v);
    }
  }
  return max_v;
}

std::string format_double(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string sanitize_prom(const std::string& name) {
  std::string out = "approxiot_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

void Histogram::record(double value) noexcept {
  if (!(value >= 0.0)) value = 0.0;  // clamp negatives and NaN
  buckets_[base2_bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_fadd(sum_, value);
  if (prev == 0) {
    // First sample seeds min; racing recorders still converge because
    // both fmin and fmax run unconditionally below.
    min_.store(value, std::memory_order_relaxed);
  }
  atomic_fmin(min_, value);
  atomic_fmax(max_, value);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min_value() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max_value() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::bucket_upper(std::size_t bucket) noexcept {
  return std::ldexp(1.0, static_cast<int>(bucket) + 1);  // 2^(b+1)
}

double Histogram::percentile(double q) const noexcept {
  return bucketed_percentile(
      q, count(), min_value(), max_value(), kBuckets,
      [](std::size_t b) {
        return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      },
      [](std::size_t b) { return bucket_upper(b); },
      [this](std::size_t b) { return bucket_count(b); });
}

// ---------------------------------------------------------------------------
// LinearHistogram

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets == 0 ? 1 : buckets)),
      buckets_(buckets == 0 ? 1 : buckets) {}

void LinearHistogram::record(double value) noexcept {
  if (std::isnan(value)) value = lo_;
  const double offset = (value - lo_) / width_;
  std::size_t b = 0;
  if (offset > 0.0) {
    b = std::min(static_cast<std::size_t>(offset), buckets_.size() - 1);
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_fadd(sum_, value);
  if (prev == 0) min_.store(value, std::memory_order_relaxed);
  atomic_fmin(min_, value);
  atomic_fmax(max_, value);
}

double LinearHistogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double LinearHistogram::min_value() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double LinearHistogram::max_value() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double LinearHistogram::bucket_upper(std::size_t bucket) const noexcept {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

double LinearHistogram::percentile(double q) const noexcept {
  return bucketed_percentile(
      q, count(), min_value(), max_value(), buckets_.size(),
      [this](std::size_t b) { return lo_ + width_ * static_cast<double>(b); },
      [this](std::size_t b) { return bucket_upper(b); },
      [this](std::size_t b) { return bucket_count(b); });
}

// ---------------------------------------------------------------------------
// EwmaRate

EwmaRate::EwmaRate(double tau_seconds)
    : tau_(tau_seconds > 0.0 ? tau_seconds : 1.0) {}

double EwmaRate::now_seconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EwmaRate::record(double amount) { record_at(now_seconds(), amount); }

void EwmaRate::record_at(double now_s, double amount) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (touched_ && now_s > last_update_s_) {
    accum_ *= std::exp(-(now_s - last_update_s_) / tau_);
  }
  accum_ += amount;
  last_update_s_ = touched_ ? std::max(last_update_s_, now_s) : now_s;
  touched_ = true;
}

double EwmaRate::rate_per_s() const { return rate_at(now_seconds()); }

double EwmaRate::rate_at(double now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!touched_) return 0.0;
  double a = accum_;
  if (now_s > last_update_s_) {
    a *= std::exp(-(now_s - last_update_s_) / tau_);
  }
  // Steady-state: a continuous r events/s input converges accum -> r*tau.
  return a / tau_;
}

// ---------------------------------------------------------------------------
// ScopedStats

Counter* ScopedStats::counter(const std::string& name) const {
  return registry_ == nullptr ? nullptr : &registry_->counter(full(name));
}

Gauge* ScopedStats::gauge(const std::string& name) const {
  return registry_ == nullptr ? nullptr : &registry_->gauge(full(name));
}

Histogram* ScopedStats::histogram(const std::string& name) const {
  return registry_ == nullptr ? nullptr : &registry_->histogram(full(name));
}

LinearHistogram* ScopedStats::linear_histogram(const std::string& name,
                                               double lo, double hi,
                                               std::size_t buckets) const {
  return registry_ == nullptr
             ? nullptr
             : &registry_->linear_histogram(full(name), lo, hi, buckets);
}

EwmaRate* ScopedStats::rate(const std::string& name,
                            double tau_seconds) const {
  return registry_ == nullptr ? nullptr
                              : &registry_->rate(full(name), tau_seconds);
}

// ---------------------------------------------------------------------------
// StatsRegistry

Counter& StatsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& StatsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& StatsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

LinearHistogram& StatsRegistry::linear_histogram(const std::string& name,
                                                 double lo, double hi,
                                                 std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = linear_histograms_[name];
  if (!slot) slot = std::make_unique<LinearHistogram>(lo, hi, buckets);
  return *slot;
}

EwmaRate& StatsRegistry::rate(const std::string& name, double tau_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = rates_[name];
  if (!slot) slot = std::make_unique<EwmaRate>(tau_seconds);
  return *slot;
}

void StatsRegistry::formula(const std::string& name, FormulaFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  formulas_[name] = std::move(fn);
}

namespace {

template <typename H>
HistogramStats snapshot_histogram(const H& h, std::size_t n_buckets) {
  HistogramStats out;
  out.count = h.count();
  out.sum = h.sum();
  out.mean = h.mean();
  out.min = h.min_value();
  out.max = h.max_value();
  out.p50 = h.percentile(0.50);
  out.p90 = h.percentile(0.90);
  out.p99 = h.percentile(0.99);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    const std::uint64_t c = h.bucket_count(b);
    if (c != 0) out.buckets.emplace_back(h.bucket_upper(b), c);
  }
  return out;
}

}  // namespace

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, r] : rates_) snap.rates[name] = r->rate_per_s();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = snapshot_histogram(*h, Histogram::kBuckets);
  }
  for (const auto& [name, h] : linear_histograms_) {
    snap.histograms[name] = snapshot_histogram(*h, h->bucket_count_total());
  }
  for (const auto& [name, fn] : formulas_) {
    snap.formulas[name] = fn ? fn() : 0.0;
  }
  return snap;
}

// ---------------------------------------------------------------------------
// StatsSnapshot

StatsSnapshot StatsSnapshot::delta_since(const StatsSnapshot& prev) const {
  StatsSnapshot out;
  out.gauges = gauges;
  out.rates = rates;
  out.formulas = formulas;
  for (const auto& [name, value] : counters) {
    auto it = prev.counters.find(name);
    const std::uint64_t base = it == prev.counters.end() ? 0 : it->second;
    out.counters[name] = value >= base ? value - base : value;
  }
  for (const auto& [name, cur] : histograms) {
    auto it = prev.histograms.find(name);
    if (it == prev.histograms.end()) {
      out.histograms[name] = cur;
      continue;
    }
    const HistogramStats& old = it->second;
    if (cur.count < old.count) {  // registry was replaced; treat as fresh
      out.histograms[name] = cur;
      continue;
    }
    HistogramStats d;
    d.count = cur.count - old.count;
    d.sum = cur.sum - old.sum;
    d.mean = d.count == 0 ? 0.0 : d.sum / static_cast<double>(d.count);
    // Per-interval extrema are unrecoverable from cumulative snapshots;
    // fall back to bucket bounds for the delta distribution.
    std::map<double, std::uint64_t> merged;
    for (const auto& [upper, c] : cur.buckets) merged[upper] += c;
    for (const auto& [upper, c] : old.buckets) {
      auto& slot = merged[upper];
      slot = slot >= c ? slot - c : 0;
    }
    double lo_bound = 0.0;
    double hi_bound = 0.0;
    double prev_upper = 0.0;
    bool first = true;
    for (const auto& [upper, c] : merged) {
      if (c != 0) {
        d.buckets.emplace_back(upper, c);
        if (first) {
          lo_bound = prev_upper;
          first = false;
        }
        hi_bound = upper;
      }
      prev_upper = upper;
    }
    d.min = lo_bound;
    d.max = hi_bound;
    if (d.count > 0) {
      auto low_of = [&](std::size_t b) {
        return b == 0 ? lo_bound : d.buckets[b - 1].first;
      };
      d.p50 = bucketed_percentile(
          0.50, d.count, d.min, d.max, d.buckets.size(), low_of,
          [&](std::size_t b) { return d.buckets[b].first; },
          [&](std::size_t b) { return d.buckets[b].second; });
      d.p90 = bucketed_percentile(
          0.90, d.count, d.min, d.max, d.buckets.size(), low_of,
          [&](std::size_t b) { return d.buckets[b].first; },
          [&](std::size_t b) { return d.buckets[b].second; });
      d.p99 = bucketed_percentile(
          0.99, d.count, d.min, d.max, d.buckets.size(), low_of,
          [&](std::size_t b) { return d.buckets[b].first; },
          [&](std::size_t b) { return d.buckets[b].second; });
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

std::string StatsSnapshot::to_json() const {
  std::ostringstream os;
  os << '{';
  bool outer_first = true;
  auto section = [&](const char* key) {
    if (!outer_first) os << ',';
    outer_first = false;
    os << '"' << key << "\":{";
  };
  section("counters");
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << v;
  }
  os << '}';
  section("gauges");
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << format_double(v);
  }
  os << '}';
  section("rates");
  first = true;
  for (const auto& [name, v] : rates) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << format_double(v);
  }
  os << '}';
  section("formulas");
  first = true;
  for (const auto& [name, v] : formulas) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << format_double(v);
  }
  os << '}';
  section("histograms");
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"count\":" << h.count
       << ",\"sum\":" << format_double(h.sum)
       << ",\"mean\":" << format_double(h.mean)
       << ",\"min\":" << format_double(h.min)
       << ",\"max\":" << format_double(h.max)
       << ",\"p50\":" << format_double(h.p50)
       << ",\"p90\":" << format_double(h.p90)
       << ",\"p99\":" << format_double(h.p99) << '}';
  }
  os << '}';
  os << '}';
  return os.str();
}

std::string StatsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    const std::string prom = sanitize_prom(name);
    os << "# TYPE " << prom << " counter\n" << prom << ' ' << v << '\n';
  }
  for (const auto& [name, v] : gauges) {
    const std::string prom = sanitize_prom(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << ' ' << format_double(v) << '\n';
  }
  for (const auto& [name, v] : rates) {
    const std::string prom = sanitize_prom(name) + "_per_second";
    os << "# TYPE " << prom << " gauge\n"
       << prom << ' ' << format_double(v) << '\n';
  }
  for (const auto& [name, v] : formulas) {
    const std::string prom = sanitize_prom(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << ' ' << format_double(v) << '\n';
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = sanitize_prom(name);
    os << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [upper, c] : h.buckets) {
      cumulative += c;
      os << prom << "_bucket{le=\"" << format_double(upper) << "\"} "
         << cumulative << '\n';
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << prom << "_sum " << format_double(h.sum) << '\n';
    os << prom << "_count " << h.count << '\n';
  }
  return os.str();
}

}  // namespace approxiot::obs
