#include "streams/window.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace approxiot::streams {
namespace {

struct CountState {
  int count{0};
};

TEST(TumblingWindowsTest, AssignsByTimestamp) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  EXPECT_EQ(windows.window_of(SimTime::from_millis(0)).index, 0);
  EXPECT_EQ(windows.window_of(SimTime::from_millis(999)).index, 0);
  EXPECT_EQ(windows.window_of(SimTime::from_millis(1000)).index, 1);
  EXPECT_EQ(windows.window_of(SimTime::from_seconds(7.3)).index, 7);
}

// Regression: `t.us / size_.us` truncates toward zero, which folded
// every timestamp in (-size, 0) into window 0 — a negative timestamp
// (pre-epoch sensor clock, clock skew at a source) must land in the
// negative-index window that actually contains it.
TEST(TumblingWindowsTest, NegativeTimestampsUseFloorDivision) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  EXPECT_EQ(windows.window_of(SimTime::from_millis(-1)).index, -1);
  EXPECT_EQ(windows.window_of(SimTime::from_millis(-999)).index, -1);
  EXPECT_EQ(windows.window_of(SimTime::from_millis(-1000)).index, -1);
  EXPECT_EQ(windows.window_of(SimTime::from_millis(-1001)).index, -2);
  EXPECT_EQ(windows.window_of(SimTime::from_seconds(-7.3)).index, -8);

  // The half-open [start, end) contract holds for negative windows too.
  const WindowKey k = windows.window_of(SimTime::from_millis(-500));
  EXPECT_LE(windows.window_start(k), SimTime::from_millis(-500));
  EXPECT_GT(windows.window_end(k), SimTime::from_millis(-500));

  // And state keyed by negative timestamps is distinct from window 0.
  windows.state_at(SimTime::from_millis(-500)).count++;
  windows.state_at(SimTime::from_millis(500)).count++;
  EXPECT_EQ(windows.open_windows(), 2u);
}

TEST(TumblingWindowsTest, BoundariesAreHalfOpen) {
  TumblingWindows<CountState> windows(SimTime::from_millis(250));
  const WindowKey k{4};
  EXPECT_EQ(windows.window_start(k).us, 1'000'000);
  EXPECT_EQ(windows.window_end(k).us, 1'250'000);
}

TEST(TumblingWindowsTest, StateAccumulatesPerWindow) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  windows.state_at(SimTime::from_millis(100)).count++;
  windows.state_at(SimTime::from_millis(200)).count++;
  windows.state_at(SimTime::from_millis(1100)).count++;
  EXPECT_EQ(windows.open_windows(), 2u);

  auto closed = windows.close_expired(SimTime::from_seconds(1.0));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].first.index, 0);
  EXPECT_EQ(closed[0].second.count, 2);
  EXPECT_EQ(windows.open_windows(), 1u);
}

TEST(TumblingWindowsTest, GraceDelaysClosure) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0),
                                      SimTime::from_millis(500));
  windows.state_at(SimTime::from_millis(100)).count++;
  EXPECT_TRUE(windows.close_expired(SimTime::from_millis(1200)).empty());
  EXPECT_EQ(windows.close_expired(SimTime::from_millis(1500)).size(), 1u);
}

TEST(TumblingWindowsTest, CloseExpiredReturnsOldestFirst) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  windows.state_at(SimTime::from_seconds(2.5)).count = 3;
  windows.state_at(SimTime::from_seconds(0.5)).count = 1;
  windows.state_at(SimTime::from_seconds(1.5)).count = 2;
  auto closed = windows.close_expired(SimTime::from_seconds(10.0));
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[0].second.count, 1);
  EXPECT_EQ(closed[1].second.count, 2);
  EXPECT_EQ(closed[2].second.count, 3);
}

TEST(TumblingWindowsTest, CloseAllFlushesEverything) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  windows.state_at(SimTime::from_seconds(0.1)).count = 1;
  windows.state_at(SimTime::from_seconds(5.1)).count = 2;
  auto all = windows.close_all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(windows.open_windows(), 0u);
}

TEST(TumblingWindowsTest, ZeroSizeFallsBackToOneSecond) {
  TumblingWindows<CountState> windows(SimTime::zero());
  EXPECT_EQ(windows.window_size().us, 1'000'000);
}

TEST(TumblingWindowsTest, LateRecordCannotResurrectClosedWindow) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  windows.state_at(SimTime::from_millis(100)).count = 7;
  auto closed = windows.close_expired(SimTime::from_seconds(1.0));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].second.count, 7);

  // Window 0's aggregate was already emitted: a straggler for it goes to
  // the quarantine bin, is counted, and does not re-open the window.
  windows.state_at(SimTime::from_millis(500)).count++;
  EXPECT_EQ(windows.late_dropped(), 1u);
  EXPECT_EQ(windows.open_windows(), 0u);
  EXPECT_TRUE(windows.close_expired(SimTime::from_seconds(10.0)).empty());
}

TEST(TumblingWindowsTest, LateRecordForEmptyNeverMaterialisedWindowDrops) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  // Stream time races ahead with no data at all; windows 0..8 expire
  // without ever materialising in the map.
  EXPECT_TRUE(windows.close_expired(SimTime::from_seconds(9.0)).empty());
  windows.state_at(SimTime::from_seconds(3.5)).count++;  // late, window 3
  EXPECT_EQ(windows.late_dropped(), 1u);
  EXPECT_EQ(windows.open_windows(), 0u);
  // The current (unexpired) window still accepts data.
  windows.state_at(SimTime::from_seconds(9.5)).count++;
  EXPECT_EQ(windows.late_dropped(), 1u);
  EXPECT_EQ(windows.open_windows(), 1u);
}

// Regression: a record arriving with a *negative* timestamp after any
// window closed must be treated as (very) late, not as a fresh window —
// and before anything closed, pre-origin timestamps are legitimate data.
TEST(TumblingWindowsTest, NegativeLatenessAfterCloseIsDropped) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  windows.state_at(SimTime::from_millis(-500)).count = 1;  // window -1: ok
  EXPECT_EQ(windows.late_dropped(), 0u);
  EXPECT_EQ(windows.open_windows(), 1u);

  auto closed = windows.close_expired(SimTime::from_seconds(2.0));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].first.index, -1);

  windows.state_at(SimTime::from_seconds(-7.3)).count++;  // window -8: late
  EXPECT_EQ(windows.late_dropped(), 1u);
  EXPECT_EQ(windows.open_windows(), 0u);
}

TEST(TumblingWindowsTest, LateContributionsDoNotAccumulateInQuarantine) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  (void)windows.close_expired(SimTime::from_seconds(5.0));
  CountState& first = windows.state_at(SimTime::from_millis(100));
  first.count = 41;
  // The next late access sees a fresh bin, not the previous straggler.
  EXPECT_EQ(windows.state_at(SimTime::from_millis(200)).count, 0);
  EXPECT_EQ(windows.late_dropped(), 2u);
}

TEST(TumblingWindowsTest, CloseAllAdvancesTheLatenessWatermark) {
  TumblingWindows<CountState> windows(SimTime::from_seconds(1.0));
  windows.state_at(SimTime::from_seconds(4.5)).count = 1;
  EXPECT_EQ(windows.close_all().size(), 1u);
  windows.state_at(SimTime::from_seconds(4.7)).count++;  // flushed window
  EXPECT_EQ(windows.late_dropped(), 1u);
  windows.state_at(SimTime::from_seconds(5.5)).count++;  // beyond: fine
  EXPECT_EQ(windows.late_dropped(), 1u);
  EXPECT_EQ(windows.open_windows(), 1u);
}

}  // namespace
}  // namespace approxiot::streams
