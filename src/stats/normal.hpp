// Standard normal distribution utilities: CDF, inverse CDF (quantile),
// and the z-values behind the paper's "68-95-99.7" error-bound rule.
// Replaces the Apache Commons Math dependency of the original prototype.
#pragma once

namespace approxiot::stats {

/// Φ(x): standard normal cumulative distribution function.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Φ⁻¹(p) for p in (0,1): Acklam's rational approximation refined with one
/// Halley step; absolute error below 1e-9 across the domain.
[[nodiscard]] double normal_quantile(double p) noexcept;

/// z such that P(|Z| <= z) = confidence, e.g. 0.95 -> 1.959964.
[[nodiscard]] double z_for_confidence(double confidence) noexcept;

/// The paper's three canonical confidence levels (§III-D).
inline constexpr double kConfidence68 = 0.6826894921370859;
inline constexpr double kConfidence95 = 0.9544997361036416;
inline constexpr double kConfidence997 = 0.9973002039367398;

}  // namespace approxiot::stats
