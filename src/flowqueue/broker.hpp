// The in-process "cluster": owns topics and coordinates consumer groups.
//
// Consumer-group semantics follow Kafka's model: each partition of a
// subscribed topic is owned by exactly one group member at a time; joins
// and leaves trigger a rebalance (round-robin reassignment); committed
// offsets are stored per (group, topic, partition).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flowqueue/record.hpp"
#include "flowqueue/topic.hpp"
#include "obs/stats.hpp"

namespace approxiot::flowqueue {

class Broker {
 public:
  Broker() = default;

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Creates a topic. Fails with kAlreadyExists if the name is taken.
  Status create_topic(const std::string& name, std::uint32_t partitions);

  /// Creates the topic if absent; returns OK either way.
  Status ensure_topic(const std::string& name, std::uint32_t partitions);

  [[nodiscard]] bool has_topic(const std::string& name) const;
  [[nodiscard]] Result<Topic*> topic(const std::string& name);
  [[nodiscard]] std::vector<std::string> topic_names() const;

  // --- consumer-group coordination -------------------------------------

  /// Registers `member` into `group` subscribed to `topics`; triggers a
  /// rebalance and returns the member's new partition assignment.
  Result<std::vector<TopicPartition>> join_group(
      const std::string& group, const std::string& member,
      const std::vector<std::string>& topics);

  /// Removes a member and rebalances the remaining ones.
  Status leave_group(const std::string& group, const std::string& member);

  /// Current assignment for a member (after any rebalance).
  [[nodiscard]] Result<std::vector<TopicPartition>> assignment(
      const std::string& group, const std::string& member) const;

  /// Generation counter: bumped on every rebalance so members can detect
  /// that their cached assignment is stale.
  [[nodiscard]] std::uint64_t group_generation(const std::string& group) const;

  Status commit_offset(const std::string& group, const TopicPartition& tp,
                       Offset offset);
  [[nodiscard]] Offset committed_offset(const std::string& group,
                                        const TopicPartition& tp) const;

  /// Writes a point-in-time view of broker state into `registry` gauges
  /// under `scope` (e.g. "flowqueue"):
  ///   {scope}/topics                         topic count
  ///   {scope}/topic/{name}/records           records appended, all partitions
  ///   {scope}/topic/{name}/bytes             payload bytes appended
  ///   {scope}/topic/{name}/partitions        partition count
  ///   {scope}/group/{name}/members           current member count
  ///   {scope}/group/{name}/generation        rebalance generation
  /// Call again whenever a fresh view is wanted; gauges are overwritten in
  /// place, so the same registry can be snapshotted per interval.
  void export_stats(obs::StatsRegistry& registry,
                    const std::string& scope) const;

 private:
  struct GroupState {
    std::set<std::string> members;
    std::vector<std::string> topics;
    std::map<std::string, std::vector<TopicPartition>> assignments;
    std::map<TopicPartition, Offset> committed;
    std::uint64_t generation{0};
  };

  void rebalance_locked(GroupState& group);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
  std::map<std::string, GroupState> groups_;
};

}  // namespace approxiot::flowqueue
