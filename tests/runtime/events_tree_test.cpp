// kEvents vs kThreads: the event-driven runtime must be BIT-IDENTICAL to
// the thread-per-node oracle — same Θ, same query answer, same wire
// bytes — because a node task never runs on two workers at once, Ψ is
// assembled in child order (parking at the first unready input), and
// every RNG lives in the node's stage. The worker count may only change
// wall-clock interleaving, never a single sample.
//
// Scale: kThreads cannot run a 10k-node tree (one OS thread per node),
// so the large-tree test pins kEvents to the sequential core::EdgeTree
// instead — bit-identity is transitive through the threads-mode
// equivalence the sibling suite already establishes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/control_plane.hpp"
#include "core/pipeline.hpp"
#include "flowqueue/broker.hpp"
#include "runtime/concurrent_tree.hpp"
#include "runtime/flowqueue_bridge.hpp"

namespace approxiot::runtime {
namespace {

using core::EdgeTree;
using core::EdgeTreeConfig;
using core::EngineKind;

/// Deterministic workload, items[tick][leaf] (same shape as the threads
/// suite's helper: 4 sub-streams, occasionally tiny/empty leaves).
std::vector<std::vector<std::vector<Item>>> make_workload(std::size_t ticks,
                                                          std::size_t leaves,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::vector<Item>>> workload(ticks);
  for (std::size_t t = 0; t < ticks; ++t) {
    workload[t].resize(leaves);
    for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
      const std::size_t n = rng.next_below(120);
      for (std::size_t i = 0; i < n; ++i) {
        workload[t][leaf].push_back(
            Item{SubStreamId{1 + rng.next_below(4)},
                 rng.next_double() * 10.0,
                 static_cast<std::int64_t>(t) * 1000});
      }
    }
  }
  return workload;
}

void expect_theta_identical(const core::ThetaStore& oracle,
                            const core::ThetaStore& events) {
  const auto oracle_streams = oracle.sub_streams();
  const auto event_streams = events.sub_streams();
  ASSERT_EQ(oracle_streams.size(), event_streams.size());
  for (std::size_t s = 0; s < oracle_streams.size(); ++s) {
    EXPECT_EQ(oracle_streams[s], event_streams[s]);
    const auto& oracle_pairs = oracle.pairs(oracle_streams[s]);
    const auto& event_pairs = events.pairs(oracle_streams[s]);
    ASSERT_EQ(oracle_pairs.size(), event_pairs.size())
        << "stream " << oracle_streams[s];
    for (std::size_t p = 0; p < oracle_pairs.size(); ++p) {
      EXPECT_EQ(oracle_pairs[p].weight, event_pairs[p].weight)
          << "stream " << oracle_streams[s] << " pair " << p;
      ASSERT_EQ(oracle_pairs[p].items.size(), event_pairs[p].items.size());
      for (std::size_t i = 0; i < oracle_pairs[p].items.size(); ++i) {
        EXPECT_EQ(oracle_pairs[p].items[i], event_pairs[p].items[i]);
      }
    }
  }
}

ConcurrentTreeConfig runtime_config_for(const EdgeTreeConfig& tree,
                                        RuntimeMode mode,
                                        std::size_t event_workers) {
  ConcurrentTreeConfig config;
  config.tree = tree;
  config.channel_capacity = 4;  // small enough that parking really happens
  config.backpressure = BackpressurePolicy::kBlock;
  config.runtime_mode = mode;
  config.event_workers = event_workers;
  return config;
}

class EventsEngineEquivalenceTest
    : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EventsEngineEquivalenceTest, EventsModeIsBitIdenticalToThreadsMode) {
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.engine = GetParam();
  tree_config.sampling_fraction = 0.4;
  tree_config.rng_seed = 20180701;

  // 7 nodes multiplexed over 3 workers: tasks genuinely park, resume and
  // migrate between workers mid-run.
  ConcurrentEdgeTree oracle(
      runtime_config_for(tree_config, RuntimeMode::kThreads, 0));
  ConcurrentEdgeTree events(
      runtime_config_for(tree_config, RuntimeMode::kEvents, 3));
  EXPECT_EQ(events.node_count(), 7u);

  const auto workload = make_workload(24, oracle.leaf_count(), 77);
  for (const auto& tick : workload) {
    oracle.push_interval(tick);
    events.push_interval(tick);
  }
  oracle.drain();
  events.drain();

  const auto oracle_metrics = oracle.metrics();
  const auto event_metrics = events.metrics();
  EXPECT_EQ(oracle_metrics.items_ingested, event_metrics.items_ingested);
  EXPECT_EQ(oracle_metrics.items_at_root, event_metrics.items_at_root);
  ASSERT_EQ(oracle_metrics.items_forwarded_per_layer.size(),
            event_metrics.items_forwarded_per_layer.size());
  for (std::size_t l = 0;
       l < oracle_metrics.items_forwarded_per_layer.size(); ++l) {
    EXPECT_EQ(oracle_metrics.items_forwarded_per_layer[l],
              event_metrics.items_forwarded_per_layer[l]);
  }
  EXPECT_EQ(event_metrics.messages_dropped, 0u);
  EXPECT_EQ(event_metrics.intervals_completed, workload.size());

  const auto oracle_result = oracle.run_query();
  const auto event_result = events.run_query();
  EXPECT_EQ(oracle_result.sum.point, event_result.sum.point);
  EXPECT_EQ(oracle_result.sum.margin, event_result.sum.margin);
  EXPECT_EQ(oracle_result.sampled_items, event_result.sampled_items);
  EXPECT_EQ(oracle_result.estimated_count, event_result.estimated_count);

  oracle.stop();
  events.stop();
  expect_theta_identical(oracle.theta(), events.theta());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EventsEngineEquivalenceTest,
                         ::testing::Values(EngineKind::kApproxIoT,
                                           EngineKind::kSrs,
                                           EngineKind::kNative,
                                           EngineKind::kSnapshot));

TEST(EventsTreeTest, WorkerCountNeverChangesTheOutput) {
  // 1 worker (fully serialized) vs 7 workers (maximal interleaving on
  // this topology): the scheduler may only change wall-clock order.
  auto run = [](std::size_t event_workers) {
    EdgeTreeConfig tree_config;
    tree_config.layer_widths = {4, 2};
    tree_config.engine = EngineKind::kApproxIoT;
    tree_config.sampling_fraction = 0.35;
    tree_config.rng_seed = 1234;
    ConcurrentEdgeTree tree(
        runtime_config_for(tree_config, RuntimeMode::kEvents, event_workers));
    const auto workload = make_workload(16, tree.leaf_count(), 9);
    for (const auto& tick : workload) tree.push_interval(tick);
    tree.drain();
    tree.stop();
    return tree.run_query();
  };
  const auto serial = run(1);
  const auto parallel = run(7);
  EXPECT_EQ(serial.sum.point, parallel.sum.point);
  EXPECT_EQ(serial.sum.margin, parallel.sum.margin);
  EXPECT_EQ(serial.sampled_items, parallel.sampled_items);
}

TEST(EventsTreeTest, TenThousandNodeTreeMatchesSequentialEdgeTree) {
  // The tentpole scale claim: 11'111 logical nodes in ONE process on an
  // 8-worker pool — impossible under kThreads (11k OS threads) — and
  // still bit-identical to the sequential reference, interval for
  // interval. Workload is kept tiny (one item per leaf per tick) so the
  // run is dominated by scheduling, which is exactly what is under test.
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {10000, 1000, 100, 10};
  tree_config.engine = EngineKind::kApproxIoT;
  tree_config.sampling_fraction = 0.5;
  tree_config.rng_seed = 31337;

  EdgeTree sequential(tree_config);
  ConcurrentEdgeTree events(
      runtime_config_for(tree_config, RuntimeMode::kEvents, 8));
  EXPECT_EQ(events.node_count(), 11111u);

  constexpr std::size_t kTicks = 3;
  for (std::size_t t = 0; t < kTicks; ++t) {
    std::vector<std::vector<Item>> tick(sequential.leaf_count());
    for (std::size_t leaf = 0; leaf < tick.size(); ++leaf) {
      tick[leaf].push_back(Item{SubStreamId{1 + leaf % 4},
                                static_cast<double>(leaf % 10),
                                static_cast<std::int64_t>(t) * 1000});
    }
    sequential.tick(tick);
    events.push_interval(tick);
  }
  events.drain();
  events.stop();

  const auto seq_metrics = sequential.metrics();
  const auto event_metrics = events.metrics();
  EXPECT_EQ(seq_metrics.items_ingested, event_metrics.items_ingested);
  EXPECT_EQ(seq_metrics.items_at_root, event_metrics.items_at_root);
  EXPECT_EQ(event_metrics.intervals_completed, kTicks);
  EXPECT_EQ(event_metrics.messages_dropped, 0u);
  expect_theta_identical(sequential.theta(), events.theta());

  const auto seq_result = sequential.run_query();
  const auto event_result = events.run_query();
  EXPECT_EQ(seq_result.sum.point, event_result.sum.point);
  EXPECT_EQ(seq_result.sum.margin, event_result.sum.margin);
}

TEST(EventsTreeTest, WireBytesIdenticalAcrossRuntimeModes) {
  // The acceptance bar verbatim: not just equal Θ but equal BYTES on the
  // wire. Both modes publish their root output through a FlowQueueSink;
  // the topics' raw record payloads must match one for one.
  flowqueue::Broker broker;
  auto run = [&broker](RuntimeMode mode, const std::string& topic) {
    FlowQueueSink sink(broker, topic);
    EdgeTreeConfig tree_config;
    tree_config.layer_widths = {4, 2};
    tree_config.engine = EngineKind::kApproxIoT;
    tree_config.sampling_fraction = 0.4;
    tree_config.rng_seed = 808;
    ConcurrentTreeConfig config =
        runtime_config_for(tree_config, mode, mode == RuntimeMode::kEvents
                                                  ? 3
                                                  : 0);
    config.root_tap = sink.as_root_tap();
    ConcurrentEdgeTree tree(config);
    const auto workload = make_workload(12, tree.leaf_count(), 21);
    for (const auto& tick : workload) tree.push_interval(tick);
    tree.drain();
    tree.stop();
    return sink.bundles_published();
  };

  const auto oracle_published = run(RuntimeMode::kThreads, "wire-threads");
  const auto event_published = run(RuntimeMode::kEvents, "wire-events");
  EXPECT_EQ(oracle_published, event_published);
  ASSERT_GT(event_published, 0u);

  auto* oracle_topic = broker.topic("wire-threads").value();
  auto* event_topic = broker.topic("wire-events").value();
  ASSERT_EQ(oracle_topic->record_count(), event_topic->record_count());
  ASSERT_EQ(oracle_topic->partition_count(), event_topic->partition_count());
  for (std::uint32_t p = 0; p < oracle_topic->partition_count(); ++p) {
    std::vector<flowqueue::Record> oracle_records;
    std::vector<flowqueue::Record> event_records;
    oracle_topic->partition(p).read(0, 1 << 20, oracle_records);
    event_topic->partition(p).read(0, 1 << 20, event_records);
    ASSERT_EQ(oracle_records.size(), event_records.size());
    for (std::size_t r = 0; r < oracle_records.size(); ++r) {
      EXPECT_EQ(oracle_records[r].key, event_records[r].key);
      EXPECT_EQ(oracle_records[r].value, event_records[r].value)
          << "payload bytes diverge at record " << r;
    }
  }
}

TEST(EventsTreeTest, PooledExecutorComposesWithEventsMode) {
  // workers_per_node > 1 shards each node's reservoirs over a
  // PooledSamplingExecutor; under kEvents the node *tasks* also share a
  // scheduler pool. Samples legitimately differ from 1-worker runs, but
  // Eq. 8 must keep every sub-stream's estimated original count exact.
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.engine = EngineKind::kApproxIoT;
  tree_config.sampling_fraction = 0.5;
  tree_config.rng_seed = 4242;

  ConcurrentTreeConfig config =
      runtime_config_for(tree_config, RuntimeMode::kEvents, 3);
  config.workers_per_node = 4;
  ConcurrentEdgeTree tree(config);

  std::vector<std::uint64_t> truth = {0, 400, 800, 1200};  // streams 1..3
  std::vector<std::vector<Item>> interval(tree.leaf_count());
  Rng rng(99);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    for (std::uint64_t i = 0; i < truth[s]; ++i) {
      const std::size_t leaf = rng.next_below(tree.leaf_count());
      interval[leaf].push_back(Item{SubStreamId{s}, 1.0, 0});
    }
  }
  for (int rep = 0; rep < 5; ++rep) tree.push_interval(interval);
  tree.drain();
  tree.stop();

  const auto& theta = tree.theta();
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_GT(theta.sampled_count(SubStreamId{s}), 0u);
    const double expected = 5.0 * static_cast<double>(truth[s]);
    EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), expected,
                expected * 1e-9)
        << "stream " << s;
  }
}

TEST(EventsTreeChaosTest, WakeStormsAndConcurrentControlChangeNothing) {
  // Chaos: random node wake ordering. A background thread storms
  // spurious wakes into every task (kick()), another hammers run_query
  // and mid-stream policy publishes, the producer overloads a
  // 1-capacity drop-mode tree — and the surviving Θ must still be
  // internally consistent (native stages never reweight, so the
  // estimate equals the arrived count EXACTLY). Run under TSan, any
  // report in runtime code is a real bug.
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {8, 4, 2};
  tree_config.sampling_fraction = 1.0;
  tree_config.engine = EngineKind::kNative;
  tree_config.control_plane = core::make_control_plane(tree_config);

  ConcurrentTreeConfig config;
  config.tree = tree_config;
  config.channel_capacity = 1;  // overload: drops genuinely happen
  config.backpressure = BackpressurePolicy::kDropNewest;
  config.runtime_mode = RuntimeMode::kEvents;
  config.event_workers = 4;
  ConcurrentEdgeTree tree(config);

  std::atomic<bool> done{false};
  std::thread storm([&] {
    while (!done.load()) {
      tree.kick();  // spurious wakes in random interleavings
      std::this_thread::yield();
    }
  });
  std::thread control([&] {
    double fraction = 0.9;
    while (!done.load()) {
      (void)tree.run_query();
      tree.publish_fraction(fraction);
      fraction = fraction == 0.9 ? 0.8 : 0.9;
      std::this_thread::yield();
    }
  });

  std::vector<std::vector<Item>> interval(tree.leaf_count());
  for (std::size_t leaf = 0; leaf < interval.size(); ++leaf) {
    for (int i = 0; i < 50; ++i) {
      interval[leaf].push_back(Item{SubStreamId{1 + leaf % 4}, 1.0, 0});
    }
  }
  for (int k = 0; k < 120; ++k) tree.push_interval(interval);
  // Quiesce the chaos before stop(): a kicker that never pauses could
  // keep the shutdown drain (stop when no wake is pending) from ever
  // observing an empty queue on a small machine.
  done.store(true);
  storm.join();
  control.join();
  tree.stop();
  tree.kick();  // post-shutdown kicks must be harmless no-ops too

  const auto metrics = tree.metrics();
  EXPECT_EQ(metrics.intervals_pushed, 120u);
  EXPECT_LE(metrics.items_at_root, metrics.items_ingested);
  const auto& theta = tree.theta();
  double estimated = 0.0;
  for (const auto id : theta.sub_streams()) {
    estimated += theta.estimated_original_count(id);
  }
  EXPECT_DOUBLE_EQ(estimated, static_cast<double>(metrics.items_at_root));
}

TEST(EventsTreeTest, StopWithNothingPushedTerminates) {
  // The close cascade must reach the root even when no interval ever
  // flowed (every task sees drained inputs on its first wake).
  EdgeTreeConfig tree_config;
  tree_config.layer_widths = {16, 4};
  tree_config.engine = EngineKind::kNative;
  ConcurrentTreeConfig config =
      runtime_config_for(tree_config, RuntimeMode::kEvents, 2);
  ConcurrentEdgeTree tree(config);
  tree.stop();
  EXPECT_EQ(tree.metrics().intervals_completed, 0u);
}

}  // namespace
}  // namespace approxiot::runtime
