// Kernel dispatch, the portable (non-intrinsic) kernels, and the scalar
// reference implementations. The AVX2/AVX-512 counting passes and the
// SSE4.2 scatter live in kernels_<tier>.cpp, each compiled with its own
// -m flags; everything here builds with the project's baseline flags so
// the binary never executes an illegal instruction before dispatch.
#include "core/kernels/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "core/kernels/kernels_impl.hpp"
#include "obs/hooks.hpp"
#include "obs/stats.hpp"

namespace approxiot::core::kernels {

namespace {

Tier cap_from_env(Tier best) noexcept {
  const char* env = std::getenv("APPROXIOT_SIMD_TIER");
  if (env == nullptr || *env == '\0') return best;
  Tier cap = best;
  if (std::strcmp(env, "scalar") == 0) {
    cap = Tier::kScalar;
  } else if (std::strcmp(env, "sse42") == 0) {
    cap = Tier::kSse42;
  } else if (std::strcmp(env, "avx2") == 0) {
    cap = Tier::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    cap = Tier::kAvx512;
  }
  return std::min(best, cap);
}

Tier detect() noexcept {
  Tier best = Tier::kScalar;
#if AIOT_KERNELS_X86
  if (__builtin_cpu_supports("sse4.2")) best = Tier::kSse42;
  if (__builtin_cpu_supports("avx2")) best = Tier::kAvx2;
  // The 512-bit counting pass needs DQ (vpmullq in the hash fallback's
  // neighbours) and VL (masked 256-bit ops) beyond the foundation set.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    best = Tier::kAvx512;
  }
#endif
  return cap_from_env(best);
}

std::atomic<Tier>& active_slot() noexcept {
  static std::atomic<Tier> slot{detect()};
  return slot;
}

// Observability: one process-wide set of bound pointers, matching the
// process-wide dispatch tier. Atomic so benches can bind while sampler
// threads run; unbound (nullptr) costs one relaxed load per kernel call.
struct BoundStats {
  std::atomic<obs::Counter*> count_items{nullptr};
  std::atomic<obs::Counter*> scatter_items{nullptr};
  std::atomic<obs::Counter*> reservoir_items{nullptr};
  std::atomic<obs::Counter*> encode_items{nullptr};
};

BoundStats& bound_stats() noexcept {
  static BoundStats stats;
  return stats;
}

inline void bump(std::atomic<obs::Counter*>& slot,
                 [[maybe_unused]] std::size_t n) noexcept {
  AIOT_OBS(if (obs::Counter* c = slot.load(std::memory_order_relaxed))
               c->increment(n););
  (void)slot;
}

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse42:
      return "sse42";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Tier detected_tier() noexcept {
  static const Tier tier = detect();
  return tier;
}

Tier active_tier() noexcept {
  return active_slot().load(std::memory_order_relaxed);
}

Tier force_tier(Tier tier) noexcept {
  const Tier clamped = std::min(tier, detected_tier());
  active_slot().store(clamped, std::memory_order_relaxed);
  return clamped;
}

void bind_stats(obs::StatsRegistry* registry) {
  BoundStats& stats = bound_stats();
  if (registry == nullptr) {
    stats.count_items.store(nullptr, std::memory_order_relaxed);
    stats.scatter_items.store(nullptr, std::memory_order_relaxed);
    stats.reservoir_items.store(nullptr, std::memory_order_relaxed);
    stats.encode_items.store(nullptr, std::memory_order_relaxed);
    return;
  }
  registry->gauge("core/kernels/active_tier")
      .set(static_cast<double>(active_tier()));
  stats.count_items.store(&registry->counter("core/kernels/count_items"),
                          std::memory_order_relaxed);
  stats.scatter_items.store(&registry->counter("core/kernels/scatter_items"),
                            std::memory_order_relaxed);
  stats.reservoir_items.store(
      &registry->counter("core/kernels/reservoir_items"),
      std::memory_order_relaxed);
  stats.encode_items.store(&registry->counter("core/kernels/encode_items"),
                           std::memory_order_relaxed);
}

// --- Counting pass ----------------------------------------------------------

namespace detail {

void reindex(CountScratch s) {
  // Same sizing discipline as StratifyScratch::reindex: never shrink,
  // keep 4x headroom so probes stay short for the rest of the pass.
  std::size_t size = std::max<std::size_t>(s.slot_index->size(), 16);
  while (size < (s.slot_ids->size() + 1) * 4) size *= 2;
  s.slot_index->assign(size, 0);
  const std::size_t mask = size - 1;
  for (std::uint32_t k = 0; k < s.slot_ids->size(); ++k) {
    std::size_t probe =
        static_cast<std::size_t>(mix64((*s.slot_ids)[k].value())) & mask;
    while ((*s.slot_index)[probe] != 0) probe = (probe + 1) & mask;
    (*s.slot_index)[probe] = k + 1;
  }
}

void count_pass_hash(const Item* data, std::size_t n, CountScratch s,
                     std::uint32_t* item_slots) {
  std::vector<SubStreamId>& ids = *s.slot_ids;
  std::vector<std::size_t>& counts = *s.slot_counts;
  std::vector<std::uint32_t>& index = *s.slot_index;
  for (std::size_t i = 0; i < n; ++i) {
    const SubStreamId id = data[i].source;
    std::size_t mask = index.size() - 1;
    std::size_t probe = static_cast<std::size_t>(mix64(id.value())) & mask;
    std::uint32_t slot;
    while (true) {
      const std::uint32_t entry = index[probe];
      if (entry == 0) {
        // First sight: next dense slot; regrow the index past half load
        // (the oracle's exact growth rule, so probe histories match).
        slot = static_cast<std::uint32_t>(ids.size());
        ids.push_back(id);
        counts.push_back(0);
        if ((ids.size() + 1) * 2 > index.size()) {
          reindex(s);
        } else {
          index[probe] = slot + 1;
        }
        break;
      }
      if (ids[entry - 1] == id) {
        slot = entry - 1;
        break;
      }
      probe = (probe + 1) & mask;
    }
    ++counts[slot];
    item_slots[i] = slot;
  }
}

}  // namespace detail

void count_pass(Tier tier, const Item* data, std::size_t n, CountScratch s,
                std::uint32_t* item_slots) {
  bump(bound_stats().count_items, n);
#if AIOT_KERNELS_X86
  if (tier == Tier::kAvx512) {
    detail::count_pass_avx512(data, n, s, item_slots);
    return;
  }
  if (tier == Tier::kAvx2) {
    detail::count_pass_avx2(data, n, s, item_slots);
    return;
  }
#endif
  (void)tier;
  detail::count_pass_hash(data, n, s, item_slots);
}

// --- Scatter pass -----------------------------------------------------------

void scatter_pass(Tier tier, const Item* data, std::size_t n,
                  const std::uint32_t* item_slots, std::size_t* cursors,
                  Item* arena) {
  bump(bound_stats().scatter_items, n);
#if AIOT_KERNELS_X86
  if (tier != Tier::kScalar) {
    detail::scatter_pass_sse42(data, n, item_slots, cursors, arena);
    return;
  }
#endif
  (void)tier;
  for (std::size_t i = 0; i < n; ++i) {
    arena[cursors[item_slots[i]]++] = data[i];
  }
}

// --- Algorithm R over a full reservoir --------------------------------------

namespace {

constexpr std::size_t kRing = 16;

void algo_r_scalar(Item* res, std::size_t cap, const Item* d, std::size_t n,
                   std::uint64_t& seen, Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t j = rng.next_below(++seen);
    if (j < cap) res[j] = d[i];
  }
}

/// Items `k0..chunk` of one chunk, replaying pre-drawn ring words from
/// position `rc` and falling through to live draws when the ring runs
/// dry. This is the exact-but-slower path: the fast loop below bails
/// here on the first Lemire pre-filter hit (or for short tails), and
/// the word-consumption order stays precisely the scalar oracle's.
void algo_r_replay(Item* res, std::size_t cap, const Item* d, Item* sink,
                   const std::uint64_t* ring, std::size_t chunk,
                   std::size_t k0, std::size_t rc, std::uint64_t& seen,
                   Rng& rng) {
  for (std::size_t k = k0; k < chunk; ++k) {
    const std::uint64_t bound = ++seen;
    std::uint64_t x = rc < chunk ? ring[rc++] : rng.next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (__builtin_expect(l < bound, 0)) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = rc < chunk ? ring[rc++] : rng.next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    const std::uint64_t j = static_cast<std::uint64_t>(m >> 64);
    Item* dst = j < cap ? res + j : sink;
    *dst = d[k];
  }
}

void algo_r_ring(Item* res, std::size_t cap, const Item* d, std::size_t n,
                 std::uint64_t& seen_io, Rng& rng_io) {
  // Local copies keep the generator state and counter in registers for
  // the whole span; written back once on exit.
  Rng rng = rng_io;
  std::uint64_t seen = seen_io;
  std::uint64_t ring[kRing];
  Item sink{};
  std::size_t i = 0;
  // Full chunks: draw exactly kRing raw words up front — the ring is
  // simply the next stretch of the RNG stream. Each item consumes one
  // word in the (overwhelmingly likely, P[hit] = bound / 2^64 per item)
  // rejection-free case, so the constant-bound loop below indexes the
  // ring directly with no replay-cursor bookkeeping; the compiler
  // unrolls it flat. The first Lemire pre-filter hit breaks out to the
  // replay path, which re-examines item k with the same word and
  // consumes follow-up words in ring order — total words drawn is
  // therefore exactly the oracle's on every control path.
  while (n - i >= kRing && i < n) {
    for (std::size_t k = 0; k < kRing; ++k) ring[k] = rng.next();
    std::size_t k = 0;
    for (; k < kRing; ++k) {
      const std::uint64_t bound = seen + 1 + k;
      const __uint128_t m = static_cast<__uint128_t>(ring[k]) * bound;
      if (__builtin_expect(static_cast<std::uint64_t>(m) < bound, 0)) break;
      const std::uint64_t j = static_cast<std::uint64_t>(m >> 64);
      // Branchless: misses land in a local sink, so the store itself
      // never mispredicts (j < cap is true for ~cap/seen of items).
      Item* dst = j < cap ? res + j : &sink;
      *dst = d[i + k];
    }
    if (__builtin_expect(k < kRing, 0)) {
      seen += k;
      algo_r_replay(res, cap, d + i, &sink, ring, kRing, k, k, seen, rng);
    } else {
      seen += kRing;
    }
    i += kRing;
  }
  // Tail: same contract with a short chunk.
  if (i < n) {
    const std::size_t chunk = n - i;
    for (std::size_t k = 0; k < chunk; ++k) ring[k] = rng.next();
    algo_r_replay(res, cap, d + i, &sink, ring, chunk, 0, 0, seen, rng);
  }
  seen_io = seen;
  rng_io = rng;
}

}  // namespace

void algo_r_full(Tier tier, Item* reservoir, std::size_t capacity,
                 const Item* data, std::size_t n, std::uint64_t& seen,
                 Rng& rng) {
  bump(bound_stats().reservoir_items, n);
  if (tier == Tier::kScalar) {
    algo_r_scalar(reservoir, capacity, data, n, seen, rng);
    return;
  }
  algo_r_ring(reservoir, capacity, data, n, seen, rng);
}

// --- Algorithm L over a full reservoir --------------------------------------

namespace {

constexpr std::size_t kLBatch = 8;

inline double uniform_nonzero(Rng& rng) noexcept {
  double u;
  do {
    u = rng.next_double();
  } while (u <= 0.0);
  return u;
}

inline std::uint64_t saturate_gap(double gap) noexcept {
  return gap > 1e18 ? static_cast<std::uint64_t>(1e18)
                    : static_cast<std::uint64_t>(gap);
}

void algo_l_scalar(Item* res, std::size_t cap, const Item* d, std::size_t n,
                   std::uint64_t& seen, double& w, std::uint64_t& skip,
                   Rng& rng) {
  const double r = static_cast<double>(cap);
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t remaining = n - i;
    if (skip >= remaining) {
      skip -= remaining;
      seen += remaining;
      break;
    }
    i += static_cast<std::size_t>(skip);
    seen += skip + 1;
    skip = 0;
    const std::uint64_t victim = rng.next_below(cap);
    res[victim] = d[i++];
    w *= std::exp(std::log(uniform_nonzero(rng)) / r);
    const double gap =
        std::floor(std::log(uniform_nonzero(rng)) / std::log(1.0 - w));
    skip = saturate_gap(gap);
  }
}

void algo_l_batched(Item* res, std::size_t cap, const Item* d, std::size_t n,
                    std::uint64_t& seen_io, double& w_io,
                    std::uint64_t& skip_io, Rng& rng) {
  std::uint64_t seen = seen_io;
  double w = w_io;
  std::uint64_t skip = skip_io;
  const double r = static_cast<double>(cap);
  struct Decision {
    std::uint64_t victim;
    std::size_t pos;
  };
  Decision batch[kLBatch];
  std::size_t i = 0;
  while (i < n) {
    // Precompute up to kLBatch (victim, position) acceptances. Only
    // draws the scalar path would make within THIS span are taken: the
    // generator stops the moment the pending skip walks past the end,
    // so RNG/skip/w state is bit-identical at every exit.
    std::size_t nd = 0;
    while (nd < kLBatch) {
      const std::uint64_t remaining = n - i;
      if (skip >= remaining) {
        skip -= remaining;
        seen += remaining;
        i = n;
        break;
      }
      i += static_cast<std::size_t>(skip);
      seen += skip + 1;
      skip = 0;
      batch[nd].victim = rng.next_below(cap);
      batch[nd].pos = i++;
      ++nd;
      w *= std::exp(std::log(uniform_nonzero(rng)) / r);
      const double gap =
          std::floor(std::log(uniform_nonzero(rng)) / std::log(1.0 - w));
      skip = saturate_gap(gap);
    }
    for (std::size_t k = 0; k < nd; ++k) {
      res[batch[k].victim] = d[batch[k].pos];
    }
  }
  seen_io = seen;
  w_io = w;
  skip_io = skip;
}

}  // namespace

void algo_l_full(Tier tier, Item* reservoir, std::size_t capacity,
                 const Item* data, std::size_t n, std::uint64_t& seen,
                 double& w, std::uint64_t& skip, Rng& rng) {
  bump(bound_stats().reservoir_items, n);
  if (tier == Tier::kScalar) {
    algo_l_scalar(reservoir, capacity, data, n, seen, w, skip, rng);
    return;
  }
  algo_l_batched(reservoir, capacity, data, n, seen, w, skip, rng);
}

// --- Bulk wire encoding -----------------------------------------------------

std::size_t encode_items(Tier tier, std::uint8_t* out, const Item* items,
                         std::size_t n) {
  bump(bound_stats().encode_items, n);
  (void)tier;  // raw pointer writes already saturate the store ports
  std::uint8_t* p = out;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = items[i].source.value();
    while (v >= 0x80) {
      *p++ = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    *p++ = static_cast<std::uint8_t>(v);
    std::memcpy(p, &items[i].value, 8);
    p += 8;
    const auto ts = static_cast<std::uint64_t>(items[i].created_at_us);
    std::memcpy(p, &ts, 8);
    p += 8;
  }
  return static_cast<std::size_t>(p - out);
}

}  // namespace approxiot::core::kernels
