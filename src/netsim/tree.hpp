// TreeNetwork: the paper's emulated IoT testbed (§V-A) as a discrete-event
// simulation.
//
// Topology: `sources` source nodes -> layer-1 edge nodes -> layer-2 edge
// nodes -> datacenter root, with per-hop WAN links configured by RTT
// (paper: 20 ms, 40 ms, 80 ms) and capacity (1 Gbps). Sources emit items
// every `source_tick`; every sampling node runs its engine (ApproxIoT /
// SRS / native) per interval; the root accumulates Θ and closes a query
// window every `interval`, recording end-to-end item latencies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/control_plane.hpp"
#include "core/error.hpp"
#include "core/pipeline.hpp"
#include "core/theta_store.hpp"
#include "netsim/link.hpp"
#include "netsim/sim.hpp"
#include "netsim/sim_node.hpp"
#include "obs/stats.hpp"
#include "stats/moments.hpp"
#include "stats/summary.hpp"

namespace approxiot::netsim {

struct TreeNetConfig {
  core::EngineKind engine{core::EngineKind::kApproxIoT};
  /// End-to-end sampling fraction; split across sampling layers like
  /// EdgeTree does.
  double sampling_fraction{1.0};
  SimTime interval{SimTime::from_seconds(1.0)};

  std::size_t sources{8};
  std::vector<std::size_t> layer_widths{4, 2};
  /// RTT per hop, sources->L1 first. Must have layer_widths.size()+1
  /// entries (last hop reaches the root).
  std::vector<SimTime> hop_rtts{SimTime::from_millis(20),
                                SimTime::from_millis(40),
                                SimTime::from_millis(80)};
  double bandwidth_bps{1e9};

  /// Service rates (items/s). Edge nodes in the paper's testbed are
  /// smaller machines than the aggregate pipeline needs; the datacenter
  /// node is the bottleneck the sources saturate.
  double edge_service_rate{400000.0};
  double root_service_rate{100000.0};

  /// How often sources emit batches.
  SimTime source_tick{SimTime::from_millis(100)};

  std::uint64_t rng_seed{7};

  /// §IV-B live feedback under WAN latency: at every window close the
  /// root's AdaptiveController proposes the next end-to-end fraction and
  /// the new policy epoch is DELIVERED DOWN THE SIMULATED LINKS — a node
  /// `h` hops below the root adopts it only after the sum of those hops'
  /// one-way latencies, so convergence-under-latency is measurable (the
  /// leaves sample under the old epoch while the update is in flight).
  bool adaptive{false};
  core::AdaptiveConfig adaptive_config{};

  /// Optional stats sink (must outlive the network). Registers under
  /// "netsim/":
  ///   netsim/policy_publishes        counter, root policy publishes
  ///   netsim/policy_propagation_us   histogram, one sample per edge-node
  ///                                  delivery: simulated delay between the
  ///                                  root publish and that node's adoption
  ///   netsim/hop{h}/bytes            gauge, bytes carried across hop h
  ///   netsim/hop{h}/utilization      gauge, mean link utilization of hop h
  ///                                  over the simulated run so far [0,1]
  ///   netsim/windows_closed          counter
  /// Hop gauges refresh at every window close and at drain.
  obs::StatsRegistry* stats{nullptr};
};

/// Generates the items one source emits at one tick. Receives the source
/// index and the current simulation time (for created_at stamps).
using SourceFn =
    std::function<std::vector<Item>(std::size_t source, SimTime now)>;

struct WindowResult {
  SimTime closed_at{};
  core::ApproxResult result;
  /// End-to-end fraction in force at the root when the window closed
  /// (the frozen config fraction when adaptive feedback is off). The
  /// epoch span of the samples themselves is in result.policy_epoch*.
  double fraction{1.0};
};

class TreeNetwork {
 public:
  TreeNetwork(Simulator& sim, TreeNetConfig config, SourceFn source_fn);

  /// Runs sources + pipeline for `duration` of simulated time.
  void run_for(SimTime duration);

  /// After run_for: lets in-flight items settle (nodes keep ticking for a
  /// bounded drain margin past the stop time), then closes the final
  /// query window. The simulation terminates — node ticks stop at the
  /// drain deadline.
  void drain();

  // --- metrics ----------------------------------------------------------

  [[nodiscard]] std::uint64_t items_generated() const noexcept {
    return items_generated_;
  }
  /// Items that reached the root and survived its sampling step.
  [[nodiscard]] std::uint64_t items_processed_at_root() const noexcept {
    return items_processed_at_root_;
  }
  /// Root service backlog (the saturation signal).
  [[nodiscard]] SimTime root_backlog() const;

  /// End-to-end latency stats over items processed at the root, measured
  /// at window close (source creation -> query execution).
  [[nodiscard]] const stats::RunningMoments& latency_moments() const noexcept {
    return latency_;
  }
  [[nodiscard]] const stats::QuantileSketch& latency_sketch() const noexcept {
    return latency_sketch_;
  }

  /// Bytes carried per hop level (0 = source links, ...). Fig. 7 input.
  [[nodiscard]] std::vector<std::uint64_t> bytes_per_hop() const;

  /// Closed query windows in order.
  [[nodiscard]] const std::vector<WindowResult>& windows() const noexcept {
    return windows_;
  }

  /// (publish time, fraction) trajectory of the adaptive controller —
  /// publish time is when the ROOT published; layer-L nodes adopt later.
  [[nodiscard]] const std::vector<std::pair<SimTime, double>>&
  fraction_history() const noexcept {
    return fraction_history_;
  }

  /// Policy epoch currently in force at node (layer, index) — lags the
  /// root's epoch by the downlink delivery latency while an update is in
  /// flight. Layer layer_widths.size() addresses the root.
  [[nodiscard]] core::PolicyEpoch node_policy_epoch(std::size_t layer,
                                                    std::size_t index) const;

 private:
  void source_tick(std::size_t source);
  void close_window();
  /// Refreshes per-hop bytes/utilization gauges (no-op when stats unset).
  void update_link_stats();
  /// Publishes `fraction` at the root now and schedules delivery to every
  /// edge node after its downlink latency (sum of one-way hop latencies
  /// from the root down to the node's layer).
  void propagate_policy(double fraction);

  Simulator* sim_;
  TreeNetConfig config_;
  SourceFn source_fn_;

  // links_per_hop_[hop][i]; hop 0 connects sources to layer 1.
  std::vector<std::vector<std::unique_ptr<Link>>> links_;
  std::vector<std::vector<std::unique_ptr<SimNode>>> layers_;
  std::unique_ptr<SimNode> root_;

  core::ThetaStore theta_;
  std::vector<WindowResult> windows_;

  /// One plane per node (distributed state: each node's view of the
  /// policy). planes_[layer][i]; the root's plane is root_plane_.
  std::vector<std::vector<std::shared_ptr<core::ControlPlane>>> planes_;
  std::shared_ptr<core::ControlPlane> root_plane_;
  std::unique_ptr<core::AdaptiveController> controller_;
  std::vector<std::pair<SimTime, double>> fraction_history_;

  // Observability sinks (null unless config.stats is set).
  obs::Histogram* policy_prop_us_{nullptr};
  obs::Counter* policy_publishes_{nullptr};
  obs::Counter* windows_closed_{nullptr};

  std::uint64_t items_generated_{0};
  std::uint64_t items_processed_at_root_{0};
  stats::RunningMoments latency_;
  stats::QuantileSketch latency_sketch_;
  SimTime stop_at_{SimTime::zero()};
  SimTime drain_until_{SimTime::zero()};
};

}  // namespace approxiot::netsim
