// Strong identifier and basic value types shared across all ApproxIoT
// modules. Every subsystem (flowqueue, streams, netsim, core) refers to
// sub-streams, nodes and intervals through these types so that ids from
// different domains cannot be mixed up accidentally.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace approxiot {

/// Tag-dispatched strongly typed integer id. `Tag` is an empty struct that
/// makes e.g. SubStreamId and NodeId distinct, non-convertible types while
/// sharing the implementation.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) noexcept {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) noexcept {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) noexcept {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) noexcept {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_{0};
};

struct SubStreamTag {};
struct NodeTag {};
struct TopicTag {};
struct ConsumerGroupTag {};
struct QueryTag {};
struct WorkerTag {};

/// Identifies a stratum (sub-stream): all items originating from the same
/// logical data source. Stratified sampling keys its reservoirs on this.
using SubStreamId = StrongId<SubStreamTag>;

/// Identifies a node in the logical edge tree (source, edge layer, root).
using NodeId = StrongId<NodeTag>;

/// Identifies a flowqueue topic.
using TopicId = StrongId<TopicTag>;

/// Identifies a flowqueue consumer group.
using ConsumerGroupId = StrongId<ConsumerGroupTag>;

/// Identifies a registered analytics query.
using QueryId = StrongId<QueryTag>;

/// Identifies a parallel sampling worker within a node (§III-E).
using WorkerId = StrongId<WorkerTag>;

/// A single data item flowing through the system. `value` is the numeric
/// payload the analytics queries aggregate over; `source` names the
/// sub-stream (stratum) it belongs to; `created_at_us` is the simulated
/// wall-clock creation time used for end-to-end latency accounting.
struct Item {
  SubStreamId source{};
  double value{0.0};
  std::int64_t created_at_us{0};

  friend bool operator==(const Item& a, const Item& b) noexcept {
    return a.source == b.source && a.value == b.value &&
           a.created_at_us == b.created_at_us;
  }
};

}  // namespace approxiot

namespace std {
template <typename Tag, typename Rep>
struct hash<approxiot::StrongId<Tag, Rep>> {
  size_t operator()(approxiot::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
