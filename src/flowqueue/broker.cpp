#include "flowqueue/broker.hpp"

#include <algorithm>

#include "obs/hooks.hpp"

namespace approxiot::flowqueue {

Status Broker::create_topic(const std::string& name,
                            std::uint32_t partitions) {
  if (name.empty()) return Status::invalid_argument("empty topic name");
  if (partitions == 0) {
    return Status::invalid_argument("topic '" + name +
                                    "' needs at least one partition");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (topics_.count(name) > 0) {
    return Status::already_exists("topic '" + name + "'");
  }
  topics_.emplace(name, std::make_unique<Topic>(name, partitions));
  return Status::ok();
}

Status Broker::ensure_topic(const std::string& name,
                            std::uint32_t partitions) {
  Status s = create_topic(name, partitions);
  if (s.code() == StatusCode::kAlreadyExists) return Status::ok();
  return s;
}

bool Broker::has_topic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return topics_.count(name) > 0;
}

Result<Topic*> Broker::topic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = topics_.find(name);
  if (it == topics_.end()) return Status::not_found("topic '" + name + "'");
  return it->second.get();
}

std::vector<std::string> Broker::topic_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, _] : topics_) names.push_back(name);
  return names;
}

void Broker::rebalance_locked(GroupState& group) {
  group.assignments.clear();
  ++group.generation;
  if (group.members.empty()) return;

  // Collect every partition of every subscribed topic, in deterministic
  // order, then deal them round-robin to members (sorted by name).
  std::vector<TopicPartition> all;
  for (const auto& topic_name : group.topics) {
    auto it = topics_.find(topic_name);
    if (it == topics_.end()) continue;
    for (std::uint32_t p = 0; p < it->second->partition_count(); ++p) {
      all.push_back(TopicPartition{topic_name, p});
    }
  }
  std::vector<std::string> members(group.members.begin(), group.members.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    group.assignments[members[i % members.size()]].push_back(all[i]);
  }
  // Members with no partitions still get an (empty) entry so assignment()
  // succeeds for them.
  for (const auto& m : members) group.assignments.try_emplace(m);
}

Result<std::vector<TopicPartition>> Broker::join_group(
    const std::string& group, const std::string& member,
    const std::vector<std::string>& topics) {
  if (group.empty() || member.empty()) {
    return Status::invalid_argument("group and member names must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& t : topics) {
    if (topics_.count(t) == 0) {
      return Status::not_found("topic '" + t + "'");
    }
  }
  GroupState& state = groups_[group];
  state.members.insert(member);
  // The group's subscription is the union of member subscriptions.
  for (const auto& t : topics) {
    if (std::find(state.topics.begin(), state.topics.end(), t) ==
        state.topics.end()) {
      state.topics.push_back(t);
    }
  }
  rebalance_locked(state);
  return state.assignments.at(member);
}

Status Broker::leave_group(const std::string& group,
                           const std::string& member) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return Status::not_found("group '" + group + "'");
  if (it->second.members.erase(member) == 0) {
    return Status::not_found("member '" + member + "' in group '" + group +
                             "'");
  }
  rebalance_locked(it->second);
  return Status::ok();
}

Result<std::vector<TopicPartition>> Broker::assignment(
    const std::string& group, const std::string& member) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return Status::not_found("group '" + group + "'");
  auto mit = it->second.assignments.find(member);
  if (mit == it->second.assignments.end()) {
    return Status::not_found("member '" + member + "' in group '" + group +
                             "'");
  }
  return mit->second;
}

std::uint64_t Broker::group_generation(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.generation;
}

Status Broker::commit_offset(const std::string& group,
                             const TopicPartition& tp, Offset offset) {
  if (offset < 0) return Status::invalid_argument("negative offset");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return Status::not_found("group '" + group + "'");
  Offset& stored = it->second.committed[tp];
  stored = std::max(stored, offset);
  return Status::ok();
}

void Broker::export_stats(obs::StatsRegistry& registry,
                          const std::string& scope) const {
  AIOT_OBS(
      std::lock_guard<std::mutex> lock(mutex_);
      registry.gauge(scope + "/topics")
          .set(static_cast<double>(topics_.size()));
      for (const auto& [name, topic] : topics_) {
        const std::string base = scope + "/topic/" + name;
        registry.gauge(base + "/records")
            .set(static_cast<double>(topic->record_count()));
        registry.gauge(base + "/bytes")
            .set(static_cast<double>(topic->bytes_appended()));
        registry.gauge(base + "/partitions")
            .set(static_cast<double>(topic->partition_count()));
      }
      for (const auto& [name, group] : groups_) {
        const std::string base = scope + "/group/" + name;
        registry.gauge(base + "/members")
            .set(static_cast<double>(group.members.size()));
        registry.gauge(base + "/generation")
            .set(static_cast<double>(group.generation));
      });
  (void)registry;
  (void)scope;
}

Offset Broker::committed_offset(const std::string& group,
                                const TopicPartition& tp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  auto oit = it->second.committed.find(tp);
  return oit == it->second.committed.end() ? 0 : oit->second;
}

}  // namespace approxiot::flowqueue
