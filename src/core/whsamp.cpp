#include "core/whsamp.hpp"

#include <algorithm>
#include <utility>

namespace approxiot::core {

std::map<SubStreamId, std::vector<Item>> stratify(
    const std::vector<Item>& items) {
  std::map<SubStreamId, std::vector<Item>> strata;
  for (const Item& item : items) {
    strata[item.source].push_back(item);
  }
  return strata;
}

WHSampler::WHSampler(Rng rng, WHSampConfig config)
    : rng_(rng), config_(std::move(config)),
      policy_(sampling::make_allocation_policy(config_.allocation_policy)),
      reservoir_(0, Rng{}, config_.reservoir_algorithm) {}

SampledBundle WHSampler::sample(const std::vector<Item>& items,
                                std::size_t sample_size,
                                const WeightMap& w_in) {
  if (items.empty()) return SampledBundle{};
  // Line 5: stratify into sub-streams (flat counting build, buffers
  // reused across calls).
  scratch_.assign(items);
  return sample_strata(scratch_, sample_size, w_in);
}

SampledBundle WHSampler::sample_strata(const StratifiedBatch& strata,
                                       std::size_t sample_size,
                                       const WeightMap& w_in) {
  SampledBundle out;
  if (strata.item_count() == 0) return out;

  // Line 7: decide each sub-stream's reservoir size N_i. The infos also
  // carry the resolved W^in_i so the merge loop below does not re-query
  // the weight map per stratum. W^in resolves for the whole ascending
  // directory in one merge pass rather than a hash probe per stratum.
  const auto& strata_dir = strata.strata();
  weights_scratch_.resize(strata_dir.size());
  w_in.get_for_strata(strata_dir, weights_scratch_.data());
  infos_.clear();
  infos_.reserve(strata.size());
  for (std::size_t k = 0; k < strata_dir.size(); ++k) {
    const Stratum& s = strata_dir[k];
    infos_.push_back(
        sampling::SubStreamInfo{s.id, s.len, 0.0, weights_scratch_[k]});
  }
  const sampling::SizeMap sizes = policy_->allocate(sample_size, infos_);

  // Lines 8-19: reservoir-sample each sub-stream from its arena span and
  // update its weight. Strata are visited in ascending id order — the
  // same order the legacy map iteration used, so the RNG stream each
  // sub-stream draws from is unchanged.
  const Item* arena = strata.items().data();
  out.sample.reserve_items(std::min(sample_size, strata.item_count()));
  const auto& dir = strata.strata();
  for (std::size_t k = 0; k < dir.size(); ++k) {
    const Stratum& s = dir[k];
    const std::uint64_t c_i = s.len;
    auto size_it = sizes.find(s.id);
    const std::size_t n_i = size_it == sizes.end() ? 0 : size_it->second;

    // Rearm instead of reconstruct: same capacity/RNG/counters as a
    // fresh reservoir, but the heap buffer survives.
    reservoir_.rearm(n_i, rng_.split());
    rng_.jump();  // keep per-stratum streams independent
    reservoir_.offer_span(arena + s.offset, s.len);

    const double w_in_i = infos_[k].weight;
    if (c_i > n_i) {
      // Overflow: each kept item stands for c_i / N_i originals (Eq. 1-2).
      // A zero reservoir keeps nothing, so its weight never reaches Θ; we
      // still record it (weight unchanged) for observability.
      const double w_i = n_i > 0 ? static_cast<double>(c_i) /
                                       static_cast<double>(n_i)
                                 : 1.0;
      out.w_out.set(s.id, w_in_i * w_i);
    } else {
      out.w_out.set(s.id, w_in_i);
    }
    out.sample.append_stratum(s.id, reservoir_.contents());
  }
  return out;
}

}  // namespace approxiot::core
