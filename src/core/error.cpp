#include "core/error.hpp"

#include <cmath>

namespace approxiot::core {

ErrorEstimate estimate_error(
    const std::vector<SubStreamEstimate>& summaries) {
  ErrorEstimate out;

  double total_count = 0.0;
  for (const auto& s : summaries) total_count += s.estimated_count;

  for (const auto& s : summaries) {
    if (s.sampled == 0) continue;
    const double c = s.estimated_count;
    const double zeta = static_cast<double>(s.sampled);
    // Finite-population correction: when every original item survived to
    // the root (c == ζ) the stratum is known exactly. Clamp at 0 against
    // small negative values from floating-point noise in ĉ.
    const double fpc = c > zeta ? (c - zeta) : 0.0;
    const double s2 = s.sample_variance;

    // Eq. 11 term: c (c − ζ) s² / ζ.
    out.sum_variance += c * fpc * s2 / zeta;

    // Eq. 14 term: φ² · s²/ζ · (c − ζ)/c.
    if (total_count > 0.0 && c > 0.0) {
      const double phi = c / total_count;
      out.mean_variance += phi * phi * (s2 / zeta) * (fpc / c);
    }
  }
  return out;
}

ApproxResult approximate_query(const ThetaStore& theta, double confidence) {
  const auto summaries = summarize(theta);

  double total_sum = 0.0;
  double total_count = 0.0;
  std::uint64_t sampled = 0;
  for (const auto& s : summaries) {
    total_sum += s.sum;
    total_count += s.estimated_count;
    sampled += s.sampled;
  }
  const double mean = total_count > 0.0 ? total_sum / total_count : 0.0;

  const ErrorEstimate err = estimate_error(summaries);

  ApproxResult result;
  result.sum = stats::make_interval(total_sum, err.sum_variance, confidence);
  result.mean =
      stats::make_interval(mean, err.mean_variance, confidence);
  result.estimated_count = total_count;
  result.sampled_items = sampled;
  result.policy_epoch_min = theta.min_policy_epoch();
  result.policy_epoch = theta.max_policy_epoch();
  return result;
}

}  // namespace approxiot::core
