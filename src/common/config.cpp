#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace approxiot {

namespace {

std::string trim(const std::string& s) {
  auto begin = std::find_if_not(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
  auto end = std::find_if_not(s.rbegin(), s.rend(), [](unsigned char c) {
               return std::isspace(c) != 0;
             }).base();
  return (begin < end) ? std::string(begin, end) : std::string();
}

Status parse_pair(const std::string& token, Config& out) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::invalid_argument("expected key=value, got '" + token + "'");
  }
  const std::string key = trim(token.substr(0, eq));
  const std::string value = trim(token.substr(eq + 1));
  if (key.empty()) {
    return Status::invalid_argument("empty key in '" + token + "'");
  }
  out.set(key, value);
  return Status::ok();
}

}  // namespace

Result<Config> Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& arg : args) {
    if (Status s = parse_pair(arg, cfg); !s.is_ok()) return s;
  }
  return cfg;
}

Result<Config> Config::from_text(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (Status s = parse_pair(line, cfg); !s.is_ok()) {
      return Status::invalid_argument("line " + std::to_string(lineno) + ": " +
                                      s.message());
    }
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

Result<std::string> Config::get_string(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::not_found("key '" + key + "'");
  return it->second;
}

Result<std::int64_t> Config::get_int(const std::string& key) const {
  auto str = get_string(key);
  if (!str) return str.status();
  const std::string& v = str.value();
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno != 0 || end == v.c_str() || *end != '\0') {
    return Status::invalid_argument("key '" + key + "': '" + v +
                                    "' is not an integer");
  }
  return static_cast<std::int64_t>(parsed);
}

Result<double> Config::get_double(const std::string& key) const {
  auto str = get_string(key);
  if (!str) return str.status();
  const std::string& v = str.value();
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v.c_str(), &end);
  if (errno != 0 || end == v.c_str() || *end != '\0') {
    return Status::invalid_argument("key '" + key + "': '" + v +
                                    "' is not a number");
  }
  return parsed;
}

Result<bool> Config::get_bool(const std::string& key) const {
  auto str = get_string(key);
  if (!str) return str.status();
  std::string v = str.value();
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::invalid_argument("key '" + key + "': '" + str.value() +
                                  "' is not a boolean");
}

std::string Config::get_string_or(const std::string& key,
                                  std::string fallback) const {
  auto r = get_string(key);
  return r ? r.value() : std::move(fallback);
}

std::int64_t Config::get_int_or(const std::string& key,
                                std::int64_t fallback) const {
  auto r = get_int(key);
  return r ? r.value() : fallback;
}

double Config::get_double_or(const std::string& key, double fallback) const {
  auto r = get_double(key);
  return r ? r.value() : fallback;
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  auto r = get_bool(key);
  return r ? r.value() : fallback;
}

}  // namespace approxiot
