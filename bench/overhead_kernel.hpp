// The measured kernel shared by bench_overhead's modes: one node-lane
// processing intervals through the flat data plane (stratify -> WHSamp ->
// forward), instrumented with the same hook density as
// ConcurrentEdgeTree's node loop — a stage-execute span plus exec_us
// histogram, items/intervals counters, and an occupancy gauge per
// interval.
//
// This header is included by exactly two translation units:
//
//   bench_overhead.cpp     hooks compiled in (stats-on / stats-off rows)
//   overhead_nostats.cpp   compiled with -DAPPROXIOT_NO_STATS, so every
//                          AIOT_OBS site expands to nothing
//
// Because the expansions differ per TU, everything that touches a hook
// lives in an anonymous namespace — each TU gets its own private copy and
// no ODR question arises. Only OverheadResult (hook-free, identical in
// both TUs) and the forwarding declaration below have external linkage.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/stratified.hpp"
#include "core/whsamp.hpp"
#include "obs/hooks.hpp"

namespace approxiot::bench {

struct OverheadResult {
  std::uint64_t checksum{0};  // order-sensitive digest of the sampled items
  double seconds{0.0};        // wall time for the whole interval loop
};

/// The APPROXIOT_NO_STATS row, defined in overhead_nostats.cpp.
OverheadResult run_overhead_kernel_nostats(const std::vector<Item>& items,
                                           std::size_t budget,
                                           std::size_t intervals);

namespace {

inline std::uint64_t fold_item(std::uint64_t checksum, const Item& item) {
  std::uint64_t value_bits = 0;
  static_assert(sizeof(value_bits) == sizeof(item.value));
  std::memcpy(&value_bits, &item.value, sizeof(value_bits));
  checksum = checksum * 1099511628211ull + item.source.value();
  checksum = checksum * 1099511628211ull + value_bits;
  checksum = checksum * 1099511628211ull +
             static_cast<std::uint64_t>(item.created_at_us);
  return checksum;
}

/// Runs `intervals` interval steps over the same input batch, exactly the
/// way a tree node's lane does, and digests every sampled item into the
/// checksum. Sampling consumes RNG identically in every mode, so the
/// checksum must be bit-identical whether `stats`/`tracer` are bound,
/// null, or the hooks are compiled out entirely.
[[maybe_unused]] OverheadResult run_overhead_kernel(
    const std::vector<Item>& items, std::size_t budget,
    std::size_t intervals, obs::StatsRegistry* stats, obs::Tracer* tracer) {
  [[maybe_unused]] obs::Counter* items_in = nullptr;
  [[maybe_unused]] obs::Counter* intervals_done = nullptr;
  [[maybe_unused]] obs::Histogram* exec_us = nullptr;
  [[maybe_unused]] obs::Gauge* occupancy = nullptr;
  [[maybe_unused]] obs::TrackId track = obs::ScopedSpan::kNoTrack;
  AIOT_OBS(
      if (stats != nullptr) {
        obs::ScopedStats scope = stats->scope("bench/node0");
        items_in = scope.counter("items_in");
        intervals_done = scope.counter("intervals");
        exec_us = scope.histogram("exec_us");
        occupancy = scope.gauge("occupancy");
      } if (tracer != nullptr) { track = tracer->register_track("bench/node0"); });
  (void)stats;
  (void)tracer;

  core::WHSampler sampler{Rng(20180701)};
  core::StratifiedBatch scratch;
  OverheadResult result;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < intervals; ++k) {
    AIOT_OBS_SPAN(span, tracer, track, "stage-execute");
    [[maybe_unused]] std::chrono::steady_clock::time_point t0{};
    AIOT_OBS(if (exec_us != nullptr) t0 = std::chrono::steady_clock::now(););

    scratch.assign(items);
    core::SampledBundle bundle =
        sampler.sample_strata(scratch, budget, core::WeightMap{});
    core::ItemBundle forwarded = std::move(bundle).to_bundle();
    for (const Item& item : forwarded.items) {
      result.checksum = fold_item(result.checksum, item);
    }

    AIOT_OBS(
        if (exec_us != nullptr) {
          const std::chrono::duration<double, std::micro> d =
              std::chrono::steady_clock::now() - t0;
          exec_us->record(d.count());
          items_in->increment(items.size());
          intervals_done->increment();
          occupancy->set(static_cast<double>(forwarded.items.size()) /
                         static_cast<double>(items.size()));
        });
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.seconds = elapsed.count();
  return result;
}

}  // namespace
}  // namespace approxiot::bench
