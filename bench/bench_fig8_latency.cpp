// Figure 8: end-to-end latency vs sampling fraction, 1 s window.
//
// Sources run at a rate that saturates the datacenter node under native
// execution; sampling sheds load at the edges, so queueing at the root
// shrinks with the fraction. Paper's result: at 10% ApproxIoT is ~6x
// faster than native; SRS behaves similarly.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace approxiot;
using namespace approxiot::bench;

double mean_latency_s(core::EngineKind engine, double fraction) {
  netsim::Simulator sim;
  netsim::TreeNetConfig config =
      testbed_config(engine, fraction, SimTime::from_seconds(1.0));
  // Offered load well above the root's capacity: the native system
  // queues deeply, sampled systems keep up (the paper's saturation
  // setup, where native latency reaches tens of seconds).
  netsim::TreeNetwork net(
      sim, config,
      constant_rate_source(200000.0, config.sources, config.source_tick));
  net.run_for(SimTime::from_seconds(40.0));
  return net.latency_moments().count() > 0 ? net.latency_moments().mean()
                                           : 0.0;
}

}  // namespace

int main() {
  print_header("Figure 8: latency vs sampling fraction (1 s window)",
               "latency falls as the fraction drops; ~6x speedup at 10% vs "
               "native");

  std::vector<int> fractions = paper_fractions();
  fractions.push_back(100);
  print_cols("fraction(%)", fractions);

  const double native = mean_latency_s(core::EngineKind::kNative, 1.0);
  {
    std::vector<double> row(fractions.size(), native);
    print_row("native latency (s)", row, "%12.2f");
  }

  for (core::EngineKind engine :
       {core::EngineKind::kApproxIoT, core::EngineKind::kSrs}) {
    std::vector<double> row, speedup;
    for (int f : fractions) {
      const double latency = mean_latency_s(engine, f / 100.0);
      row.push_back(latency);
      speedup.push_back(latency > 0.0 ? native / latency : 0.0);
    }
    print_row(std::string(core::engine_kind_name(engine)) + " latency (s)",
              row, "%12.2f");
    print_row("  speedup vs native", speedup, "%12.2f");
  }
  return 0;
}
