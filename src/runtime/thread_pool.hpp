// ThreadPool: the runtime's worker substrate.
//
// Each worker owns a WorkerContext with a deterministic Rng: worker i's
// generator is the pool seed jumped i times (non-overlapping 2^128-step
// sub-sequences of one logical stream). Sampling tasks therefore stay
// reproducible run-to-run as long as the *assignment* of tasks to
// workers is deterministic — which the ConcurrentEdgeTree guarantees by
// pinning one long-running node loop per worker, and which
// core::PooledSamplingExecutor sidesteps entirely by carrying each
// shard's RNG in the closure instead of the worker. wait_idle() gives
// callers an interval barrier when they need one without tearing the
// pool down.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "runtime/bounded_channel.hpp"

namespace approxiot::runtime {

/// Per-worker state handed to every task the worker runs.
struct WorkerContext {
  WorkerId id{};
  Rng rng;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). `seed` roots every worker's
  /// RNG stream; two pools with equal seeds and equal task assignment
  /// produce identical random sequences.
  explicit ThreadPool(std::size_t threads,
                      std::uint64_t seed = 0x5eed5eedULL);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued tasks, then joins every worker.
  ~ThreadPool();

  /// Enqueues a task; blocks if the task queue is full (backpressure).
  /// Returns false once shutdown() has been called.
  bool submit(std::function<void(WorkerContext&)> task);

  /// Convenience overload for tasks that ignore the worker context.
  bool submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight.
  void wait_idle();

  /// Stops accepting tasks, finishes queued ones, joins the workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::uint64_t tasks_completed() const {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    return completed_;
  }
  /// Tasks whose exception was caught (counted in tasks_completed too).
  [[nodiscard]] std::uint64_t tasks_failed() const {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    return failed_;
  }

 private:
  void worker_loop(WorkerContext context);

  BoundedChannel<std::function<void(WorkerContext&)>> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::uint64_t submitted_{0};
  std::uint64_t completed_{0};
  std::uint64_t failed_{0};
  bool shut_down_{false};
};

}  // namespace approxiot::runtime
