// Vectorized, cache-conscious hot-path kernels behind runtime CPU
// dispatch (the ROADMAP "SIMD + cache-conscious sampling kernels" item).
//
// Every kernel here is a drop-in replacement for a scalar loop that
// still lives, verbatim, at its original call site — StratifiedBatch's
// counting build, ReservoirSampler's full-reservoir span loops, the wire
// item encoder. The scalar code is the ORACLE: kernels must produce
// bit-identical output (same arena permutation, same RNG consumption
// draw for draw, same wire bytes), which the property tests in
// tests/core/kernels_test.cpp assert across tiers, span lengths and
// stratum shapes. Tier selection never changes results, only speed.
//
// Dispatch tiers, picked once per process (highest supported wins):
//
//   kScalar   the oracle loops themselves; the only tier when the build
//             sets -DAPPROXIOT_SIMD=OFF or the target is not x86-64.
//   kSse42    cache-conscious scalar: software-prefetched scatter,
//             16-byte copies, block-drawn RNG rings.
//   kAvx2     + the counting pass hashes ids 4 at a time (mix64 with
//             synthesized 64-bit multiplies; AVX2 has no vpmullq).
//   kAvx512   + the counting pass drops hashing entirely for intervals
//             with <= kMaxInlineStrata sub-streams: ids compare against
//             the known-id list with 8-wide vpcmpeqq.
//
// `APPROXIOT_SIMD_TIER=scalar|sse42|avx2|avx512` caps the detected tier
// at startup; force_tier() does the same at runtime (tests/bench).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace approxiot::obs {
class StatsRegistry;
}

namespace approxiot::core::kernels {

enum class Tier : int { kScalar = 0, kSse42 = 1, kAvx2 = 2, kAvx512 = 3 };

[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// Best tier this build + CPU + APPROXIOT_SIMD_TIER cap supports.
/// Detected once; constant for the process lifetime.
[[nodiscard]] Tier detected_tier() noexcept;

/// Tier the dispatching call sites use right now (detected unless
/// forced lower).
[[nodiscard]] Tier active_tier() noexcept;

/// Caps the active tier at `tier` (clamped to detected — a tier the CPU
/// lacks cannot be forced on). Returns the tier actually in force.
/// For tests and benches; safe to call while samplers run.
Tier force_tier(Tier tier) noexcept;

/// The AVX-512 counting pass keeps the known-id list in registers; past
/// this many distinct sub-streams in one interval it falls back to the
/// hash-probe pass (identical output, slot numbering included).
inline constexpr std::size_t kMaxInlineStrata = 64;

/// Worst-case wire bytes per item: 10 (varint id) + 8 (double) + 8
/// (fixed64 timestamp). Sizes the encoder's bulk reservation.
inline constexpr std::size_t kMaxItemWireBytes = 26;

/// Borrowed view of StratifyScratch's counting buffers. The kernel owns
/// the pass: it may clear/append ids and counts and regrow the
/// open-addressing index (entries are slot+1, 0 = empty, power-of-two
/// size), but must leave slot_ids in first-seen order with slot_counts
/// aligned — exactly the oracle's contract.
struct CountScratch {
  std::vector<SubStreamId>* slot_ids;
  std::vector<std::size_t>* slot_counts;
  std::vector<std::uint32_t>* slot_index;
};

/// Counting pass of the stable stratification build: records each
/// item's dense first-seen slot in `item_slots` and the per-slot counts.
/// Expects slot_ids/slot_counts cleared and slot_index zeroed (>= 16
/// slots); grows the index itself past half load.
void count_pass(Tier tier, const Item* data, std::size_t n, CountScratch s,
                std::uint32_t* item_slots);

/// Scatter pass: stable permutation of `data` into `arena` through the
/// per-slot write cursors (cursors[slot] pre-seeded with each stratum's
/// arena offset; advanced past-the-end on return, as the oracle leaves
/// them).
void scatter_pass(Tier tier, const Item* data, std::size_t n,
                  const std::uint32_t* item_slots, std::size_t* cursors,
                  Item* arena);

/// Algorithm R over a full reservoir: bit-identical to
///   for each item: j = rng.next_below(++seen); if (j < capacity)
///   reservoir[j] = item;
/// but the raw RNG words are drawn in blocks into a small ring (the
/// ring IS the stream, so Lemire rejection retries simply consume the
/// following entries) and the store is branchless via a dummy sink.
void algo_r_full(Tier tier, Item* reservoir, std::size_t capacity,
                 const Item* data, std::size_t n, std::uint64_t& seen,
                 Rng& rng);

/// Algorithm L over a full reservoir: bit-identical to the scalar
/// skip-consuming span loop, but (victim, position) acceptance decisions
/// are precomputed in small blocks — only draws the scalar path would
/// make within this span are taken, so RNG state matches at every exit.
void algo_l_full(Tier tier, Item* reservoir, std::size_t capacity,
                 const Item* data, std::size_t n, std::uint64_t& seen,
                 double& w, std::uint64_t& skip, Rng& rng);

/// Bulk wire encoding of items (varint source id, double value, fixed64
/// timestamp — byte-identical to Encoder::put_varint/put_double/
/// put_fixed64 per item). Writes at most kMaxItemWireBytes * n bytes
/// into `out`; returns the bytes actually written.
std::size_t encode_items(Tier tier, std::uint8_t* out, const Item* items,
                         std::size_t n);

/// Binds the kernels' observability to `registry` (pass nullptr to
/// unbind): a gauge for the active tier plus per-kernel item counters
/// under core/kernels/. Safe to rebind while samplers run; counters are
/// shared process-wide like the dispatch tier itself.
void bind_stats(obs::StatsRegistry* registry);

}  // namespace approxiot::core::kernels
