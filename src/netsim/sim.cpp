#include "netsim/sim.hpp"

#include <algorithm>
#include <utility>

namespace approxiot::netsim {

void Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  Event e;
  e.at = std::max(at, now_);
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  queue_.push(std::move(e));
}

void Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // priority_queue::top() is const; move out via const_cast is UB, so
    // copy the function handle (cheap relative to event work).
    Event e = queue_.top();
    queue_.pop();
    now_ = e.at;
    e.fn();
    ++count;
    ++executed_;
  }
  now_ = std::max(now_, until);
  return count;
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.at;
    e.fn();
    ++count;
    ++executed_;
  }
  return count;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace approxiot::netsim
