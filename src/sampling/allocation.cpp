#include "sampling/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace approxiot::sampling {

namespace {

/// Shares out `total_budget` proportionally to `scores` (largest-remainder
/// method), guaranteeing one slot per stream when the budget allows.
SizeMap proportional_split(std::size_t total_budget,
                           const std::vector<SubStreamInfo>& streams,
                           const std::vector<double>& scores) {
  SizeMap out;
  if (streams.empty()) return out;

  const std::size_t k = streams.size();
  if (total_budget <= k) {
    // Degenerate budget: give everything one slot until it runs out,
    // lowest ids first (deterministic).
    std::vector<std::size_t> order(k);
    for (std::size_t i = 0; i < k; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return streams[a].id < streams[b].id;
    });
    for (std::size_t i = 0; i < k; ++i) {
      out[streams[order[i]].id] = i < total_budget ? 1 : 0;
    }
    return out;
  }

  double score_sum = 0.0;
  for (double s : scores) score_sum += s;

  // Reserve one guaranteed slot per stream, then split the rest by score.
  const std::size_t spare = total_budget - k;
  std::vector<double> fractional(k, 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double share =
        score_sum > 0.0
            ? static_cast<double>(spare) * (scores[i] / score_sum)
            : static_cast<double>(spare) / static_cast<double>(k);
    const auto whole = static_cast<std::size_t>(share);
    out[streams[i].id] = 1 + whole;
    fractional[i] = share - static_cast<double>(whole);
    assigned += 1 + whole;
  }

  // Deal leftover slots to the largest fractional remainders.
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (fractional[a] != fractional[b]) return fractional[a] > fractional[b];
    return streams[a].id < streams[b].id;
  });
  for (std::size_t i = 0; assigned < total_budget && i < k; ++i, ++assigned) {
    ++out[streams[order[i]].id];
  }
  return out;
}

}  // namespace

SizeMap EqualAllocation::allocate(
    std::size_t total_budget,
    const std::vector<SubStreamInfo>& streams) const {
  std::vector<double> scores(streams.size(), 1.0);
  return proportional_split(total_budget, streams, scores);
}

SizeMap ProportionalAllocation::allocate(
    std::size_t total_budget,
    const std::vector<SubStreamInfo>& streams) const {
  std::vector<double> scores;
  scores.reserve(streams.size());
  for (const auto& s : streams) {
    scores.push_back(static_cast<double>(s.count));
  }
  return proportional_split(total_budget, streams, scores);
}

SizeMap NeymanAllocation::allocate(
    std::size_t total_budget,
    const std::vector<SubStreamInfo>& streams) const {
  std::vector<double> scores;
  scores.reserve(streams.size());
  for (const auto& s : streams) {
    scores.push_back(static_cast<double>(s.count) *
                     std::max(s.value_stddev, 1e-12));
  }
  return proportional_split(total_budget, streams, scores);
}

std::unique_ptr<AllocationPolicy> make_allocation_policy(
    const std::string& name) {
  if (name == "equal") return std::make_unique<EqualAllocation>();
  if (name == "proportional") return std::make_unique<ProportionalAllocation>();
  if (name == "neyman") return std::make_unique<NeymanAllocation>();
  throw std::invalid_argument("unknown allocation policy '" + name + "'");
}

}  // namespace approxiot::sampling
