// AVX-512-tier counting pass (compiled with -mavx512f/dq/vl/bw; empty
// without SIMD support): for intervals with at most kMaxInlineStrata
// distinct sub-streams — every real deployment; the directory IS the
// stratum list — hashing disappears entirely. Ids load 8 per block via
// two cross-register permutes (cheaper than a hardware gather) and
// compare against the known-id list held broadcast in registers, with
// matches resolving through independent OR-accumulators (slot+1
// encoding, 0 = miss) so the compare chain has no serial blend
// dependency. Misses append to the list scalar-side (first-seen order,
// same dense numbering as the oracle) and the broadcast set refreshes.
// Past 64 distinct ids the pass restarts on the hash-probe fallback,
// output-identical.
#include "core/kernels/kernels_impl.hpp"

#if AIOT_KERNELS_X86

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace approxiot::core::kernels::detail {

namespace {

/// Slot+1 for `key` in list[0..live), appending on miss; 0 when full.
inline std::uint64_t list_slot_or_append(std::uint64_t* list,
                                         std::size_t& live,
                                         std::uint64_t key) noexcept {
  std::size_t slot = 0;
  while (slot < live && list[slot] != key) ++slot;
  if (slot == live) {
    if (live == kMaxInlineStrata) return 0;
    list[live++] = key;
  }
  return slot + 1;
}

/// The eight source ids of items [i, i+8): Item is 24 bytes with source
/// first, so the block is 24 quadwords with ids at 0,3,...,21. Two
/// vpermt2q steps pull them into one vector — far cheaper than a
/// vpgatherqq of eight strided loads.
inline __m512i load_keys8(const Item* p) noexcept {
  const __m512i z0 = _mm512_loadu_si512(p);                    // qw 0..7
  const __m512i z1 = _mm512_loadu_si512(
      reinterpret_cast<const std::uint64_t*>(p) + 8);          // qw 8..15
  const __m512i z2 = _mm512_loadu_si512(
      reinterpret_cast<const std::uint64_t*>(p) + 16);         // qw 16..23
  // Lanes 0..5 <- qwords 0,3,6,9,12,15 of z0:z1; lanes 6,7 patched from
  // z2 (qwords 18, 21 == z2 lanes 2, 5) in the second permute.
  const __m512i idx_a = _mm512_setr_epi64(0, 3, 6, 9, 12, 15, 0, 0);
  const __m512i idx_b = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 8 + 2, 8 + 5);
  const __m512i lo = _mm512_permutex2var_epi64(z0, idx_a, z1);
  return _mm512_permutex2var_epi64(lo, idx_b, z2);
}

}  // namespace

void count_pass_avx512(const Item* data, std::size_t n, CountScratch s,
                       std::uint32_t* item_slots) {
  alignas(64) std::uint64_t list[kMaxInlineStrata];
  std::size_t counts[kMaxInlineStrata] = {};
  std::size_t live = 0;

  // The broadcast cache: bl[t] holds set1(list[t]) for the live prefix.
  // Rebuilt only when the list grows — in steady state (every id seen in
  // the first blocks) the whole match loop runs register-resident.
  __m512i bl[kMaxInlineStrata];

  std::size_t i = 0;

  // Narrow stretch: while every known id fits 32 bits — IoT source ids
  // in practice — the match loop compares sixteen lanes per vector
  // instead of eight, halving the port-5 compare traffic. A per-block
  // range mask keeps it exact: any incoming wide id (which could alias
  // a narrow list entry after truncation) or any wide-id append drops
  // the pass to the 64-bit loop below, same dense numbering either way.
  bool leave_narrow = false;
  while (i + 16 <= n && !leave_narrow) {
    bool all_narrow = true;
    for (std::size_t t = 0; t < live; ++t) {
      all_narrow = all_narrow && list[t] <= 0xFFFFFFFFull;
    }
    if (!all_narrow) break;
    __m512i bl32[kMaxInlineStrata];
    for (std::size_t t = 0; t < live; ++t) {
      bl32[t] = _mm512_set1_epi32(static_cast<int>(list[t]));
    }
    const std::size_t live_at_build = live;
    const __m512i max32 = _mm512_set1_epi64(0xFFFFFFFFll);
    bool grew = false;
    for (; i + 16 <= n && !grew; i += 16) {
      const __m512i keys_a = load_keys8(data + i);
      const __m512i keys_b = load_keys8(data + i + 8);
      const __mmask8 wide =
          _mm512_cmpgt_epu64_mask(keys_a, max32) |
          _mm512_cmpgt_epu64_mask(keys_b, max32);
      if (__builtin_expect(wide != 0, 0)) {
        // Wide incoming id: its truncation could alias a narrow list
        // entry, so this and later blocks go through the 64-bit loop.
        leave_narrow = true;
        break;
      }
      const __m256i na = _mm512_cvtepi64_epi32(keys_a);
      const __m256i nb = _mm512_cvtepi64_epi32(keys_b);
      const __m512i k32 =
          _mm512_inserti64x4(_mm512_castsi256_si512(na), nb, 1);
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      std::size_t t = 0;
      for (; t + 4 <= live_at_build; t += 4) {
        acc0 = _mm512_mask_mov_epi32(
            acc0, _mm512_cmpeq_epi32_mask(k32, bl32[t]),
            _mm512_set1_epi32(static_cast<int>(t + 1)));
        acc1 = _mm512_mask_mov_epi32(
            acc1, _mm512_cmpeq_epi32_mask(k32, bl32[t + 1]),
            _mm512_set1_epi32(static_cast<int>(t + 2)));
        acc2 = _mm512_mask_mov_epi32(
            acc2, _mm512_cmpeq_epi32_mask(k32, bl32[t + 2]),
            _mm512_set1_epi32(static_cast<int>(t + 3)));
        acc3 = _mm512_mask_mov_epi32(
            acc3, _mm512_cmpeq_epi32_mask(k32, bl32[t + 3]),
            _mm512_set1_epi32(static_cast<int>(t + 4)));
      }
      for (; t < live_at_build; ++t) {
        acc0 = _mm512_mask_mov_epi32(
            acc0, _mm512_cmpeq_epi32_mask(k32, bl32[t]),
            _mm512_set1_epi32(static_cast<int>(t + 1)));
      }
      const __m512i slots1 = _mm512_or_si512(_mm512_or_si512(acc0, acc1),
                                             _mm512_or_si512(acc2, acc3));
      const __mmask16 miss =
          _mm512_cmpeq_epi32_mask(slots1, _mm512_setzero_si512());
      if (__builtin_expect(miss == 0, 1)) {
        _mm512_storeu_si512(item_slots + i,
                            _mm512_sub_epi32(slots1, _mm512_set1_epi32(1)));
        for (std::size_t k = 0; k < 16; ++k) ++counts[item_slots[i + k]];
        continue;
      }
      // A lane missed: re-resolve the block scalar-side (appends keep
      // first-seen order), then rebuild the narrow broadcasts.
      for (std::size_t k = 0; k < 16; ++k) {
        const std::uint64_t slot1 = list_slot_or_append(
            list, live, data[i + k].source.value());
        if (slot1 == 0) {
          s.slot_ids->clear();
          s.slot_counts->clear();
          std::fill(s.slot_index->begin(), s.slot_index->end(), 0);
          count_pass_hash(data, n, s, item_slots);
          return;
        }
        ++counts[slot1 - 1];
        item_slots[i + k] = static_cast<std::uint32_t>(slot1 - 1);
      }
      grew = true;
    }
  }

  while (i + 8 <= n) {
    for (std::size_t t = 0; t < live; ++t) {
      bl[t] = _mm512_set1_epi64(static_cast<long long>(list[t]));
    }
    const std::size_t live_at_build = live;
    for (; i + 8 <= n; i += 8) {
      const __m512i keys = load_keys8(data + i);
      // Four independent accumulators hide the compare latency; at most
      // one list entry matches a lane, so OR composes the slot+1 values.
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      std::size_t t = 0;
      for (; t + 4 <= live_at_build; t += 4) {
        acc0 = _mm512_mask_mov_epi64(
            acc0, _mm512_cmpeq_epi64_mask(keys, bl[t]),
            _mm512_set1_epi64(static_cast<long long>(t + 1)));
        acc1 = _mm512_mask_mov_epi64(
            acc1, _mm512_cmpeq_epi64_mask(keys, bl[t + 1]),
            _mm512_set1_epi64(static_cast<long long>(t + 2)));
        acc2 = _mm512_mask_mov_epi64(
            acc2, _mm512_cmpeq_epi64_mask(keys, bl[t + 2]),
            _mm512_set1_epi64(static_cast<long long>(t + 3)));
        acc3 = _mm512_mask_mov_epi64(
            acc3, _mm512_cmpeq_epi64_mask(keys, bl[t + 3]),
            _mm512_set1_epi64(static_cast<long long>(t + 4)));
      }
      for (; t < live_at_build; ++t) {
        acc0 = _mm512_mask_mov_epi64(
            acc0, _mm512_cmpeq_epi64_mask(keys, bl[t]),
            _mm512_set1_epi64(static_cast<long long>(t + 1)));
      }
      const __m512i slots1 = _mm512_or_si512(_mm512_or_si512(acc0, acc1),
                                             _mm512_or_si512(acc2, acc3));
      const __mmask8 miss =
          _mm512_cmpeq_epi64_mask(slots1, _mm512_setzero_si512());
      if (__builtin_expect(miss == 0, 1)) {
        // All eight lanes hit: narrow slot+1 to 32 bits, subtract one,
        // and store the block's slots with a single write; counts bump
        // from the freshly-stored (L1-resident) slot array.
        const __m256i s32 = _mm512_cvtepi64_epi32(slots1);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(item_slots + i),
            _mm256_sub_epi32(s32, _mm256_set1_epi32(1)));
        for (std::size_t k = 0; k < 8; ++k) ++counts[item_slots[i + k]];
        continue;
      }
      // Some lane missed the pre-block list: either a genuinely new id
      // or one another lane of this block just appended — re-resolve
      // every lane against the live list, then rebuild the broadcasts.
      for (std::size_t k = 0; k < 8; ++k) {
        const std::uint64_t slot1 = list_slot_or_append(
            list, live, data[i + k].source.value());
        if (slot1 == 0) {
          // 65th distinct sub-stream: restart the whole pass on the
          // hash path (double work, but an interval this wide is
          // outside every workload the directory is sized for).
          s.slot_ids->clear();
          s.slot_counts->clear();
          std::fill(s.slot_index->begin(), s.slot_index->end(), 0);
          count_pass_hash(data, n, s, item_slots);
          return;
        }
        ++counts[slot1 - 1];
        item_slots[i + k] = static_cast<std::uint32_t>(slot1 - 1);
      }
      i += 8;
      break;  // refresh bl[] for the grown list
    }
  }
  for (; i < n; ++i) {
    const std::uint64_t slot1 =
        list_slot_or_append(list, live, data[i].source.value());
    if (slot1 == 0) {
      s.slot_ids->clear();
      s.slot_counts->clear();
      std::fill(s.slot_index->begin(), s.slot_index->end(), 0);
      count_pass_hash(data, n, s, item_slots);
      return;
    }
    ++counts[slot1 - 1];
    item_slots[i] = static_cast<std::uint32_t>(slot1 - 1);
  }

  s.slot_ids->reserve(live);
  s.slot_counts->reserve(live);
  for (std::size_t k = 0; k < live; ++k) {
    s.slot_ids->push_back(SubStreamId{list[k]});
    s.slot_counts->push_back(counts[k]);
  }
}

}  // namespace approxiot::core::kernels::detail

#endif  // AIOT_KERNELS_X86
