// Low-level Processor API, modelled on Kafka Streams' Processor API —
// the interface the original ApproxIoT prototype implements its sampling
// module against (§IV-B: "we implemented the algorithm in a user-defined
// processor using the Low-Level API").
//
// A Processor receives records one at a time via process(); it may hold
// state and emit records downstream through its ProcessorContext, either
// inline or later from a punctuation callback. Punctuations fire on
// *stream time* (the max record timestamp seen), which is how the
// interval/window machinery advances deterministically in simulation.
#pragma once

#include <memory>
#include <string>

#include "common/time.hpp"
#include "flowqueue/record.hpp"

namespace approxiot::streams {

class ProcessorContext {
 public:
  virtual ~ProcessorContext() = default;

  /// Sends a record to every downstream child of this node.
  virtual void forward(flowqueue::Record record) = 0;

  /// Requests a punctuate() callback every `interval` of stream time.
  virtual void schedule(SimTime interval) = 0;

  /// Current stream time (max record timestamp observed by the driver).
  [[nodiscard]] virtual SimTime stream_time() const = 0;

  /// Name of the topology node this processor is mounted at.
  [[nodiscard]] virtual const std::string& node_name() const = 0;
};

class Processor {
 public:
  virtual ~Processor() = default;

  /// Called once before any records; keep a pointer to the context.
  virtual void init(ProcessorContext& context) = 0;

  /// Called per record, in partition order per source.
  virtual void process(const flowqueue::Record& record) = 0;

  /// Called when scheduled stream-time punctuation fires. `now` is the
  /// punctuation boundary (multiple of the scheduled interval).
  virtual void punctuate(SimTime now) { (void)now; }

  /// Called once at shutdown; flush any buffered output here.
  virtual void close() {}
};

using ProcessorFactory = std::unique_ptr<Processor> (*)();

}  // namespace approxiot::streams
