#include "core/wire.hpp"

#include <gtest/gtest.h>

namespace approxiot::core {
namespace {

ItemBundle sample_bundle() {
  ItemBundle bundle;
  bundle.w_in.set(SubStreamId{1}, 1.5);
  bundle.w_in.set(SubStreamId{2}, 40.0);
  bundle.items.push_back(Item{SubStreamId{1}, 3.25, 1000});
  bundle.items.push_back(Item{SubStreamId{2}, -7.0, 2000});
  bundle.items.push_back(Item{SubStreamId{1}, 0.0, 0});
  return bundle;
}

TEST(WireTest, RoundTripPreservesEverything) {
  const ItemBundle original = sample_bundle();
  auto decoded = decode_bundle(encode_bundle(original));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().w_in == original.w_in);
  ASSERT_EQ(decoded.value().items.size(), original.items.size());
  for (std::size_t i = 0; i < original.items.size(); ++i) {
    EXPECT_EQ(decoded.value().items[i], original.items[i]) << i;
  }
}

TEST(WireTest, EmptyBundleRoundTrips) {
  ItemBundle empty;
  auto decoded = decode_bundle(encode_bundle(empty));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().items.empty());
  EXPECT_TRUE(decoded.value().w_in.empty());
}

TEST(WireTest, SampledBundleEncodesViaFlatten) {
  SampledBundle sampled;
  sampled.w_out.set(SubStreamId{1}, 2.0);
  sampled.sample[SubStreamId{1}] = {Item{SubStreamId{1}, 5.0, 42}};
  auto decoded = decode_bundle(encode_bundle(sampled));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_DOUBLE_EQ(decoded.value().w_in.get(SubStreamId{1}), 2.0);
  ASSERT_EQ(decoded.value().items.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.value().items[0].value, 5.0);
}

TEST(WireTest, PolicyEpochRoundTrips) {
  ItemBundle bundle = sample_bundle();
  bundle.policy_epoch = 12345;
  auto decoded = decode_bundle(encode_bundle(bundle));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().policy_epoch, 12345u);
  ASSERT_EQ(decoded.value().items.size(), bundle.items.size());

  SampledBundle sampled;
  sampled.policy_epoch = 9;
  sampled.w_out.set(SubStreamId{1}, 2.0);
  sampled.sample[SubStreamId{1}] = {Item{SubStreamId{1}, 5.0, 42}};
  auto via_sampled = decode_bundle(encode_bundle(sampled));
  ASSERT_TRUE(via_sampled.is_ok());
  EXPECT_EQ(via_sampled.value().policy_epoch, 9u);
}

TEST(WireTest, EpochZeroKeepsLegacyV1Bytes) {
  // A runtime that never publishes a policy must emit byte-identical
  // payloads to the pre-control-plane wire format: version byte 0x01 and
  // no epoch field.
  ItemBundle bundle = sample_bundle();
  ASSERT_EQ(bundle.policy_epoch, 0u);
  const auto bytes = encode_bundle(bundle);
  EXPECT_EQ(bytes[2], 0x01);  // magic is varint 0xA7 (2 bytes), then version

  ItemBundle epoch_bundle = sample_bundle();
  epoch_bundle.policy_epoch = 1;
  const auto v2 = encode_bundle(epoch_bundle);
  EXPECT_EQ(v2[2], 0x02);
  EXPECT_EQ(v2.size(), bytes.size() + 1);  // one varint epoch byte more
  auto decoded = decode_bundle(v2);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().policy_epoch, 1u);
}

TEST(WireTest, RejectsBadMagic) {
  auto bytes = encode_bundle(sample_bundle());
  bytes[0] = 0x00;
  EXPECT_FALSE(decode_bundle(bytes).is_ok());
}

TEST(WireTest, RejectsBadVersion) {
  auto bytes = encode_bundle(sample_bundle());
  // magic is varint 0xA7 (2 bytes: 0xa7 0x01); version follows.
  bytes[2] = 0x63;
  EXPECT_FALSE(decode_bundle(bytes).is_ok());
}

TEST(WireTest, RejectsTruncation) {
  auto bytes = encode_bundle(sample_bundle());
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{3}}) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_bundle(truncated).is_ok()) << "cut=" << cut;
  }
}

TEST(WireTest, RejectsTrailingGarbage) {
  auto bytes = encode_bundle(sample_bundle());
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode_bundle(bytes).is_ok());
}

TEST(WireTest, RejectsEmptyPayload) {
  EXPECT_FALSE(decode_bundle({}).is_ok());
}

TEST(WireTest, SizeScalesWithItems) {
  ItemBundle small, large;
  for (int i = 0; i < 2; ++i) {
    small.items.push_back(Item{SubStreamId{1}, 1.0, 0});
  }
  for (int i = 0; i < 200; ++i) {
    large.items.push_back(Item{SubStreamId{1}, 1.0, 0});
  }
  EXPECT_GT(encode_bundle(large).size(), encode_bundle(small).size() * 50);
}

}  // namespace
}  // namespace approxiot::core
