// Cross-substrate integration: the accuracy invariants must hold when the
// pipeline runs under netsim's full transport model (links, queueing,
// interval ticks) — not only in the in-memory EdgeTree path.
#include <gtest/gtest.h>

#include "netsim/tree.hpp"

namespace approxiot::netsim {
namespace {

TreeNetConfig fast_config(core::EngineKind engine, double fraction) {
  TreeNetConfig config;
  config.engine = engine;
  config.sampling_fraction = fraction;
  config.sources = 4;
  config.layer_widths = {2, 1};
  config.hop_rtts = {SimTime::from_millis(20), SimTime::from_millis(40),
                     SimTime::from_millis(80)};
  config.interval = SimTime::from_millis(500);
  config.source_tick = SimTime::from_millis(100);
  config.edge_service_rate = 1e6;
  config.root_service_rate = 1e6;
  config.rng_seed = 11;
  return config;
}

/// Four sub-streams with distinct constant values so the exact SUM is
/// known: stream s emits items of value s at 100 items per tick.
SourceFn valued_source() {
  return [](std::size_t source, SimTime now) {
    std::vector<Item> items;
    items.reserve(100);
    for (int i = 0; i < 100; ++i) {
      items.push_back(Item{SubStreamId{source + 1},
                           static_cast<double>(source + 1), now.us});
    }
    return items;
  };
}

TEST(NetsimAccuracyTest, ApproxSumTracksGeneratedVolume) {
  Simulator sim;
  TreeNetwork net(sim, fast_config(core::EngineKind::kApproxIoT, 0.2),
                  valued_source());
  net.run_for(SimTime::from_seconds(10.0));
  net.drain();

  // Exact total: each generated item of stream s contributes s.
  // Sources emit equally, so SUM = items_generated * mean(1,2,3,4).
  const double exact =
      static_cast<double>(net.items_generated()) * (1 + 2 + 3 + 4) / 4.0;
  double approx = 0.0;
  std::uint64_t sampled = 0;
  for (const auto& w : net.windows()) {
    approx += w.result.sum.point;
    sampled += w.result.sampled_items;
  }
  // Items still in flight at the drain deadline are lost to the query —
  // keep the tolerance wide enough for that tail plus sampling noise.
  EXPECT_NEAR(approx / exact, 1.0, 0.05);
  // And it really was sampling, not native delivery.
  EXPECT_LT(sampled, net.items_generated() / 2);
}

TEST(NetsimAccuracyTest, CountInvariantSurvivesTheTransport) {
  Simulator sim;
  TreeNetwork net(sim, fast_config(core::EngineKind::kApproxIoT, 0.25),
                  valued_source());
  net.run_for(SimTime::from_seconds(10.0));
  net.drain();

  double estimated_count = 0.0;
  for (const auto& w : net.windows()) {
    estimated_count += w.result.estimated_count;
  }
  // The window estimates reconstruct (approximately — trailing in-flight
  // items are cut off) the number of generated items.
  EXPECT_NEAR(estimated_count / static_cast<double>(net.items_generated()),
              1.0, 0.05);
}

TEST(NetsimAccuracyTest, ErrorBoundsCoverMostWindows) {
  Simulator sim;
  TreeNetwork net(sim, fast_config(core::EngineKind::kApproxIoT, 0.2),
                  valued_source());
  net.run_for(SimTime::from_seconds(12.0));
  net.drain();

  // Per-window exact sum: the generated rate is constant, so each full
  // window's exact sum equals rate * window * mean value. Check the
  // reported 95% intervals cover that for most interior windows.
  const double per_window_exact =
      4.0 * 100.0 * 5.0 * (1 + 2 + 3 + 4) / 4.0;  // sources*items*ticks*mean
  ASSERT_GT(net.windows().size(), 4u);
  int covered = 0, interior = 0;
  for (std::size_t i = 2; i + 2 < net.windows().size(); ++i) {
    ++interior;
    if (net.windows()[i].result.sum.covers(per_window_exact)) ++covered;
  }
  ASSERT_GT(interior, 0);
  EXPECT_GE(static_cast<double>(covered) / interior, 0.6);
}

TEST(NetsimAccuracyTest, SrsAndApproxAgreeOnUniformStreams) {
  // On uniform per-stream values both systems are unbiased; their
  // multi-window totals should agree within a few percent.
  Simulator sim_a, sim_b;
  TreeNetwork whs(sim_a, fast_config(core::EngineKind::kApproxIoT, 0.3),
                  valued_source());
  TreeNetwork srs(sim_b, fast_config(core::EngineKind::kSrs, 0.3),
                  valued_source());
  whs.run_for(SimTime::from_seconds(8.0));
  srs.run_for(SimTime::from_seconds(8.0));
  whs.drain();
  srs.drain();

  auto total = [](const TreeNetwork& net) {
    double sum = 0.0;
    for (const auto& w : net.windows()) sum += w.result.sum.point;
    return sum;
  };
  EXPECT_NEAR(total(whs) / total(srs), 1.0, 0.05);
}

}  // namespace
}  // namespace approxiot::netsim
