#include "runtime/job_scheduler.hpp"

#include <stdexcept>
#include <utility>

#include "obs/hooks.hpp"

namespace approxiot::runtime {

namespace {

/// Which worker (of which scheduler) the current thread is. Lets
/// enqueue() route a wake raised from a task body onto that worker's own
/// deque — the LIFO fast path — while wakes from foreign threads (the
/// interval scheduler, push_interval callers) take the injection queue.
struct WorkerIdentity {
  const void* scheduler{nullptr};
  std::size_t index{0};
};
thread_local WorkerIdentity tl_worker;

}  // namespace

JobScheduler::JobScheduler(Options options) : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  worker_queues_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    worker_queues_.push_back(std::make_unique<WorkerQueue>());
    AIOT_OBS(
        WorkerQueue& wq = *worker_queues_.back();
        const std::string scope = options_.scope + "/w" + std::to_string(w);
        if (options_.stats != nullptr) {
          wq.depth = &options_.stats->gauge(scope + "/runq_depth");
          wq.steals = &options_.stats->counter(scope + "/steals");
          wq.runs = &options_.stats->counter(scope + "/runs");
        } if (options_.tracer != nullptr) {
          wq.track = options_.tracer->register_track(scope);
        });
  }
}

JobScheduler::~JobScheduler() { shutdown(); }

JobScheduler::TaskId JobScheduler::add_task(
    std::string name, std::function<void()> body,
    std::function<std::int64_t()> epoch_probe) {
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  if (started_) {
    throw std::logic_error("JobScheduler::add_task() after start()");
  }
  tasks_.emplace_back();
  Task& task = tasks_.back();
  task.name = std::move(name);
  task.body = std::move(body);
  task.epoch_probe = std::move(epoch_probe);
  return tasks_.size() - 1;
}

void JobScheduler::start() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    if (started_) return;
    started_ = true;
  }
  threads_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void JobScheduler::notify(TaskId id) {
  Task& task = tasks_[id];
  for (;;) {
    std::uint8_t state = task.state.load();
    if (state == kIdle) {
      if (task.state.compare_exchange_weak(state, kQueued)) {
        enqueue(id);
        return;
      }
    } else if (state == kRunning) {
      if (task.state.compare_exchange_weak(state, kRunningNotified)) return;
    } else {
      // kQueued or kRunningNotified: a run that will observe everything
      // the notifier just made ready is already pending — coalesce.
      return;
    }
  }
}

void JobScheduler::notify_all() {
  for (TaskId id = 0; id < tasks_.size(); ++id) notify(id);
}

void JobScheduler::enqueue(TaskId id) {
  if (tl_worker.scheduler == this) {
    WorkerQueue& wq = *worker_queues_[tl_worker.index];
    std::lock_guard<std::mutex> lock(wq.mutex);
    wq.queue.push_back(id);
    AIOT_OBS(if (wq.depth != nullptr) {
      wq.depth->set(static_cast<double>(wq.queue.size()));
    });
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    inject_queue_.push_back(id);
  }
  pending_.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  if (sleepers_ > 0) sleep_cv_.notify_one();
}

bool JobScheduler::next_task(std::size_t worker, TaskId& out) {
  // 1. Own deque, newest first: a wake the previous task raised runs
  //    while the channel payload behind it is still cache-hot.
  {
    WorkerQueue& wq = *worker_queues_[worker];
    std::lock_guard<std::mutex> lock(wq.mutex);
    if (!wq.queue.empty()) {
      out = wq.queue.back();
      wq.queue.pop_back();
      AIOT_OBS(if (wq.depth != nullptr) {
        wq.depth->set(static_cast<double>(wq.queue.size()));
      });
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 2. Injection queue: wakes from outside the pool, oldest first.
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!inject_queue_.empty()) {
      out = inject_queue_.front();
      inject_queue_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 3. Steal, oldest first, scanning victims round-robin from our
  //    right-hand neighbour so thieves spread instead of convoying.
  for (std::size_t i = 1; i < worker_queues_.size(); ++i) {
    WorkerQueue& victim =
        *worker_queues_[(worker + i) % worker_queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      out = victim.queue.front();
      victim.queue.pop_front();
      AIOT_OBS(if (victim.depth != nullptr) {
        victim.depth->set(static_cast<double>(victim.queue.size()));
      });
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      AIOT_OBS(WorkerQueue& wq = *worker_queues_[worker];
               if (wq.steals != nullptr) wq.steals->increment(););
      return true;
    }
  }
  return false;
}

void JobScheduler::run_task(std::size_t worker, TaskId id) {
  Task& task = tasks_[id];
  // Sole holder of the dequeued id: no CAS needed, nobody else moves a
  // task out of kQueued. (A notify landing here sees kQueued and
  // coalesces into the run we are about to perform — the body re-checks
  // its channels from scratch, so nothing the notifier signalled is
  // missed.)
  task.state.store(kRunning);

  [[maybe_unused]] WorkerQueue& wq = *worker_queues_[worker];
  [[maybe_unused]] std::int64_t t_begin = 0;
  AIOT_OBS(if (options_.tracer != nullptr &&
               wq.track != obs::ScopedSpan::kNoTrack) {
    t_begin = options_.tracer->now_us();
  });

  task.body();

  AIOT_OBS(
      if (wq.runs != nullptr) wq.runs->increment();
      if (options_.tracer != nullptr &&
          wq.track != obs::ScopedSpan::kNoTrack) {
        const std::int64_t epoch =
            task.epoch_probe ? task.epoch_probe() : 0;
        options_.tracer->complete(wq.track, task.name.c_str(), t_begin,
                                  options_.tracer->now_us(), epoch);
      });
  tasks_run_.fetch_add(1, std::memory_order_relaxed);

  std::uint8_t expected = kRunning;
  if (!task.state.compare_exchange_strong(expected, kIdle)) {
    // A notify raced the body (kRunningNotified): the body may have
    // already passed the channel that became ready, so run it again.
    task.state.store(kQueued);
    enqueue(id);
  }
}

void JobScheduler::worker_loop(std::size_t worker) {
  tl_worker.scheduler = this;
  tl_worker.index = worker;
  for (;;) {
    TaskId id{};
    if (next_task(worker, id)) {
      run_task(worker, id);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
    parks_.fetch_add(1, std::memory_order_relaxed);
    ++sleepers_;
    sleep_cv_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    --sleepers_;
  }
}

void JobScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    if (stop_) return;
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
}

}  // namespace approxiot::runtime
