#include "core/error.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/whsamp.hpp"

namespace approxiot::core {
namespace {

SubStreamEstimate make_summary(std::uint64_t id, double sum, double count,
                               std::uint64_t sampled, double mean,
                               double variance) {
  SubStreamEstimate s;
  s.id = SubStreamId{id};
  s.sum = sum;
  s.estimated_count = count;
  s.sampled = sampled;
  s.sample_mean = mean;
  s.sample_variance = variance;
  return s;
}

TEST(ErrorEstimateTest, MatchesHandComputedEquationEleven) {
  // One sub-stream: c = 100, ζ = 10, s² = 4.
  // V̂ar(SUM) = c(c−ζ)s²/ζ = 100*90*4/10 = 3600.
  const std::vector<SubStreamEstimate> summaries = {
      make_summary(1, 500.0, 100.0, 10, 5.0, 4.0)};
  const ErrorEstimate err = estimate_error(summaries);
  EXPECT_NEAR(err.sum_variance, 3600.0, 1e-9);
}

TEST(ErrorEstimateTest, MatchesHandComputedEquationFourteen) {
  // Two sub-streams with equal counts: φ_i = 0.5 each.
  // Term_i = φ² · s²/ζ · (c−ζ)/c.
  const std::vector<SubStreamEstimate> summaries = {
      make_summary(1, 0.0, 100.0, 10, 0.0, 4.0),
      make_summary(2, 0.0, 100.0, 20, 0.0, 9.0)};
  const ErrorEstimate err = estimate_error(summaries);
  const double t1 = 0.25 * (4.0 / 10.0) * (90.0 / 100.0);
  const double t2 = 0.25 * (9.0 / 20.0) * (80.0 / 100.0);
  EXPECT_NEAR(err.mean_variance, t1 + t2, 1e-12);
}

TEST(ErrorEstimateTest, FullySampledStreamHasZeroVariance) {
  // c == ζ: the stratum is known exactly; FPC zeroes the term.
  const std::vector<SubStreamEstimate> summaries = {
      make_summary(1, 100.0, 50.0, 50, 2.0, 7.0)};
  const ErrorEstimate err = estimate_error(summaries);
  EXPECT_EQ(err.sum_variance, 0.0);
  EXPECT_EQ(err.mean_variance, 0.0);
}

TEST(ErrorEstimateTest, UnsampledStreamContributesNothing) {
  const std::vector<SubStreamEstimate> summaries = {
      make_summary(1, 0.0, 0.0, 0, 0.0, 0.0)};
  const ErrorEstimate err = estimate_error(summaries);
  EXPECT_EQ(err.sum_variance, 0.0);
}

TEST(ErrorEstimateTest, VarianceSumsAcrossSubStreams) {
  const std::vector<SubStreamEstimate> summaries = {
      make_summary(1, 0.0, 100.0, 10, 0.0, 4.0),    // 3600
      make_summary(2, 0.0, 200.0, 10, 0.0, 1.0)};   // 200*190*1/10 = 3800
  const ErrorEstimate err = estimate_error(summaries);
  EXPECT_NEAR(err.sum_variance, 7400.0, 1e-9);
}

TEST(ApproximateQueryTest, CombinesEstimatesAndBounds) {
  ThetaStore theta;
  WeightedSample p;
  p.weight = 10.0;
  for (double v : {1.0, 2.0, 3.0}) {
    p.items.push_back(Item{SubStreamId{1}, v, 0});
  }
  theta.add_pair(SubStreamId{1}, std::move(p));

  const ApproxResult result = approximate_query(theta);
  EXPECT_DOUBLE_EQ(result.sum.point, 60.0);
  EXPECT_DOUBLE_EQ(result.estimated_count, 30.0);
  EXPECT_DOUBLE_EQ(result.mean.point, 2.0);
  EXPECT_EQ(result.sampled_items, 3u);
  EXPECT_GT(result.sum.margin, 0.0);  // down-sampled -> uncertainty
}

TEST(ApproximateQueryTest, EmptyThetaGivesZeros) {
  ThetaStore theta;
  const ApproxResult result = approximate_query(theta);
  EXPECT_EQ(result.sum.point, 0.0);
  EXPECT_EQ(result.sum.margin, 0.0);
  EXPECT_EQ(result.sampled_items, 0u);
}

// Coverage property: sample a known population through WHSamp repeatedly;
// the 95% interval must cover the true sum at close to its nominal rate.
class CoveragePropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoveragePropertyTest, SumIntervalCoversTruth) {
  const std::size_t reservoir = GetParam();
  const std::size_t population = 2000;
  Rng value_rng(7);
  std::vector<Item> items;
  double true_sum = 0.0;
  for (std::size_t i = 0; i < population; ++i) {
    const double v = 50.0 + 10.0 * value_rng.next_gaussian();
    items.push_back(Item{SubStreamId{1}, v, 0});
    true_sum += v;
  }

  const int trials = 300;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    WHSampler sampler(Rng(1000 + static_cast<std::uint64_t>(t)));
    ThetaStore theta;
    theta.add(sampler.sample(items, reservoir, WeightMap{}));
    const ApproxResult result =
        approximate_query(theta, stats::kConfidence95);
    if (result.sum.covers(true_sum)) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  // CLT approximation plus with-replacement variance formula on a
  // without-replacement sample: allow a generous band around 95%.
  EXPECT_GE(rate, 0.85) << "reservoir=" << reservoir;
  EXPECT_LE(rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(ReservoirSizes, CoveragePropertyTest,
                         ::testing::Values(50, 100, 400, 1000));

}  // namespace
}  // namespace approxiot::core
