#include "netsim/link.hpp"

#include <algorithm>

namespace approxiot::netsim {

Link::Link(Simulator& sim, LinkConfig config)
    : sim_(&sim), config_(std::move(config)), created_at_(sim.now()) {}

void Link::transfer(std::uint64_t bytes, std::function<void()> on_arrival) {
  const double seconds =
      config_.bandwidth_bps > 0.0
          ? static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps
          : 0.0;
  const SimTime serialization = SimTime::from_seconds(seconds);

  const SimTime start = std::max(busy_until_, sim_->now());
  busy_until_ = start + serialization;
  busy_accum_ = busy_accum_ + serialization;

  bytes_sent_ += bytes;
  ++transfers_;

  const SimTime arrival = busy_until_ + config_.one_way_latency;
  sim_->schedule_at(arrival, std::move(on_arrival));
}

double Link::utilization() const noexcept {
  const SimTime elapsed = sim_->now() - created_at_;
  if (elapsed.us <= 0) return 0.0;
  return std::min(1.0, busy_accum_.seconds() / elapsed.seconds());
}

void Link::reset_counters() noexcept {
  bytes_sent_ = 0;
  transfers_ = 0;
  busy_accum_ = SimTime::zero();
  created_at_ = sim_->now();
}

}  // namespace approxiot::netsim
