#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace approxiot::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::bin_lower(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_upper(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i])
                         : 0.0;
      return bin_lower(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

QuantileSketch::QuantileSketch(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {
  sample_.reserve(capacity_);
}

void QuantileSketch::add(double x) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  const std::uint64_t j = rng_.next_below(seen_);
  if (j < capacity_) sample_[static_cast<std::size_t>(j)] = x;
}

void QuantileSketch::reset() {
  sample_.clear();
  seen_ = 0;
}

double QuantileSketch::quantile(double q) const {
  if (sample_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace approxiot::stats
