#include "runtime/scheduler.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace approxiot::runtime {

IntervalScheduler::IntervalScheduler(ConcurrentEdgeTree& tree,
                                     SchedulerConfig config,
                                     LeafSourceFn source)
    : tree_(&tree), config_(config), source_(std::move(source)) {
  if (config_.tick.us <= 0) {
    // A zero tick would freeze the logical clock (every interval covering
    // [t, t)), a negative one would run it backwards; both would silently
    // corrupt SimTime windowing, so reject them here instead.
    throw std::invalid_argument("SchedulerConfig::tick must be positive");
  }
}

IntervalScheduler::~IntervalScheduler() {
  request_stop();
  join();
}

void IntervalScheduler::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t leaves = tree_->leaf_count();

  for (std::size_t k = 0; k < config_.ticks; ++k) {
    if (stop_requested_.load()) break;

    if (config_.pace == SchedulerConfig::Pace::kWallClock) {
      std::this_thread::sleep_until(
          wall_start + std::chrono::microseconds(
                           static_cast<std::int64_t>(k) * config_.tick.us));
    }

    const SimTime now{static_cast<std::int64_t>(k) * config_.tick.us};

    std::vector<std::vector<Item>> items_per_leaf(leaves);
    for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
      items_per_leaf[leaf] = source_(leaf, now, config_.tick);
    }
    try {
      tree_->push_interval(items_per_leaf);
    } catch (const std::logic_error&) {
      // The tree was stopped out from under us (nothing ties the two
      // lifecycles together); treat it as a stop request rather than
      // letting the throw terminate the background thread's process.
      break;
    }
    ticks_fired_.fetch_add(1);
    // Advance the published clock only AFTER tick k landed in the tree:
    // now() == ticks_fired() * tick at every observable instant, i.e. the
    // next tick's interval start. (Storing before the push — the old
    // behaviour — let an observer at the interval boundary see the clock
    // one tick ahead of the data, reading k*tick while interval k's items
    // did not exist yet.)
    now_us_.store(now.us + config_.tick.us);
  }
}

void IntervalScheduler::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { run(); });
}

void IntervalScheduler::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace approxiot::runtime
