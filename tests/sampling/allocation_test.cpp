#include "sampling/allocation.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace approxiot::sampling {
namespace {

std::vector<SubStreamInfo> make_streams(
    std::initializer_list<std::uint64_t> counts) {
  std::vector<SubStreamInfo> out;
  std::uint64_t id = 1;
  for (std::uint64_t c : counts) {
    out.push_back(SubStreamInfo{approxiot::SubStreamId{id++}, c, 0.0});
  }
  return out;
}

std::size_t total(const SizeMap& m) {
  return std::accumulate(m.begin(), m.end(), std::size_t{0},
                         [](std::size_t acc, const auto& kv) {
                           return acc + kv.second;
                         });
}

TEST(EqualAllocationTest, SplitsEvenly) {
  EqualAllocation policy;
  const auto sizes = policy.allocate(100, make_streams({10, 10, 10, 10}));
  ASSERT_EQ(sizes.size(), 4u);
  for (const auto& [id, n] : sizes) EXPECT_EQ(n, 25u) << id;
}

TEST(EqualAllocationTest, RemainderDistributedTotalExact) {
  EqualAllocation policy;
  const auto sizes = policy.allocate(10, make_streams({5, 5, 5}));
  EXPECT_EQ(total(sizes), 10u);
  for (const auto& [_, n] : sizes) {
    EXPECT_GE(n, 3u);
    EXPECT_LE(n, 4u);
  }
}

TEST(EqualAllocationTest, EveryStreamGetsAtLeastOneWhenBudgetAllows) {
  EqualAllocation policy;
  // Highly imbalanced counts must not matter for the equal policy.
  const auto sizes = policy.allocate(8, make_streams({1000000, 1, 1, 1}));
  for (const auto& [_, n] : sizes) EXPECT_GE(n, 1u);
  EXPECT_EQ(total(sizes), 8u);
}

TEST(EqualAllocationTest, DegenerateBudgetBelowStreamCount) {
  EqualAllocation policy;
  const auto sizes = policy.allocate(2, make_streams({10, 10, 10, 10}));
  EXPECT_EQ(total(sizes), 2u);
  // Slots go to the lowest ids, deterministically.
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{1}), 1u);
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{2}), 1u);
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{3}), 0u);
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{4}), 0u);
}

TEST(EqualAllocationTest, ZeroBudgetGivesAllZeros) {
  EqualAllocation policy;
  const auto sizes = policy.allocate(0, make_streams({5, 5}));
  EXPECT_EQ(total(sizes), 0u);
}

TEST(EqualAllocationTest, EmptyStreamsGiveEmptyMap) {
  EqualAllocation policy;
  EXPECT_TRUE(policy.allocate(100, {}).empty());
}

TEST(ProportionalAllocationTest, FollowsCounts) {
  ProportionalAllocation policy;
  const auto sizes = policy.allocate(103, make_streams({300, 100, 100}));
  EXPECT_EQ(total(sizes), 103u);
  // 100 spare after the 3 guaranteed slots: 60/20/20.
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{1}), 61u);
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{2}), 21u);
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{3}), 21u);
}

TEST(ProportionalAllocationTest, RareStreamStillGuaranteedOne) {
  ProportionalAllocation policy;
  const auto sizes = policy.allocate(100, make_streams({1000000, 1}));
  EXPECT_GE(sizes.at(approxiot::SubStreamId{2}), 1u);
  EXPECT_EQ(total(sizes), 100u);
}

TEST(NeymanAllocationTest, HigherVarianceGetsMoreSlots) {
  NeymanAllocation policy;
  std::vector<SubStreamInfo> streams = {
      {approxiot::SubStreamId{1}, 100, 1.0},
      {approxiot::SubStreamId{2}, 100, 10.0},
  };
  const auto sizes = policy.allocate(110, streams);
  EXPECT_EQ(total(sizes), 110u);
  EXPECT_GT(sizes.at(approxiot::SubStreamId{2}),
            sizes.at(approxiot::SubStreamId{1}));
}

TEST(NeymanAllocationTest, ZeroStddevDegradesGracefully) {
  NeymanAllocation policy;
  std::vector<SubStreamInfo> streams = {
      {approxiot::SubStreamId{1}, 100, 0.0},
      {approxiot::SubStreamId{2}, 100, 0.0},
  };
  const auto sizes = policy.allocate(10, streams);
  EXPECT_EQ(total(sizes), 10u);
  EXPECT_EQ(sizes.at(approxiot::SubStreamId{1}), 5u);
}

TEST(AllocationFactoryTest, KnownNames) {
  EXPECT_EQ(make_allocation_policy("equal")->name(), "equal");
  EXPECT_EQ(make_allocation_policy("proportional")->name(), "proportional");
  EXPECT_EQ(make_allocation_policy("neyman")->name(), "neyman");
  EXPECT_THROW(make_allocation_policy("bogus"), std::invalid_argument);
}

// Property sweep: for any budget and stream mix, totals never exceed the
// budget and match it exactly when budget >= #streams.
class AllocationPropertyTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllocationPropertyTest, TotalsExactAndFair) {
  const std::size_t budget = GetParam();
  const auto streams = make_streams({1, 10, 100, 1000, 10000});
  for (const char* name : {"equal", "proportional", "neyman"}) {
    const auto sizes = make_allocation_policy(name)->allocate(budget, streams);
    EXPECT_EQ(total(sizes), budget) << name;
    if (budget >= streams.size()) {
      for (const auto& [id, n] : sizes) {
        EXPECT_GE(n, 1u) << name << " starved sub-stream " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, AllocationPropertyTest,
                         ::testing::Values(0, 1, 3, 5, 6, 17, 100, 12345));

}  // namespace
}  // namespace approxiot::sampling
