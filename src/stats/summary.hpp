// Bounded-memory summaries for metric reporting: a fixed-bin histogram and
// a reservoir-backed quantile sketch. Used by netsim to report latency
// percentiles and by benches to print distribution rows.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace approxiot::stats {

/// Fixed-width-bin histogram over [lo, hi); out-of-range values clamp to
/// the edge bins so totals stay consistent.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lower(std::size_t i) const noexcept;
  [[nodiscard]] double bin_upper(std::size_t i) const noexcept;

  /// Quantile estimate by linear interpolation within the containing bin.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

/// Quantile estimator that keeps a uniform random sample of the
/// observations (classic reservoir, used only for reporting — the
/// paper-facing reservoir sampler lives in src/sampling).
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t capacity = 4096,
                          std::uint64_t seed = 0x51c7e1e5u);

  void add(double x);
  void reset();

  [[nodiscard]] std::uint64_t total() const noexcept { return seen_; }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  std::size_t capacity_;
  std::uint64_t seen_{0};
  std::vector<double> sample_;
  Rng rng_;
};

}  // namespace approxiot::stats
