// SSE4.2-tier kernels (compiled with -msse4.2; empty without SIMD
// support). The tier's value is cache behaviour, not lane math: the
// scatter pass walks per-stratum write cursors ahead of itself and
// prefetches destination lines so the stable permutation streams
// instead of missing on every store, and items move as one 16-byte
// vector copy plus an 8-byte word.
#include "core/kernels/kernels_impl.hpp"

#if AIOT_KERNELS_X86

#include <immintrin.h>

#include <cstring>
#include <type_traits>

namespace approxiot::core::kernels::detail {

static_assert(std::is_trivially_copyable_v<Item> && sizeof(Item) == 24,
              "the 16+8 byte copy below assumes Item's flat POD layout");

void scatter_pass_sse42(const Item* data, std::size_t n,
                        const std::uint32_t* item_slots, std::size_t* cursors,
                        Item* arena) {
  // Far enough ahead to cover a memory-level miss on the destination
  // line (the cursor value read for the hint is stale by up to kAhead
  // increments — harmless, it lands on or just before the right line).
  // The body/tail split keeps the bounds check out of the per-item
  // loop; distances 24..64 measured within a few percent, with 64 best
  // once the arena spills past L2.
  constexpr std::size_t kAhead = 64;
  const std::size_t body = n > kAhead ? n - kAhead : 0;
  for (std::size_t i = 0; i < body; ++i) {
    _mm_prefetch(reinterpret_cast<const char*>(
                     arena + cursors[item_slots[i + kAhead]]),
                 _MM_HINT_T0);
    Item* dst = arena + cursors[item_slots[i]]++;
    const Item* src = data + i;
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
    std::memcpy(reinterpret_cast<std::uint8_t*>(dst) + 16,
                reinterpret_cast<const std::uint8_t*>(src) + 16, 8);
  }
  for (std::size_t i = body; i < n; ++i) {
    Item* dst = arena + cursors[item_slots[i]]++;
    const Item* src = data + i;
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
    std::memcpy(reinterpret_cast<std::uint8_t*>(dst) + 16,
                reinterpret_cast<const std::uint8_t*>(src) + 16, 8);
  }
}

}  // namespace approxiot::core::kernels::detail

#endif  // AIOT_KERNELS_X86
