// StatsRegistry: typed stats, interval deltas, and the exporter surface
// (golden JSON + Prometheus text snapshots).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/stats.hpp"

namespace approxiot::obs {
namespace {

TEST(ObsStatsTest, CounterAndGaugeBasics) {
  StatsRegistry registry;
  registry.counter("a").increment();
  registry.counter("a").increment(9);
  registry.gauge("g").set(2.5);
  EXPECT_EQ(registry.counter("a").value(), 10u);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 2.5);
}

TEST(ObsStatsTest, RegistryReturnsStableReferences) {
  StatsRegistry registry;
  Counter& first = registry.counter("x");
  Counter& again = registry.counter("x");
  EXPECT_EQ(&first, &again);
  Histogram& h1 = registry.histogram("h");
  Histogram& h2 = registry.histogram("h");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsStatsTest, HistogramSingleSampleReportsItselfAtEveryQuantile) {
  Histogram h;
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.min_value(), 42.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 42.0);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 42.0) << "q=" << q;
  }
}

TEST(ObsStatsTest, HistogramEmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 0.0);
}

TEST(ObsStatsTest, HistogramQuantilesStayWithinObservedRange) {
  Histogram h;
  for (int i = 1000; i <= 1023; ++i) h.record(static_cast<double>(i));
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, 1000.0) << "q=" << q;
    EXPECT_LE(p, 1023.0) << "q=" << q;
  }
}

TEST(ObsStatsTest, HistogramConcurrentRecordingIsLossless) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.record(3.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 40000u);
  EXPECT_DOUBLE_EQ(h.sum(), 120000.0);
  EXPECT_DOUBLE_EQ(h.min_value(), 3.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 3.0);
}

TEST(ObsStatsTest, LinearHistogramClampsIntoRange) {
  LinearHistogram h(0.0, 1.0, 10);
  h.record(-0.5);  // clamps into the first bucket
  h.record(0.25);
  h.record(2.0);  // clamps into the last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(ObsStatsTest, EwmaRateDecaysDeterministically) {
  EwmaRate rate(5.0);
  rate.record_at(0.0, 100.0);
  EXPECT_DOUBLE_EQ(rate.rate_at(0.0), 20.0);  // 100 / tau
  EXPECT_NEAR(rate.rate_at(5.0), 20.0 * std::exp(-1.0), 1e-9);
  rate.record_at(5.0, 100.0);
  EXPECT_NEAR(rate.rate_at(5.0), 20.0 * std::exp(-1.0) + 20.0, 1e-9);
}

TEST(ObsStatsTest, FormulaEvaluatesAtSnapshotTime) {
  StatsRegistry registry;
  Counter& items = registry.counter("items");
  registry.formula("items_doubled", [&items] {
    return static_cast<double>(items.value()) * 2.0;
  });
  items.increment(4);
  const StatsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.formulas.at("items_doubled"), 8.0);
}

TEST(ObsStatsTest, ScopedStatsPrefixesNames) {
  StatsRegistry registry;
  ScopedStats node = registry.scope("tree/L0/n3");
  node.counter("items")->increment(2);
  ScopedStats lane = node.scope("lane0");
  lane.gauge("depth")->set(7.0);
  EXPECT_EQ(registry.counter("tree/L0/n3/items").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("tree/L0/n3/lane0/depth").value(), 7.0);
}

TEST(ObsStatsTest, UnboundScopedStatsReturnsNull) {
  ScopedStats unbound;
  EXPECT_FALSE(unbound.bound());
  EXPECT_EQ(unbound.counter("x"), nullptr);
  EXPECT_EQ(unbound.gauge("x"), nullptr);
  EXPECT_EQ(unbound.histogram("x"), nullptr);
  EXPECT_FALSE(unbound.scope("deeper").bound());
}

TEST(ObsStatsTest, DeltaSinceSubtractsCountersAndHistograms) {
  StatsRegistry registry;
  registry.counter("items").increment(5);
  Histogram& h = registry.histogram("exec_us");
  h.record(1.0);
  h.record(1.0);
  const StatsSnapshot before = registry.snapshot();

  registry.counter("items").increment(7);
  for (int i = 0; i < 3; ++i) h.record(10.0);
  const StatsSnapshot after = registry.snapshot();

  const StatsSnapshot delta = after.delta_since(before);
  EXPECT_EQ(delta.counters.at("items"), 7u);
  const HistogramStats& d = delta.histograms.at("exec_us");
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.sum, 30.0);
  EXPECT_DOUBLE_EQ(d.mean, 10.0);
  // Only the 10.0-bucket survives the subtraction; the delta quantiles
  // resolve to bucket bounds (2, 16] around the new samples.
  ASSERT_EQ(d.buckets.size(), 1u);
  EXPECT_EQ(d.buckets[0].second, 3u);
  EXPECT_GE(d.p50, 2.0);
  EXPECT_LE(d.p50, 16.0);
}

TEST(ObsStatsTest, DeltaTreatsNewStatsAsFresh) {
  StatsRegistry registry;
  const StatsSnapshot before = registry.snapshot();
  registry.counter("late").increment(3);
  const StatsSnapshot delta = registry.snapshot().delta_since(before);
  EXPECT_EQ(delta.counters.at("late"), 3u);
}

// Golden snapshots: a small deterministic registry must serialise to
// exactly these strings. If an exporter change breaks them on purpose,
// update the goldens alongside the format change.
class ObsExporterGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.counter("tree/items").increment(3);
    registry_.gauge("tree/fraction").set(0.5);
    registry_.formula("tree/ratio", [] { return 6.0; });
    registry_.histogram("tree/exec_us").record(3.0);
  }
  StatsRegistry registry_;
};

TEST_F(ObsExporterGoldenTest, JsonSnapshotMatchesGolden) {
  const std::string json = registry_.snapshot().to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"tree/items\":3},"
            "\"gauges\":{\"tree/fraction\":0.5},"
            "\"rates\":{},"
            "\"formulas\":{\"tree/ratio\":6},"
            "\"histograms\":{\"tree/exec_us\":{\"count\":1,\"sum\":3,"
            "\"mean\":3,\"min\":3,\"max\":3,\"p50\":3,\"p90\":3,"
            "\"p99\":3}}}");
}

TEST_F(ObsExporterGoldenTest, PrometheusSnapshotMatchesGolden) {
  const std::string prom = registry_.snapshot().to_prometheus();
  EXPECT_EQ(prom,
            "# TYPE approxiot_tree_items counter\n"
            "approxiot_tree_items 3\n"
            "# TYPE approxiot_tree_fraction gauge\n"
            "approxiot_tree_fraction 0.5\n"
            "# TYPE approxiot_tree_ratio gauge\n"
            "approxiot_tree_ratio 6\n"
            "# TYPE approxiot_tree_exec_us histogram\n"
            "approxiot_tree_exec_us_bucket{le=\"4\"} 1\n"
            "approxiot_tree_exec_us_bucket{le=\"+Inf\"} 1\n"
            "approxiot_tree_exec_us_sum 3\n"
            "approxiot_tree_exec_us_count 1\n");
}

}  // namespace
}  // namespace approxiot::obs
