#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace approxiot {
namespace {

TEST(SplitMix64Test, ProducesKnownFirstValueForZeroSeed) {
  SplitMix64 sm(0);
  // Reference value from the SplitMix64 reference implementation.
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(99);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(99);
  EXPECT_EQ(rng.next(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowZeroBoundReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(13);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  for (std::uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], n / static_cast<int>(bound), n / 100)
        << "bucket " << k;
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(17);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const double lambda = 4.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(RngTest, PoissonSmallMeanMatches) {
  Rng rng(29);
  const double mean = 3.5;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.next_poisson(mean));
  }
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(RngTest, PoissonLargeMeanMatches) {
  Rng rng(31);
  const double mean = 10000.0;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.next_poisson(mean));
  }
  EXPECT_NEAR(sum / n / mean, 1.0, 0.005);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(37);
  EXPECT_EQ(rng.next_poisson(0.0), 0u);
  EXPECT_EQ(rng.next_poisson(-5.0), 0u);
}

TEST(RngTest, JumpProducesNonOverlappingStream) {
  Rng base(41);
  Rng jumped = base;
  jumped.jump();
  // The jumped stream must not collide with the near future of the base
  // stream (2^128 steps apart in the sequence).
  std::set<std::uint64_t> base_values;
  for (int i = 0; i < 1000; ++i) base_values.insert(base.next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (base_values.count(jumped.next()) > 0) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(RngTest, SplitStreamsAreDistinct) {
  Rng base(43);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace approxiot
