// TopologyDriver: instantiates a Topology against a flowqueue Broker and
// pumps records through it.
//
// The driver owns one consumer per source and a producer for sinks. Each
// call to run_once() polls the sources, routes records down the DAG, and
// fires any stream-time punctuations that the new records crossed. This
// single-threaded, pull-based design keeps execution deterministic —
// essential for reproducible experiments — while preserving the Kafka
// Streams programming model.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flowqueue/broker.hpp"
#include "flowqueue/consumer.hpp"
#include "flowqueue/producer.hpp"
#include "streams/topology.hpp"

namespace approxiot::streams {

class TopologyDriver {
 public:
  /// `application_id` namespaces the driver's consumer group.
  TopologyDriver(flowqueue::Broker& broker, Topology topology,
                 std::string application_id);

  TopologyDriver(const TopologyDriver&) = delete;
  TopologyDriver& operator=(const TopologyDriver&) = delete;
  ~TopologyDriver();

  /// Connects consumers/producers and init()s processors.
  Status start();

  /// One poll-and-process cycle. Returns the number of records consumed
  /// from source topics (0 == nothing pending).
  Result<std::size_t> run_once(std::size_t max_records = 1024);

  /// Runs until all source topics are drained (no records consumed).
  Status run_until_idle(std::size_t max_cycles = 1'000'000);

  /// Fires any pending punctuations up to `now` even without new records
  /// (used to flush the last interval), then close()s processors.
  Status stop();

  /// Advances stream time manually (e.g. to flush a trailing window).
  void advance_stream_time(SimTime to);

  [[nodiscard]] SimTime stream_time() const noexcept { return stream_time_; }

 private:
  class ContextImpl;

  void route(const std::string& node_name, const flowqueue::Record& record);
  void maybe_punctuate();

  flowqueue::Broker* broker_;
  Topology topology_;
  std::string application_id_;
  bool started_{false};

  std::unique_ptr<flowqueue::Producer> producer_;
  std::map<std::string, std::unique_ptr<flowqueue::Consumer>> consumers_;
  std::map<std::string, std::unique_ptr<Processor>> processors_;
  std::map<std::string, std::unique_ptr<ContextImpl>> contexts_;

  struct Punctuation {
    SimTime interval{};
    SimTime next_fire{};
  };
  std::map<std::string, Punctuation> punctuations_;

  SimTime stream_time_{SimTime::zero()};
};

}  // namespace approxiot::streams
