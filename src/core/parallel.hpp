// Distributed execution within a node (§III-E).
//
// A sub-stream is handled by w workers; each samples its share of the
// arriving items into a local reservoir of size at most N_i / w and keeps
// a local count of items it received. No synchronisation happens while
// items flow; at interval end, the merged sample is the union of worker
// reservoirs and the weight is computed from the summed counters:
//     c_i = Σ_w c_{i,w},   c̃_i = Σ_w |reservoir_w|,
//     W^out = W^in · c_i / c̃_i    when c_i > c̃_i.
//
// The weight invariant W^out · c̃ = W^in · c (Eq. 8) is preserved exactly,
// so merged output is indistinguishable to the estimators from the
// single-reservoir path. ParallelWhsStage runs the worker group with real
// threads to demonstrate the no-coordination claim end to end.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "sampling/reservoir.hpp"

namespace approxiot::core {

/// One worker's state for one sub-stream: a reservoir of N_i/w plus the
/// local arrival counter. Single-threaded by itself; the group shards
/// items across workers.
class SubStreamWorker {
 public:
  SubStreamWorker(std::size_t capacity, Rng rng);

  void offer(const Item& item);

  [[nodiscard]] std::uint64_t local_count() const noexcept {
    return reservoir_.seen();
  }
  [[nodiscard]] std::size_t sample_size() const noexcept {
    return reservoir_.size();
  }
  [[nodiscard]] std::vector<Item> drain() { return reservoir_.drain(); }
  void set_capacity(std::size_t capacity) { reservoir_.set_capacity(capacity); }

 private:
  sampling::ReservoirSampler<Item> reservoir_;
};

/// The worker group for one sub-stream. `shard()` distributes items
/// round-robin (the arrival order any per-worker partitioning would give);
/// `merge()` combines reservoirs and computes the output weight.
class WorkerGroup {
 public:
  /// `total_capacity` is N_i; each worker gets floor(N_i/w) with the
  /// remainder spread over the first workers so Σ capacities == N_i.
  WorkerGroup(std::size_t workers, std::size_t total_capacity, Rng rng);

  /// Offers items round-robin across workers (single-threaded sharding).
  void shard(const std::vector<Item>& items);

  /// Offers one item to a specific worker (callers doing their own
  /// sharding, e.g. the threaded stage).
  void offer_to(std::size_t worker, const Item& item);

  struct MergeResult {
    std::vector<Item> sample;
    std::uint64_t total_count{0};   // c_i
    double weight_multiplier{1.0};  // c_i / c̃_i when overflowed, else 1
  };

  /// Merges worker reservoirs, resets workers for the next interval.
  [[nodiscard]] MergeResult merge();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

 private:
  std::vector<SubStreamWorker> workers_;
  std::size_t next_worker_{0};
};

/// Multi-threaded WHSamp over one interval: stratifies items, spawns a
/// WorkerGroup per sub-stream, shards each stratum across `threads` OS
/// threads with zero cross-thread coordination, then merges. Used by the
/// §III-E scalability ablation.
class ParallelSampler {
 public:
  ParallelSampler(std::size_t threads, Rng rng);

  /// Runs one weighted-hierarchical-sampling pass. Semantics match
  /// WHSampler::sample with equal allocation.
  [[nodiscard]] SampledBundle sample(const std::vector<Item>& items,
                                     std::size_t sample_size,
                                     const WeightMap& w_in);

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

 private:
  std::size_t threads_;
  Rng rng_;
};

}  // namespace approxiot::core
