// Checkpoint/restore: the bit-identity contract. A tree restored from a
// snapshot and fed the remaining input must produce the same Θ, the same
// query answers, and the same future RNG draws as the uninterrupted run —
// across all four engines, with and without a live control plane.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/control_plane.hpp"
#include "core/pipeline.hpp"
#include "core/theta_store.hpp"
#include "core/weight_map.hpp"

namespace approxiot::core {
namespace {

// Deterministic workload: `interval` seeds the generator, so any two runs
// asking for the same interval get the same items.
std::vector<std::vector<Item>> interval_items(std::size_t leaves,
                                              std::uint64_t interval,
                                              std::uint64_t seed = 7) {
  Rng rng(seed * 1000003ULL + interval);
  std::vector<std::vector<Item>> out(leaves);
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    const std::size_t n = 40 + rng.next_below(40);
    for (std::size_t i = 0; i < n; ++i) {
      Item item;
      item.source = SubStreamId{1 + rng.next_below(3)};
      item.value = 1.0 + rng.next_double() * 9.0;
      item.created_at_us = static_cast<std::int64_t>(interval) * 1'000'000;
      out[leaf].push_back(item);
    }
  }
  return out;
}

void expect_theta_identical(const ThetaStore& a, const ThetaStore& b) {
  const auto subs_a = a.sub_streams();
  const auto subs_b = b.sub_streams();
  ASSERT_EQ(subs_a.size(), subs_b.size());
  for (std::size_t i = 0; i < subs_a.size(); ++i) {
    ASSERT_EQ(subs_a[i], subs_b[i]);
    const auto& pa = a.pairs(subs_a[i]);
    const auto& pb = b.pairs(subs_b[i]);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t p = 0; p < pa.size(); ++p) {
      EXPECT_EQ(pa[p].weight, pb[p].weight);  // bitwise, not approximate
      ASSERT_EQ(pa[p].items.size(), pb[p].items.size());
      for (std::size_t k = 0; k < pa[p].items.size(); ++k) {
        EXPECT_EQ(pa[p].items[k], pb[p].items[k]);
      }
    }
  }
  EXPECT_EQ(a.min_policy_epoch(), b.min_policy_epoch());
  EXPECT_EQ(a.max_policy_epoch(), b.max_policy_epoch());
}

void expect_results_identical(const ApproxResult& a, const ApproxResult& b) {
  EXPECT_EQ(a.sum.point, b.sum.point);
  EXPECT_EQ(a.sum.margin, b.sum.margin);
  EXPECT_EQ(a.mean.point, b.mean.point);
  EXPECT_EQ(a.estimated_count, b.estimated_count);
  EXPECT_EQ(a.sampled_items, b.sampled_items);
  EXPECT_EQ(a.lost_weight, b.lost_weight);
  EXPECT_EQ(a.lost_items, b.lost_items);
  EXPECT_EQ(a.degraded, b.degraded);
}

TEST(CheckpointTest, RngRoundTripReproducesFutureDraws) {
  Rng original(12345);
  for (int i = 0; i < 100; ++i) (void)original.next();
  // Leave a gaussian pair half-consumed so the cache is live — the state
  // a naive four-word snapshot would lose.
  (void)original.next_gaussian();

  const Rng::State state = original.save_state();
  Rng restored(999);  // different seed: everything must come from State
  restored.restore_state(state);

  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(original.next(), restored.next());
    EXPECT_EQ(original.next_gaussian(), restored.next_gaussian());
    EXPECT_EQ(original.next_double(), restored.next_double());
  }
}

TEST(CheckpointTest, WriterReaderPrimitivesRoundTrip) {
  CheckpointWriter writer(CheckpointKind::kStage);
  writer.put_u64(0);
  writer.put_u64(0xdeadbeefcafeULL);
  writer.put_i64(-42);
  writer.put_double(3.14159);
  writer.put_bool(true);
  writer.put_bool(false);
  writer.put_string("theta");
  WeightMap weights;
  weights.set(SubStreamId{3}, 125.5);
  weights.set(SubStreamId{1}, 0.25);
  writer.put_weight_map(weights);
  ThetaStore theta;
  WeightedSample pair;
  pair.weight = 16.0;
  pair.items = {Item{SubStreamId{2}, 7.5, 123}};
  theta.add_pair(SubStreamId{2}, std::move(pair), 5);
  writer.put_theta(theta);
  const Checkpoint snapshot = writer.finish();
  EXPECT_GT(snapshot.size_bytes(), 0u);

  CheckpointReader reader(snapshot, CheckpointKind::kStage);
  EXPECT_EQ(reader.get_u64(), 0u);
  EXPECT_EQ(reader.get_u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(reader.get_i64(), -42);
  EXPECT_EQ(reader.get_double(), 3.14159);
  EXPECT_TRUE(reader.get_bool());
  EXPECT_FALSE(reader.get_bool());
  EXPECT_EQ(reader.get_string(), "theta");
  WeightMap weights_back;
  reader.get_weight_map(weights_back);
  EXPECT_EQ(weights_back.get(SubStreamId{3}), 125.5);
  EXPECT_EQ(weights_back.get(SubStreamId{1}), 0.25);
  ThetaStore theta_back;
  reader.get_theta(theta_back);
  expect_theta_identical(theta, theta_back);
  reader.expect_exhausted();
}

TEST(CheckpointTest, KindMismatchAndTruncationThrow) {
  CheckpointWriter writer(CheckpointKind::kTree);
  writer.put_u64(1);
  const Checkpoint snapshot = writer.finish();

  EXPECT_THROW(CheckpointReader(snapshot, CheckpointKind::kStage),
               CheckpointError);
  EXPECT_THROW(CheckpointReader(Checkpoint{}, CheckpointKind::kTree),
               CheckpointError);

  CheckpointReader reader(snapshot, CheckpointKind::kTree);
  EXPECT_EQ(reader.get_u64(), 1u);
  EXPECT_THROW((void)reader.get_u64(), CheckpointError);  // truncated

  CheckpointReader unread(snapshot, CheckpointKind::kTree);
  EXPECT_THROW(unread.expect_exhausted(), CheckpointError);  // trailing
}

TEST(CheckpointTest, StageRoundTripContinuesBitIdentically) {
  StageConfig config;
  config.engine = EngineKind::kApproxIoT;
  config.fraction = 0.4;
  config.rng_seed = 99;
  auto original = make_pipeline_stage(config);
  auto restored = make_pipeline_stage(config);

  std::vector<ItemBundle> psi(1);
  for (std::uint64_t interval = 0; interval < 5; ++interval) {
    psi[0].items = interval_items(1, interval)[0];
    (void)original->process_interval(psi);
  }
  restore_stage(*restored, checkpoint_stage(*original));

  for (std::uint64_t interval = 5; interval < 10; ++interval) {
    psi[0].items = interval_items(1, interval)[0];
    const auto out_a = original->process_interval(psi);
    const auto out_b = restored->process_interval(psi);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      ASSERT_EQ(out_a[i].sample.items().size(), out_b[i].sample.items().size());
      for (std::size_t k = 0; k < out_a[i].sample.items().size(); ++k) {
        EXPECT_EQ(out_a[i].sample.items()[k], out_b[i].sample.items()[k]);
      }
      EXPECT_EQ(out_a[i].policy_epoch, out_b[i].policy_epoch);
    }
  }
}

TEST(CheckpointTest, StageEngineMismatchThrows) {
  StageConfig whs;
  whs.engine = EngineKind::kApproxIoT;
  StageConfig srs;
  srs.engine = EngineKind::kSrs;
  auto whs_stage = make_pipeline_stage(whs);
  auto srs_stage = make_pipeline_stage(srs);
  const Checkpoint snapshot = checkpoint_stage(*whs_stage);
  EXPECT_THROW(restore_stage(*srs_stage, snapshot), CheckpointError);
}

class CheckpointEngineTest : public ::testing::TestWithParam<EngineKind> {};

// The tentpole property: checkpoint at interval 6 of 12, restore into a
// FRESH tree, feed only the remaining 6 intervals, and the window result
// (and Θ, item by item) matches the uninterrupted run exactly — same RNG
// draws, same reservoir contents, same weights.
TEST_P(CheckpointEngineTest, RestoredTreeContinuesBitIdentically) {
  EdgeTreeConfig config;
  config.layer_widths = {4, 2};
  config.engine = GetParam();
  config.sampling_fraction = config.engine == EngineKind::kNative ? 1.0 : 0.3;
  config.rng_seed = 77;

  EdgeTree uninterrupted(config);
  EdgeTree phase_a(config);
  for (std::uint64_t interval = 0; interval < 6; ++interval) {
    const auto items = interval_items(4, interval);
    uninterrupted.tick(items);
    phase_a.tick(items);
  }

  const Checkpoint snapshot = phase_a.checkpoint();
  EXPECT_GT(snapshot.size_bytes(), 0u);

  EdgeTree phase_b(config);  // fresh tree, never saw phase A
  phase_b.restore(snapshot);

  for (std::uint64_t interval = 6; interval < 12; ++interval) {
    const auto items = interval_items(4, interval);
    uninterrupted.tick(items);
    phase_b.tick(items);
  }

  expect_theta_identical(uninterrupted.theta(), phase_b.theta());
  EXPECT_EQ(uninterrupted.metrics().items_ingested,
            phase_b.metrics().items_ingested);
  EXPECT_EQ(uninterrupted.metrics().items_at_root,
            phase_b.metrics().items_at_root);
  expect_results_identical(uninterrupted.close_window(),
                           phase_b.close_window());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CheckpointEngineTest,
                         ::testing::Values(EngineKind::kApproxIoT,
                                           EngineKind::kSrs,
                                           EngineKind::kNative,
                                           EngineKind::kSnapshot),
                         [](const auto& info) {
                           return std::string(engine_kind_name(info.param));
                         });

TEST(CheckpointTest, FingerprintMismatchThrows) {
  EdgeTreeConfig config;
  config.layer_widths = {4, 2};
  config.sampling_fraction = 0.5;
  EdgeTree tree(config);
  tree.tick(interval_items(4, 0));
  const Checkpoint snapshot = tree.checkpoint();

  {
    EdgeTreeConfig other = config;
    other.layer_widths = {4};
    EdgeTree victim(other);
    EXPECT_THROW(victim.restore(snapshot), CheckpointError);
  }
  {
    EdgeTreeConfig other = config;
    other.engine = EngineKind::kSrs;
    EdgeTree victim(other);
    EXPECT_THROW(victim.restore(snapshot), CheckpointError);
  }
  {
    EdgeTreeConfig other = config;
    other.rng_seed = config.rng_seed + 1;
    EdgeTree victim(other);
    EXPECT_THROW(victim.restore(snapshot), CheckpointError);
  }
}

// §IV-B interplay: checkpoint a tree that has already moved to policy
// epoch 2 mid-window. The restored tree must resolve the SAME epoch (not
// re-publish as a new one), so its output stamps — and the Θ epoch span —
// match the uninterrupted run.
TEST(CheckpointTest, ControlPlaneEpochSurvivesRestoreVerbatim) {
  EdgeTreeConfig config;
  config.layer_widths = {4, 2};
  config.sampling_fraction = 0.5;

  // Each tree gets its OWN control plane (separate processes would): a
  // shared plane would see every publish twice.
  EdgeTreeConfig config_a = config;
  config_a.control_plane = make_control_plane(config);
  EdgeTreeConfig config_b = config;
  config_b.control_plane = make_control_plane(config);
  EdgeTreeConfig config_c = config;
  config_c.control_plane = make_control_plane(config);

  EdgeTree uninterrupted(config_a);
  EdgeTree phase_a(config_c);

  auto run_phase_one = [](EdgeTree& tree) {
    tree.tick(interval_items(4, 0));
    tree.set_sampling_fraction(0.4);  // publishes epoch 1
    tree.tick(interval_items(4, 1));
    tree.set_sampling_fraction(0.25);  // publishes epoch 2
    tree.tick(interval_items(4, 2));
  };
  run_phase_one(uninterrupted);
  run_phase_one(phase_a);
  ASSERT_EQ(phase_a.policy_epoch(), 2u);

  const Checkpoint snapshot = phase_a.checkpoint();
  EdgeTree phase_b(config_b);
  phase_b.restore(snapshot);
  EXPECT_EQ(phase_b.policy_epoch(), 2u);
  EXPECT_EQ(phase_b.control_plane()->snapshot()->budget.sampling_fraction,
            0.25);

  for (std::uint64_t interval = 3; interval < 6; ++interval) {
    uninterrupted.tick(interval_items(4, interval));
    phase_b.tick(interval_items(4, interval));
  }
  expect_theta_identical(uninterrupted.theta(), phase_b.theta());
  EXPECT_EQ(uninterrupted.theta().max_policy_epoch(),
            phase_b.theta().max_policy_epoch());
  expect_results_identical(uninterrupted.close_window(),
                           phase_b.close_window());
}

TEST(CheckpointTest, ControlPlanePresenceMismatchThrows) {
  EdgeTreeConfig with_plane;
  with_plane.layer_widths = {2};
  with_plane.sampling_fraction = 0.5;
  with_plane.control_plane = make_control_plane(with_plane);
  EdgeTree tree(with_plane);
  const Checkpoint snapshot = tree.checkpoint();

  EdgeTreeConfig without = with_plane;
  without.control_plane = nullptr;
  EdgeTree victim(without);
  EXPECT_THROW(victim.restore(snapshot), CheckpointError);
}

TEST(CheckpointTest, RestorePolicyRefusesBackwardsEpochs) {
  EdgeTreeConfig config;
  config.layer_widths = {2};
  config.sampling_fraction = 0.5;
  auto plane = make_control_plane(config);
  (void)plane->publish_fraction(0.4);  // epoch 1
  (void)plane->publish_fraction(0.3);  // epoch 2

  SamplingPolicy stale = *plane->snapshot();
  stale.epoch = 1;
  EXPECT_THROW((void)plane->restore_policy(stale), std::invalid_argument);

  // Equal epoch is an idempotent no-op (tree + source restores overlap).
  SamplingPolicy same = *plane->snapshot();
  EXPECT_EQ(plane->restore_policy(same), 2u);
  EXPECT_EQ(plane->epoch(), 2u);
}

// Subtree loss (Eq. 8): detaching a child mid-window swallows exactly the
// weight its delivered items carried, so estimated_count + lost_weight
// reconstructs the full pre-failure count, and the surviving sub-streams'
// estimates are untouched.
TEST(CheckpointTest, DetachedSubtreeLossIsExactlyQuantified) {
  EdgeTreeConfig config;
  config.layer_widths = {4};
  config.engine = EngineKind::kNative;  // exact: counts are deterministic
  EdgeTree tree(config);

  // Interval 0: all four leaves alive.
  std::vector<std::vector<Item>> items(4);
  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    for (int i = 0; i < 25; ++i) {
      items[leaf].push_back(Item{SubStreamId{leaf + 1}, 2.0, 0});
    }
  }
  tree.tick(items);

  // Leaf 2 dies; two more intervals flow. It comes back before the close:
  // a window that STARTS with every node alive is clean again.
  tree.detach_subtree(0, 2);
  tree.tick(items);
  tree.tick(items);
  tree.reattach_subtree(0, 2);

  const ApproxResult result = tree.close_window();
  EXPECT_TRUE(result.degraded);
  // Leaf 2 delivered 25 weight-1 items in each of 2 dead intervals.
  EXPECT_EQ(result.lost_items, 50u);
  EXPECT_DOUBLE_EQ(result.lost_weight, 50.0);
  // Conservation: 12 bundles of 25 pushed, 50 lost, the rest estimated
  // exactly (native engine: estimate == count).
  EXPECT_DOUBLE_EQ(result.estimated_count + result.lost_weight, 300.0);

  // The healed window is clean.
  tree.tick(items);
  const ApproxResult healed = tree.close_window();
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.lost_items, 0u);
  EXPECT_DOUBLE_EQ(healed.lost_weight, 0.0);
}

// Losing an INTERIOR node swallows re-weighted bundles: the lost weight
// must equal the original delivered count of the whole subtree (Eq. 8),
// not the (smaller) sampled item count.
TEST(CheckpointTest, InteriorLossReconstructsOriginalCountViaWeights) {
  EdgeTreeConfig config;
  config.layer_widths = {4, 2};
  config.sampling_fraction = 0.25;  // real sampling: weights > 1
  config.rng_seed = 11;
  EdgeTree tree(config);

  std::vector<std::vector<Item>> items(4);
  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    for (int i = 0; i < 50; ++i) {
      items[leaf].push_back(Item{SubStreamId{1 + (leaf % 2)}, 1.0, 0});
    }
  }
  tree.tick(items);  // healthy warm-up

  tree.detach_subtree(1, 0);  // mid node 0: leaves 0+1 feed it
  tree.tick(items);
  tree.tick(items);
  const ApproxResult result = tree.close_window();

  EXPECT_TRUE(result.degraded);
  // Two intervals × two leaves × 50 items flowed into the dead mid node;
  // their sampled survivors carried weights summing back to 200 exactly.
  EXPECT_DOUBLE_EQ(result.lost_weight, 200.0);
  EXPECT_GT(result.lost_items, 0u);
  EXPECT_LE(result.lost_items, 200u);
}

}  // namespace
}  // namespace approxiot::core
