// Adaptive control-plane bench: the §IV-B feedback loop live on the
// ConcurrentEdgeTree, measured end to end.
//
// The user states an error budget; starting from a deliberately wasteful
// fraction of 1.0 the root observes each window's confidence interval,
// the AdaptiveController proposes the next end-to-end fraction, and the
// control plane publishes epoch N+1 without stopping a single worker.
// The bench reports the convergence trajectory — per-window fraction,
// observed relative error, policy epoch, samples kept — plus the resource
// win: items forwarded per window before vs after convergence (the whole
// point of adapting down is to stop paying for accuracy nobody asked
// for).
//
// Output: a human-readable table plus one JSON line per phase in the
// shared bench_util shape (`--smoke` shrinks the run for CI; the smoke
// run still asserts that the loop actually adapted off its start).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/concurrent_tree.hpp"
#include "workload/generators.hpp"
#include "workload/substream.hpp"

namespace {

using namespace approxiot;

struct WindowStat {
  double fraction{0.0};
  double relative_error{0.0};
  double epoch{0.0};
  double sampled{0.0};
  double forwarded_ratio{0.0};  // items reaching the root / items ingested
};

std::vector<WindowStat> run_loop(double target, std::size_t windows,
                                 std::size_t ticks_per_window,
                                 double rate_items_per_s) {
  runtime::ConcurrentTreeConfig config;
  config.tree.layer_widths = {4, 2};
  config.tree.sampling_fraction = 1.0;
  config.tree.rng_seed = 20180701;
  config.adaptive.enabled = true;
  config.adaptive.controller.target_relative_error = target;
  config.adaptive.controller.tolerance = 0.2;
  config.adaptive.controller.min_fraction = 0.001;
  runtime::ConcurrentEdgeTree tree(config);

  workload::StreamGenerator gen(workload::skewed_poisson(rate_items_per_s),
                                7);
  std::vector<WindowStat> stats;
  SimTime now = SimTime::zero();
  const SimTime dt = SimTime::from_millis(100);
  std::uint64_t last_ingested = 0;
  std::uint64_t last_at_root = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    WindowStat stat;
    stat.fraction = tree.adaptive_fraction();
    for (std::size_t k = 0; k < ticks_per_window; ++k) {
      tree.push_interval(
          workload::shard_by_substream(gen.tick(now, dt), tree.leaf_count()));
      now = now + dt;
    }
    tree.drain();
    const auto metrics = tree.metrics();
    const std::uint64_t ingested = metrics.items_ingested - last_ingested;
    const std::uint64_t at_root = metrics.items_at_root - last_at_root;
    last_ingested = metrics.items_ingested;
    last_at_root = metrics.items_at_root;

    const core::ApproxResult result = tree.close_window();
    stat.relative_error = result.sum.relative_margin();
    stat.epoch = static_cast<double>(result.policy_epoch);
    stat.sampled = static_cast<double>(result.sampled_items);
    stat.forwarded_ratio =
        ingested > 0 ? static_cast<double>(at_root) /
                           static_cast<double>(ingested)
                     : 0.0;
    stats.push_back(stat);
  }
  tree.stop();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t windows = smoke ? 12 : 40;
  const std::size_t ticks = 10;
  const double rate = smoke ? 20000.0 : 50000.0;
  const double target = 0.0005;  // 0.05 % — interior on this skew

  bench::print_header(
      "bench_adaptive: live §IV-B feedback on ConcurrentEdgeTree",
      "error budget " + std::to_string(target * 100.0) +
          "% on the Fig. 10(c) skew, fraction starts at 1.0");

  const auto stats = run_loop(target, windows, ticks, rate);

  std::printf("%-8s%12s%16s%10s%12s%16s\n", "window", "fraction",
              "rel err %", "epoch", "sampled", "to-root ratio");
  for (std::size_t w = 0; w < stats.size(); ++w) {
    std::printf("%-8zu%12.4f%16.5f%10.0f%12.0f%16.4f\n", w,
                stats[w].fraction, stats[w].relative_error * 100.0,
                stats[w].epoch, stats[w].sampled, stats[w].forwarded_ratio);
  }

  // Resource win: settled vs first-window forwarding cost.
  const WindowStat& first = stats.front();
  const WindowStat& last = stats.back();
  std::printf(
      "\nconverged: fraction %.4f -> %.4f, to-root ratio %.4f -> %.4f "
      "(%.1fx less data moved)\n",
      first.fraction, last.fraction, first.forwarded_ratio,
      last.forwarded_ratio,
      last.forwarded_ratio > 0.0 ? first.forwarded_ratio /
                                       last.forwarded_ratio
                                 : 0.0);

  std::vector<int> window_index;
  std::vector<double> fractions, errors_pct, epochs, ratios;
  for (std::size_t w = 0; w < stats.size(); ++w) {
    window_index.push_back(static_cast<int>(w));
    fractions.push_back(stats[w].fraction);
    errors_pct.push_back(stats[w].relative_error * 100.0);
    epochs.push_back(stats[w].epoch);
    ratios.push_back(stats[w].forwarded_ratio);
  }
  bench::print_json_result("adaptive", "ApproxIoT", "window", window_index,
                           {{"fraction", fractions},
                            {"relative_error_pct", errors_pct},
                            {"policy_epoch", epochs},
                            {"to_root_ratio", ratios}});

  // Smoke-mode sanity: the loop must have adapted off its start and the
  // epochs must have advanced — a frozen control plane here means the
  // feedback edge broke.
  if (last.fraction >= first.fraction || last.epoch < 1.0) {
    std::fprintf(stderr,
                 "FAIL: adaptive loop did not adapt (fraction %.4f -> "
                 "%.4f, epoch %.0f)\n",
                 first.fraction, last.fraction, last.epoch);
    return 1;
  }
  return 0;
}
