#include "workload/ground_truth.hpp"

#include <cmath>
#include <limits>

namespace approxiot::workload {

double GroundTruth::sum(SubStreamId id) const {
  auto it = moments_.find(id);
  return it == moments_.end() ? 0.0 : it->second.sum();
}

std::uint64_t GroundTruth::count(SubStreamId id) const {
  auto it = moments_.find(id);
  return it == moments_.end() ? 0 : it->second.count();
}

double GroundTruth::total_sum() const {
  double total = 0.0;
  for (const auto& [_, m] : moments_) total += m.sum();
  return total;
}

std::uint64_t GroundTruth::total_count() const {
  std::uint64_t total = 0;
  for (const auto& [_, m] : moments_) total += m.count();
  return total;
}

double GroundTruth::total_mean() const {
  const std::uint64_t n = total_count();
  return n > 0 ? total_sum() / static_cast<double>(n) : 0.0;
}

std::vector<SubStreamId> GroundTruth::sub_streams() const {
  std::vector<SubStreamId> out;
  out.reserve(moments_.size());
  for (const auto& [id, _] : moments_) out.push_back(id);
  return out;
}

double accuracy_loss_percent(double approx, double exact) {
  if (exact == 0.0) {
    return approx == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return 100.0 * std::fabs(approx - exact) / std::fabs(exact);
}

}  // namespace approxiot::workload
