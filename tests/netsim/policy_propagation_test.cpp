// Policy updates over simulated WAN links (§IV-B under latency): the root
// publishes epoch N+1 at window close, but a node h hops down only adopts
// it after the sum of those hops' one-way latencies. The probe below
// samples every node's epoch on a fine grid and must catch the update IN
// FLIGHT — root already on the new epoch, leaves still sampling under the
// old one — before everyone converges.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "netsim/sim.hpp"
#include "netsim/tree.hpp"
#include "workload/generators.hpp"
#include "workload/substream.hpp"

namespace approxiot::netsim {
namespace {

struct Probe {
  SimTime at{};
  core::PolicyEpoch root{0};
  core::PolicyEpoch mid{0};   // layer 1 (one hop below the root)
  core::PolicyEpoch leaf{0};  // layer 0 (two hops below the root)
};

TEST(PolicyPropagationTest, UpdatesArriveHopByHopWithLatency) {
  Simulator sim;
  TreeNetConfig config;
  config.sampling_fraction = 1.0;  // wasteful start: the loop adapts down
  config.sources = 8;
  config.layer_widths = {4, 2};
  config.hop_rtts = {SimTime::from_millis(20), SimTime::from_millis(40),
                     SimTime::from_millis(80)};
  config.adaptive = true;
  config.adaptive_config.target_relative_error = 0.0005;
  config.adaptive_config.min_fraction = 0.01;
  config.rng_seed = 11;

  workload::StreamGenerator gen(workload::skewed_poisson(20000.0), 3);
  TreeNetwork net(sim, config, [&gen](std::size_t, SimTime now) {
    return gen.tick(now, SimTime::from_millis(100.0 / 8.0));
  });

  // Fine-grained epoch probe: 5 ms spacing is well below the 40 ms
  // root->mid and 60 ms root->leaf delivery delays, so any publish is
  // observed mid-flight.
  auto probes = std::make_shared<std::vector<Probe>>();
  std::function<void()> probe_fn = [&sim, &net, probes, &probe_fn]() {
    Probe p;
    p.at = sim.now();
    p.root = net.node_policy_epoch(2, 0);
    p.mid = net.node_policy_epoch(1, 0);
    p.leaf = net.node_policy_epoch(0, 0);
    probes->push_back(p);
    sim.schedule_after(SimTime::from_millis(5), probe_fn);
  };
  sim.schedule_after(SimTime::from_millis(5), probe_fn);

  net.run_for(SimTime::from_seconds(12.0));
  net.drain();

  // The loop actually ran: at least one publish, fraction pulled down off
  // the wasteful start.
  ASSERT_FALSE(net.fraction_history().empty());
  EXPECT_LT(net.fraction_history().back().second, 1.0);

  // Epochs never regress at any node, the root always leads, and the
  // leaf (more hops) never leads the mid layer.
  bool saw_root_ahead_of_mid = false;   // update crossing the 80 ms hop
  bool saw_mid_ahead_of_leaf = false;   // update crossing the 40 ms hop
  for (std::size_t i = 0; i < probes->size(); ++i) {
    const Probe& p = (*probes)[i];
    EXPECT_GE(p.root, p.mid);
    EXPECT_GE(p.mid, p.leaf);
    if (i > 0) {
      EXPECT_GE(p.root, (*probes)[i - 1].root);
      EXPECT_GE(p.mid, (*probes)[i - 1].mid);
      EXPECT_GE(p.leaf, (*probes)[i - 1].leaf);
    }
    if (p.root > p.mid) saw_root_ahead_of_mid = true;
    if (p.mid > p.leaf) saw_mid_ahead_of_leaf = true;
  }
  // The WAN was visible: probes caught the update in flight on both hop
  // segments (root->mid takes 40 ms, mid->leaf another 20 ms — both far
  // above the 5 ms probe spacing).
  EXPECT_TRUE(saw_root_ahead_of_mid);
  EXPECT_TRUE(saw_mid_ahead_of_leaf);

  // After the drain no update is in flight: every node converged to the
  // root's epoch.
  const core::PolicyEpoch final_epoch = net.node_policy_epoch(2, 0);
  EXPECT_GE(final_epoch, 1u);
  for (std::size_t i = 0; i < config.layer_widths[0]; ++i) {
    EXPECT_EQ(net.node_policy_epoch(0, i), final_epoch);
  }
  for (std::size_t i = 0; i < config.layer_widths[1]; ++i) {
    EXPECT_EQ(net.node_policy_epoch(1, i), final_epoch);
  }

  // Windows carry their epoch attribution; once adapted, later windows
  // report under later epochs.
  ASSERT_GE(net.windows().size(), 3u);
  EXPECT_GE(net.windows().back().result.policy_epoch,
            net.windows().front().result.policy_epoch);
}

}  // namespace
}  // namespace approxiot::netsim
