#include "analytics/extended.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/whsamp.hpp"

namespace approxiot::analytics {
namespace {

using core::ThetaStore;
using core::WeightedSample;

WeightedSample pair_of(SubStreamId id, double weight,
                       std::initializer_list<double> values) {
  WeightedSample p;
  p.weight = weight;
  for (double v : values) p.items.push_back(Item{id, v, 0});
  return p;
}

ThetaStore ranked_theta() {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(SubStreamId{1}, 1.0, {5.0}));
  theta.add_pair(SubStreamId{2}, pair_of(SubStreamId{2}, 2.0, {50.0}));
  theta.add_pair(SubStreamId{3}, pair_of(SubStreamId{3}, 1.0, {20.0, 30.0}));
  return theta;
}

TEST(TopKTest, RanksByEstimatedSum) {
  // Sums: S1 = 5, S2 = 100, S3 = 50.
  auto top = execute_topk(ranked_theta(), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, SubStreamId{2});
  EXPECT_DOUBLE_EQ(top[0].sum.point, 100.0);
  EXPECT_EQ(top[1].id, SubStreamId{3});
  EXPECT_EQ(top[2].id, SubStreamId{1});
}

TEST(TopKTest, TruncatesToK) {
  auto top = execute_topk(ranked_theta(), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, SubStreamId{2});
}

TEST(TopKTest, FewerStreamsThanK) {
  auto top = execute_topk(ranked_theta(), 10);
  EXPECT_EQ(top.size(), 3u);
}

TEST(TopKTest, EmptyTheta) {
  EXPECT_TRUE(execute_topk(ThetaStore{}, 5).empty());
  EXPECT_FALSE(topk_winner_is_significant({}));
}

TEST(TopKTest, FullySampledEntriesHaveZeroMargin) {
  auto top = execute_topk(ranked_theta(), 3);
  // All weights here imply c == ζ only for weight-1 pairs.
  EXPECT_EQ(top[2].sum.margin, 0.0);  // S1 (weight 1: exact)
}

TEST(TopKTest, SignificanceDetection) {
  // Clear winner: exact strata, disjoint sums.
  auto top = execute_topk(ranked_theta(), 2);
  EXPECT_TRUE(topk_winner_is_significant(top));

  // Same point estimates -> overlapping (zero-width) intervals tie.
  ThetaStore tie;
  tie.add_pair(SubStreamId{1}, pair_of(SubStreamId{1}, 1.0, {10.0}));
  tie.add_pair(SubStreamId{2}, pair_of(SubStreamId{2}, 1.0, {10.0}));
  EXPECT_FALSE(topk_winner_is_significant(execute_topk(tie, 2)));
}

TEST(TopKTest, RankingSurvivesSampling) {
  // Build three strata with well-separated sums, sample at 10%, and
  // check the top-k order still matches the truth.
  Rng rng(31);
  std::vector<Item> items;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    for (int i = 0; i < 3000; ++i) {
      items.push_back(Item{SubStreamId{s},
                           static_cast<double>(s * s) + rng.next_double(), 0});
    }
  }
  core::WHSampler sampler(Rng(77));
  ThetaStore theta;
  theta.add(sampler.sample(items, 900, core::WeightMap{}));

  auto top = execute_topk(theta, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, SubStreamId{3});
  EXPECT_EQ(top[1].id, SubStreamId{2});
  EXPECT_EQ(top[2].id, SubStreamId{1});
}

TEST(QuantileTest, ValidatesRange) {
  EXPECT_FALSE(execute_quantile(ranked_theta(), -0.1).is_ok());
  EXPECT_FALSE(execute_quantile(ranked_theta(), 1.1).is_ok());
}

TEST(QuantileTest, EmptyThetaFails) {
  EXPECT_FALSE(execute_quantile(ThetaStore{}, 0.5).is_ok());
}

TEST(QuantileTest, UnweightedMedian) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1},
                 pair_of(SubStreamId{1}, 1.0, {1, 2, 3, 4, 5}));
  auto median = execute_median(theta);
  ASSERT_TRUE(median.is_ok());
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
}

TEST(QuantileTest, WeightsShiftTheQuantile) {
  // Value 10 stands for 9 originals, value 1 for one: the median of the
  // reconstructed population {1, 10×9} is 10.
  ThetaStore theta;
  theta.add_pair(SubStreamId{1}, pair_of(SubStreamId{1}, 1.0, {1.0}));
  theta.add_pair(SubStreamId{1}, pair_of(SubStreamId{1}, 9.0, {10.0}));
  auto median = execute_median(theta);
  ASSERT_TRUE(median.is_ok());
  EXPECT_DOUBLE_EQ(median.value(), 10.0);
}

TEST(QuantileTest, ExtremesReturnMinAndMax) {
  ThetaStore theta;
  theta.add_pair(SubStreamId{1},
                 pair_of(SubStreamId{1}, 1.0, {7.0, 3.0, 9.0}));
  EXPECT_DOUBLE_EQ(execute_quantile(theta, 0.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(execute_quantile(theta, 1.0).value(), 9.0);
}

TEST(QuantileTest, ApproximatesPopulationQuantileUnderSampling) {
  // Uniform[0,1000) population, 5% sample: the weighted quantile should
  // land near the true quantile.
  Rng rng(41);
  std::vector<Item> items;
  for (int i = 0; i < 20000; ++i) {
    items.push_back(Item{SubStreamId{1}, rng.next_double() * 1000.0, 0});
  }
  core::WHSampler sampler(Rng(43));
  ThetaStore theta;
  theta.add(sampler.sample(items, 1000, core::WeightMap{}));

  for (double q : {0.1, 0.5, 0.9}) {
    auto estimate = execute_quantile(theta, q);
    ASSERT_TRUE(estimate.is_ok());
    EXPECT_NEAR(estimate.value(), q * 1000.0, 60.0) << "q=" << q;
  }
}

}  // namespace
}  // namespace approxiot::analytics
