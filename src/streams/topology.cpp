#include "streams/topology.hpp"

#include <algorithm>
#include <set>

namespace approxiot::streams {

std::vector<std::string> Topology::sources() const {
  std::vector<std::string> out;
  for (const auto& [name, node] : nodes_) {
    if (node.kind == TopologyNode::Kind::kSource) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Topology::sinks() const {
  std::vector<std::string> out;
  for (const auto& [name, node] : nodes_) {
    if (node.kind == TopologyNode::Kind::kSink) out.push_back(name);
  }
  return out;
}

TopologyBuilder& TopologyBuilder::add_source(const std::string& name,
                                             const std::string& topic) {
  TopologyNode node;
  node.name = name;
  node.kind = TopologyNode::Kind::kSource;
  node.topic = topic;
  pending_.push_back(std::move(node));
  return *this;
}

TopologyBuilder& TopologyBuilder::add_processor(
    const std::string& name,
    std::function<std::unique_ptr<Processor>()> factory,
    const std::vector<std::string>& parents) {
  TopologyNode node;
  node.name = name;
  node.kind = TopologyNode::Kind::kProcessor;
  node.factory = std::move(factory);
  node.parents = parents;
  pending_.push_back(std::move(node));
  return *this;
}

TopologyBuilder& TopologyBuilder::add_sink(
    const std::string& name, const std::string& topic,
    const std::vector<std::string>& parents) {
  TopologyNode node;
  node.name = name;
  node.kind = TopologyNode::Kind::kSink;
  node.topic = topic;
  node.parents = parents;
  pending_.push_back(std::move(node));
  return *this;
}

Result<Topology> TopologyBuilder::build() const {
  Topology topo;

  for (const TopologyNode& node : pending_) {
    if (node.name.empty()) {
      return Status::invalid_argument("topology node with empty name");
    }
    if (topo.nodes_.count(node.name) > 0) {
      return Status::already_exists("topology node '" + node.name + "'");
    }
    if (node.kind == TopologyNode::Kind::kSource && node.topic.empty()) {
      return Status::invalid_argument("source '" + node.name +
                                      "' has no topic");
    }
    if (node.kind == TopologyNode::Kind::kSink && node.topic.empty()) {
      return Status::invalid_argument("sink '" + node.name + "' has no topic");
    }
    if (node.kind == TopologyNode::Kind::kProcessor && !node.factory) {
      return Status::invalid_argument("processor '" + node.name +
                                      "' has no factory");
    }
    if (node.kind != TopologyNode::Kind::kSource && node.parents.empty()) {
      return Status::invalid_argument("node '" + node.name +
                                      "' has no parents");
    }
    if (node.kind == TopologyNode::Kind::kSource && !node.parents.empty()) {
      return Status::invalid_argument("source '" + node.name +
                                      "' cannot have parents");
    }
    topo.nodes_.emplace(node.name, node);
  }

  // Resolve parents and populate children.
  for (auto& [name, node] : topo.nodes_) {
    for (const std::string& parent : node.parents) {
      auto it = topo.nodes_.find(parent);
      if (it == topo.nodes_.end()) {
        return Status::not_found("parent '" + parent + "' of node '" + name +
                                 "'");
      }
      if (it->second.kind == TopologyNode::Kind::kSink) {
        return Status::invalid_argument("sink '" + parent +
                                        "' cannot have children");
      }
      it->second.children.push_back(name);
    }
  }

  // Kahn's algorithm for a topological order; leftovers indicate a cycle.
  std::map<std::string, std::size_t> in_degree;
  for (const auto& [name, node] : topo.nodes_) {
    in_degree[name] = node.parents.size();
  }
  std::vector<std::string> frontier;
  for (const auto& [name, degree] : in_degree) {
    if (degree == 0) frontier.push_back(name);
  }
  std::sort(frontier.begin(), frontier.end());
  while (!frontier.empty()) {
    const std::string name = frontier.front();
    frontier.erase(frontier.begin());
    topo.order_.push_back(name);
    for (const std::string& child : topo.nodes_.at(name).children) {
      if (--in_degree.at(child) == 0) {
        frontier.insert(
            std::upper_bound(frontier.begin(), frontier.end(), child), child);
      }
    }
  }
  if (topo.order_.size() != topo.nodes_.size()) {
    return Status::invalid_argument("topology contains a cycle");
  }
  return topo;
}

}  // namespace approxiot::streams
