// Figure 7: bandwidth saving vs sampling fraction.
//
// The saving rate on the WAN links towards the datacenter is measured
// against the native run. Paper's result: the saving is ~(100 - fraction)%
// for both ApproxIoT and SRS — the sampled fraction is all that crosses
// the WAN.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace approxiot;
using namespace approxiot::bench;

/// Bytes crossing the final (edge -> datacenter) hop during a fixed run.
std::uint64_t dc_hop_bytes(core::EngineKind engine, double fraction) {
  netsim::Simulator sim;
  netsim::TreeNetConfig config =
      testbed_config(engine, fraction, SimTime::from_seconds(1.0));
  netsim::TreeNetwork net(
      sim, config,
      constant_rate_source(60000.0, config.sources, config.source_tick));
  net.run_for(SimTime::from_seconds(8.0));
  net.drain();
  return net.bytes_per_hop().back();
}

}  // namespace

int main() {
  print_header("Figure 7: bandwidth saving vs sampling fraction",
               "saving ~= (100 - fraction)% for both systems");

  print_cols("fraction(%)", paper_fractions());

  const std::uint64_t native_bytes =
      dc_hop_bytes(core::EngineKind::kNative, 1.0);

  for (core::EngineKind engine :
       {core::EngineKind::kApproxIoT, core::EngineKind::kSrs}) {
    std::vector<double> savings;
    for (int f : paper_fractions()) {
      const std::uint64_t bytes = dc_hop_bytes(engine, f / 100.0);
      savings.push_back(100.0 * (1.0 - static_cast<double>(bytes) /
                                           static_cast<double>(native_bytes)));
    }
    print_row(std::string("BW saving% ") + core::engine_kind_name(engine),
              savings, "%12.1f");
  }
  return 0;
}
