#include "workload/pollution.hpp"

#include <cmath>
#include <memory>

namespace approxiot::workload {

namespace {

std::vector<SubStreamSpec> build_specs(const PollutionConfig& config) {
  // Typical urban component levels (µg/m³-ish magnitudes) with the small
  // relative dispersion the Brasov dataset exhibits.
  struct Pollutant {
    const char* name;
    double mean;
    double sigma;
  };
  static constexpr Pollutant kPollutants[] = {
      {"pm", 35.0, 4.0},
      {"co", 900.0, 60.0},
      {"so2", 20.0, 2.5},
      {"no2", 40.0, 5.0},
  };

  // Every sensor reports all four pollutants once per period, so each
  // pollutant sub-stream runs at sensors / period.
  const double rate = static_cast<double>(config.sensors) /
                      config.report_period.seconds();

  std::vector<SubStreamSpec> specs;
  std::uint64_t id = 200;
  for (const Pollutant& p : kPollutants) {
    SubStreamSpec spec;
    spec.id = SubStreamId{id++};
    spec.name = p.name;
    spec.values =
        std::make_shared<stats::GaussianDistribution>(p.mean, p.sigma);
    spec.rate_items_per_s = rate;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

PollutionGenerator::PollutionGenerator(PollutionConfig config)
    : config_(config), generator_(build_specs(config), config.seed) {}

double PollutionGenerator::drift_factor(SimTime t) const noexcept {
  const double phase = 2.0 * M_PI *
                       static_cast<double>(t.us % config_.drift_period.us) /
                       static_cast<double>(config_.drift_period.us);
  return 1.0 + 0.05 * std::sin(phase);
}

std::vector<Item> PollutionGenerator::tick(SimTime now, SimTime dt) {
  auto items = generator_.tick(now, dt);
  const double drift = drift_factor(now);
  for (Item& item : items) item.value *= drift;
  return items;
}

}  // namespace approxiot::workload
