#include "flowqueue/consumer.hpp"

#include <algorithm>

#include "obs/hooks.hpp"

namespace approxiot::flowqueue {

Consumer::Consumer(Broker& broker, std::string client_id)
    : broker_(&broker), client_id_(std::move(client_id)) {}

Consumer::~Consumer() {
  if (in_group_) {
    (void)broker_->leave_group(group_, client_id_);
  }
}

Status Consumer::subscribe(const std::string& group,
                           const std::vector<std::string>& topics) {
  if (in_group_ && group != group_) {
    return Status::failed_precondition("consumer '" + client_id_ +
                                       "' already in group '" + group_ + "'");
  }
  for (const auto& t : topics) {
    if (std::find(subscribed_topics_.begin(), subscribed_topics_.end(), t) ==
        subscribed_topics_.end()) {
      subscribed_topics_.push_back(t);
    }
  }
  auto assigned = broker_->join_group(group, client_id_, subscribed_topics_);
  if (!assigned) return assigned.status();
  group_ = group;
  in_group_ = true;
  seen_generation_ = broker_->group_generation(group_);
  assignment_ = assigned.value();
  for (const auto& tp : assignment_) positions_.try_emplace(tp, 0);
  next_partition_index_ = 0;
  return Status::ok();
}

Status Consumer::assign(std::vector<TopicPartition> partitions) {
  if (in_group_) {
    return Status::failed_precondition(
        "assign() is incompatible with group subscription");
  }
  for (const auto& tp : partitions) {
    auto topic = broker_->topic(tp.topic);
    if (!topic) return topic.status();
    if (tp.partition >= topic.value()->partition_count()) {
      return Status::out_of_range("partition " + std::to_string(tp.partition) +
                                  " of topic '" + tp.topic + "'");
    }
  }
  assignment_ = std::move(partitions);
  positions_.clear();
  for (const auto& tp : assignment_) positions_.try_emplace(tp, 0);
  next_partition_index_ = 0;
  return Status::ok();
}

void Consumer::refresh_assignment_if_stale() {
  if (!in_group_) return;
  const std::uint64_t gen = broker_->group_generation(group_);
  if (gen == seen_generation_) return;
  auto assigned = broker_->assignment(group_, client_id_);
  if (!assigned) return;  // kicked out; keep the stale view until re-join
  seen_generation_ = gen;
  assignment_ = assigned.value();
  for (const auto& tp : assignment_) positions_.try_emplace(tp, 0);
  next_partition_index_ = 0;
}

Result<std::vector<Record>> Consumer::poll(std::size_t max_records) {
  refresh_assignment_if_stale();
  std::vector<Record> batch;
  if (assignment_.empty() || max_records == 0) return batch;

  // Round-robin across partitions, remembering where we stopped so a hot
  // partition cannot starve the others across poll() calls.
  const std::size_t parts = assignment_.size();
  for (std::size_t visited = 0; visited < parts && batch.size() < max_records;
       ++visited) {
    const std::size_t idx = (next_partition_index_ + visited) % parts;
    const TopicPartition& tp = assignment_[idx];
    auto topic = broker_->topic(tp.topic);
    if (!topic) continue;
    Offset& pos = positions_[tp];
    const std::size_t got = topic.value()->partition(tp.partition).read(
        pos, max_records - batch.size(), batch);
    pos += static_cast<Offset>(got);
  }
  next_partition_index_ = (next_partition_index_ + 1) % parts;
  AIOT_OBS(
      if (records_polled_ != nullptr) records_polled_->increment(batch.size());
      update_stats(););
  return batch;
}

void Consumer::bind_stats(obs::StatsRegistry& registry,
                          const std::string& scope) {
  AIOT_OBS(lag_gauge_ = &registry.gauge(scope + "/lag");
           watermark_age_gauge_ = &registry.gauge(scope + "/watermark_age_us");
           caught_up_gauge_ = &registry.gauge(scope + "/caught_up");
           assigned_gauge_ = &registry.gauge(scope + "/assigned_partitions");
           records_polled_ = &registry.counter(scope + "/records_polled");
           update_stats(););
  (void)registry;
  (void)scope;
}

void Consumer::update_stats() {
  AIOT_OBS(
      if (lag_gauge_ == nullptr) return;
      std::int64_t lag = 0;
      std::int64_t worst_age_us = 0;
      bool behind = false;
      for (const PartitionWatermark& mark : partition_watermarks()) {
        if (mark.lag() > 0) lag += mark.lag();
        if (mark.caught_up()) continue;
        behind = true;
        // Age of this partition's watermark in stream time: the newest
        // appended record minus the next unread one. Offsets are dense,
        // so end_offset - 1 is always the newest record.
        auto topic = broker_->topic(mark.tp.topic);
        if (!topic) continue;
        const PartitionLog& log = topic.value()->partition(mark.tp.partition);
        const auto oldest_unread = log.timestamp_at(mark.position);
        const auto newest = log.timestamp_at(mark.end_offset - 1);
        if (oldest_unread.has_value() && newest.has_value()) {
          worst_age_us =
              std::max(worst_age_us, (*newest - *oldest_unread).us);
        }
      }
      lag_gauge_->set(static_cast<double>(lag));
      watermark_age_gauge_->set(static_cast<double>(worst_age_us));
      caught_up_gauge_->set(!behind && !assignment_.empty() ? 1.0 : 0.0);
      assigned_gauge_->set(static_cast<double>(assignment_.size())););
}

Status Consumer::seek(const TopicPartition& tp, Offset offset) {
  if (offset < 0) return Status::invalid_argument("negative offset");
  auto it = positions_.find(tp);
  if (it == positions_.end()) {
    return Status::not_found("partition not assigned to consumer '" +
                             client_id_ + "'");
  }
  // Clamp to the log end. A position past end_offset would make lag()
  // negative, and a negative per-partition lag silently cancels real lag
  // from other partitions in total_lag() — so caught_up()/watermark
  // flushes could fire while records are still unread.
  auto topic = broker_->topic(tp.topic);
  if (topic.is_ok() && tp.partition < topic.value()->partition_count()) {
    const Offset end = topic.value()->partition(tp.partition).end_offset();
    if (offset > end) offset = end;
  }
  it->second = offset;
  return Status::ok();
}

Status Consumer::commit() {
  if (!in_group_) {
    return Status::failed_precondition("commit() requires group membership");
  }
  for (const auto& [tp, pos] : positions_) {
    if (Status s = broker_->commit_offset(group_, tp, pos); !s.is_ok()) {
      return s;
    }
  }
  return Status::ok();
}

Status Consumer::restore_committed() {
  if (!in_group_) {
    return Status::failed_precondition(
        "restore_committed() requires group membership");
  }
  for (auto& [tp, pos] : positions_) {
    pos = broker_->committed_offset(group_, tp);
  }
  return Status::ok();
}

Offset Consumer::position(const TopicPartition& tp) const {
  auto it = positions_.find(tp);
  return it == positions_.end() ? 0 : it->second;
}

std::vector<PartitionWatermark> Consumer::partition_watermarks() const {
  std::vector<PartitionWatermark> out;
  out.reserve(assignment_.size());
  for (const auto& tp : assignment_) {
    PartitionWatermark mark;
    mark.tp = tp;
    auto it = positions_.find(tp);
    mark.position = it == positions_.end() ? 0 : it->second;
    auto topic = broker_->topic(tp.topic);
    if (topic) {
      mark.end_offset = topic.value()->partition(tp.partition).end_offset();
    }
    out.push_back(std::move(mark));
  }
  return out;
}

bool Consumer::caught_up() const {
  if (assignment_.empty()) return false;
  // A pending rebalance may have handed this consumer partitions it has
  // not polled yet; until the next poll() refreshes the assignment,
  // nothing is provably consumed — callers gating destructive flushes
  // on this answer (FlowQueueSource) must get a conservative false.
  if (in_group_ && broker_->group_generation(group_) != seen_generation_) {
    return false;
  }
  // Not total_lag() == 0: a partition sought past its end would
  // contribute negative lag and could cancel another's positive lag.
  // The per-partition watermark predicate has no such failure mode.
  for (const PartitionWatermark& mark : partition_watermarks()) {
    if (!mark.caught_up()) return false;
  }
  return true;
}

std::int64_t Consumer::total_lag() const {
  std::int64_t lag = 0;
  for (const auto& tp : assignment_) {
    auto topic = broker_->topic(tp.topic);
    if (!topic) continue;
    const Offset end = topic.value()->partition(tp.partition).end_offset();
    auto it = positions_.find(tp);
    const Offset pos = it == positions_.end() ? 0 : it->second;
    lag += end - pos;
  }
  return lag;
}

}  // namespace approxiot::flowqueue
