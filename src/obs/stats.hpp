// Hierarchical stats registry: one instrumentation layer for every
// runtime (gem5's base/statistics.hh discipline, adapted to a streaming
// system).
//
// Names are scoped paths ("tree/L0/n3/exec_us", "flowqueue/consumer/lag")
// so one registry can hold every runtime's stats and exporters can group
// by subsystem. Five typed stats:
//
//   Counter         monotonic event count (items, intervals, drops)
//   Gauge           last-write-wins instantaneous value (depth, fraction)
//   Histogram       base-2 exponential buckets (latencies, batch sizes)
//   LinearHistogram fixed-range linear buckets (fractions, utilisation)
//   EwmaRate        exponentially-decayed events/s (throughput)
//
// plus Formula — a derived stat evaluated at snapshot time from a
// caller-supplied closure (ratios, normalised rates), so reports never
// hand-compute what the registry can derive.
//
// Concurrency: counters and gauges are single relaxed atomics; histograms
// are arrays of atomic bucket counts — every node/worker thread can record
// without blocking, and snapshot() never blocks writers. The registry
// mutex guards only name->stat registration; returned references stay
// valid for the registry's lifetime, so hot paths capture them once.
//
// Interval semantics: snapshot() is a point-in-time view;
// snapshot.delta_since(prev) subtracts counters and histogram buckets so
// per-window reporting (what happened THIS interval) needs no stat
// resets — writers never pause for a reporting boundary.
//
// Exporters: to_json() (one line, stable key order — the bench harness
// format), to_prometheus() (text exposition format, scrapeable), and the
// span tracer in obs/trace.hpp for chrome://tracing timelines.
//
// Compile-time off switch: building with -DAPPROXIOT_NO_STATS reduces
// every AIOT_OBS* hook (obs/hooks.hpp) to nothing. The classes here stay
// defined either way — only the instrumentation sites vanish — so mixed
// builds never violate the one-definition rule.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace approxiot::obs {

/// Monotonic event count (items forwarded, intervals processed, drops).
class Counter {
 public:
  void increment(std::uint64_t by = 1) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, sampling fraction).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential-bucket histogram over non-negative values (latencies in
/// microseconds, batch sizes). Bucket b holds values in [2^b, 2^(b+1))
/// with bucket 0 covering [0, 2). Percentiles interpolate within the
/// winning bucket, clamped to the observed [min, max] — so a single
/// sample reports itself exactly and an all-in-one-bucket distribution
/// never extrapolates past what was recorded.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min_value() const noexcept;
  [[nodiscard]] double max_value() const noexcept;

  /// Approximate q-quantile, q in [0, 1]. Returns 0 when empty; the
  /// result always lies within [min_value(), max_value()].
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Exclusive upper bound of bucket b (2^(b+1); bucket 0 is [0, 2)).
  [[nodiscard]] static double bucket_upper(std::size_t bucket) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only while count_ > 0
  std::atomic<double> max_{0.0};
};

/// Fixed-range linear histogram: `buckets` equal-width bins over
/// [lo, hi); values outside the range clamp into the first/last bin.
/// For bounded quantities where base-2 resolution is wrong — sampling
/// fractions, utilisations, occupancy ratios.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t buckets);

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min_value() const noexcept;
  [[nodiscard]] double max_value() const noexcept;
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] std::size_t bucket_count_total() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double bucket_upper(std::size_t bucket) const noexcept;

 private:
  double lo_;
  double width_;  // per-bucket
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Exponentially-weighted event rate: record(amount) folds events into a
/// decayed accumulator with time constant `tau` seconds, so rate_per_s()
/// tracks recent throughput and forgets ancient history. Deterministic
/// variants (record_at / rate_at) take explicit timestamps for tests and
/// simulated clocks.
class EwmaRate {
 public:
  explicit EwmaRate(double tau_seconds = 5.0);

  /// Wall-clock record (steady_clock internally).
  void record(double amount);
  /// Explicit-clock record; `now_seconds` must not decrease across calls.
  void record_at(double now_seconds, double amount);

  [[nodiscard]] double rate_per_s() const;
  [[nodiscard]] double rate_at(double now_seconds) const;

 private:
  [[nodiscard]] double now_seconds() const;

  double tau_;
  mutable std::mutex mutex_;
  double accum_{0.0};
  double last_update_s_{0.0};
  bool touched_{false};
};

/// Derived stat: evaluated at snapshot() time. Capture the stats it reads
/// by reference (registry references are stable).
using FormulaFn = std::function<double()>;

/// Point-in-time histogram view, including raw buckets so deltas and the
/// Prometheus exporter can reconstruct distributions.
struct HistogramStats {
  std::uint64_t count{0};
  double sum{0.0};
  double mean{0.0};
  double min{0.0};
  double max{0.0};
  double p50{0.0};
  double p90{0.0};
  double p99{0.0};
  /// (exclusive upper bound, count) for every non-empty bucket, ascending.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Point-in-time view of every stat in a registry.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, double> rates;
  std::map<std::string, double> formulas;
  std::map<std::string, HistogramStats> histograms;

  /// Interval view: counters and histogram buckets become differences
  /// against `prev` (a stat absent from `prev` contributes its full
  /// value); gauges, rates and formulas keep their current values.
  /// Delta-histogram percentiles are recomputed from the bucket
  /// differences (bucket-bound resolution — the per-interval min/max are
  /// not recoverable from two cumulative snapshots).
  [[nodiscard]] StatsSnapshot delta_since(const StatsSnapshot& prev) const;

  /// One-line JSON object, stable key order (the bench-artifact format).
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format. Scoped names are sanitised
  /// ('/', '.', '-' -> '_') and prefixed "approxiot_"; histograms emit
  /// cumulative _bucket{le=...} series plus _sum and _count.
  [[nodiscard]] std::string to_prometheus() const;
};

class StatsRegistry;

/// A prefixing view of a registry: scope("tree/L0/n3").counter("items")
/// registers "tree/L0/n3/items". Unbound (default-constructed) scopes
/// return nullptr from every accessor, so instrumentation sites can hold
/// one ScopedStats and null-check instead of threading registry+prefix
/// pairs around.
class ScopedStats {
 public:
  ScopedStats() = default;
  ScopedStats(StatsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  [[nodiscard]] bool bound() const noexcept { return registry_ != nullptr; }
  [[nodiscard]] StatsRegistry* registry() const noexcept { return registry_; }
  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }

  [[nodiscard]] Counter* counter(const std::string& name) const;
  [[nodiscard]] Gauge* gauge(const std::string& name) const;
  [[nodiscard]] Histogram* histogram(const std::string& name) const;
  [[nodiscard]] LinearHistogram* linear_histogram(const std::string& name,
                                                  double lo, double hi,
                                                  std::size_t buckets) const;
  [[nodiscard]] EwmaRate* rate(const std::string& name,
                               double tau_seconds = 5.0) const;

  [[nodiscard]] ScopedStats scope(const std::string& suffix) const {
    if (registry_ == nullptr) return {};
    return ScopedStats(registry_,
                       prefix_.empty() ? suffix : prefix_ + "/" + suffix);
  }

 private:
  [[nodiscard]] std::string full(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "/" + name;
  }

  StatsRegistry* registry_{nullptr};
  std::string prefix_;
};

/// Create-or-get registry of named stats. References remain valid until
/// the registry dies; registration takes the mutex, recording never does.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);
  /// Range/bucket parameters apply on first registration; later calls
  /// with the same name return the existing histogram unchanged.
  [[nodiscard]] LinearHistogram& linear_histogram(const std::string& name,
                                                  double lo, double hi,
                                                  std::size_t buckets);
  [[nodiscard]] EwmaRate& rate(const std::string& name,
                               double tau_seconds = 5.0);
  /// (Re-)registers a derived stat evaluated at snapshot time.
  void formula(const std::string& name, FormulaFn fn);

  [[nodiscard]] ScopedStats scope(const std::string& prefix) {
    return ScopedStats(this, prefix);
  }

  [[nodiscard]] StatsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LinearHistogram>> linear_histograms_;
  std::map<std::string, std::unique_ptr<EwmaRate>> rates_;
  std::map<std::string, FormulaFn> formulas_;
};

}  // namespace approxiot::obs
