// Query model: the linear aggregation queries ApproxIoT supports (§III-C,
// and the paper's limitation note that only linear queries are handled).
// A query names an aggregate over item values, optionally grouped by
// sub-stream, evaluated per window.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace approxiot::analytics {

enum class Aggregate { kSum, kMean, kCount };

[[nodiscard]] const char* aggregate_name(Aggregate a) noexcept;

struct Query {
  QueryId id{};
  std::string name;
  Aggregate aggregate{Aggregate::kSum};
  /// Empty == aggregate over all sub-streams; otherwise restrict to these.
  std::vector<SubStreamId> group;
  /// Confidence level for the reported error bound.
  double confidence{0.9544997361036416};  // 95% (two sigma)
};

/// Parses "sum" | "mean" | "count".
[[nodiscard]] Result<Aggregate> parse_aggregate(const std::string& text);

}  // namespace approxiot::analytics
