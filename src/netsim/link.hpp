// Simulated WAN link with propagation latency and finite bandwidth.
//
// Models the tc configuration of the paper's testbed: one-way propagation
// delay (half the configured RTT) plus store-and-forward serialization at
// `bandwidth_bps`. Transfers queue FIFO on the link: a transfer starts
// when the link is free, occupies it for bytes*8/bandwidth seconds, and
// arrives one propagation delay later. Byte counters feed the Fig. 7
// bandwidth-saving experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/time.hpp"
#include "netsim/sim.hpp"

namespace approxiot::netsim {

struct LinkConfig {
  SimTime one_way_latency{SimTime::from_millis(10)};
  double bandwidth_bps{1e9};  // 1 Gbps, the paper's link capacity
  std::string label;
};

class Link {
 public:
  Link(Simulator& sim, LinkConfig config);

  /// Schedules delivery of a payload of `bytes`; `on_arrival` fires at the
  /// receiver when the last bit lands.
  void transfer(std::uint64_t bytes, std::function<void()> on_arrival);

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

  /// Utilisation: busy time / elapsed time since construction.
  [[nodiscard]] double utilization() const noexcept;

  void reset_counters() noexcept;

 private:
  Simulator* sim_;
  LinkConfig config_;
  SimTime busy_until_{SimTime::zero()};
  SimTime busy_accum_{SimTime::zero()};
  SimTime created_at_{SimTime::zero()};
  std::uint64_t bytes_sent_{0};
  std::uint64_t transfers_{0};
};

}  // namespace approxiot::netsim
