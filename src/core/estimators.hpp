// Statistics computation over Θ (§III-C): SUM, MEAN and COUNT estimators
// for individual sub-streams and for the whole input stream.
//
//   SUM_i   = Σ_{(W,I)∈Θ_i} (Σ_k I_k) · W            (Eq. 3)
//   SUM*    = Σ_i SUM_i                              (Eq. 4)
//   ĉ_{i,b} = Σ_{(W,I)∈Θ_i} |I| · W                  (Eq. 8, exact)
//   MEAN*   = SUM* / Σ_i ĉ_{i,b}                     (Eq. 13)
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"
#include "core/theta_store.hpp"

namespace approxiot::core {

/// Per-sub-stream summary produced while scanning Θ once; shared by the
/// SUM/MEAN estimators and the error estimator so Θ is traversed once.
struct SubStreamEstimate {
  SubStreamId id{};
  double sum{0.0};              // SUM_i (Eq. 3)
  double estimated_count{0.0};  // ĉ_{i,b} (Eq. 8)
  std::uint64_t sampled{0};     // ζ_i
  double sample_mean{0.0};      // mean of sampled item values
  double sample_variance{0.0};  // s²_{i,r} (Eq. 12, n-1 denominator)
};

/// Scans Θ and produces one SubStreamEstimate per sub-stream.
[[nodiscard]] std::vector<SubStreamEstimate> summarize(const ThetaStore& theta);

/// SUM_i for one sub-stream.
[[nodiscard]] double estimate_sum(const ThetaStore& theta, SubStreamId id);

/// SUM* across all sub-streams (Eq. 4).
[[nodiscard]] double estimate_total_sum(const ThetaStore& theta);

/// ĉ_{i,b} — estimated original item count of one sub-stream.
[[nodiscard]] double estimate_count(const ThetaStore& theta, SubStreamId id);

/// Σ_i ĉ_{i,b} — estimated original item count of the whole stream.
[[nodiscard]] double estimate_total_count(const ThetaStore& theta);

/// MEAN* (Eq. 13). Returns 0 when the estimated count is 0.
[[nodiscard]] double estimate_total_mean(const ThetaStore& theta);

}  // namespace approxiot::core
