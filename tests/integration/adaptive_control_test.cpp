// The §IV-B loop, live and end to end: a user states an accuracy budget
// on the Query, the ConcurrentEdgeTree's root observes every window's
// confidence interval, the AdaptiveController proposes the next
// end-to-end fraction, and the control plane carries it to every node —
// no worker ever stops. On a skewed workload the observed relative error
// must converge into the target's tolerance band (the ISSUE's acceptance
// bar), starting from a deliberately wasteful fraction of 1.0.
//
// The loop here is window-synchronous (drain() before every
// close_window()), which makes the whole trajectory deterministic: every
// node resolves the new epoch at its first interval of the next window.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analytics/query.hpp"
#include "core/adaptive.hpp"
#include "core/pipeline.hpp"
#include "runtime/concurrent_tree.hpp"
#include "workload/generators.hpp"
#include "workload/substream.hpp"

namespace approxiot {
namespace {

struct WindowTrace {
  double fraction{0.0};
  double relative_error{0.0};
  std::uint64_t epoch{0};
  std::uint64_t sampled{0};
};

/// Drives `windows` query windows of `ticks` intervals each and returns
/// the per-window trace (fraction in force, reported error, epoch).
std::vector<WindowTrace> drive(runtime::ConcurrentEdgeTree& tree,
                               workload::StreamGenerator& gen,
                               std::size_t windows, std::size_t ticks) {
  std::vector<WindowTrace> trace;
  SimTime now = SimTime::zero();
  const SimTime dt = SimTime::from_millis(100);
  for (std::size_t w = 0; w < windows; ++w) {
    WindowTrace t;
    t.fraction = tree.adaptive_fraction();
    for (std::size_t k = 0; k < ticks; ++k) {
      tree.push_interval(
          workload::shard_by_substream(gen.tick(now, dt), tree.leaf_count()));
      now = now + dt;
    }
    tree.drain();
    const core::ApproxResult result = tree.close_window();
    t.relative_error = result.sum.relative_margin();
    t.epoch = result.policy_epoch;
    t.sampled = result.sampled_items;
    trace.push_back(t);
  }
  return trace;
}

TEST(AdaptiveControlIntegrationTest, ConvergesIntoToleranceBandOnSkew) {
  // The user's budget lives on the Query (analytics layer); the runtime
  // derives its controller configuration from it.
  // Stratification makes ApproxIoT stubbornly accurate on this skew (the
  // rare heavy stratum is kept whole), so the achievable error budget is
  // small: 0.05 % relative error, which the fraction sweep puts at an
  // interior fixed point near f ~ 1.6 %.
  analytics::Query query;
  query.name = "sum with 0.05% budget";
  query.target_relative_error = 0.0005;

  core::AdaptiveConfig base;
  base.tolerance = 0.2;
  base.min_fraction = 0.001;
  const core::AdaptiveConfig controller =
      analytics::adaptive_config_for(query, base);
  ASSERT_DOUBLE_EQ(controller.target_relative_error, 0.0005);

  core::EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = 1.0;  // start exact, adapt down
  tree_config.rng_seed = 2018;

  runtime::ConcurrentTreeConfig runtime_config;
  runtime_config.tree = tree_config;
  // Feedback turns on because the query carries a budget — the analytics
  // layer's predicate is the runtime's enable switch.
  runtime_config.adaptive.enabled = analytics::wants_adaptive(query);
  ASSERT_TRUE(runtime_config.adaptive.enabled);
  runtime_config.adaptive.controller = controller;
  runtime::ConcurrentEdgeTree tree(runtime_config);
  ASSERT_NE(tree.control_plane(), nullptr);

  // Fig. 10(c)-style extreme skew: arrival shares 80/19.89/0.1/0.01 %
  // with values spanning six orders of magnitude.
  workload::StreamGenerator gen(workload::skewed_poisson(30000.0), 7);

  const auto trace = drive(tree, gen, 30, 10);
  tree.stop();

  // The controller moved off the wasteful start...
  EXPECT_LT(tree.adaptive_fraction(), 1.0);
  EXPECT_GE(tree.policy_epoch(), 1u);
  // ...and each window is attributed to the epoch that produced it.
  for (std::size_t w = 1; w < trace.size(); ++w) {
    EXPECT_GE(trace[w].epoch, trace[w - 1].epoch > 0 ? trace[w - 1].epoch - 1
                                                     : 0u);
  }

  // Convergence: the observed relative error of the settled tail sits in
  // the target's tolerance band (mean over the last 8 windows, judged
  // with the controller's own hysteresis band plus estimator noise).
  double tail_error = 0.0;
  constexpr std::size_t kTail = 8;
  for (std::size_t w = trace.size() - kTail; w < trace.size(); ++w) {
    tail_error += trace[w].relative_error;
  }
  tail_error /= static_cast<double>(kTail);
  EXPECT_GT(tail_error, query.target_relative_error * (1.0 - 2.0 * 0.2));
  EXPECT_LT(tail_error, query.target_relative_error * (1.0 + 2.0 * 0.2));

  // And it spends real resources to get there: the settled fraction is
  // strictly inside the clamp range, not pinned at a bound.
  EXPECT_GT(tree.adaptive_fraction(), controller.min_fraction);
  EXPECT_LT(tree.adaptive_fraction(), controller.max_fraction);
}

// Mid-stream feedback: observations every N completed root intervals,
// published while all workers keep flowing. Correctness bar: Eq. 8 keeps
// sub-stream count estimates exact across however many epochs the run
// straddled, and the epoch attribution in Θ is coherent. Runs under TSan
// in CI (live concurrent policy-swap path).
TEST(AdaptiveControlIntegrationTest, MidStreamFeedbackKeepsEstimatesExact) {
  core::EdgeTreeConfig tree_config;
  tree_config.layer_widths = {4, 2};
  tree_config.sampling_fraction = 0.9;
  tree_config.rng_seed = 99;

  runtime::ConcurrentTreeConfig runtime_config;
  runtime_config.tree = tree_config;
  runtime_config.adaptive.enabled = true;
  runtime_config.adaptive.controller.target_relative_error = 0.05;
  runtime_config.adaptive.controller.min_fraction = 0.05;
  runtime_config.adaptive.intervals_per_observation = 3;
  runtime::ConcurrentEdgeTree tree(runtime_config);

  std::vector<std::uint64_t> truth = {0, 500, 1500, 4500};
  std::vector<std::vector<Item>> interval(tree.leaf_count());
  Rng rng(5);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    for (std::uint64_t i = 0; i < truth[s]; ++i) {
      interval[rng.next_below(tree.leaf_count())].push_back(
          Item{SubStreamId{s}, static_cast<double>(s * s), 0});
    }
  }
  constexpr int kIntervals = 24;
  for (int rep = 0; rep < kIntervals; ++rep) tree.push_interval(interval);
  tree.drain();
  tree.stop();

  // The mid-stream loop observed and published without stopping anyone.
  EXPECT_GE(tree.policy_epoch(), 1u);
  EXPECT_GE(tree.adaptive_history().size(), 2u);

  const auto& theta = tree.theta();
  EXPECT_GE(theta.max_policy_epoch(), theta.min_policy_epoch());
  for (std::uint64_t s = 1; s <= 3; ++s) {
    ASSERT_GT(theta.sampled_count(SubStreamId{s}), 0u);
    const double expected =
        static_cast<double>(kIntervals) * static_cast<double>(truth[s]);
    EXPECT_NEAR(theta.estimated_original_count(SubStreamId{s}), expected,
                expected * 1e-9)
        << "stream " << s;
  }
}

}  // namespace
}  // namespace approxiot
