// StratifiedBatch: the flat arena replacement for the legacy
// map-of-vectors stratification. The contract pinned here:
//   1. a batch built by assign() is BIT-IDENTICAL to stratify() — same
//      stratum order (ascending id, the std::map iteration order), same
//      items, same within-stratum arrival order;
//   2. the arena is the concatenation of the strata in directory order,
//      so flattening (to_bundle) is representation-free;
//   3. the map-compatible facade (at/count/operator[]/iteration) reads
//      and mutates exactly like the old std::map did.
#include "core/stratified.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/batch.hpp"
#include "core/whsamp.hpp"

namespace approxiot::core {
namespace {

std::vector<Item> random_items(Rng& rng, std::size_t n,
                               std::uint64_t streams) {
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(Item{SubStreamId{1 + rng.next_below(streams)},
                         rng.next_double() * 100.0,
                         static_cast<std::int64_t>(i)});
  }
  return items;
}

TEST(StratifiedBatchTest, BitIdenticalToLegacyStratify) {
  Rng rng(20180701);
  StratifiedBatch batch;  // one batch reused across rounds, like a lane's
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = rng.next_below(500);
    const std::uint64_t streams = 1 + rng.next_below(12);
    const auto items = random_items(rng, n, streams);

    const auto legacy = stratify(items);
    batch.assign(items);

    ASSERT_EQ(batch.size(), legacy.size()) << "round " << round;
    ASSERT_EQ(batch.item_count(), items.size());
    auto legacy_it = legacy.begin();
    std::size_t expected_offset = 0;
    for (const Stratum& s : batch.strata()) {
      // Same order (ascending id == map order), same counts, offsets
      // dense and contiguous.
      ASSERT_EQ(s.id, legacy_it->first) << "round " << round;
      ASSERT_EQ(s.len, legacy_it->second.size());
      ASSERT_EQ(s.offset, expected_offset);
      expected_offset += s.len;
      // Same items in the same within-stratum (arrival) order.
      const ItemSpan span = batch.span(s);
      for (std::size_t i = 0; i < s.len; ++i) {
        ASSERT_EQ(span[i], legacy_it->second[i])
            << "round " << round << " stream " << s.id << " item " << i;
      }
      ++legacy_it;
    }
  }
}

TEST(StratifiedBatchTest, ArenaIsConcatenationOfStrataInIdOrder) {
  Rng rng(7);
  const auto items = random_items(rng, 300, 5);
  StratifiedBatch batch;
  batch.assign(items);

  std::vector<Item> expected;
  for (const auto& [_, stratum] : stratify(items)) {
    expected.insert(expected.end(), stratum.begin(), stratum.end());
  }
  ASSERT_EQ(batch.items().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(batch.items()[i], expected[i]) << "arena position " << i;
  }
}

TEST(StratifiedBatchTest, EmptyInput) {
  StratifiedBatch batch;
  batch.assign(std::vector<Item>{});
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.item_count(), 0u);
  EXPECT_EQ(batch.count(SubStreamId{1}), 0u);
  EXPECT_THROW((void)batch.at(SubStreamId{1}), std::out_of_range);
}

TEST(StratifiedBatchTest, AssignReplacesPriorContents) {
  StratifiedBatch batch;
  batch.assign(std::vector<Item>{Item{SubStreamId{9}, 1.0, 0},
                                 Item{SubStreamId{2}, 2.0, 0}});
  batch.assign(std::vector<Item>{Item{SubStreamId{4}, 3.0, 0}});
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.item_count(), 1u);
  EXPECT_EQ(batch.count(SubStreamId{9}), 0u);
  EXPECT_EQ(batch.at(SubStreamId{4}).size(), 1u);
}

TEST(StratifiedBatchTest, MapFacadeReadsLikeTheOldMap) {
  Rng rng(11);
  const auto items = random_items(rng, 200, 4);
  StratifiedBatch batch;
  batch.assign(items);
  const auto legacy = stratify(items);

  // at()/count()
  for (const auto& [id, stratum] : legacy) {
    EXPECT_EQ(batch.count(id), 1u);
    EXPECT_EQ(batch.at(id).size(), stratum.size());
  }
  // iteration yields (id, span) pairs in map order
  auto legacy_it = legacy.begin();
  for (const auto& [id, span] : batch) {
    EXPECT_EQ(id, legacy_it->first);
    EXPECT_TRUE(span == legacy_it->second);
    ++legacy_it;
  }
  // iterator arrow access
  auto it = batch.begin();
  EXPECT_EQ(it->first, legacy.begin()->first);
  EXPECT_EQ(it->second.size(), legacy.begin()->second.size());
}

TEST(StratifiedBatchTest, PushBackViaSubscriptMatchesMapSemantics) {
  // The convenience mutation path used by tests and the tiny baseline
  // stages: arbitrary interleaved per-item appends must produce the same
  // grouping the old map produced.
  Rng rng(13);
  const auto items = random_items(rng, 150, 6);

  StratifiedBatch batch;
  std::map<SubStreamId, std::vector<Item>> reference;
  for (const Item& item : items) {
    batch[item.source].push_back(item);
    reference[item.source].push_back(item);
  }

  ASSERT_EQ(batch.size(), reference.size());
  std::size_t expected_offset = 0;
  auto ref_it = reference.begin();
  for (const Stratum& s : batch.strata()) {
    ASSERT_EQ(s.id, ref_it->first);
    ASSERT_EQ(s.offset, expected_offset);  // arena stays dense
    expected_offset += s.len;
    EXPECT_TRUE(batch.span(s) == ref_it->second);
    ++ref_it;
  }
}

TEST(StratifiedBatchTest, SubscriptAssignReplacesStratum) {
  StratifiedBatch batch;
  batch[SubStreamId{2}] = {Item{SubStreamId{2}, 1.0, 0},
                           Item{SubStreamId{2}, 2.0, 0}};
  batch[SubStreamId{1}] = {Item{SubStreamId{1}, 3.0, 0}};
  EXPECT_EQ(batch.item_count(), 3u);
  EXPECT_EQ(batch.at(SubStreamId{2}).size(), 2u);
  // Replacing a middle stratum shifts later offsets correctly.
  batch[SubStreamId{1}] = {Item{SubStreamId{1}, 4.0, 0},
                           Item{SubStreamId{1}, 5.0, 0},
                           Item{SubStreamId{1}, 6.0, 0}};
  EXPECT_EQ(batch.item_count(), 5u);
  EXPECT_EQ(batch.at(SubStreamId{1}).size(), 3u);
  EXPECT_DOUBLE_EQ(batch.at(SubStreamId{2})[0].value, 1.0);
  EXPECT_DOUBLE_EQ(batch.at(SubStreamId{2})[1].value, 2.0);
}

TEST(StratifiedBatchTest, AppendStratumAndRelease) {
  StratifiedBatch batch;
  const std::vector<Item> a = {Item{SubStreamId{1}, 1.0, 0}};
  const std::vector<Item> b = {Item{SubStreamId{5}, 2.0, 0},
                               Item{SubStreamId{5}, 3.0, 0}};
  batch.append_stratum(SubStreamId{1}, a);
  batch.append_stratum(SubStreamId{3}, nullptr, 0);  // empty stratum kept
  batch.append_stratum(SubStreamId{5}, b);

  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.item_count(), 3u);
  EXPECT_TRUE(batch.at(SubStreamId{3}).empty());

  std::vector<Item> flat = batch.release_items();
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0], a[0]);
  EXPECT_EQ(flat[1], b[0]);
  EXPECT_EQ(flat[2], b[1]);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.item_count(), 0u);
}

TEST(StratifiedBatchTest, SampledBundleToBundleMoveMatchesCopy) {
  Rng rng(23);
  const auto items = random_items(rng, 120, 3);

  SampledBundle bundle;
  bundle.sample.assign(items);
  for (const Stratum& s : bundle.sample.strata()) {
    bundle.w_out.set(s.id, 2.0 + static_cast<double>(s.id.value()));
  }

  const ItemBundle copied = bundle.to_bundle();          // lvalue: copy
  const ItemBundle moved = std::move(bundle).to_bundle();  // rvalue: move
  ASSERT_EQ(copied.items.size(), moved.items.size());
  for (std::size_t i = 0; i < copied.items.size(); ++i) {
    EXPECT_EQ(copied.items[i], moved.items[i]);
  }
  EXPECT_TRUE(copied.w_in == moved.w_in);
  EXPECT_EQ(bundle.item_count(), 0u);  // spent by the move
}

}  // namespace
}  // namespace approxiot::core
