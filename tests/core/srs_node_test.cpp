#include "core/srs_node.hpp"

#include <gtest/gtest.h>

#include "core/estimators.hpp"

namespace approxiot::core {
namespace {

std::vector<Item> n_items(SubStreamId id, std::size_t n, double value = 1.0) {
  std::vector<Item> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(Item{id, value, 0});
  return out;
}

TEST(SrsNodeTest, FullProbabilityKeepsAll) {
  SrsNode node(SrsNodeConfig{NodeId{1}, 1.0, 1});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 50);
  auto out = node.process_interval({bundle});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sample.at(SubStreamId{1}).size(), 50u);
  EXPECT_DOUBLE_EQ(out[0].w_out.get(SubStreamId{1}), 1.0);
}

TEST(SrsNodeTest, KeptFractionTracksProbability) {
  SrsNode node(SrsNodeConfig{NodeId{1}, 0.25, 2});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 40000);
  auto out = node.process_interval({bundle});
  ASSERT_EQ(out.size(), 1u);
  const double kept =
      static_cast<double>(out[0].sample.at(SubStreamId{1}).size());
  EXPECT_NEAR(kept / 40000.0, 0.25, 0.02);
  EXPECT_DOUBLE_EQ(out[0].w_out.get(SubStreamId{1}), 4.0);
}

TEST(SrsNodeTest, WeightsComposeAcrossLayers) {
  // Two SRS hops at p=0.5: surviving items carry weight 4.
  SrsNode first(SrsNodeConfig{NodeId{1}, 0.5, 3});
  SrsNode second(SrsNodeConfig{NodeId{2}, 0.5, 4});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 10000);
  auto mid = first.process_interval({bundle});
  ASSERT_FALSE(mid.empty());
  auto out = second.process_interval({mid[0].to_bundle()});
  ASSERT_FALSE(out.empty());
  EXPECT_DOUBLE_EQ(out[0].w_out.get(SubStreamId{1}), 4.0);
}

TEST(SrsNodeTest, SumEstimateIsUnbiased) {
  // Average the SRS estimate over many trials: converges to the truth.
  const std::size_t n = 2000;
  const double value = 3.0;
  const double truth = static_cast<double>(n) * value;
  double estimate_sum = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    SrsRootNode root(
        SrsNodeConfig{NodeId{1}, 0.2, 100 + static_cast<std::uint64_t>(t)});
    ItemBundle bundle;
    bundle.items = n_items(SubStreamId{1}, n, value);
    root.ingest_interval({bundle});
    estimate_sum += root.run_query().sum.point;
  }
  EXPECT_NEAR(estimate_sum / trials / truth, 1.0, 0.02);
}

TEST(SrsNodeTest, CanMissRareSubStreamEntirely) {
  // The failure mode stratification fixes: at p=0.05 a 3-item sub-stream
  // regularly vanishes from the SRS sample.
  int missed = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    SrsNode node(
        SrsNodeConfig{NodeId{1}, 0.05, 500 + static_cast<std::uint64_t>(t)});
    ItemBundle bundle;
    bundle.items = n_items(SubStreamId{1}, 5000);
    auto rare = n_items(SubStreamId{2}, 3, 1e9);
    bundle.items.insert(bundle.items.end(), rare.begin(), rare.end());
    auto out = node.process_interval({bundle});
    bool seen = false;
    for (const auto& b : out) {
      if (b.sample.count(SubStreamId{2}) > 0 &&
          !b.sample.at(SubStreamId{2}).empty()) {
        seen = true;
      }
    }
    if (!seen) ++missed;
  }
  // P(miss) = 0.95^3 ≈ 0.857; require it to happen often.
  EXPECT_GT(missed, trials / 2);
}

TEST(SrsNodeTest, MetricsCount) {
  SrsNode node(SrsNodeConfig{NodeId{1}, 0.5, 6});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 1000);
  (void)node.process_interval({bundle});
  EXPECT_EQ(node.metrics().items_in, 1000u);
  EXPECT_GT(node.metrics().items_out, 0u);
  EXPECT_LT(node.metrics().items_out, 1000u);
}

TEST(SrsNodeTest, ZeroProbabilityDropsEverything) {
  SrsNode node(SrsNodeConfig{NodeId{1}, 0.0, 7});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 100);
  auto out = node.process_interval({bundle});
  EXPECT_TRUE(out.empty());
}

TEST(SrsRootNodeTest, CloseWindowClears) {
  SrsRootNode root(SrsNodeConfig{NodeId{1}, 1.0, 8});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 10, 2.0);
  root.ingest_interval({bundle});
  EXPECT_DOUBLE_EQ(root.close_window().sum.point, 20.0);
  EXPECT_TRUE(root.theta().empty());
}

}  // namespace
}  // namespace approxiot::core
