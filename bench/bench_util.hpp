// Shared helpers for the figure-reproduction benches: the paper's
// sampling-fraction sweep, table printing, and the netsim experiment
// runner used by the throughput/latency/bandwidth figures.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#ifdef __GLIBC__
#include <malloc.h>
#endif

#include "analytics/experiment.hpp"
#include "core/pipeline.hpp"
#include "netsim/tree.hpp"
#include "obs/stats.hpp"
#include "workload/substream.hpp"

namespace approxiot::bench {

/// Pins glibc malloc's mmap/trim thresholds for the bench processes.
/// The interval loops allocate and free a few multi-hundred-KB buffers
/// (bundle arena, wire payload) every iteration; under the default
/// dynamic thresholds those land exactly in the band where glibc
/// alternates between mmap/munmap churn and brk-top trimming, so every
/// interval re-faults ~300 pages and the tax lands unevenly across
/// interleaved modes (it drove stats_on_overhead_pct negative). Pinning
/// the thresholds keeps the buffers heap-resident; measured effect on
/// bench_hotpath at 262144 items: ~290 minor faults/interval -> 0.
inline void pin_allocator() {
#ifdef __GLIBC__
  mallopt(M_MMAP_THRESHOLD, 8 << 20);
  mallopt(M_TRIM_THRESHOLD, 64 << 20);
#endif
}

/// Median over a sample set (copies; input order preserved for callers).
inline double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  return values.size() % 2 == 1 ? values[mid]
                                : 0.5 * (values[mid - 1] + values[mid]);
}

/// The paper's x-axis in Figs. 5-8: sampling fractions in percent.
inline const std::vector<int>& paper_fractions() {
  static const std::vector<int> kFractions = {10, 20, 40, 60, 80, 90};
  return kFractions;
}

inline void print_header(const std::string& title,
                         const std::string& paper_shape) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper shape: %s\n", paper_shape.c_str());
}

inline void print_row(const std::string& label,
                      const std::vector<double>& values,
                      const char* fmt = "%12.4f") {
  std::printf("%-24s", label.c_str());
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

inline void print_cols(const std::string& label,
                       const std::vector<int>& cols) {
  std::printf("%-24s", label.c_str());
  for (int c : cols) std::printf("%12d", c);
  std::printf("\n");
}

/// Machine-readable result record shared by the benches: one JSON object
/// per (bench, engine) pair, every series aligned to the x-axis values.
///   {"bench":"...","engine":"...","workers":[1,2],"throughput":[..],..}
inline void print_json_result(
    const std::string& bench, const std::string& engine,
    const std::string& x_name, const std::vector<int>& x_values,
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  std::printf("{\"bench\":\"%s\",\"engine\":\"%s\",\"%s\":[", bench.c_str(),
              engine.c_str(), x_name.c_str());
  for (std::size_t i = 0; i < x_values.size(); ++i) {
    std::printf("%s%d", i > 0 ? "," : "", x_values[i]);
  }
  std::printf("]");
  for (const auto& [name, values] : series) {
    std::printf(",\"%s\":[", name.c_str());
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("%s%.6g", i > 0 ? "," : "", values[i]);
    }
    std::printf("]");
  }
  std::printf("}\n");
}

/// Emits a bench artifact line carrying a full stats-registry snapshot
/// (the obs JSON exporter nested under "stats"), so a bench run's
/// internal telemetry rides the same `^{` JSONL channel as its rates:
///   {"bench":"...","engine":"...","stats":{"counters":{...},...}}
inline void print_stats_json(const std::string& bench,
                             const std::string& engine,
                             const obs::StatsSnapshot& snapshot) {
  std::printf("{\"bench\":\"%s\",\"engine\":\"%s\",\"stats\":%s}\n",
              bench.c_str(), engine.c_str(), snapshot.to_json().c_str());
}

/// Builds the accuracy-experiment config used by Figs. 5/10/11a: the
/// paper's 4-2-1 edge tree, 1 s windows made of 10 ticks.
inline analytics::AccuracyExperimentConfig accuracy_config(
    core::EngineKind engine, double fraction, std::uint64_t seed,
    std::size_t windows = 10) {
  analytics::AccuracyExperimentConfig config;
  config.tree.engine = engine;
  config.tree.layer_widths = {4, 2};
  config.tree.sampling_fraction = fraction;
  config.tree.rng_seed = seed;
  config.windows = windows;
  config.ticks_per_window = 10;
  config.tick = SimTime::from_millis(100);
  return config;
}

/// Adapts a StreamGenerator spec set into a fresh TickSource.
inline analytics::TickSource make_source(
    std::vector<workload::SubStreamSpec> specs, std::uint64_t seed) {
  auto gen = std::make_shared<workload::StreamGenerator>(std::move(specs),
                                                         seed);
  return [gen](SimTime now, SimTime dt) { return gen->tick(now, dt); };
}

/// netsim tree config matching the paper's testbed (§V-A): 8 sources,
/// 4-2-1 layers, 20/40/80 ms RTT hops, 1 Gbps links.
inline netsim::TreeNetConfig testbed_config(core::EngineKind engine,
                                            double fraction,
                                            SimTime window) {
  netsim::TreeNetConfig config;
  config.engine = engine;
  config.sampling_fraction = fraction;
  config.interval = window;
  config.sources = 8;
  config.layer_widths = {4, 2};
  config.hop_rtts = {SimTime::from_millis(20), SimTime::from_millis(40),
                     SimTime::from_millis(80)};
  config.bandwidth_bps = 1e9;
  config.edge_service_rate = 400000.0;
  config.root_service_rate = 100000.0;
  config.source_tick = SimTime::from_millis(100);
  return config;
}

/// Constant-rate source shared by the netsim benches: `total_rate`
/// items/s across 4 sub-streams, sharded over the 8 sources.
inline netsim::SourceFn constant_rate_source(double total_rate,
                                             std::size_t sources,
                                             SimTime tick) {
  const double per_source = total_rate / static_cast<double>(sources);
  const double per_tick = per_source * tick.seconds();
  return [per_tick](std::size_t source, SimTime now) {
    std::vector<Item> items;
    const auto n = static_cast<std::size_t>(per_tick);
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // 4 sub-streams interleaved across sources (paper's mix).
      items.push_back(Item{SubStreamId{source % 4 + 1}, 1.0, now.us});
    }
    return items;
  };
}

/// Runs the simulated testbed at `offered_rate` for `duration` and
/// reports whether the root kept up (bounded backlog).
struct SustainResult {
  bool sustained{false};
  double processed_per_s{0.0};
  double backlog_s{0.0};
};

inline SustainResult run_at_rate(core::EngineKind engine, double fraction,
                                 SimTime window, double offered_rate,
                                 SimTime duration) {
  netsim::Simulator sim;
  netsim::TreeNetConfig config = testbed_config(engine, fraction, window);
  netsim::TreeNetwork net(
      sim, config,
      constant_rate_source(offered_rate, config.sources, config.source_tick));
  net.run_for(duration);

  SustainResult result;
  result.backlog_s = net.root_backlog().seconds();
  // Sustained == the root's service backlog stays within one window.
  result.sustained = result.backlog_s < window.seconds();
  result.processed_per_s = static_cast<double>(net.items_generated()) /
                           duration.seconds();
  return result;
}

/// Binary-searches the maximum sustainable offered rate (the paper's
/// methodology: tune sources until the datacenter node saturates).
inline double max_sustainable_rate(core::EngineKind engine, double fraction,
                                   SimTime window, double lo, double hi,
                                   SimTime duration, int iterations = 7) {
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (run_at_rate(engine, fraction, window, mid, duration).sustained) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace approxiot::bench
