#include "core/weight_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/rng.hpp"

namespace approxiot::core {
namespace {

TEST(WeightMapTest, UnknownSubStreamDefaultsToOne) {
  WeightMap m;
  EXPECT_DOUBLE_EQ(m.get(SubStreamId{7}), 1.0);
  EXPECT_FALSE(m.contains(SubStreamId{7}));
}

TEST(WeightMapTest, SetAndGet) {
  WeightMap m;
  m.set(SubStreamId{1}, 1.5);
  EXPECT_TRUE(m.contains(SubStreamId{1}));
  EXPECT_DOUBLE_EQ(m.get(SubStreamId{1}), 1.5);
  m.set(SubStreamId{1}, 3.0);
  EXPECT_DOUBLE_EQ(m.get(SubStreamId{1}), 3.0);
}

TEST(WeightMapTest, UpdateFromOverwritesOnlyPresentEntries) {
  WeightMap base;
  base.set(SubStreamId{1}, 2.0);
  base.set(SubStreamId{2}, 5.0);

  WeightMap incoming;
  incoming.set(SubStreamId{1}, 4.0);
  incoming.set(SubStreamId{3}, 9.0);

  base.update_from(incoming);
  EXPECT_DOUBLE_EQ(base.get(SubStreamId{1}), 4.0);  // overwritten
  EXPECT_DOUBLE_EQ(base.get(SubStreamId{2}), 5.0);  // kept
  EXPECT_DOUBLE_EQ(base.get(SubStreamId{3}), 9.0);  // added
  EXPECT_EQ(base.size(), 3u);
}

TEST(WeightMapTest, ClearAndEmpty) {
  WeightMap m;
  EXPECT_TRUE(m.empty());
  m.set(SubStreamId{1}, 2.0);
  EXPECT_FALSE(m.empty());
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.get(SubStreamId{1}), 1.0);
}

TEST(WeightMapTest, EqualityAndIteration) {
  WeightMap a, b;
  a.set(SubStreamId{1}, 2.0);
  b.set(SubStreamId{1}, 2.0);
  EXPECT_TRUE(a == b);
  b.set(SubStreamId{2}, 3.0);
  EXPECT_FALSE(a == b);

  std::size_t n = 0;
  for (const auto& [id, w] : b) {
    EXPECT_GT(w, 0.0);
    EXPECT_GT(id.value(), 0u);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

// The flat open-addressing storage must be behaviourally indistinguishable
// from the std::map it replaced: same lookups, same deterministic
// ascending iteration, same equality — regardless of insertion order,
// overwrites, or table growth.
TEST(WeightMapTest, PropertyMatchesStdMapUnderRandomOperations) {
  Rng rng(0xbeef);
  for (int round = 0; round < 20; ++round) {
    WeightMap flat;
    std::map<SubStreamId, double> reference;

    const int ops = 1 + static_cast<int>(rng.next_below(400));
    for (int op = 0; op < ops; ++op) {
      // Id range big enough to collide probes, small enough to overwrite.
      const SubStreamId id{rng.next_below(1u << 20)};
      if (rng.next_below(4) == 0 && !reference.empty()) {
        // Lookup of a (maybe) present id.
        EXPECT_EQ(flat.contains(id), reference.count(id) > 0);
        auto it = reference.find(id);
        EXPECT_DOUBLE_EQ(flat.get(id),
                         it == reference.end() ? 1.0 : it->second);
      } else {
        const double w = rng.next_double() * 10.0;
        flat.set(id, w);
        reference[id] = w;
      }
    }

    ASSERT_EQ(flat.size(), reference.size()) << "round " << round;
    // Iteration: ascending by id, exact (id, weight) sequence.
    auto ref_it = reference.begin();
    for (const auto& [id, w] : flat) {
      ASSERT_EQ(id, ref_it->first) << "round " << round;
      ASSERT_DOUBLE_EQ(w, ref_it->second);
      ++ref_it;
    }
    EXPECT_EQ(ref_it, reference.end());
  }
}

TEST(WeightMapTest, IterationDeterministicAcrossInsertionOrders) {
  // Same entries inserted in different orders -> identical maps,
  // identical iteration, identical printing.
  std::vector<std::pair<SubStreamId, double>> entries;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    entries.emplace_back(SubStreamId{rng.next_below(1u << 30)},
                         rng.next_double());
  }

  WeightMap forward, backward, shuffled;
  for (const auto& [id, w] : entries) forward.set(id, w);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    backward.set(it->first, it->second);
  }
  std::shuffle(entries.begin(), entries.end(), rng);
  for (const auto& [id, w] : entries) shuffled.set(id, w);

  EXPECT_TRUE(forward == backward);
  EXPECT_TRUE(forward == shuffled);
  std::ostringstream a, b;
  a << forward;
  b << shuffled;
  EXPECT_EQ(a.str(), b.str());

  SubStreamId prev{0};
  bool first = true;
  for (const auto& [id, w] : forward) {
    (void)w;
    if (!first) {
      EXPECT_TRUE(prev < id);
    }
    prev = id;
    first = false;
  }
}

TEST(WeightMapTest, GrowthPreservesEntries) {
  // Push far past the initial table size to force several rehashes.
  WeightMap m;
  for (std::uint64_t i = 1; i <= 5000; ++i) {
    m.set(SubStreamId{i * 7919}, static_cast<double>(i));
  }
  EXPECT_EQ(m.size(), 5000u);
  for (std::uint64_t i = 1; i <= 5000; ++i) {
    ASSERT_TRUE(m.contains(SubStreamId{i * 7919})) << i;
    ASSERT_DOUBLE_EQ(m.get(SubStreamId{i * 7919}), static_cast<double>(i));
  }
}

TEST(WeightMapTest, StreamOutput) {
  WeightMap m;
  m.set(SubStreamId{1}, 1.5);
  std::ostringstream os;
  os << m;
  EXPECT_EQ(os.str(), "{S1: 1.5}");
}

}  // namespace
}  // namespace approxiot::core
