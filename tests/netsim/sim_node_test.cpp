#include "netsim/sim_node.hpp"

#include <gtest/gtest.h>

#include "netsim/tree.hpp"

namespace approxiot::netsim {
namespace {

std::unique_ptr<core::PipelineStage> native_stage() {
  core::StageConfig sc;
  sc.engine = core::EngineKind::kNative;
  return core::make_pipeline_stage(sc);
}

core::ItemBundle bundle_of(std::size_t n) {
  core::ItemBundle bundle;
  for (std::size_t i = 0; i < n; ++i) {
    bundle.items.push_back(Item{SubStreamId{1}, 1.0, 0});
  }
  return bundle;
}

TEST(SimNodeTest, ServiceDelaysIntervalVisibility) {
  Simulator sim;
  SimNodeConfig config;
  config.interval = SimTime::from_millis(100);
  config.service_rate_items_per_s = 1000.0;  // 100 items take 100 ms
  SimNode node(sim, native_stage(), config);

  std::size_t forwarded_total = 0;
  // No uplink: count through metrics after ticks.
  node.set_tick_deadline(SimTime::from_seconds(2.0));
  node.connect_root_sink(
      [&](const core::SampledBundle& b, SimTime) {
        forwarded_total += b.item_count();
      });
  node.start();

  node.deliver(bundle_of(100));
  EXPECT_GT(node.backlog().us, 0);
  sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(forwarded_total, 100u);
  EXPECT_EQ(node.items_arrived(), 100u);
  EXPECT_EQ(node.items_forwarded(), 100u);
  EXPECT_EQ(node.backlog(), SimTime::zero());
}

TEST(SimNodeTest, ChargeOnOutputDelaysDownstreamNotIngest) {
  Simulator sim;
  SimNodeConfig config;
  config.interval = SimTime::from_millis(100);
  config.service_rate_items_per_s = 100.0;  // slow query engine
  config.ingest_rate_items_per_s = 1e9;     // free ingest
  config.charge_on_output = true;
  SimNode node(sim, native_stage(), config);

  SimTime delivered_at{};
  node.set_tick_deadline(SimTime::from_seconds(30.0));
  node.connect_root_sink(
      [&](const core::SampledBundle&, SimTime now) { delivered_at = now; });
  node.start();

  node.deliver(bundle_of(100));
  // Ingest is free: the server backlog shows up only after the tick
  // produces output (100 items / 100 per s = 1 s of query work).
  EXPECT_EQ(node.backlog(), SimTime::zero());
  sim.run_until(SimTime::from_seconds(30.0));
  // Tick at 100 ms + 1 s of query service.
  EXPECT_GE(delivered_at, SimTime::from_seconds(1.0));
}

TEST(SimNodeTest, TickDeadlineStopsRescheduling) {
  Simulator sim;
  SimNodeConfig config;
  config.interval = SimTime::from_millis(100);
  SimNode node(sim, native_stage(), config);
  node.set_tick_deadline(SimTime::from_millis(350));
  node.start();
  // Without the deadline this would never return.
  sim.run();
  EXPECT_GE(sim.now(), SimTime::from_millis(350));
  EXPECT_LT(sim.now(), SimTime::from_millis(600));
}

TEST(SimNodeTest, WireSizeModel) {
  Simulator sim;
  SimNodeConfig config;
  config.bytes_header = 4;
  config.bytes_per_weight_entry = 10;
  config.bytes_per_item = 17;
  SimNode node(sim, native_stage(), config);

  core::SampledBundle bundle;
  bundle.w_out.set(SubStreamId{1}, 2.0);
  bundle.sample[SubStreamId{1}] = {Item{SubStreamId{1}, 1.0, 0},
                                   Item{SubStreamId{1}, 2.0, 0}};
  EXPECT_EQ(node.wire_size(bundle), 4u + 10u + 2u * 17u);
}

// Determinism: two identical simulations produce bit-identical metrics.
TEST(NetsimDeterminismTest, SameSeedSameResults) {
  auto run = []() {
    Simulator sim;
    TreeNetConfig config;
    config.engine = core::EngineKind::kApproxIoT;
    config.sampling_fraction = 0.3;
    config.sources = 4;
    config.layer_widths = {2, 1};
    config.hop_rtts = {SimTime::from_millis(20), SimTime::from_millis(40),
                       SimTime::from_millis(80)};
    config.interval = SimTime::from_millis(500);
    config.rng_seed = 99;
    TreeNetwork net(sim, config, [](std::size_t source, SimTime now) {
      std::vector<Item> items;
      for (int i = 0; i < 20; ++i) {
        items.push_back(Item{SubStreamId{source + 1},
                             static_cast<double>(i), now.us});
      }
      return items;
    });
    net.run_for(SimTime::from_seconds(5.0));
    net.drain();
    double sum = 0.0;
    for (const auto& w : net.windows()) sum += w.result.sum.point;
    return std::make_tuple(net.items_processed_at_root(), sum,
                           net.latency_moments().mean());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_DOUBLE_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_DOUBLE_EQ(std::get<2>(a), std::get<2>(b));
}

}  // namespace
}  // namespace approxiot::netsim
