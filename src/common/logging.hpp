// Tiny leveled logger. Benchmarks run with logging at kWarn to keep the
// hot path clean; tests can raise verbosity to trace sampling decisions.
#pragma once

#include <sstream>
#include <string>

namespace approxiot {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global log configuration. Not thread-safe to mutate while
/// logging concurrently; set once at startup.
class Logger {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  /// Writes one formatted line to stderr if `level` is enabled.
  static void write(LogLevel level, const std::string& component,
                    const std::string& message);

  static const char* level_name(LogLevel level) noexcept;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::write(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace approxiot

// Usage: AIOT_LOG(kInfo, "core") << "sampled " << n << " items";
#define AIOT_LOG(level_suffix, component)                                  \
  if (::approxiot::LogLevel::level_suffix < ::approxiot::Logger::level()) \
    ;                                                                      \
  else                                                                     \
    ::approxiot::detail::LogLine(::approxiot::LogLevel::level_suffix,      \
                                 component)
