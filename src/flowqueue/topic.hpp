// A topic: a named set of partitions, each backed by a PartitionLog.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flowqueue/log.hpp"

namespace approxiot::flowqueue {

class Topic {
 public:
  Topic(std::string name, std::uint32_t partitions);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t partition_count() const noexcept {
    return static_cast<std::uint32_t>(partitions_.size());
  }

  /// Partition index for a record key (FNV-1a hash, like Kafka's default
  /// sticky-free keyed partitioner). Empty keys go to partition 0.
  [[nodiscard]] std::uint32_t partition_for_key(const std::string& key) const;

  [[nodiscard]] PartitionLog& partition(std::uint32_t index);
  [[nodiscard]] const PartitionLog& partition(std::uint32_t index) const;

  /// Sum of payload bytes across all partitions.
  [[nodiscard]] std::uint64_t bytes_appended() const;

  /// Sum of record counts across all partitions.
  [[nodiscard]] std::uint64_t record_count() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<PartitionLog>> partitions_;
};

}  // namespace approxiot::flowqueue
