// Append-only partition log: the storage primitive under every topic
// partition. Offsets are dense and start at 0; reads never mutate.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "flowqueue/record.hpp"

namespace approxiot::flowqueue {

class PartitionLog {
 public:
  PartitionLog() = default;

  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  /// Appends a record, assigns its offset, and returns that offset.
  Offset append(Record record);

  /// Copies up to `max_records` records starting at `from` into `out`.
  /// Returns the number of records copied (0 when `from` is at or past the
  /// end). `from` below 0 reads from the log start.
  std::size_t read(Offset from, std::size_t max_records,
                   std::vector<Record>& out) const;

  /// Offset that the next append will receive (== current record count).
  [[nodiscard]] Offset end_offset() const;

  /// Total payload bytes appended so far (for bandwidth accounting).
  [[nodiscard]] std::uint64_t bytes_appended() const;

  /// Timestamp of the record at offset `at` (nullopt when out of range) —
  /// lets consumers compute watermark age (how far behind in *stream*
  /// time their position is) without copying the record out.
  [[nodiscard]] std::optional<SimTime> timestamp_at(Offset at) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Record> records_;
  std::uint64_t bytes_appended_{0};
};

}  // namespace approxiot::flowqueue
