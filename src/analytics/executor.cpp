#include "analytics/executor.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/estimators.hpp"
#include "stats/moments.hpp"

namespace approxiot::analytics {

namespace {

bool in_group(const Query& query, SubStreamId id) {
  if (query.group.empty()) return true;
  return std::find(query.group.begin(), query.group.end(), id) !=
         query.group.end();
}

}  // namespace

QueryAnswer execute_approximate(const Query& query,
                                const core::ThetaStore& theta) {
  auto summaries = core::summarize(theta);
  summaries.erase(std::remove_if(summaries.begin(), summaries.end(),
                                 [&](const core::SubStreamEstimate& s) {
                                   return !in_group(query, s.id);
                                 }),
                  summaries.end());

  double total_sum = 0.0;
  double total_count = 0.0;
  std::uint64_t sampled = 0;
  for (const auto& s : summaries) {
    total_sum += s.sum;
    total_count += s.estimated_count;
    sampled += s.sampled;
  }

  const core::ErrorEstimate err = core::estimate_error(summaries);

  QueryAnswer answer;
  answer.estimated_count = total_count;
  answer.sampled_items = sampled;
  switch (query.aggregate) {
    case Aggregate::kSum:
      answer.value =
          stats::make_interval(total_sum, err.sum_variance, query.confidence);
      break;
    case Aggregate::kMean: {
      const double mean = total_count > 0.0 ? total_sum / total_count : 0.0;
      answer.value =
          stats::make_interval(mean, err.mean_variance, query.confidence);
      break;
    }
    case Aggregate::kCount:
      // ĉ is exact under the Eq. 8 invariant, so its margin is 0.
      answer.value = stats::make_interval(total_count, 0.0, query.confidence);
      break;
  }
  return answer;
}

QueryAnswer execute_exact(const Query& query, const std::vector<Item>& items) {
  stats::RunningMoments moments;
  for (const Item& item : items) {
    if (!in_group(query, item.source)) continue;
    moments.add(item.value);
  }

  QueryAnswer answer;
  answer.estimated_count = static_cast<double>(moments.count());
  answer.sampled_items = moments.count();
  double point = 0.0;
  switch (query.aggregate) {
    case Aggregate::kSum:
      point = moments.sum();
      break;
    case Aggregate::kMean:
      point = moments.mean();
      break;
    case Aggregate::kCount:
      point = static_cast<double>(moments.count());
      break;
  }
  answer.value = stats::make_interval(point, 0.0, query.confidence);
  return answer;
}

}  // namespace approxiot::analytics
