// StratifiedBatch: the flat, arena-backed stratification of one interval.
//
// Algorithm 1 line 5 groups an interval's items by sub-stream. The seed
// implementation materialised that grouping as a
// std::map<SubStreamId, std::vector<Item>> — one node allocation per
// sub-stream plus per-item vector growth, rebuilt from scratch every
// interval. With Item a 24-byte POD the grouping is really just a
// permutation, so this class stores it as one contiguous arena of items
// plus a small directory of strata:
//
//     arena_:  [ S1 items ... | S3 items ... | S7 items ... ]
//     dir_:    { (S1, off=0, len), (S3, off, len), (S7, off, len) }
//
// The directory is ordered by ASCENDING sub-stream id. That order is
// load-bearing: it reproduces the std::map iteration order bit-for-bit,
// and every RNG-consuming loop in the samplers (split/jump per stratum)
// walks strata in this order — reordering it would change which random
// stream each sub-stream draws from. Items within a stratum keep their
// arrival order (the build is a stable counting sort), which the
// round-robin shard assignment in core/executor.cpp depends on.
//
// Building is two passes and zero node allocations: count per sub-stream
// into the directory, prefix-sum the offsets, then scatter items through
// per-stratum cursors. `assign()` reuses the arena and directory buffers,
// so a batch owned by a lane allocates nothing in steady state.
//
// The class also serves as the sample payload of SampledBundle, so it
// keeps a small map-like facade (begin/end yielding (id, span) pairs,
// at(), count(), operator[]) that lets the many existing consumers — and
// the equivalence tests that act as the referee for this refactor — read
// it exactly like the old map-of-vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/kernels/kernels.hpp"

namespace approxiot::core {

class StratifiedBatch;

/// Reusable working state for StratifiedBatch::assign(): the dense
/// first-seen slot directory (ids + counts), the open-addressing
/// id -> slot index, each item's recorded slot, the id-sorted slot
/// order, and the per-slot scatter cursors. Long-lived producers (a
/// pipeline stage, a node) hold one of these and pass it to assign(),
/// so the batches they emit — which travel inside SampledBundle
/// payloads — stay pure data and carry no build buffers.
class StratifyScratch {
 public:
  StratifyScratch() = default;

 private:
  friend class StratifiedBatch;

  /// Dense slot for `id`, allocating the next one on first sight.
  [[nodiscard]] std::uint32_t slot_for(SubStreamId id);
  void reindex();

  std::vector<SubStreamId> slot_ids_;
  std::vector<std::size_t> slot_counts_;
  std::vector<std::uint32_t> slot_index_;
  std::vector<std::uint32_t> item_slots_;
  std::vector<std::uint32_t> sorted_slots_;
  std::vector<std::size_t> cursors_;
};

/// One sub-stream's slice of the arena.
struct Stratum {
  SubStreamId id{};
  std::size_t offset{0};
  std::size_t len{0};
};

/// Non-owning view of one stratum's contiguous items.
class ItemSpan {
 public:
  using value_type = Item;
  using const_iterator = const Item*;

  constexpr ItemSpan() noexcept = default;
  constexpr ItemSpan(const Item* data, std::size_t len) noexcept
      : data_(data), len_(len) {}

  [[nodiscard]] const Item* begin() const noexcept { return data_; }
  [[nodiscard]] const Item* end() const noexcept { return data_ + len_; }
  [[nodiscard]] const Item* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] const Item& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] const Item& front() const noexcept { return data_[0]; }
  [[nodiscard]] const Item& back() const noexcept { return data_[len_ - 1]; }

  friend bool operator==(ItemSpan a, ItemSpan b) noexcept {
    if (a.len_ != b.len_) return false;
    for (std::size_t i = 0; i < a.len_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator==(ItemSpan a, const std::vector<Item>& b) noexcept {
    return a == ItemSpan(b.data(), b.size());
  }
  friend bool operator==(const std::vector<Item>& a, ItemSpan b) noexcept {
    return ItemSpan(a.data(), a.size()) == b;
  }

  [[nodiscard]] std::vector<Item> to_vector() const {
    return std::vector<Item>(begin(), end());
  }

 private:
  const Item* data_{nullptr};
  std::size_t len_{0};
};

class StratifiedBatch {
 public:
  StratifiedBatch() = default;

  // A batch's value is its arena + directory; the lazily created build
  // scratch is working state and intentionally NOT copied (a copied
  // payload must not drag ~4 bytes/item of scratch along). Moves carry
  // it, so a long-lived scratch batch keeps its buffers.
  StratifiedBatch(const StratifiedBatch& other)
      : arena_(other.arena_), dir_(other.dir_) {}
  StratifiedBatch& operator=(const StratifiedBatch& other) {
    if (this != &other) {
      arena_ = other.arena_;
      dir_ = other.dir_;
    }
    return *this;
  }
  StratifiedBatch(StratifiedBatch&&) = default;
  StratifiedBatch& operator=(StratifiedBatch&&) = default;

  // --- Flat access (the hot-path API) ------------------------------------

  /// All items, stratum by stratum in ascending id order.
  [[nodiscard]] const std::vector<Item>& items() const noexcept {
    return arena_;
  }
  /// The stratum directory, ascending by id, offsets contiguous.
  [[nodiscard]] const std::vector<Stratum>& strata() const noexcept {
    return dir_;
  }
  [[nodiscard]] ItemSpan span(const Stratum& s) const noexcept {
    return ItemSpan(arena_.data() + s.offset, s.len);
  }
  /// Total items across all strata — O(1), it is the arena size.
  [[nodiscard]] std::size_t item_count() const noexcept {
    return arena_.size();
  }

  // --- Building ----------------------------------------------------------

  void clear() noexcept {
    arena_.clear();
    dir_.clear();
  }

  void reserve_items(std::size_t n) { arena_.reserve(n); }

  /// Rebuilds the batch as the stable stratification of `items` (two-pass
  /// counting build, see header comment) using the caller's reusable
  /// scratch. Arena, directory and scratch buffers are all reused;
  /// steady-state calls allocate nothing once capacity has grown.
  /// Dispatches the counting and scatter passes through the kernel layer
  /// (core/kernels) when a SIMD tier is active; the result is
  /// bit-identical to the retained scalar build either way.
  void assign(const Item* data, std::size_t n, StratifyScratch& scratch);
  void assign(const std::vector<Item>& items, StratifyScratch& scratch) {
    assign(items.data(), items.size(), scratch);
  }

  /// Convenience for batches that are themselves long-lived scratch (a
  /// lane's stratification arena, tests): uses an internal lazily
  /// created StratifyScratch, reused across calls.
  void assign(const Item* data, std::size_t n);
  void assign(const std::vector<Item>& items) {
    assign(items.data(), items.size());
  }

  /// Appends a stratum whose id must be strictly greater than every id
  /// already present (samplers emit strata in ascending order). An empty
  /// stratum (n == 0) is recorded in the directory with len 0.
  void append_stratum(SubStreamId id, const Item* data, std::size_t n);
  void append_stratum(SubStreamId id, const std::vector<Item>& items) {
    append_stratum(id, items.data(), items.size());
  }

  /// Moves the arena out (items in stratum order — exactly the old
  /// map-of-vectors concatenation) and clears the batch. This is what
  /// makes SampledBundle::to_bundle() && a move instead of an O(n) copy.
  [[nodiscard]] std::vector<Item> release_items() {
    std::vector<Item> out = std::move(arena_);
    arena_.clear();
    dir_.clear();
    return out;
  }

  // --- Map-compatible facade ---------------------------------------------
  // Reads exactly like the old std::map<SubStreamId, std::vector<Item>>:
  // size() counts strata, iteration yields (id, span) pairs ascending.

  [[nodiscard]] std::size_t size() const noexcept { return dir_.size(); }
  [[nodiscard]] bool empty() const noexcept { return dir_.empty(); }
  [[nodiscard]] std::size_t count(SubStreamId id) const noexcept {
    return find_index(id) != npos ? 1 : 0;
  }
  /// Span for `id`; throws std::out_of_range when absent (map::at).
  [[nodiscard]] ItemSpan at(SubStreamId id) const;

  class const_iterator {
   public:
    using value_type = std::pair<SubStreamId, ItemSpan>;
    using reference = value_type;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;
    using pointer = void;

    const_iterator() = default;
    const_iterator(const StratifiedBatch* batch, std::size_t index) noexcept
        : batch_(batch), index_(index) {}

    [[nodiscard]] value_type operator*() const noexcept {
      const Stratum& s = batch_->dir_[index_];
      return {s.id, batch_->span(s)};
    }

    struct ArrowProxy {
      value_type pair;
      const value_type* operator->() const noexcept { return &pair; }
    };
    [[nodiscard]] ArrowProxy operator->() const noexcept {
      return ArrowProxy{**this};
    }

    const_iterator& operator++() noexcept {
      ++index_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator old = *this;
      ++index_;
      return old;
    }
    friend bool operator==(const_iterator a, const_iterator b) noexcept {
      return a.batch_ == b.batch_ && a.index_ == b.index_;
    }
    friend bool operator!=(const_iterator a, const_iterator b) noexcept {
      return !(a == b);
    }

   private:
    const StratifiedBatch* batch_{nullptr};
    std::size_t index_{0};
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, dir_.size());
  }

  /// Mutable handle for one stratum, created on demand — the slow,
  /// convenience path (middle insertion shifts later strata). The bulk
  /// builders above are what the samplers use.
  class StratumRef {
   public:
    StratumRef(StratifiedBatch* batch, std::size_t index) noexcept
        : batch_(batch), index_(index) {}

    void push_back(const Item& item) { batch_->push_into(index_, item); }

    StratumRef& operator=(std::initializer_list<Item> items) {
      batch_->replace_stratum(index_, items.begin(), items.size());
      return *this;
    }
    StratumRef& operator=(const std::vector<Item>& items) {
      batch_->replace_stratum(index_, items.data(), items.size());
      return *this;
    }

    [[nodiscard]] std::size_t size() const noexcept {
      return batch_->dir_[index_].len;
    }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

   private:
    StratifiedBatch* batch_;
    std::size_t index_;
  };

  /// Finds or inserts the stratum for `id` (inserting keeps the directory
  /// sorted and the arena layout dense).
  [[nodiscard]] StratumRef operator[](SubStreamId id);

  friend bool operator==(const StratifiedBatch& a, const StratifiedBatch& b) {
    if (a.dir_.size() != b.dir_.size()) return false;
    for (std::size_t i = 0; i < a.dir_.size(); ++i) {
      if (a.dir_[i].id != b.dir_[i].id ||
          !(a.span(a.dir_[i]) == b.span(b.dir_[i]))) {
        return false;
      }
    }
    return true;
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// The verbatim scalar counting build (the kernel oracle) and the
  /// kernel-dispatched build; assign() picks by active tier.
  void assign_scalar(const Item* data, std::size_t n,
                     StratifyScratch& scratch);
  void assign_kernel(const Item* data, std::size_t n,
                     StratifyScratch& scratch, kernels::Tier tier);

  [[nodiscard]] std::size_t find_index(SubStreamId id) const noexcept;
  [[nodiscard]] std::size_t find_or_insert(SubStreamId id);
  void push_into(std::size_t index, const Item& item);
  void replace_stratum(std::size_t index, const Item* data, std::size_t n);

  std::vector<Item> arena_;
  std::vector<Stratum> dir_;
  /// Backing for the scratch-less assign() overload; null until used.
  std::unique_ptr<StratifyScratch> own_scratch_;
};

}  // namespace approxiot::core
