#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include "core/estimators.hpp"
#include "core/theta_store.hpp"

namespace approxiot::core {
namespace {

std::vector<Item> n_items(SubStreamId id, std::size_t n, double value = 1.0) {
  std::vector<Item> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(Item{id, value, 0});
  return out;
}

TEST(WorkerGroupTest, CapacitySplitSumsToTotal) {
  WorkerGroup group(4, 10, Rng(1));
  EXPECT_EQ(group.worker_count(), 4u);
  group.shard(n_items(SubStreamId{1}, 1000));
  auto merged = group.merge();
  EXPECT_EQ(merged.sample.size(), 10u);  // 3+3+2+2
  EXPECT_EQ(merged.total_count, 1000u);
}

TEST(WorkerGroupTest, ZeroWorkersCoercedToOne) {
  WorkerGroup group(0, 5, Rng(2));
  EXPECT_EQ(group.worker_count(), 1u);
}

TEST(WorkerGroupTest, WeightInvariantAfterMerge) {
  // W_mult * |merged sample| == total items observed (Eq. 8 per §III-E).
  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    WorkerGroup group(workers, 12, Rng(workers));
    group.shard(n_items(SubStreamId{1}, 600));
    auto merged = group.merge();
    EXPECT_DOUBLE_EQ(
        merged.weight_multiplier * static_cast<double>(merged.sample.size()),
        600.0)
        << "workers=" << workers;
  }
}

TEST(WorkerGroupTest, UnderfullKeepsWeightOne) {
  WorkerGroup group(4, 100, Rng(3));
  group.shard(n_items(SubStreamId{1}, 20));
  auto merged = group.merge();
  EXPECT_EQ(merged.sample.size(), 20u);
  EXPECT_DOUBLE_EQ(merged.weight_multiplier, 1.0);
}

TEST(WorkerGroupTest, ClampsWorkersToCapacity) {
  // More workers than reservoir slots would leave some workers with a
  // zero-capacity reservoir — a sub-stream could then merge to c̃ = 0
  // while c > 0. The group clamps instead: every active worker holds at
  // least one slot.
  WorkerGroup group(8, 3, Rng(5));
  EXPECT_EQ(group.worker_count(), 3u);
  group.shard(n_items(SubStreamId{1}, 90));
  auto merged = group.merge();
  EXPECT_EQ(merged.sample.size(), 3u);
  EXPECT_EQ(merged.total_count, 90u);
  EXPECT_DOUBLE_EQ(merged.weight_multiplier, 30.0);
}

TEST(WorkerGroupTest, ZeroCapacityCountsWithoutKeepingOrDividing) {
  // Capacity 0 (a starved sub-stream): one active worker that only
  // counts; the multiplier stays 1 instead of dividing by c̃ = 0.
  WorkerGroup group(4, 0, Rng(6));
  EXPECT_EQ(group.worker_count(), 1u);
  group.shard(n_items(SubStreamId{1}, 10));
  auto merged = group.merge();
  EXPECT_TRUE(merged.sample.empty());
  EXPECT_EQ(merged.total_count, 10u);
  EXPECT_DOUBLE_EQ(merged.weight_multiplier, 1.0);
}

TEST(WorkerGroupTest, RoutedShardsBeyondActiveWorkersStillCount) {
  // offer_routed accepts the full requested shard width; shards beyond
  // the clamped worker count contribute to c_i without keeping items, so
  // the Eq. 8 counters stay exact under position-based sharding.
  WorkerGroup group(4, 2, Rng(7));
  EXPECT_EQ(group.worker_count(), 2u);
  EXPECT_EQ(group.shard_width(), 4u);
  const auto items = n_items(SubStreamId{1}, 8);
  for (std::size_t i = 0; i < items.size(); ++i) {
    group.offer_routed(i % 4, items[i]);
  }
  auto merged = group.merge();
  EXPECT_EQ(merged.total_count, 8u);
  EXPECT_EQ(merged.sample.size(), 2u);  // workers 0 and 1 kept one each
  EXPECT_DOUBLE_EQ(merged.weight_multiplier, 4.0);
}

TEST(WorkerGroupTest, RearmKeepsGroupReusableAcrossIntervals) {
  WorkerGroup group(2, 6, Rng(8));
  group.shard(n_items(SubStreamId{1}, 100));
  (void)group.merge();
  group.rearm(2, 4, Rng(9));
  group.shard(n_items(SubStreamId{1}, 50));
  auto merged = group.merge();
  EXPECT_EQ(merged.total_count, 50u);
  EXPECT_EQ(merged.sample.size(), 4u);
  EXPECT_DOUBLE_EQ(merged.weight_multiplier, 12.5);
}

TEST(WorkerGroupTest, MergeResetsForNextInterval) {
  WorkerGroup group(2, 4, Rng(4));
  group.shard(n_items(SubStreamId{1}, 100));
  (void)group.merge();
  group.shard(n_items(SubStreamId{1}, 50));
  auto merged = group.merge();
  EXPECT_EQ(merged.total_count, 50u);
}

TEST(ParallelSamplerTest, MatchesSequentialSemantics) {
  ParallelSampler sampler(4, Rng(5));
  WeightMap w_in;
  w_in.set(SubStreamId{1}, 2.0);

  std::vector<Item> items = n_items(SubStreamId{1}, 1000);
  auto more = n_items(SubStreamId{2}, 10);
  items.insert(items.end(), more.begin(), more.end());

  auto out = sampler.sample(items, 20, w_in);
  // Equal allocation: 10 slots each.
  EXPECT_EQ(out.sample.at(SubStreamId{1}).size(), 10u);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{1}), 2.0 * 100.0);
  // Sub-stream 2 fits entirely: weight unchanged.
  EXPECT_EQ(out.sample.at(SubStreamId{2}).size(), 10u);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{2}), 1.0);
}

TEST(ParallelSamplerTest, ThreadedPathPreservesInvariant) {
  // Large stratum forces the threaded sharding path.
  ParallelSampler sampler(4, Rng(6));
  auto out = sampler.sample(n_items(SubStreamId{1}, 50000), 100, WeightMap{});
  const double w = out.w_out.get(SubStreamId{1});
  const double kept = static_cast<double>(out.sample.at(SubStreamId{1}).size());
  EXPECT_DOUBLE_EQ(w * kept, 50000.0);
}

TEST(ParallelSamplerTest, CountEstimateExactViaTheta) {
  ParallelSampler sampler(3, Rng(7));
  auto out = sampler.sample(n_items(SubStreamId{1}, 3000), 30, WeightMap{});
  ThetaStore theta;
  theta.add(out);
  EXPECT_NEAR(theta.estimated_original_count(SubStreamId{1}), 3000.0, 1e-9);
}

TEST(ParallelSamplerTest, SumUnbiasedOverTrials) {
  // The merged parallel sample must estimate sums without bias, like the
  // single-reservoir path.
  const std::size_t n = 1000;
  double total = 0.0;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    ParallelSampler sampler(4, Rng(100 + static_cast<std::uint64_t>(t)));
    std::vector<Item> items;
    double truth = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = static_cast<double>(i % 17);
      items.push_back(Item{SubStreamId{1}, v, 0});
      truth += v;
    }
    ThetaStore theta;
    theta.add(sampler.sample(items, 50, WeightMap{}));
    total += estimate_total_sum(theta) / truth;
  }
  EXPECT_NEAR(total / trials, 1.0, 0.05);
}

TEST(ParallelSamplerTest, EmptyInput) {
  ParallelSampler sampler(2, Rng(8));
  auto out = sampler.sample({}, 10, WeightMap{});
  EXPECT_TRUE(out.sample.empty());
}

TEST(ParallelSamplerTest, ZeroThreadsCoercedToOne) {
  ParallelSampler sampler(0, Rng(9));
  EXPECT_EQ(sampler.threads(), 1u);
  auto out = sampler.sample(n_items(SubStreamId{1}, 10), 5, WeightMap{});
  EXPECT_EQ(out.sample.at(SubStreamId{1}).size(), 5u);
}

}  // namespace
}  // namespace approxiot::core
