#include "streams/sampling_processor.hpp"

#include "common/logging.hpp"

namespace approxiot::streams {

SamplingProcessor::SamplingProcessor(core::NodeConfig config)
    : node_(config), interval_(config.interval) {}

void SamplingProcessor::init(ProcessorContext& context) {
  context_ = &context;
  context.schedule(interval_);
}

void SamplingProcessor::process(const flowqueue::Record& record) {
  auto bundle = core::decode_bundle(record.value);
  if (!bundle) {
    ++decode_failures_;
    AIOT_LOG(kWarn, "streams.sampling")
        << "dropping undecodable record: " << bundle.status().to_string();
    return;
  }
  psi_.push_back(std::move(bundle).value());
}

void SamplingProcessor::punctuate(SimTime now) { flush(now); }

void SamplingProcessor::flush(SimTime boundary) {
  if (psi_.empty()) return;
  auto outputs = node_.process_interval(psi_);
  psi_.clear();
  for (const core::SampledBundle& out : outputs) {
    if (out.item_count() == 0) continue;
    flowqueue::Record record;
    record.key = context_->node_name();
    record.value = core::encode_bundle(out);
    record.timestamp = boundary;
    context_->forward(std::move(record));
  }
}

void SamplingProcessor::close() {
  flush(context_ != nullptr ? context_->stream_time() : SimTime::zero());
}

SrsProcessor::SrsProcessor(core::SrsNodeConfig config) : node_(config) {}

void SrsProcessor::init(ProcessorContext& context) { context_ = &context; }

void SrsProcessor::process(const flowqueue::Record& record) {
  auto bundle = core::decode_bundle(record.value);
  if (!bundle) {
    ++decode_failures_;
    AIOT_LOG(kWarn, "streams.srs")
        << "dropping undecodable record: " << bundle.status().to_string();
    return;
  }
  std::vector<core::ItemBundle> psi;
  psi.push_back(std::move(bundle).value());
  for (const core::SampledBundle& out : node_.process_interval(psi)) {
    if (out.item_count() == 0) continue;
    flowqueue::Record forwarded;
    forwarded.key = record.key;
    forwarded.value = core::encode_bundle(out);
    forwarded.timestamp = record.timestamp;
    context_->forward(std::move(forwarded));
  }
}

}  // namespace approxiot::streams
