// MetricsRegistry: counters/gauges/histograms, concurrent updates, and
// the snapshot/JSON surface the bench harness consumes.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/metrics.hpp"

namespace approxiot::runtime {
namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  registry.counter("a").increment();
  registry.counter("a").increment(9);
  registry.gauge("g").set(2.5);
  EXPECT_EQ(registry.counter("a").value(), 10u);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 2.5);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("x");
  Counter& again = registry.counter("x");
  EXPECT_EQ(&first, &again);
}

TEST(MetricsTest, ConcurrentCounterIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), 40000u);
}

TEST(MetricsTest, HistogramTracksCountSumMeanMax) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 10.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 20.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 10.0);
}

TEST(MetricsTest, HistogramPercentilesAreOrderedAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const double p50 = h.percentile(0.50);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max_value());
  // Exponential buckets give ~2x resolution; p50 of U[1,1000] is ~500.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1024.0);
  EXPECT_GT(p99, 500.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min_value());
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max_value());
}

TEST(MetricsTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(MetricsTest, SingleSampleHistogramReturnsThatSampleAtEveryQuantile) {
  Histogram h;
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
}

TEST(MetricsTest, AllSamplesInOneBucketStayWithinObservedRange) {
  // 1000..1023 all land in the same base-2 bucket (512, 1024]. Every
  // quantile must stay inside [min, max] — the old implementation
  // interpolated across the whole bucket and could report values below
  // the smallest recorded sample.
  Histogram h;
  for (int i = 1000; i <= 1023; ++i) h.record(static_cast<double>(i));
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, 1000.0) << "q=" << q;
    EXPECT_LE(p, 1023.0) << "q=" << q;
  }
}

TEST(MetricsTest, PercentileIsClampedToMinEvenBelowBucketBoundary) {
  // A lone small value in the first bucket: quantiles must never report
  // below it (the bucket's nominal range starts at 0).
  Histogram h;
  h.record(0.25);
  h.record(0.75);
  EXPECT_GE(h.percentile(0.01), 0.25);
  EXPECT_LE(h.percentile(0.99), 0.75);
}

TEST(MetricsTest, SnapshotAndJsonIncludeEveryMetric) {
  MetricsRegistry registry;
  registry.counter("items").increment(3);
  registry.gauge("fraction").set(0.4);
  registry.histogram("latency_us").record(100.0);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("items"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fraction"), 0.4);
  EXPECT_EQ(snap.histograms.at("latency_us").count, 1u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"items\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fraction\":0.4"), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace approxiot::runtime
