// EdgeTree: the in-memory logical-tree pipeline (Fig. 1).
//
// Builds the paper's layered topology — leaf edge nodes fed by sources,
// optional intermediate layers, one root — and drives it interval by
// interval without any transport: each layer's (W^out, sample) pairs
// become the next layer's Ψ. This execution path is what the accuracy
// experiments (Figs. 5, 10, 11a) use; the latency/throughput experiments
// wrap the same nodes in netsim instead.
//
// Three engine kinds mirror the paper's three compared systems:
//   kApproxIoT — weighted hierarchical sampling at every node;
//   kSrs       — coin-flip simple random sampling at every node;
//   kNative    — no sampling anywhere (exact results).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/control_plane.hpp"
#include "core/error.hpp"
#include "core/node.hpp"
#include "core/srs_node.hpp"

namespace approxiot::core {

class CheckpointWriter;
class CheckpointReader;
struct Checkpoint;

// kSnapshot is the related-work comparator (§VII: sensor-side "snapshot
// sampling" [38, 39]): forward whole intervals every 1/fraction ticks.
enum class EngineKind { kApproxIoT, kSrs, kNative, kSnapshot };

[[nodiscard]] const char* engine_kind_name(EngineKind kind) noexcept;

/// A uniform interface over the three node behaviours so the tree driver
/// does not care which system it is running.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;
  [[nodiscard]] virtual std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi) = 0;
  [[nodiscard]] virtual const NodeMetrics& metrics() const = 0;
  /// Legacy synchronous re-tune; with a bound control plane the policy
  /// resolved at the next interval boundary wins.
  virtual void set_fraction(double fraction) = 0;
  /// Policy epoch the stage resolved for its most recent interval (0 for
  /// stages without a control plane, e.g. native pass-through).
  [[nodiscard]] virtual PolicyEpoch policy_epoch() const noexcept {
    return 0;
  }

  /// Serializes the stage's cross-interval sampling state (RNG streams,
  /// remembered weights, counters, resolved epoch) — everything needed
  /// for a restored stage to continue bit-identically. Each engine tags
  /// its payload; restore_state validates the tag, so checkpoints cannot
  /// cross engines. The default pair is the stateless pass-through
  /// (NativeStage): a tag and nothing else.
  virtual void save_state(CheckpointWriter& writer) const;
  virtual void restore_state(CheckpointReader& reader);
};

struct EdgeTreeConfig {
  /// Edge-layer widths from leaves towards the root, e.g. {4, 2} gives
  /// 4 leaf nodes -> 2 mid nodes -> 1 root (the paper's testbed shape).
  std::vector<std::size_t> layer_widths{4, 2};
  EngineKind engine{EngineKind::kApproxIoT};
  /// End-to-end target sampling fraction in (0,1]. Each sampling layer
  /// (edge layers + root) applies fraction^(1/num_sampling_layers) so the
  /// product matches the target, mirroring how the paper configures both
  /// systems to comparable fractions.
  double sampling_fraction{1.0};
  SimTime interval{SimTime::from_seconds(1.0)};
  std::string allocation_policy{"equal"};
  sampling::ReservoirAlgorithm reservoir_algorithm{
      sampling::ReservoirAlgorithm::kAlgorithmR};
  std::uint64_t rng_seed{42};
  /// Live control plane (§IV-B). Null -> budgets frozen at construction
  /// (the pre-control-plane behaviour). When set, every sampling stage is
  /// built with a PolicyHandle scoped for its layer, resolves its budget
  /// from the plane at interval boundaries, and stamps outputs with the
  /// resolved epoch. A plane whose epoch-0 policy matches this config
  /// (see make_control_plane) is behaviour-neutral until published to.
  std::shared_ptr<ControlPlane> control_plane{};
};

/// A ControlPlane whose epoch-0 policy mirrors `config`: resolving it
/// reproduces exactly the budgets the tree's stages are constructed with,
/// so binding it changes nothing until the first publish.
[[nodiscard]] std::shared_ptr<ControlPlane> make_control_plane(
    const EdgeTreeConfig& config);

/// fraction^(1/layers): per-layer fraction giving an end-to-end target.
[[nodiscard]] double per_layer_fraction(double end_to_end,
                                        std::size_t layers) noexcept;

/// Throws std::invalid_argument unless the topology is well-formed: at
/// least one edge layer, no zero widths, widths non-increasing towards
/// the root. Shared by every executor of the logical tree (EdgeTree, the
/// concurrent runtime) so they accept exactly the same configs.
void validate_edge_tree_config(const EdgeTreeConfig& config);

/// Parameters for constructing a single stage outside an EdgeTree (the
/// netsim wraps stages in simulated nodes instead of the in-memory tree).
struct StageConfig {
  EngineKind engine{EngineKind::kApproxIoT};
  NodeId id{};
  SimTime interval{SimTime::from_seconds(1.0)};
  /// Per-layer sampling fraction (not end-to-end).
  double fraction{1.0};
  std::string allocation_policy{"equal"};
  sampling::ReservoirAlgorithm reservoir_algorithm{
      sampling::ReservoirAlgorithm::kAlgorithmR};
  std::uint64_t rng_seed{42};
  /// Workers sharding each reservoir within the stage (§III-E); only the
  /// kApproxIoT engine honours values > 1, and only when no `executor`
  /// handle is given (the node then owns a private pool).
  std::size_t parallel_workers{1};
  /// Shared execution substrate for the stage's sampling; runtimes pass
  /// one executor to every stage so all shards run on the same
  /// persistent worker pool. Null -> sequential WHSampler.
  std::shared_ptr<SamplingExecutor> executor{};
  /// Live control plane view for the stage (see NodeConfig::policy).
  /// Unbound -> the stage's `fraction` stays frozen.
  PolicyHandle policy{};
};

[[nodiscard]] std::unique_ptr<PipelineStage> make_pipeline_stage(
    const StageConfig& config);

/// The StageConfig an EdgeTree with `config` builds for node (layer,
/// index); `layer == config.layer_widths.size()` addresses the root.
/// Adapters that run the same logical tree on another substrate (the
/// concurrent runtime, netsim) use this so their stages — seeds included —
/// are bit-identical to the sequential tree's.
[[nodiscard]] StageConfig edge_tree_stage_config(const EdgeTreeConfig& config,
                                                std::size_t layer,
                                                std::size_t index);

class EdgeTree {
 public:
  explicit EdgeTree(EdgeTreeConfig config);

  /// Number of leaf nodes; sources should shard sub-streams across them.
  [[nodiscard]] std::size_t leaf_count() const noexcept;

  /// Pushes one interval of source data through every layer and into the
  /// root's Θ. `items_per_leaf` must have exactly leaf_count() entries.
  void tick(const std::vector<std::vector<Item>>& items_per_leaf);

  /// Runs the query over the window accumulated so far and clears Θ.
  ApproxResult close_window(double confidence = stats::kConfidence95);

  /// Query without clearing (inspection mid-window).
  [[nodiscard]] ApproxResult run_query(
      double confidence = stats::kConfidence95) const;

  /// Re-tunes every stage's sampling fraction (adaptive feedback). With a
  /// control plane this publishes a new policy epoch — stages pick it up
  /// at their next interval boundary; without one it falls back to the
  /// legacy synchronous per-stage set_fraction loop.
  void set_sampling_fraction(double end_to_end);
  [[nodiscard]] double sampling_fraction() const noexcept {
    return config_.sampling_fraction;
  }

  /// The live control plane (null when the tree runs frozen budgets).
  [[nodiscard]] const std::shared_ptr<ControlPlane>& control_plane()
      const noexcept {
    return config_.control_plane;
  }
  /// Current policy epoch (0 without a control plane).
  [[nodiscard]] PolicyEpoch policy_epoch() const noexcept {
    return config_.control_plane != nullptr ? config_.control_plane->epoch()
                                            : 0;
  }

  /// Aggregate metrics: items entering the leaves, items reaching the
  /// root, and per-layer forwarded counts (for the bandwidth bench).
  struct TreeMetrics {
    std::uint64_t items_ingested{0};
    std::uint64_t items_at_root{0};
    std::vector<std::uint64_t> items_forwarded_per_layer;
  };
  [[nodiscard]] TreeMetrics metrics() const;

  [[nodiscard]] const ThetaStore& theta() const;
  [[nodiscard]] EngineKind engine() const noexcept { return config_.engine; }

  // --- fault tolerance -----------------------------------------------------

  /// Snapshots every stage's sampling state, Θ, the policy epoch and the
  /// tree counters. Restoring the snapshot into a tree built from the
  /// same config and feeding it the remaining input reproduces the
  /// uninterrupted run bit for bit. The byte format is shared with
  /// ConcurrentEdgeTree, so snapshots are interchangeable between the
  /// sequential and concurrent executions of the same logical tree.
  [[nodiscard]] Checkpoint checkpoint() const;
  /// Throws CheckpointError on a topology/engine mismatch or a malformed
  /// snapshot; the tree is unchanged on throw only for header mismatches
  /// (a mid-payload failure leaves it partially restored — rebuild it).
  void restore(const Checkpoint& checkpoint);

  /// Detaches the subtree whose root is node (layer, index): from the
  /// next tick on, its inputs are swallowed and counted as lost weight
  /// instead of sampled and forwarded. Parents see an empty contribution
  /// (the Fig. 3 carry-over rule keeps their weights consistent), so the
  /// surviving sub-streams' estimates stay exact — see
  /// ApproxResult::lost_weight for the math. `layer ==
  /// layer_widths.size()` addresses the root.
  void detach_subtree(std::size_t layer, std::size_t index);
  void reattach_subtree(std::size_t layer, std::size_t index);
  [[nodiscard]] bool subtree_detached(std::size_t layer,
                                      std::size_t index) const;
  /// Lost weight accumulated in the current window (reset by
  /// close_window, which also reports it in the result).
  [[nodiscard]] double lost_weight() const noexcept { return lost_weight_; }

 private:
  std::unique_ptr<PipelineStage> make_stage(std::size_t layer,
                                            std::size_t index);
  /// &detached flag for (layer, index); throws on a bad address.
  [[nodiscard]] std::uint8_t& detached_flag(std::size_t layer,
                                            std::size_t index);
  /// Counts `bundle`'s items into the lost-weight accumulators at the
  /// weights they carry (Σ |I|·W == the original count, by Eq. 8).
  void swallow_lost(const ItemBundle& bundle);

  EdgeTreeConfig config_;
  double per_layer_fraction_{1.0};
  // stages_[layer][index]; layer 0 = leaves.
  std::vector<std::vector<std::unique_ptr<PipelineStage>>> stages_;
  std::unique_ptr<PipelineStage> root_stage_;
  ThetaStore theta_;
  std::uint64_t items_ingested_{0};
  std::uint64_t items_at_root_{0};
  // detached_[layer][index]; the extra last layer is the root. uint8_t,
  // not bool: vector<bool> has no addressable elements.
  std::vector<std::vector<std::uint8_t>> detached_;
  double lost_weight_{0.0};
  std::uint64_t lost_items_{0};
  /// Any detach active at any point during the current window.
  bool window_degraded_{false};
};

}  // namespace approxiot::core
