#include "core/checkpoint.hpp"

#include <utility>

#include "core/control_plane.hpp"
#include "core/pipeline.hpp"
#include "core/theta_store.hpp"
#include "core/weight_map.hpp"

namespace approxiot::core {

namespace {

constexpr std::uint8_t kMagic = 0xC4;
constexpr std::uint8_t kFormatVersion = 1;

}  // namespace

// ---------------------------------------------------------------------------
// Writer

CheckpointWriter::CheckpointWriter(CheckpointKind kind) {
  encoder_.put_varint(kMagic);
  encoder_.put_varint(kFormatVersion);
  encoder_.put_varint(static_cast<std::uint64_t>(kind));
}

void CheckpointWriter::put_rng(const Rng::State& state) {
  for (const std::uint64_t word : state.s) encoder_.put_fixed64(word);
  put_bool(state.has_cached_gaussian);
  encoder_.put_double(state.cached_gaussian);
}

void CheckpointWriter::put_weight_map(const WeightMap& weights) {
  put_u64(weights.size());
  // WeightMap iterates ascending by id, so the encoding is canonical:
  // equal maps produce equal bytes.
  for (const auto& [id, weight] : weights) {
    encoder_.put_fixed64(id.value());
    encoder_.put_double(weight);
  }
}

void CheckpointWriter::put_theta(const ThetaStore& theta) {
  const std::vector<SubStreamId> ids = theta.sub_streams();
  put_u64(ids.size());
  for (const SubStreamId id : ids) {
    encoder_.put_fixed64(id.value());
    const std::vector<WeightedSample>& pairs = theta.pairs(id);
    put_u64(pairs.size());
    for (const WeightedSample& pair : pairs) {
      encoder_.put_double(pair.weight);
      put_u64(pair.items.size());
      for (const Item& item : pair.items) {
        encoder_.put_fixed64(item.source.value());
        encoder_.put_double(item.value);
        put_i64(item.created_at_us);
      }
    }
  }
  const ThetaStore::EpochSpan span = theta.epoch_span();
  put_bool(span.seen);
  put_u64(span.min);
  put_u64(span.max);
}

// ---------------------------------------------------------------------------
// Reader

CheckpointReader::CheckpointReader(const Checkpoint& checkpoint,
                                   CheckpointKind expected)
    : decoder_(checkpoint.bytes) {
  if (get_u64() != kMagic) {
    throw CheckpointError("checkpoint: bad magic (not a checkpoint)");
  }
  const std::uint64_t version = get_u64();
  if (version != kFormatVersion) {
    throw CheckpointError("checkpoint: unknown format version " +
                          std::to_string(version));
  }
  const std::uint64_t kind = get_u64();
  if (kind != static_cast<std::uint64_t>(expected)) {
    throw CheckpointError("checkpoint: kind mismatch (have " +
                          std::to_string(kind) + ", need " +
                          std::to_string(static_cast<std::uint64_t>(expected)) +
                          ")");
  }
}

std::uint64_t CheckpointReader::get_u64() {
  auto result = decoder_.get_varint();
  if (!result.is_ok()) throw CheckpointError("checkpoint: truncated varint");
  return result.value();
}

std::int64_t CheckpointReader::get_i64() {
  auto result = decoder_.get_fixed64();
  if (!result.is_ok()) throw CheckpointError("checkpoint: truncated fixed64");
  return static_cast<std::int64_t>(result.value());
}

double CheckpointReader::get_double() {
  auto result = decoder_.get_double();
  if (!result.is_ok()) throw CheckpointError("checkpoint: truncated double");
  return result.value();
}

std::string CheckpointReader::get_string() {
  auto result = decoder_.get_string();
  if (!result.is_ok()) throw CheckpointError("checkpoint: truncated string");
  return std::move(result).value();
}

Rng::State CheckpointReader::get_rng() {
  Rng::State state;
  for (std::uint64_t& word : state.s) {
    word = static_cast<std::uint64_t>(get_i64());
  }
  state.has_cached_gaussian = get_bool();
  state.cached_gaussian = get_double();
  return state;
}

void CheckpointReader::get_weight_map(WeightMap& weights) {
  weights.clear();
  const std::uint64_t n = get_u64();
  for (std::uint64_t k = 0; k < n; ++k) {
    const SubStreamId id{static_cast<std::uint64_t>(get_i64())};
    const double weight = get_double();
    weights.set(id, weight);
  }
}

void CheckpointReader::get_theta(ThetaStore& theta) {
  theta.clear();
  const std::uint64_t n_streams = get_u64();
  for (std::uint64_t s = 0; s < n_streams; ++s) {
    const SubStreamId id{static_cast<std::uint64_t>(get_i64())};
    const std::uint64_t n_pairs = get_u64();
    for (std::uint64_t p = 0; p < n_pairs; ++p) {
      WeightedSample pair;
      pair.weight = get_double();
      const std::uint64_t n_items = get_u64();
      pair.items.reserve(n_items);
      for (std::uint64_t i = 0; i < n_items; ++i) {
        Item item;
        item.source = SubStreamId{static_cast<std::uint64_t>(get_i64())};
        item.value = get_double();
        item.created_at_us = get_i64();
        pair.items.push_back(item);
      }
      theta.add_pair(id, std::move(pair));
    }
  }
  // add_pair folded epoch 0 into the span; overwrite with the recorded
  // values (Θ never stores empty pairs, so the pair replay is lossless).
  ThetaStore::EpochSpan span;
  span.seen = get_bool();
  span.min = get_u64();
  span.max = get_u64();
  theta.restore_epoch_span(span);
}

void CheckpointReader::expect_exhausted() const {
  if (!decoder_.exhausted()) {
    throw CheckpointError("checkpoint: trailing bytes after payload");
  }
}

// ---------------------------------------------------------------------------
// Stage-level checkpoints

Checkpoint checkpoint_stage(const PipelineStage& stage) {
  CheckpointWriter writer(CheckpointKind::kStage);
  stage.save_state(writer);
  return writer.finish();
}

void restore_stage(PipelineStage& stage, const Checkpoint& checkpoint) {
  CheckpointReader reader(checkpoint, CheckpointKind::kStage);
  stage.restore_state(reader);
  reader.expect_exhausted();
}

// ---------------------------------------------------------------------------
// Shared tree sections

void write_tree_fingerprint(CheckpointWriter& writer,
                            const EdgeTreeConfig& config) {
  writer.put_u64(static_cast<std::uint64_t>(config.engine));
  writer.put_u64(config.layer_widths.size());
  for (const std::size_t width : config.layer_widths) writer.put_u64(width);
  writer.put_i64(static_cast<std::int64_t>(config.rng_seed));
  writer.put_i64(config.interval.us);
  writer.put_u64(static_cast<std::uint64_t>(config.reservoir_algorithm));
  writer.put_string(config.allocation_policy);
}

void verify_tree_fingerprint(CheckpointReader& reader,
                             const EdgeTreeConfig& config) {
  bool match = reader.get_u64() == static_cast<std::uint64_t>(config.engine);
  const std::uint64_t n_layers = reader.get_u64();
  match = match && n_layers == config.layer_widths.size();
  for (std::uint64_t k = 0; k < n_layers; ++k) {
    const std::uint64_t width = reader.get_u64();
    match = match && k < config.layer_widths.size() &&
            width == config.layer_widths[k];
  }
  match = match &&
          reader.get_i64() == static_cast<std::int64_t>(config.rng_seed);
  match = match && reader.get_i64() == config.interval.us;
  match = match && reader.get_u64() ==
                       static_cast<std::uint64_t>(config.reservoir_algorithm);
  match = match && reader.get_string() == config.allocation_policy;
  if (!match) {
    throw CheckpointError(
        "checkpoint: topology fingerprint mismatch — a checkpoint resumes "
        "the exact configuration it was taken from (same engine, widths, "
        "seed, interval, sampler knobs)");
  }
}

void write_control_plane(CheckpointWriter& writer, const ControlPlane* plane) {
  writer.put_bool(plane != nullptr);
  if (plane == nullptr) return;
  const std::shared_ptr<const SamplingPolicy> policy = plane->snapshot();
  writer.put_u64(policy->epoch);
  writer.put_double(policy->budget.sampling_fraction);
  writer.put_double(policy->budget.max_items_per_second);
  writer.put_u64(policy->budget.fixed_sample_size);
}

void restore_control_plane(CheckpointReader& reader, ControlPlane* plane) {
  const bool had_plane = reader.get_bool();
  if (had_plane != (plane != nullptr)) {
    throw CheckpointError(
        "checkpoint: control-plane presence mismatch (snapshot and tree "
        "must both have one, or neither)");
  }
  if (plane == nullptr) return;
  // Start from the live snapshot so the structural WHSamp knobs (which a
  // live epoch cannot change anyway) carry over, then pin the
  // checkpointed epoch and budget.
  SamplingPolicy policy = *plane->snapshot();
  policy.epoch = reader.get_u64();
  policy.budget.sampling_fraction = reader.get_double();
  policy.budget.max_items_per_second = reader.get_double();
  policy.budget.fixed_sample_size =
      static_cast<std::size_t>(reader.get_u64());
  plane->restore_policy(std::move(policy));
}

}  // namespace approxiot::core
