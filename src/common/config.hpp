// Key=value configuration parsing for examples and benchmark drivers.
// Accepts "key=value" tokens (command line) or lines of the same form
// (files); '#' starts a comment. Typed getters validate and report
// precise errors instead of silently defaulting on malformed input.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace approxiot {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens, e.g. from argv. Unrecognised tokens
  /// (no '=') produce an error status.
  static Result<Config> from_args(const std::vector<std::string>& args);

  /// Parses newline-separated "key=value" text with '#' comments.
  static Result<Config> from_text(const std::string& text);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys() const;

  [[nodiscard]] Result<std::string> get_string(const std::string& key) const;
  [[nodiscard]] Result<std::int64_t> get_int(const std::string& key) const;
  [[nodiscard]] Result<double> get_double(const std::string& key) const;
  [[nodiscard]] Result<bool> get_bool(const std::string& key) const;

  [[nodiscard]] std::string get_string_or(const std::string& key,
                                          std::string fallback) const;
  [[nodiscard]] std::int64_t get_int_or(const std::string& key,
                                        std::int64_t fallback) const;
  [[nodiscard]] double get_double_or(const std::string& key,
                                     double fallback) const;
  [[nodiscard]] bool get_bool_or(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace approxiot
