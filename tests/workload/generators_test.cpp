#include "workload/generators.hpp"

#include <gtest/gtest.h>

namespace approxiot::workload {
namespace {

TEST(GaussianQuadTest, MatchesPaperParameters) {
  auto specs = gaussian_quad();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_DOUBLE_EQ(specs[0].values->mean(), 10.0);
  EXPECT_DOUBLE_EQ(specs[0].values->variance(), 25.0);
  EXPECT_DOUBLE_EQ(specs[1].values->mean(), 1000.0);
  EXPECT_DOUBLE_EQ(specs[1].values->variance(), 2500.0);
  EXPECT_DOUBLE_EQ(specs[2].values->mean(), 10000.0);
  EXPECT_DOUBLE_EQ(specs[3].values->mean(), 100000.0);
  EXPECT_DOUBLE_EQ(specs[3].values->variance(), 25000000.0);
  for (const auto& s : specs) {
    EXPECT_DOUBLE_EQ(s.rate_items_per_s, 25000.0);
  }
}

TEST(PoissonQuadTest, MatchesPaperParameters) {
  auto specs = poisson_quad(1000.0);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_DOUBLE_EQ(specs[0].values->mean(), 10.0);
  EXPECT_DOUBLE_EQ(specs[1].values->mean(), 100.0);
  EXPECT_DOUBLE_EQ(specs[2].values->mean(), 1000.0);
  EXPECT_DOUBLE_EQ(specs[3].values->mean(), 10000.0);
  EXPECT_DOUBLE_EQ(specs[0].rate_items_per_s, 1000.0);
}

TEST(FluctuatingSettingTest, RatesMatchFigureTen) {
  auto s1 = fluctuating_setting(1, true);
  EXPECT_DOUBLE_EQ(s1[0].rate_items_per_s, 50000.0);
  EXPECT_DOUBLE_EQ(s1[1].rate_items_per_s, 25000.0);
  EXPECT_DOUBLE_EQ(s1[2].rate_items_per_s, 12500.0);
  EXPECT_DOUBLE_EQ(s1[3].rate_items_per_s, 625.0);

  auto s2 = fluctuating_setting(2, false);
  for (const auto& s : s2) EXPECT_DOUBLE_EQ(s.rate_items_per_s, 25000.0);

  auto s3 = fluctuating_setting(3, true);
  EXPECT_DOUBLE_EQ(s3[0].rate_items_per_s, 625.0);
  EXPECT_DOUBLE_EQ(s3[3].rate_items_per_s, 50000.0);

  EXPECT_THROW(fluctuating_setting(0, true), std::invalid_argument);
  EXPECT_THROW(fluctuating_setting(4, true), std::invalid_argument);
}

TEST(FluctuatingSettingTest, DistributionFamilySelectable) {
  auto gauss = fluctuating_setting(1, true);
  auto pois = fluctuating_setting(1, false);
  EXPECT_NE(gauss[0].values->describe(), pois[0].values->describe());
}

TEST(SkewedPoissonTest, SharesMatchFigureTenC) {
  auto specs = skewed_poisson(100000.0);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_DOUBLE_EQ(specs[0].rate_items_per_s, 80000.0);
  EXPECT_DOUBLE_EQ(specs[1].rate_items_per_s, 19890.0);
  EXPECT_DOUBLE_EQ(specs[2].rate_items_per_s, 100.0);
  EXPECT_DOUBLE_EQ(specs[3].rate_items_per_s, 10.0);
  // The dominating-by-value sub-stream D has lambda 10^7.
  EXPECT_DOUBLE_EQ(specs[3].values->mean(), 10000000.0);
}

TEST(ExpectedMeanValueTest, RateWeightedAverage) {
  auto specs = gaussian_quad();  // equal rates
  const double expected = (10.0 + 1000.0 + 10000.0 + 100000.0) / 4.0;
  EXPECT_NEAR(expected_mean_value(specs), expected, 1e-9);

  // Skew the rates: the mean must follow.
  specs[3].rate_items_per_s = 0.0;
  const double without_d = (10.0 + 1000.0 + 10000.0) / 3.0;
  EXPECT_NEAR(expected_mean_value(specs), without_d, 1e-9);
}

}  // namespace
}  // namespace approxiot::workload
