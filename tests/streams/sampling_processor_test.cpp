// End-to-end tests of the ApproxIoT sampling module mounted in the
// streams engine over flowqueue topics — the architecture of the paper's
// Fig. 4 in miniature.
#include "streams/sampling_processor.hpp"

#include <gtest/gtest.h>

#include "core/estimators.hpp"
#include "flowqueue/producer.hpp"
#include "streams/driver.hpp"

namespace approxiot::streams {
namespace {

core::NodeConfig fixed_node(std::size_t sample_size,
                            SimTime interval = SimTime::from_seconds(1.0)) {
  core::NodeConfig config;
  config.cost_function = "fixed";
  config.budget.fixed_sample_size = sample_size;
  config.interval = interval;
  return config;
}

std::vector<Item> n_items(SubStreamId id, std::size_t n, double value = 1.0) {
  std::vector<Item> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(Item{id, value, 0});
  return out;
}

class SamplingProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(broker_.create_topic("raw", 1).is_ok());
    ASSERT_TRUE(broker_.create_topic("sampled", 1).is_ok());
  }

  void publish_bundle(const core::ItemBundle& bundle, SimTime at) {
    flowqueue::Producer producer(broker_);
    ASSERT_TRUE(
        producer.send("raw", "src", core::encode_bundle(bundle), at).is_ok());
  }

  core::ThetaStore drain_sampled_topic() {
    core::ThetaStore theta;
    std::vector<flowqueue::Record> records;
    auto topic = broker_.topic("sampled");
    EXPECT_TRUE(topic.is_ok());
    topic.value()->partition(0).read(0, 100000, records);
    for (const auto& record : records) {
      auto bundle = core::decode_bundle(record.value);
      EXPECT_TRUE(bundle.is_ok());
      core::SampledBundle sampled;
      sampled.w_out = bundle.value().w_in;
      for (const Item& item : bundle.value().items) {
        sampled.sample[item.source].push_back(item);
      }
      theta.add(sampled);
    }
    return theta;
  }

  flowqueue::Broker broker_;
};

TEST_F(SamplingProcessorTest, SamplesAndForwardsPerInterval) {
  TopologyBuilder builder;
  builder.add_source("src", "raw")
      .add_processor("samp",
                     []() {
                       return std::make_unique<SamplingProcessor>(
                           fixed_node(10));
                     },
                     {"src"})
      .add_sink("out", "sampled", {"samp"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());

  TopologyDriver driver(broker_, std::move(topo).value(), "test");
  ASSERT_TRUE(driver.start().is_ok());

  core::ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 100, 2.0);
  publish_bundle(bundle, SimTime::from_millis(100));
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  ASSERT_TRUE(driver.stop().is_ok());  // flush the open interval

  core::ThetaStore theta = drain_sampled_topic();
  EXPECT_EQ(theta.sampled_count(SubStreamId{1}), 10u);
  // Count invariant: 10 items at weight 10 reconstruct 100 originals.
  EXPECT_NEAR(theta.estimated_original_count(SubStreamId{1}), 100.0, 1e-9);
  // All-equal values: the sum estimate is exact.
  EXPECT_NEAR(core::estimate_total_sum(theta), 200.0, 1e-9);
}

TEST_F(SamplingProcessorTest, TwoLayerChainComposesWeights) {
  ASSERT_TRUE(broker_.create_topic("mid", 1).is_ok());

  TopologyBuilder layer1;
  layer1.add_source("src", "raw")
      .add_processor("edge",
                     []() {
                       return std::make_unique<SamplingProcessor>(
                           fixed_node(20));
                     },
                     {"src"})
      .add_sink("to_mid", "mid", {"edge"});
  auto topo1 = layer1.build();
  ASSERT_TRUE(topo1.is_ok());

  TopologyBuilder layer2;
  layer2.add_source("src", "mid")
      .add_processor("dc",
                     []() {
                       return std::make_unique<SamplingProcessor>(
                           fixed_node(5));
                     },
                     {"src"})
      .add_sink("out", "sampled", {"dc"});
  auto topo2 = layer2.build();
  ASSERT_TRUE(topo2.is_ok());

  TopologyDriver d1(broker_, std::move(topo1).value(), "l1");
  TopologyDriver d2(broker_, std::move(topo2).value(), "l2");
  ASSERT_TRUE(d1.start().is_ok());
  ASSERT_TRUE(d2.start().is_ok());

  core::ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 400);
  publish_bundle(bundle, SimTime::from_millis(10));

  ASSERT_TRUE(d1.run_until_idle().is_ok());
  ASSERT_TRUE(d1.stop().is_ok());
  ASSERT_TRUE(d2.run_until_idle().is_ok());
  ASSERT_TRUE(d2.stop().is_ok());

  core::ThetaStore theta = drain_sampled_topic();
  EXPECT_EQ(theta.sampled_count(SubStreamId{1}), 5u);
  // 400 -> 20 (w=20) -> 5 (w=20*4=80); 5 * 80 = 400 exactly.
  EXPECT_NEAR(theta.estimated_original_count(SubStreamId{1}), 400.0, 1e-9);
}

// The processor opts into parallel punctuation-time sampling by carrying
// a pooled executor in its NodeConfig; the driver needs no changes. The
// Eq. 8 invariant must survive the trip through the topology.
TEST_F(SamplingProcessorTest, PooledExecutorShardsPunctuationSampling) {
  auto executor = [] {
    core::PooledSamplingExecutor::Options options;
    options.workers_per_lane = 4;
    options.pool_threads = 2;       // force the cross-thread path
    options.min_items_to_dispatch = 0;
    return std::make_shared<core::PooledSamplingExecutor>(options);
  }();

  SamplingProcessor* processor_view = nullptr;
  TopologyBuilder builder;
  builder.add_source("src", "raw")
      .add_processor("samp",
                     [&]() {
                       core::NodeConfig config = fixed_node(40);
                       config.executor = executor;
                       auto processor =
                           std::make_unique<SamplingProcessor>(config);
                       processor_view = processor.get();
                       return processor;
                     },
                     {"src"})
      .add_sink("out", "sampled", {"samp"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());

  TopologyDriver driver(broker_, std::move(topo).value(), "test");
  ASSERT_TRUE(driver.start().is_ok());
  ASSERT_NE(processor_view, nullptr);
  EXPECT_EQ(processor_view->sampling_workers(), 4u);

  // Two sub-streams of known size; equal allocation gives 20 slots each,
  // sharded 4 ways inside the executor.
  core::ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 500, 1.0);
  auto more = n_items(SubStreamId{2}, 60, 3.0);
  bundle.items.insert(bundle.items.end(), more.begin(), more.end());
  publish_bundle(bundle, SimTime::from_millis(100));
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  ASSERT_TRUE(driver.stop().is_ok());

  core::ThetaStore theta = drain_sampled_topic();
  // Eq. 8 reconstructs both originals exactly despite 4-way sharding.
  EXPECT_NEAR(theta.estimated_original_count(SubStreamId{1}), 500.0, 1e-9);
  EXPECT_NEAR(theta.estimated_original_count(SubStreamId{2}), 60.0, 1e-9);
}

// A 1-worker executor is the sequential path: the forwarded samples are
// bit-identical to a processor constructed without any executor handle.
TEST_F(SamplingProcessorTest, OneWorkerExecutorMatchesDefaultBitForBit) {
  auto run = [&](std::shared_ptr<core::SamplingExecutor> executor) {
    flowqueue::Broker broker;
    EXPECT_TRUE(broker.create_topic("raw", 1).is_ok());
    EXPECT_TRUE(broker.create_topic("sampled", 1).is_ok());
    TopologyBuilder builder;
    builder.add_source("src", "raw")
        .add_processor("samp",
                       [&]() {
                         core::NodeConfig config = fixed_node(16);
                         config.rng_seed = 321;
                         config.executor = std::move(executor);
                         return std::make_unique<SamplingProcessor>(config);
                       },
                       {"src"})
        .add_sink("out", "sampled", {"samp"});
    auto topo = builder.build();
    EXPECT_TRUE(topo.is_ok());
    TopologyDriver driver(broker, std::move(topo).value(), "test");
    EXPECT_TRUE(driver.start().is_ok());

    core::ItemBundle bundle;
    Rng rng(9);
    for (int i = 0; i < 300; ++i) {
      bundle.items.push_back(
          Item{SubStreamId{1 + rng.next_below(3)}, rng.next_double(), 0});
    }
    flowqueue::Producer producer(broker);
    EXPECT_TRUE(producer
                    .send("raw", "src", core::encode_bundle(bundle),
                          SimTime::from_millis(50))
                    .is_ok());
    EXPECT_TRUE(driver.run_until_idle().is_ok());
    EXPECT_TRUE(driver.stop().is_ok());

    std::vector<flowqueue::Record> records;
    auto topic = broker.topic("sampled");
    EXPECT_TRUE(topic.is_ok());
    topic.value()->partition(0).read(0, 100000, records);
    return records;
  };

  core::PooledSamplingExecutor::Options options;
  options.workers_per_lane = 1;
  const auto with_executor =
      run(std::make_shared<core::PooledSamplingExecutor>(options));
  const auto without = run(nullptr);

  ASSERT_EQ(with_executor.size(), without.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(with_executor[i].value, without[i].value) << "record " << i;
  }
}

// Live policy (§IV-B) applied at punctuation time: a publish between
// punctuations changes the fraction used for the NEXT flush, the
// forwarded wire records carry the epoch that sampled them, and Eq. 8
// keeps the count estimates exact across the swap.
TEST_F(SamplingProcessorTest, PolicyAppliesAtPunctuationTime) {
  core::SamplingPolicy initial;
  initial.budget.sampling_fraction = 0.5;
  auto plane = std::make_shared<core::ControlPlane>(initial);

  SamplingProcessor* processor_view = nullptr;
  TopologyBuilder builder;
  builder.add_source("src", "raw")
      .add_processor("samp",
                     [&]() {
                       core::NodeConfig config;
                       config.cost_function = "fraction";
                       config.budget.sampling_fraction = 0.5;
                       config.policy = core::PolicyHandle(
                           plane,
                           core::PolicyScope{
                               core::PolicyScope::Rule::kEndToEnd, 1});
                       auto processor =
                           std::make_unique<SamplingProcessor>(config);
                       processor_view = processor.get();
                       return processor;
                     },
                     {"src"})
      .add_sink("out", "sampled", {"samp"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());
  TopologyDriver driver(broker_, std::move(topo).value(), "test");
  ASSERT_TRUE(driver.start().is_ok());

  // Interval 1 under epoch 0 at fraction 0.5.
  core::ItemBundle first;
  first.items = n_items(SubStreamId{1}, 200, 1.0);
  publish_bundle(first, SimTime::from_millis(100));
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  driver.advance_stream_time(SimTime::from_millis(1001));  // punctuate
  ASSERT_NE(processor_view, nullptr);
  EXPECT_EQ(processor_view->policy_epoch(), 0u);

  // The user's budget tightens: epoch 1 halves the fraction. Nothing is
  // restarted — the next punctuation simply resolves the new snapshot.
  plane->publish_fraction(0.25);

  // Interval 2 under epoch 1 at fraction 0.25.
  core::ItemBundle second;
  second.items = n_items(SubStreamId{1}, 400, 1.0);
  publish_bundle(second, SimTime::from_millis(1500));
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  driver.advance_stream_time(SimTime::from_millis(2500));
  EXPECT_EQ(processor_view->policy_epoch(), 1u);
  ASSERT_TRUE(driver.stop().is_ok());

  // Wire records carry the epoch that sampled them, in flush order.
  std::vector<flowqueue::Record> records;
  auto topic = broker_.topic("sampled");
  ASSERT_TRUE(topic.is_ok());
  topic.value()->partition(0).read(0, 100000, records);
  ASSERT_EQ(records.size(), 2u);
  auto flush1 = core::decode_bundle(records[0].value);
  auto flush2 = core::decode_bundle(records[1].value);
  ASSERT_TRUE(flush1.is_ok());
  ASSERT_TRUE(flush2.is_ok());
  EXPECT_EQ(flush1.value().policy_epoch, 0u);
  EXPECT_EQ(flush2.value().policy_epoch, 1u);

  // Fractions actually applied: 0.5 × 200 = 100 kept, then 0.25 × the
  // EWMA-smoothed volume estimate (still 200) = 50 kept — and Eq. 8
  // reconstructs both originals exactly either way.
  EXPECT_EQ(flush1.value().items.size(), 100u);
  EXPECT_EQ(flush2.value().items.size(), 50u);
  const double w1 = flush1.value().w_in.get(SubStreamId{1});
  const double w2 = flush2.value().w_in.get(SubStreamId{1});
  EXPECT_NEAR(100.0 * w1, 200.0, 1e-9);
  EXPECT_NEAR(50.0 * w2, 400.0, 1e-9);
}

TEST_F(SamplingProcessorTest, DropsUndecodableRecords) {
  TopologyBuilder builder;
  builder.add_source("src", "raw")
      .add_processor("samp",
                     []() {
                       return std::make_unique<SamplingProcessor>(
                           fixed_node(10));
                     },
                     {"src"})
      .add_sink("out", "sampled", {"samp"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());
  TopologyDriver driver(broker_, std::move(topo).value(), "test");
  ASSERT_TRUE(driver.start().is_ok());

  flowqueue::Producer producer(broker_);
  ASSERT_TRUE(producer.send("raw", "junk", {0xde, 0xad}).is_ok());
  ASSERT_TRUE(driver.run_until_idle().is_ok());
  ASSERT_TRUE(driver.stop().is_ok());
  EXPECT_TRUE(drain_sampled_topic().empty());
}

TEST_F(SamplingProcessorTest, SrsProcessorForwardsImmediately) {
  TopologyBuilder builder;
  builder.add_source("src", "raw")
      .add_processor("srs",
                     []() {
                       return std::make_unique<SrsProcessor>(
                           core::SrsNodeConfig{NodeId{1}, 0.5, 11});
                     },
                     {"src"})
      .add_sink("out", "sampled", {"srs"});
  auto topo = builder.build();
  ASSERT_TRUE(topo.is_ok());
  TopologyDriver driver(broker_, std::move(topo).value(), "test");
  ASSERT_TRUE(driver.start().is_ok());

  core::ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 10000);
  publish_bundle(bundle, SimTime::from_millis(10));
  // No stop() needed: SRS forwards inline, without interval buffering.
  ASSERT_TRUE(driver.run_until_idle().is_ok());

  core::ThetaStore theta = drain_sampled_topic();
  EXPECT_GT(theta.sampled_count(SubStreamId{1}), 0u);
  EXPECT_NEAR(theta.estimated_original_count(SubStreamId{1}), 10000.0,
              10000.0 * 0.06);
}

}  // namespace
}  // namespace approxiot::streams
