// WeightMap: the per-sub-stream weight metadata that travels with sampled
// items between nodes (§III-A).
//
// A weight W_i answers "how many original items does one sampled item of
// sub-stream S_i stand for". Sources implicitly start at weight 1; each
// node that overflows its reservoir multiplies the weight by c_i / N_i
// (Eq. 2). The map also implements the paper's interval-splitting rule
// (Fig. 3): when items arrive in an interval with no accompanying weight,
// the *last known* weight for that sub-stream applies, so the map
// remembers weights across intervals.
//
// Storage is a flat open-addressing table (power-of-two slots, linear
// probing), not a node-based std::map: get()/contains() are the
// per-stratum-per-interval hot calls of the samplers and resolve with one
// hash and a short probe instead of a pointer chase. Iteration order must
// stay deterministic and ascending by id — the wire format, operator<<,
// and every equivalence test depend on it — so the map also keeps a
// sorted index of occupied slots; iteration walks that index, which makes
// begin()/end() and operator== behave exactly like the old std::map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <ostream>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace approxiot::core {

struct Stratum;

class WeightMap {
 public:
  WeightMap() = default;

  /// Weight for `id`; sub-streams never seen default to 1 (the weight of
  /// raw source data, §III-C case i).
  [[nodiscard]] double get(SubStreamId id) const noexcept {
    const std::size_t slot = find_slot(id);
    return slot == npos ? 1.0 : slots_[slot].weight;
  }

  [[nodiscard]] bool contains(SubStreamId id) const noexcept {
    return find_slot(id) != npos;
  }

  /// Weights for a whole stratum directory at once. `dir` is ascending
  /// by id (the StratifiedBatch invariant), so instead of one hash +
  /// probe per stratum this merges dir against the sorted slot index in
  /// a single linear pass — the samplers' per-interval block lookup.
  /// Writes dir.size() weights to `out`; absent ids get 1 (same default
  /// as get()).
  void get_for_strata(const std::vector<Stratum>& dir,
                      double* out) const noexcept;

  void set(SubStreamId id, double weight);

  /// Overwrites entries present in `other`, keeps the rest — the
  /// "remember the up-to-date weight" rule of Fig. 3.
  void update_from(const WeightMap& other) {
    for (const auto& [id, w] : other) set(id, w);
  }

  void clear() noexcept {
    slots_.clear();
    order_.clear();
  }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }

  /// Iterates (id, weight) pairs in ascending id order — the exact
  /// sequence the old std::map produced.
  class const_iterator {
   public:
    using value_type = std::pair<SubStreamId, double>;
    using reference = value_type;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;
    using pointer = void;

    const_iterator() = default;
    const_iterator(const WeightMap* map, std::size_t index) noexcept
        : map_(map), index_(index) {}

    [[nodiscard]] value_type operator*() const noexcept {
      const Slot& slot = map_->slots_[map_->order_[index_]];
      return {slot.id, slot.weight};
    }

    struct ArrowProxy {
      value_type pair;
      const value_type* operator->() const noexcept { return &pair; }
    };
    [[nodiscard]] ArrowProxy operator->() const noexcept {
      return ArrowProxy{**this};
    }

    const_iterator& operator++() noexcept {
      ++index_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator old = *this;
      ++index_;
      return old;
    }
    friend bool operator==(const_iterator a, const_iterator b) noexcept {
      return a.map_ == b.map_ && a.index_ == b.index_;
    }
    friend bool operator!=(const_iterator a, const_iterator b) noexcept {
      return !(a == b);
    }

   private:
    const WeightMap* map_{nullptr};
    std::size_t index_{0};
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, order_.size());
  }

  /// Same semantics as std::map equality: identical (id, weight) entry
  /// sequences (both iterate in ascending id order).
  friend bool operator==(const WeightMap& a, const WeightMap& b) noexcept {
    if (a.order_.size() != b.order_.size()) return false;
    for (std::size_t i = 0; i < a.order_.size(); ++i) {
      const Slot& sa = a.slots_[a.order_[i]];
      const Slot& sb = b.slots_[b.order_[i]];
      if (sa.id != sb.id || sa.weight != sb.weight) return false;
    }
    return true;
  }

  friend std::ostream& operator<<(std::ostream& os, const WeightMap& m);

 private:
  struct Slot {
    SubStreamId id{};
    double weight{0.0};
    bool used{false};
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Full-avalanche mix so clustered ids spread over the 2^k table.
  static std::uint64_t hash(SubStreamId id) noexcept {
    return mix64(id.value());
  }

  [[nodiscard]] std::size_t find_slot(SubStreamId id) const noexcept;
  void grow();

  std::vector<Slot> slots_;          // open-addressing table, 2^k slots
  std::vector<std::uint32_t> order_; // occupied slots, sorted by id
};

}  // namespace approxiot::core
