#include "stats/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace approxiot::stats {
namespace {

TEST(RunningMomentsTest, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.sum(), 0.0);
  EXPECT_EQ(m.sample_variance(), 0.0);
  EXPECT_EQ(m.population_variance(), 0.0);
}

TEST(RunningMomentsTest, SingleValue) {
  RunningMoments m;
  m.add(4.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
  EXPECT_DOUBLE_EQ(m.sum(), 4.0);
  EXPECT_EQ(m.sample_variance(), 0.0);  // n-1 undefined -> 0
  EXPECT_EQ(m.min(), 4.0);
  EXPECT_EQ(m.max(), 4.0);
}

TEST(RunningMomentsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningMoments m;
  for (double x : xs) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.population_variance(), 4.0);
  EXPECT_NEAR(m.sample_variance(), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(RunningMomentsTest, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  RunningMoments m;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) {
    m.add(x);
  }
  EXPECT_NEAR(m.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(m.sample_variance(), 30.0, 1e-3);
}

TEST(RunningMomentsTest, MergeMatchesSequential) {
  Rng rng(3);
  RunningMoments all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian() * 3.0 + 1.0;
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.sample_variance(), all.sample_variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningMomentsTest, MergeWithEmptySides) {
  RunningMoments a, b;
  a.add(1.0);
  a.add(3.0);
  RunningMoments a_copy = a;
  a.merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningMomentsTest, ResetClearsState) {
  RunningMoments m;
  m.add(5.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(WeightedMomentsTest, WeightOneMatchesUnweighted) {
  RunningMoments plain;
  WeightedMoments weighted;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    plain.add(x);
    weighted.add(x, 1.0);
  }
  EXPECT_NEAR(weighted.mean(), plain.mean(), 1e-12);
  EXPECT_NEAR(weighted.population_variance(), plain.population_variance(),
              1e-12);
  EXPECT_NEAR(weighted.weighted_sum(), plain.sum(), 1e-12);
}

TEST(WeightedMomentsTest, IntegerWeightEqualsRepetition) {
  RunningMoments repeated;
  WeightedMoments weighted;
  repeated.add(2.0);
  repeated.add(2.0);
  repeated.add(2.0);
  repeated.add(8.0);
  weighted.add(2.0, 3.0);
  weighted.add(8.0, 1.0);
  EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
  EXPECT_NEAR(weighted.population_variance(), repeated.population_variance(),
              1e-12);
}

TEST(WeightedMomentsTest, IgnoresNonPositiveWeights) {
  WeightedMoments m;
  m.add(5.0, 0.0);
  m.add(5.0, -2.0);
  EXPECT_EQ(m.weight_sum(), 0.0);
  EXPECT_EQ(m.mean(), 0.0);
}

}  // namespace
}  // namespace approxiot::stats
