// Minimal Status/Result error-propagation types (no exceptions on hot
// paths; exceptions are reserved for programming errors / constructor
// failures, per the repo's error-handling policy).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace approxiot {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
};

/// Human-readable name for a StatusCode ("OK", "NOT_FOUND", ...).
[[nodiscard]] const char* status_code_name(StatusCode code) noexcept;

/// A success/error outcome with an optional message. Cheap to copy on the
/// success path (empty string).
class Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }
  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status not_found(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status already_exists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status out_of_range(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status failed_precondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status resource_exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return code_ == StatusCode::kOk;
  }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] std::string to_string() const;

  explicit operator bool() const noexcept { return is_ok(); }

 private:
  StatusCode code_{StatusCode::kOk};
  std::string message_;
};

/// Either a value or a Status explaining why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {
    // A Result carrying an OK status but no value is a logic error; map it
    // to kInternal so callers always see a failure reason.
    if (std::holds_alternative<Status>(data_) &&
        std::get<Status>(data_).is_ok()) {
      data_ = Status::internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& { return std::get<T>(data_); }
  [[nodiscard]] T& value() & { return std::get<T>(data_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(data_)); }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace approxiot
