// ThreadPool: execution, wait_idle barrier, shutdown semantics, and the
// reproducibility of per-worker RNG streams.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace approxiot::runtime {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    EXPECT_TRUE(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST(ThreadPoolTest, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 50);
}

// Two pools with the same seed expose identical per-worker RNG streams:
// worker i's first draw matches across pools, and distinct workers draw
// from non-overlapping sub-sequences.
TEST(ThreadPoolTest, PerWorkerRngIsSeededDeterministically) {
  auto collect = [](std::uint64_t seed) {
    std::map<std::uint64_t, std::uint64_t> first_draw;
    std::mutex mutex;
    {
      ThreadPool pool(4, seed);
      // One task per worker; tasks park until every worker holds one, so
      // each worker runs exactly one task.
      std::atomic<int> arrived{0};
      for (int i = 0; i < 4; ++i) {
        pool.submit([&](WorkerContext& context) {
          arrived.fetch_add(1);
          while (arrived.load() < 4) std::this_thread::yield();
          std::lock_guard<std::mutex> lock(mutex);
          first_draw[context.id.value()] = context.rng.next();
        });
      }
      pool.wait_idle();
    }
    return first_draw;
  };

  const auto a = collect(1234);
  const auto b = collect(1234);
  const auto c = collect(9999);

  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  // Distinct workers must not share a stream.
  std::set<std::uint64_t> draws;
  for (const auto& [id, draw] : a) draws.insert(draw);
  EXPECT_EQ(draws.size(), 4u);
}

}  // namespace
}  // namespace approxiot::runtime
