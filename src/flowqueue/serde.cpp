#include "flowqueue/serde.hpp"

#include <cstring>

namespace approxiot::flowqueue {

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::put_fixed64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::put_double(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_fixed64(bits);
}

void Encoder::put_string(const std::string& s) {
  put_varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Encoder::put_bytes(const std::vector<std::uint8_t>& bytes) {
  put_varint(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::uint64_t> Decoder::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (cursor_ < size_) {
    const std::uint8_t byte = data_[cursor_++];
    if (shift >= 64) {
      return Status::out_of_range("varint longer than 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::out_of_range("truncated varint");
}

Result<std::uint64_t> Decoder::get_fixed64() {
  if (remaining() < 8) return Status::out_of_range("truncated fixed64");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[cursor_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  cursor_ += 8;
  return value;
}

Result<double> Decoder::get_double() {
  auto bits = get_fixed64();
  if (!bits) return bits.status();
  double value;
  const std::uint64_t raw = bits.value();
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

Result<std::string> Decoder::get_string() {
  auto len = get_varint();
  if (!len) return len.status();
  if (remaining() < len.value()) {
    return Status::out_of_range("truncated string payload");
  }
  std::string out(reinterpret_cast<const char*>(data_ + cursor_),
                  static_cast<std::size_t>(len.value()));
  cursor_ += static_cast<std::size_t>(len.value());
  return out;
}

}  // namespace approxiot::flowqueue
