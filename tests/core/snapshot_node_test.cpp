#include "core/snapshot_node.hpp"

#include <gtest/gtest.h>

#include "core/estimators.hpp"
#include "core/pipeline.hpp"
#include "core/theta_store.hpp"

namespace approxiot::core {
namespace {

std::vector<Item> n_items(SubStreamId id, std::size_t n, double value = 1.0) {
  std::vector<Item> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(Item{id, value, 0});
  return out;
}

TEST(SnapshotNodeTest, ValidatesConfig) {
  EXPECT_THROW(SnapshotNode(SnapshotNodeConfig{NodeId{1}, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(SnapshotNode(SnapshotNodeConfig{NodeId{1}, 2, 5}),
               std::invalid_argument);
}

TEST(SnapshotNodeTest, KeepsEveryKthIntervalEntirely) {
  SnapshotNode node(SnapshotNodeConfig{NodeId{1}, 3, 0});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 10);

  int kept_intervals = 0;
  for (int i = 0; i < 9; ++i) {
    auto out = node.process_interval({bundle});
    if (!out.empty()) {
      ++kept_intervals;
      EXPECT_EQ(out[0].sample.at(SubStreamId{1}).size(), 10u);
      EXPECT_DOUBLE_EQ(out[0].w_out.get(SubStreamId{1}), 3.0);
    }
  }
  EXPECT_EQ(kept_intervals, 3);  // intervals 0, 3, 6
}

TEST(SnapshotNodeTest, PhaseShiftsTheKeptInterval) {
  SnapshotNode node(SnapshotNodeConfig{NodeId{1}, 4, 2});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 1);
  std::vector<bool> kept;
  for (int i = 0; i < 8; ++i) {
    kept.push_back(!node.process_interval({bundle}).empty());
  }
  EXPECT_EQ(kept, (std::vector<bool>{false, false, true, false, false, false,
                                     true, false}));
}

TEST(SnapshotNodeTest, StationaryStreamEstimateIsUnbiased) {
  // On a stationary stream, snapshot weighting reconstructs the total.
  SnapshotNode node(SnapshotNodeConfig{NodeId{1}, 5, 0});
  ItemBundle bundle;
  bundle.items = n_items(SubStreamId{1}, 100, 2.0);

  ThetaStore theta;
  for (int i = 0; i < 10; ++i) {
    for (auto& out : node.process_interval({bundle})) theta.add(out);
  }
  // 10 intervals x 100 items x 2.0 = 2000 total; 2 kept snapshots at
  // weight 5 reconstruct it exactly.
  EXPECT_DOUBLE_EQ(estimate_total_sum(theta), 2000.0);
}

TEST(SnapshotNodeTest, DriftingStreamIsBiased) {
  // The weakness the paper's item-level sampling avoids: values drift
  // between snapshots, and the decimation misses the change entirely.
  SnapshotNode node(SnapshotNodeConfig{NodeId{1}, 5, 0});
  ThetaStore theta;
  double truth = 0.0;
  for (int i = 0; i < 10; ++i) {
    ItemBundle bundle;
    const double value = static_cast<double>(i + 1);  // rising values
    bundle.items = n_items(SubStreamId{1}, 100, value);
    truth += 100.0 * value;
    for (auto& out : node.process_interval({bundle})) theta.add(out);
  }
  // Kept intervals 0 and 5 (values 1 and 6): estimate 500*(1+6)=3500 vs
  // truth 5500 — a 36% bias.
  EXPECT_DOUBLE_EQ(estimate_total_sum(theta), 3500.0);
  EXPECT_GT(std::fabs(estimate_total_sum(theta) - truth) / truth, 0.3);
}

TEST(SnapshotNodeTest, SetFractionMapsToPeriod) {
  SnapshotNode node(SnapshotNodeConfig{NodeId{1}, 1, 0});
  node.set_fraction(0.25);
  EXPECT_EQ(node.period(), 4u);
  node.set_fraction(1.0);
  EXPECT_EQ(node.period(), 1u);
  node.set_fraction(0.0);
  EXPECT_GT(node.period(), 1000u);
}

TEST(SnapshotNodeTest, WeightsComposeWithUpstream) {
  SnapshotNode node(SnapshotNodeConfig{NodeId{1}, 2, 0});
  ItemBundle bundle;
  bundle.w_in.set(SubStreamId{1}, 3.0);
  bundle.items = n_items(SubStreamId{1}, 4);
  auto out = node.process_interval({bundle});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].w_out.get(SubStreamId{1}), 6.0);
}

TEST(SnapshotEngineTest, RunsInsideEdgeTree) {
  EdgeTreeConfig config;
  config.engine = EngineKind::kSnapshot;
  config.layer_widths = {2};
  config.sampling_fraction = 0.5;  // period 2 at the leaves
  EdgeTree tree(config);

  double estimate_total = 0.0;
  const double per_window = 100.0;
  for (int w = 0; w < 4; ++w) {
    std::vector<std::vector<Item>> leaves(2);
    leaves[0] = n_items(SubStreamId{1}, 100, 1.0);
    tree.tick(leaves);
    estimate_total += tree.close_window().sum.point;
  }
  // Stationary stream: halves of the windows kept at weight 2 -> the
  // multi-window total reconstructs 4 * 100.
  EXPECT_DOUBLE_EQ(estimate_total, 4.0 * per_window);
  EXPECT_STREQ(engine_kind_name(EngineKind::kSnapshot), "Snapshot");
}

}  // namespace
}  // namespace approxiot::core
