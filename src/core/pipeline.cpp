#include "core/pipeline.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/snapshot_node.hpp"

namespace approxiot::core {

const char* engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kApproxIoT:
      return "ApproxIoT";
    case EngineKind::kSrs:
      return "SRS";
    case EngineKind::kNative:
      return "Native";
    case EngineKind::kSnapshot:
      return "Snapshot";
  }
  return "?";
}

double per_layer_fraction(double end_to_end, std::size_t layers) noexcept {
  if (layers == 0) return 1.0;
  if (end_to_end <= 0.0) return 0.0;
  if (end_to_end >= 1.0) return 1.0;
  return std::pow(end_to_end, 1.0 / static_cast<double>(layers));
}

namespace {

/// ApproxIoT stage: wraps SamplingNode.
class WhsStage final : public PipelineStage {
 public:
  explicit WhsStage(NodeConfig config) : node_(std::move(config)) {}

  std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi) override {
    return node_.process_interval(psi);
  }

  const NodeMetrics& metrics() const override { return node_.metrics(); }

  void set_fraction(double fraction) override {
    ResourceBudget b = node_.budget();
    b.sampling_fraction = fraction;
    node_.set_budget(b);
  }

  PolicyEpoch policy_epoch() const noexcept override {
    return node_.policy_epoch();
  }

 private:
  SamplingNode node_;
};

/// SRS stage: wraps SrsNode.
class SrsStage final : public PipelineStage {
 public:
  explicit SrsStage(SrsNodeConfig config) : node_(std::move(config)) {}

  std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi) override {
    return node_.process_interval(psi);
  }

  const NodeMetrics& metrics() const override { return node_.metrics(); }

  void set_fraction(double fraction) override {
    node_.set_probability(fraction);
  }

  PolicyEpoch policy_epoch() const noexcept override {
    return node_.policy_epoch();
  }

 private:
  SrsNode node_;
};

/// Snapshot stage: wraps SnapshotNode (whole-interval decimation).
class SnapshotStage final : public PipelineStage {
 public:
  explicit SnapshotStage(SnapshotNodeConfig config)
      : node_(std::move(config)) {}

  std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi) override {
    return node_.process_interval(psi);
  }

  const NodeMetrics& metrics() const override { return node_.metrics(); }

  void set_fraction(double fraction) override { node_.set_fraction(fraction); }

  PolicyEpoch policy_epoch() const noexcept override {
    return node_.policy_epoch();
  }

 private:
  SnapshotNode node_;
};

/// Native stage: forwards everything untouched (weight stays 1).
class NativeStage final : public PipelineStage {
 public:
  std::vector<SampledBundle> process_interval(
      const std::vector<ItemBundle>& psi) override {
    std::vector<SampledBundle> out;
    out.reserve(psi.size());
    for (const ItemBundle& bundle : psi) {
      if (bundle.items.empty()) continue;
      metrics_.items_in += bundle.items.size();
      SampledBundle sampled;
      sampled.sample.assign(bundle.items, stratify_scratch_);
      for (const Stratum& s : sampled.sample.strata()) {
        sampled.w_out.set(s.id, bundle.w_in.get(s.id));
      }
      metrics_.items_out += sampled.item_count();
      out.push_back(std::move(sampled));
    }
    ++metrics_.intervals;
    return out;
  }

  const NodeMetrics& metrics() const override { return metrics_; }
  void set_fraction(double /*fraction*/) override {}

 private:
  NodeMetrics metrics_;
  StratifyScratch stratify_scratch_;
};

}  // namespace

std::unique_ptr<PipelineStage> make_pipeline_stage(const StageConfig& config) {
  switch (config.engine) {
    case EngineKind::kApproxIoT: {
      NodeConfig nc;
      nc.id = config.id;
      nc.interval = config.interval;
      nc.budget.sampling_fraction = config.fraction;
      nc.cost_function = "fraction";
      nc.whsamp.allocation_policy = config.allocation_policy;
      nc.whsamp.reservoir_algorithm = config.reservoir_algorithm;
      nc.rng_seed = config.rng_seed;
      nc.parallel_workers = config.parallel_workers;
      nc.executor = config.executor;
      nc.policy = config.policy;
      return std::make_unique<WhsStage>(std::move(nc));
    }
    case EngineKind::kSrs: {
      SrsNodeConfig sc;
      sc.id = config.id;
      sc.probability = config.fraction;
      sc.rng_seed = config.rng_seed;
      sc.policy = config.policy;
      return std::make_unique<SrsStage>(std::move(sc));
    }
    case EngineKind::kNative:
      // Native forwards everything untouched — there is no budget for a
      // policy to steer, so the handle stays unbound (epoch 0 outputs).
      return std::make_unique<NativeStage>();
    case EngineKind::kSnapshot: {
      SnapshotNodeConfig sc;
      sc.id = config.id;
      sc.period = 1;
      sc.policy = config.policy;
      auto out = std::make_unique<SnapshotStage>(std::move(sc));
      out->set_fraction(config.fraction);
      return out;
    }
  }
  throw std::logic_error("unreachable engine kind");
}

std::shared_ptr<ControlPlane> make_control_plane(
    const EdgeTreeConfig& config) {
  SamplingPolicy initial;
  initial.budget.sampling_fraction = config.sampling_fraction;
  initial.whsamp.allocation_policy = config.allocation_policy;
  initial.whsamp.reservoir_algorithm = config.reservoir_algorithm;
  return std::make_shared<ControlPlane>(std::move(initial));
}

/// PolicyScope for node (layer, …) of a tree with `config`: how that
/// stage projects the policy's end-to-end fraction onto its local budget.
static PolicyScope edge_tree_policy_scope(const EdgeTreeConfig& config,
                                          std::size_t layer) {
  PolicyScope scope;
  if (config.engine == EngineKind::kSnapshot) {
    // Decimation happens once, at the leaves; other layers pass through
    // and must keep doing so whatever the policy says.
    scope.rule = layer == 0 ? PolicyScope::Rule::kEndToEnd
                            : PolicyScope::Rule::kHold;
  } else {
    scope.rule = PolicyScope::Rule::kPerLayer;
    scope.sampling_layers = config.layer_widths.size() + 1;
  }
  return scope;
}

StageConfig edge_tree_stage_config(const EdgeTreeConfig& config,
                                   std::size_t layer, std::size_t index) {
  // Sampling layers = all edge layers + the root; snapshot decimates only
  // at the leaves (see the EdgeTree constructor comment).
  const std::size_t sampling_layers = config.layer_widths.size() + 1;
  const double plf =
      per_layer_fraction(config.sampling_fraction, sampling_layers);
  const bool snapshot = config.engine == EngineKind::kSnapshot;

  StageConfig sc;
  sc.engine = config.engine;
  sc.id = NodeId{(static_cast<std::uint64_t>(layer) << 32) | index};
  sc.interval = config.interval;
  sc.fraction =
      snapshot ? (layer == 0 ? config.sampling_fraction : 1.0) : plf;
  sc.allocation_policy = config.allocation_policy;
  sc.reservoir_algorithm = config.reservoir_algorithm;
  sc.rng_seed = config.rng_seed * 0x9e3779b97f4a7c15ULL + sc.id.value() + 1;
  if (config.control_plane != nullptr &&
      config.engine != EngineKind::kNative) {
    sc.policy = PolicyHandle(config.control_plane,
                             edge_tree_policy_scope(config, layer));
  }
  return sc;
}

std::unique_ptr<PipelineStage> EdgeTree::make_stage(std::size_t layer,
                                                    std::size_t index) {
  return make_pipeline_stage(edge_tree_stage_config(config_, layer, index));
}

void validate_edge_tree_config(const EdgeTreeConfig& config) {
  if (config.layer_widths.empty()) {
    throw std::invalid_argument("edge tree needs at least one edge layer");
  }
  for (std::size_t w : config.layer_widths) {
    if (w == 0) throw std::invalid_argument("layer width must be > 0");
  }
  for (std::size_t i = 1; i < config.layer_widths.size(); ++i) {
    if (config.layer_widths[i] > config.layer_widths[i - 1]) {
      throw std::invalid_argument(
          "layer widths must not grow towards the root");
    }
  }
}

EdgeTree::EdgeTree(EdgeTreeConfig config) : config_(std::move(config)) {
  validate_edge_tree_config(config_);

  // Sampling layers = all edge layers + the root. Snapshot sampling is a
  // sensor-side scheme (related work [38, 39]): it decimates whole
  // intervals once, at the leaves, and passes through elsewhere —
  // decimating at every layer would compound the period. The per-stage
  // fractions live in edge_tree_stage_config so runtime adapters build
  // identical stages.
  const std::size_t sampling_layers = config_.layer_widths.size() + 1;
  per_layer_fraction_ =
      per_layer_fraction(config_.sampling_fraction, sampling_layers);

  stages_.resize(config_.layer_widths.size());
  for (std::size_t layer = 0; layer < config_.layer_widths.size(); ++layer) {
    for (std::size_t i = 0; i < config_.layer_widths[layer]; ++i) {
      stages_[layer].push_back(make_stage(layer, i));
    }
  }
  root_stage_ = make_stage(stages_.size(), 0);
}

std::size_t EdgeTree::leaf_count() const noexcept {
  return config_.layer_widths.front();
}

void EdgeTree::tick(const std::vector<std::vector<Item>>& items_per_leaf) {
  if (items_per_leaf.size() != leaf_count()) {
    throw std::invalid_argument("tick() expects one item vector per leaf");
  }

  // Ψ for the current layer, indexed by node.
  std::vector<std::vector<ItemBundle>> psi(leaf_count());
  for (std::size_t i = 0; i < items_per_leaf.size(); ++i) {
    items_ingested_ += items_per_leaf[i].size();
    if (items_per_leaf[i].empty()) continue;
    ItemBundle bundle;
    bundle.items = items_per_leaf[i];
    psi[i].push_back(std::move(bundle));
  }

  for (std::size_t layer = 0; layer < stages_.size(); ++layer) {
    const std::size_t next_width = layer + 1 < stages_.size()
                                       ? config_.layer_widths[layer + 1]
                                       : 1;
    std::vector<std::vector<ItemBundle>> next_psi(next_width);
    for (std::size_t i = 0; i < stages_[layer].size(); ++i) {
      auto outputs = stages_[layer][i]->process_interval(psi[i]);
      // Children map onto parents by index scaling (contiguous blocks),
      // the shape of the paper's 8-4-2-1 testbed.
      const std::size_t parent =
          i * next_width / stages_[layer].size();
      for (SampledBundle& bundle : outputs) {
        next_psi[parent].push_back(std::move(bundle).to_bundle());
      }
    }
    psi = std::move(next_psi);
  }

  // Root: sample once more, then accumulate into Θ.
  for (const auto& bundle : psi[0]) items_at_root_ += bundle.items.size();
  for (SampledBundle& bundle : root_stage_->process_interval(psi[0])) {
    theta_.add(bundle);
  }
}

ApproxResult EdgeTree::close_window(double confidence) {
  ApproxResult result = approximate_query(theta_, confidence);
  theta_.clear();
  return result;
}

ApproxResult EdgeTree::run_query(double confidence) const {
  return approximate_query(theta_, confidence);
}

void EdgeTree::set_sampling_fraction(double end_to_end) {
  config_.sampling_fraction = end_to_end;
  const std::size_t sampling_layers = config_.layer_widths.size() + 1;
  per_layer_fraction_ = per_layer_fraction(end_to_end, sampling_layers);
  if (config_.control_plane != nullptr) {
    // Versioned path: publish epoch N+1; every stage resolves it at its
    // next interval boundary (and stamps outputs with the new epoch).
    config_.control_plane->publish_fraction(end_to_end);
    return;
  }
  const bool snapshot = config_.engine == EngineKind::kSnapshot;
  for (std::size_t layer = 0; layer < stages_.size(); ++layer) {
    const double f = snapshot ? (layer == 0 ? end_to_end : 1.0)
                              : per_layer_fraction_;
    for (auto& stage : stages_[layer]) stage->set_fraction(f);
  }
  root_stage_->set_fraction(snapshot ? 1.0 : per_layer_fraction_);
}

EdgeTree::TreeMetrics EdgeTree::metrics() const {
  TreeMetrics m;
  m.items_ingested = items_ingested_;
  m.items_at_root = items_at_root_;
  for (const auto& layer : stages_) {
    std::uint64_t forwarded = 0;
    for (const auto& stage : layer) forwarded += stage->metrics().items_out;
    m.items_forwarded_per_layer.push_back(forwarded);
  }
  return m;
}

const ThetaStore& EdgeTree::theta() const { return theta_; }

}  // namespace approxiot::core
