// Error estimation (§III-D): CLT-based variance of the SUM and MEAN
// estimators and "68-95-99.7"-rule confidence intervals.
//
//   V̂ar(SUM*) = Σ_i c_{i,b}(c_{i,b} − ζ_i) s²_{i,r} / ζ_i     (Eq. 11)
//   V̂ar(MEAN*) = Σ_i φ_i² · s²_{i,r}/ζ_i · (c_{i,b}−ζ_i)/c_{i,b}  (Eq. 14)
//
// where c_{i,b} is recovered from Θ via Eq. 8, ζ_i is the number of
// sampled items of S_i at the root, s²_{i,r} their sample variance, and
// φ_i = c_{i,b} / Σ_j c_{j,b}. The finite-population-correction factor
// (c−ζ) vanishes when a sub-stream was not down-sampled, giving zero
// variance for exactly known strata.
#pragma once

#include <vector>

#include "core/estimators.hpp"
#include "core/theta_store.hpp"
#include "stats/confidence.hpp"

namespace approxiot::core {

struct ErrorEstimate {
  double sum_variance{0.0};
  double mean_variance{0.0};
};

/// Computes Eq. 11 and Eq. 14 from per-sub-stream summaries.
[[nodiscard]] ErrorEstimate estimate_error(
    const std::vector<SubStreamEstimate>& summaries);

/// The approximate result the root reports: `output ± error` for SUM and
/// MEAN at a chosen confidence.
struct ApproxResult {
  stats::ConfidenceInterval sum;
  stats::ConfidenceInterval mean;
  double estimated_count{0.0};
  std::uint64_t sampled_items{0};
  /// Policy-epoch span of the samples this result was computed over
  /// (§IV-B versioning): equal values attribute the error bound to one
  /// policy generation; a span means the window straddled a live swap.
  std::uint64_t policy_epoch_min{0};
  std::uint64_t policy_epoch{0};  // == max epoch contributing
  /// Original-stream weight swallowed by dead/detached subtrees while this
  /// window accumulated: Σ over lost items of W^in(item.source). By Eq. 8
  /// each lost bundle's Σ|I|·W equals the original item count its subtree
  /// had delivered, so estimated_count + lost_weight reconstructs the full
  /// pre-failure stream count exactly. The surviving sub-streams'
  /// estimates stay exact — this term quantifies what they cannot see.
  double lost_weight{0.0};
  std::uint64_t lost_items{0};
  /// True when any subtree was dead/detached during this window (even if
  /// it happened to swallow nothing). Degraded results are still exact
  /// for delivered data; the flag tells consumers coverage was partial.
  bool degraded{false};
};

/// One-call helper: summarize Θ, compute estimators and error bounds.
/// `confidence` defaults to 95% (the paper's two-sigma level).
[[nodiscard]] ApproxResult approximate_query(
    const ThetaStore& theta, double confidence = stats::kConfidence95);

}  // namespace approxiot::core
