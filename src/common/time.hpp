// Logical time for the ApproxIoT pipeline.
//
// Every node in the edge tree processes the stream in fixed-length
// *intervals* (the paper's computation windows, Algorithm 2 line 2). The
// simulation clock is microsecond-resolution; an IntervalClock maps
// timestamps onto interval sequence numbers. Nodes maintain their own
// IntervalClock because the paper stresses that nodes window the stream
// independently (Fig. 3: "Each node independently maintains intervals").
#pragma once

#include <cstdint>
#include <ostream>

namespace approxiot {

/// Floor division for timestamps: unlike C++'s truncating `/`, rounds
/// towards negative infinity, so a negative timestamp lands in the
/// negative-index interval that actually contains it instead of being
/// folded into interval 0. `divisor` must be > 0.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t value,
                                               std::int64_t divisor) noexcept {
  const std::int64_t q = value / divisor;
  return (value % divisor != 0 && value < 0) ? q - 1 : q;
}

/// Microseconds since simulation start. Plain struct (not chrono) because
/// netsim's event queue and flowqueue records store it directly.
struct SimTime {
  std::int64_t us{0};

  static constexpr SimTime zero() noexcept { return SimTime{0}; }
  static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimTime from_millis(double ms) noexcept {
    return SimTime{static_cast<std::int64_t>(ms * 1e3)};
  }
  static constexpr SimTime from_micros(std::int64_t us) noexcept {
    return SimTime{us};
  }

  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(us) * 1e-6;
  }
  [[nodiscard]] constexpr double millis() const noexcept {
    return static_cast<double>(us) * 1e-3;
  }

  friend constexpr bool operator==(SimTime a, SimTime b) noexcept {
    return a.us == b.us;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) noexcept {
    return a.us != b.us;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) noexcept {
    return a.us < b.us;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) noexcept {
    return a.us <= b.us;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) noexcept {
    return a.us > b.us;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) noexcept {
    return a.us >= b.us;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.us + b.us};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.us - b.us};
  }
  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.us << "us";
  }
};

/// Sequence number of a processing interval at one node. Interval `k`
/// covers simulated time [k*len, (k+1)*len).
struct IntervalSeq {
  std::int64_t seq{0};

  friend constexpr bool operator==(IntervalSeq a, IntervalSeq b) noexcept {
    return a.seq == b.seq;
  }
  friend constexpr bool operator!=(IntervalSeq a, IntervalSeq b) noexcept {
    return a.seq != b.seq;
  }
  friend constexpr bool operator<(IntervalSeq a, IntervalSeq b) noexcept {
    return a.seq < b.seq;
  }
  friend constexpr bool operator>(IntervalSeq a, IntervalSeq b) noexcept {
    return a.seq > b.seq;
  }
  friend std::ostream& operator<<(std::ostream& os, IntervalSeq i) {
    return os << "interval#" << i.seq;
  }
};

/// Maps simulated timestamps onto a node's interval sequence. Each node
/// owns one; interval length is the node's computation-window size.
class IntervalClock {
 public:
  explicit IntervalClock(SimTime interval_length) noexcept
      : length_(interval_length.us > 0 ? interval_length
                                       : SimTime::from_seconds(1.0)) {}

  [[nodiscard]] SimTime interval_length() const noexcept { return length_; }

  [[nodiscard]] IntervalSeq interval_of(SimTime t) const noexcept {
    return IntervalSeq{floor_div(t.us, length_.us)};
  }

  [[nodiscard]] SimTime start_of(IntervalSeq i) const noexcept {
    return SimTime{i.seq * length_.us};
  }

  [[nodiscard]] SimTime end_of(IntervalSeq i) const noexcept {
    return SimTime{(i.seq + 1) * length_.us};
  }

 private:
  SimTime length_;
};

}  // namespace approxiot
