#include "runtime/metrics.hpp"

#include <cstdio>

namespace approxiot::runtime {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  const obs::StatsSnapshot full = stats_.snapshot();
  MetricsSnapshot snap;
  snap.counters = full.counters;
  snap.gauges = full.gauges;
  for (const auto& [name, h] : full.histograms) {
    MetricsSnapshot::HistogramStats stats;
    stats.count = h.count;
    stats.mean = h.mean;
    stats.p50 = h.p50;
    stats.p99 = h.p99;
    stats.max = h.max;
    snap.histograms[name] = stats;
  }
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(stats.count);
    out += ",\"mean\":";
    append_double(out, stats.mean);
    out += ",\"p50\":";
    append_double(out, stats.p50);
    out += ",\"p99\":";
    append_double(out, stats.p99);
    out += ",\"max\":";
    append_double(out, stats.max);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace approxiot::runtime
