#include "core/stratified.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/kernels/kernels.hpp"

namespace approxiot::core {

namespace {

/// Directory position of `id`, or the insertion point keeping the
/// directory sorted (std::lower_bound over the small stratum vector).
std::size_t lower_bound_index(const std::vector<Stratum>& dir,
                              SubStreamId id) noexcept {
  auto it = std::lower_bound(
      dir.begin(), dir.end(), id,
      [](const Stratum& s, SubStreamId v) { return s.id < v; });
  return static_cast<std::size_t>(it - dir.begin());
}

}  // namespace

std::uint32_t StratifyScratch::slot_for(SubStreamId id) {
  const std::size_t mask = slot_index_.size() - 1;
  std::size_t probe = static_cast<std::size_t>(mix64(id.value())) & mask;
  while (true) {
    const std::uint32_t entry = slot_index_[probe];
    if (entry == 0) break;  // empty
    if (slot_ids_[entry - 1] == id) return entry - 1;
    probe = (probe + 1) & mask;
  }
  // New sub-stream: allocate the next dense slot; rebuild the index when
  // past half load so probes stay short.
  const std::uint32_t slot = static_cast<std::uint32_t>(slot_ids_.size());
  slot_ids_.push_back(id);
  slot_counts_.push_back(0);
  if ((slot_ids_.size() + 1) * 2 > slot_index_.size()) {
    reindex();
  } else {
    slot_index_[probe] = slot + 1;
  }
  return slot;
}

void StratifyScratch::reindex() {
  // Never shrink: a reused scratch keeps the table size it grew to, so
  // steady-state assign() calls zero it once and never rebuild mid-pass.
  std::size_t size = std::max<std::size_t>(slot_index_.size(), 16);
  while (size < (slot_ids_.size() + 1) * 4) size *= 2;
  slot_index_.assign(size, 0);
  const std::size_t mask = size - 1;
  for (std::uint32_t k = 0; k < slot_ids_.size(); ++k) {
    std::size_t probe =
        static_cast<std::size_t>(mix64(slot_ids_[k].value())) & mask;
    while (slot_index_[probe] != 0) probe = (probe + 1) & mask;
    slot_index_[probe] = k + 1;
  }
}

void StratifiedBatch::assign(const Item* data, std::size_t n,
                             StratifyScratch& scratch) {
  const kernels::Tier tier = kernels::active_tier();
  if (tier == kernels::Tier::kScalar) {
    assign_scalar(data, n, scratch);
  } else {
    assign_kernel(data, n, scratch, tier);
  }
}

// The scalar counting build, kept verbatim as the kernel layer's
// reference oracle: tests/core/kernels_test.cpp asserts every dispatch
// tier reproduces this batch bit for bit, and -DAPPROXIOT_SIMD=OFF
// builds run only this path.
void StratifiedBatch::assign_scalar(const Item* data, std::size_t n,
                                    StratifyScratch& scratch) {
  dir_.clear();
  arena_.resize(n);

  // Pass 1: count per sub-stream. Each distinct id gets a dense SLOT in
  // first-seen order, resolved through a small open-addressing index (one
  // multiplicative hash + a short probe per item — cheaper and better
  // predicted than a binary search), and every item records its slot so
  // the scatter pass below is a straight O(1) store per item. No
  // per-item node allocations anywhere; all scratch buffers are reused.
  scratch.slot_counts_.clear();
  scratch.slot_ids_.clear();
  scratch.item_slots_.resize(n);
  scratch.reindex();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = scratch.slot_for(data[i].source);
    ++scratch.slot_counts_[slot];
    scratch.item_slots_[i] = slot;
  }

  // Order the slots by ascending id (the load-bearing directory order).
  // Strata counts are small, so this sort is noise next to the passes.
  const std::size_t s = scratch.slot_ids_.size();
  scratch.sorted_slots_.resize(s);
  for (std::size_t k = 0; k < s; ++k) {
    scratch.sorted_slots_[k] = static_cast<std::uint32_t>(k);
  }
  std::sort(scratch.sorted_slots_.begin(), scratch.sorted_slots_.end(),
            [&scratch](std::uint32_t a, std::uint32_t b) {
              return scratch.slot_ids_[a] < scratch.slot_ids_[b];
            });

  // Prefix-sum the offsets in id order; cursors_ maps slot -> write
  // position. The scatter is stable: items of one sub-stream keep
  // arrival order.
  scratch.cursors_.resize(s);
  dir_.reserve(s);
  std::size_t offset = 0;
  for (const std::uint32_t slot : scratch.sorted_slots_) {
    dir_.push_back(Stratum{scratch.slot_ids_[slot], offset,
                           scratch.slot_counts_[slot]});
    scratch.cursors_[slot] = offset;
    offset += scratch.slot_counts_[slot];
  }
  for (std::size_t i = 0; i < n; ++i) {
    arena_[scratch.cursors_[scratch.item_slots_[i]]++] = data[i];
  }
}

// The kernel build: same two passes, same scratch contract, but the
// counting and scatter loops run through the dispatched kernels (SIMD
// hashing / list-compare counting, prefetched scatter). The middle
// section — slot ordering, directory, cursor seeding — is the oracle's
// code repeated: it is O(strata), not O(items), and sharing it would
// mean carving up the oracle above.
void StratifiedBatch::assign_kernel(const Item* data, std::size_t n,
                                    StratifyScratch& scratch,
                                    kernels::Tier tier) {
  dir_.clear();
  arena_.resize(n);

  scratch.slot_counts_.clear();
  scratch.slot_ids_.clear();
  scratch.item_slots_.resize(n);
  scratch.reindex();
  kernels::count_pass(tier, data, n,
                      kernels::CountScratch{&scratch.slot_ids_,
                                            &scratch.slot_counts_,
                                            &scratch.slot_index_},
                      scratch.item_slots_.data());

  const std::size_t s = scratch.slot_ids_.size();
  scratch.sorted_slots_.resize(s);
  for (std::size_t k = 0; k < s; ++k) {
    scratch.sorted_slots_[k] = static_cast<std::uint32_t>(k);
  }
  std::sort(scratch.sorted_slots_.begin(), scratch.sorted_slots_.end(),
            [&scratch](std::uint32_t a, std::uint32_t b) {
              return scratch.slot_ids_[a] < scratch.slot_ids_[b];
            });

  scratch.cursors_.resize(s);
  dir_.reserve(s);
  std::size_t offset = 0;
  for (const std::uint32_t slot : scratch.sorted_slots_) {
    dir_.push_back(Stratum{scratch.slot_ids_[slot], offset,
                           scratch.slot_counts_[slot]});
    scratch.cursors_[slot] = offset;
    offset += scratch.slot_counts_[slot];
  }
  kernels::scatter_pass(tier, data, n, scratch.item_slots_.data(),
                        scratch.cursors_.data(), arena_.data());
}

void StratifiedBatch::assign(const Item* data, std::size_t n) {
  if (own_scratch_ == nullptr) {
    own_scratch_ = std::make_unique<StratifyScratch>();
  }
  assign(data, n, *own_scratch_);
}

void StratifiedBatch::append_stratum(SubStreamId id, const Item* data,
                                     std::size_t n) {
  assert(dir_.empty() || dir_.back().id < id);
  dir_.push_back(Stratum{id, arena_.size(), n});
  if (n > 0) arena_.insert(arena_.end(), data, data + n);
}

ItemSpan StratifiedBatch::at(SubStreamId id) const {
  const std::size_t k = find_index(id);
  if (k == npos) {
    throw std::out_of_range("sub-stream not present in StratifiedBatch");
  }
  return span(dir_[k]);
}

std::size_t StratifiedBatch::find_index(SubStreamId id) const noexcept {
  const std::size_t k = lower_bound_index(dir_, id);
  return k < dir_.size() && dir_[k].id == id ? k : npos;
}

std::size_t StratifiedBatch::find_or_insert(SubStreamId id) {
  std::size_t k = lower_bound_index(dir_, id);
  if (k == dir_.size() || dir_[k].id != id) {
    const std::size_t offset =
        k == 0 ? 0 : dir_[k - 1].offset + dir_[k - 1].len;
    dir_.insert(dir_.begin() + static_cast<std::ptrdiff_t>(k),
                Stratum{id, offset, 0});
  }
  return k;
}

StratifiedBatch::StratumRef StratifiedBatch::operator[](SubStreamId id) {
  return StratumRef(this, find_or_insert(id));
}

void StratifiedBatch::push_into(std::size_t index, const Item& item) {
  Stratum& s = dir_[index];
  arena_.insert(arena_.begin() + static_cast<std::ptrdiff_t>(s.offset + s.len),
                item);
  ++s.len;
  for (std::size_t k = index + 1; k < dir_.size(); ++k) ++dir_[k].offset;
}

void StratifiedBatch::replace_stratum(std::size_t index, const Item* data,
                                      std::size_t n) {
  Stratum& s = dir_[index];
  if (n > s.len) {
    arena_.insert(
        arena_.begin() + static_cast<std::ptrdiff_t>(s.offset + s.len),
        n - s.len, Item{});
  } else if (n < s.len) {
    arena_.erase(
        arena_.begin() + static_cast<std::ptrdiff_t>(s.offset + n),
        arena_.begin() + static_cast<std::ptrdiff_t>(s.offset + s.len));
  }
  std::copy(data, data + n,
            arena_.begin() + static_cast<std::ptrdiff_t>(s.offset));
  const std::ptrdiff_t delta =
      static_cast<std::ptrdiff_t>(n) - static_cast<std::ptrdiff_t>(s.len);
  s.len = n;
  for (std::size_t k = index + 1; k < dir_.size(); ++k) {
    dir_[k].offset = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(dir_[k].offset) + delta);
  }
}

}  // namespace approxiot::core
