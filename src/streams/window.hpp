// Tumbling-window aggregation helper for processors: assigns records to
// fixed, non-overlapping windows by timestamp and retires windows whose
// end has passed stream time (plus an optional grace period). This is the
// windowing model the paper's latency experiments use (window sizes of
// 0.5–4 s, Fig. 9).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "common/time.hpp"

namespace approxiot::streams {

/// Identifier of a tumbling window: window k covers [k*len, (k+1)*len).
struct WindowKey {
  std::int64_t index{0};

  friend bool operator<(WindowKey a, WindowKey b) noexcept {
    return a.index < b.index;
  }
  friend bool operator==(WindowKey a, WindowKey b) noexcept {
    return a.index == b.index;
  }
};

template <typename State>
class TumblingWindows {
 public:
  explicit TumblingWindows(SimTime window_size,
                           SimTime grace = SimTime::zero())
      : size_(window_size.us > 0 ? window_size : SimTime::from_seconds(1.0)),
        grace_(grace) {}

  [[nodiscard]] WindowKey window_of(SimTime t) const noexcept {
    // Floor division: plain `/` truncates towards zero, which would fold
    // every timestamp in (-size, 0) into window 0 instead of window -1.
    return WindowKey{floor_div(t.us, size_.us)};
  }

  [[nodiscard]] SimTime window_start(WindowKey k) const noexcept {
    return SimTime{k.index * size_.us};
  }
  [[nodiscard]] SimTime window_end(WindowKey k) const noexcept {
    return SimTime{(k.index + 1) * size_.us};
  }
  [[nodiscard]] SimTime window_size() const noexcept { return size_; }

  /// State for the window containing `t`, default-constructed on first
  /// access. A timestamp whose window is already closed (its end + grace
  /// passed a close_expired watermark, or close_all flushed it) gets a
  /// quarantine state instead: the contribution is counted in
  /// late_dropped() and discarded, never resurrecting a retired window —
  /// a late record must not re-open window k after k's aggregate was
  /// already emitted, or the window would be reported twice. The
  /// quarantine is reset on every late access, so late contributions
  /// cannot accumulate into each other either. Works for arbitrarily
  /// out-of-order input, including timestamps before the stream origin
  /// (negative window indices).
  State& state_at(SimTime t) {
    const WindowKey key = window_of(t);
    if (key.index <= closed_through_) {
      ++late_dropped_;
      late_bin_ = State{};
      return late_bin_;
    }
    return windows_[key];
  }

  /// Extracts and removes every window whose end (+grace) is at or before
  /// `stream_time`, oldest first. Advances the lateness watermark over
  /// every such window — including empty ones that never materialised, so
  /// a late first record for a long-quiet window is still dropped.
  [[nodiscard]] std::vector<std::pair<WindowKey, State>> close_expired(
      SimTime stream_time) {
    std::vector<std::pair<WindowKey, State>> out;
    auto it = windows_.begin();
    while (it != windows_.end()) {
      if (window_end(it->first) + grace_ <= stream_time) {
        out.emplace_back(it->first, std::move(it->second));
        it = windows_.erase(it);
      } else {
        break;  // map is ordered by window index == time order
      }
    }
    // Window k is expired iff (k+1)*size + grace <= stream_time; the
    // largest such k is the window one before the one containing
    // (stream_time - grace).
    const std::int64_t expired_through =
        window_of(SimTime{stream_time.us - grace_.us}).index - 1;
    if (expired_through > closed_through_) closed_through_ = expired_through;
    return out;
  }

  /// Extracts every remaining window (shutdown flush). Everything up to
  /// the newest flushed window is closed for late arrivals afterwards.
  [[nodiscard]] std::vector<std::pair<WindowKey, State>> close_all() {
    std::vector<std::pair<WindowKey, State>> out;
    for (auto& [key, state] : windows_) {
      out.emplace_back(key, std::move(state));
    }
    if (!windows_.empty() &&
        windows_.rbegin()->first.index > closed_through_) {
      closed_through_ = windows_.rbegin()->first.index;
    }
    windows_.clear();
    return out;
  }

  [[nodiscard]] std::size_t open_windows() const noexcept {
    return windows_.size();
  }

  /// Contributions discarded because their window was already closed.
  [[nodiscard]] std::uint64_t late_dropped() const noexcept {
    return late_dropped_;
  }

 private:
  SimTime size_;
  SimTime grace_;
  std::map<WindowKey, State> windows_;
  /// Highest window index retired so far; nothing closed yet at the
  /// sentinel minimum (so pre-origin timestamps still work).
  std::int64_t closed_through_{std::numeric_limits<std::int64_t>::min()};
  std::uint64_t late_dropped_{0};
  State late_bin_{};
};

}  // namespace approxiot::streams
