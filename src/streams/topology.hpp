// Topology: a DAG of sources (flowqueue topics in), processors, and sinks
// (topics out) — the Streams-DSL "processing topology" of the paper's
// Fig. 4, assembled programmatically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "streams/processor.hpp"

namespace approxiot::streams {

struct TopologyNode {
  enum class Kind { kSource, kProcessor, kSink };

  std::string name;
  Kind kind{Kind::kProcessor};
  std::string topic;  // source: input topic; sink: output topic
  std::function<std::unique_ptr<Processor>()> factory;  // processors only
  std::vector<std::string> parents;
  std::vector<std::string> children;  // filled in by build()
};

class Topology {
 public:
  [[nodiscard]] const std::map<std::string, TopologyNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] std::vector<std::string> sources() const;
  [[nodiscard]] std::vector<std::string> sinks() const;

  /// Topological order of processor evaluation (sources first).
  [[nodiscard]] const std::vector<std::string>& order() const {
    return order_;
  }

 private:
  friend class TopologyBuilder;
  std::map<std::string, TopologyNode> nodes_;
  std::vector<std::string> order_;
};

class TopologyBuilder {
 public:
  /// Declares a source reading `topic`.
  TopologyBuilder& add_source(const std::string& name,
                              const std::string& topic);

  /// Declares a processor with upstream `parents` (sources or processors).
  TopologyBuilder& add_processor(
      const std::string& name,
      std::function<std::unique_ptr<Processor>()> factory,
      const std::vector<std::string>& parents);

  /// Declares a sink writing records it receives to `topic`.
  TopologyBuilder& add_sink(const std::string& name, const std::string& topic,
                            const std::vector<std::string>& parents);

  /// Validates (names unique, parents exist, acyclic, sinks have parents)
  /// and produces the immutable topology.
  [[nodiscard]] Result<Topology> build() const;

 private:
  std::vector<TopologyNode> pending_;
};

}  // namespace approxiot::streams
