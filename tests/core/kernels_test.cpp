// Property tests for src/core/kernels: every dispatch tier must be
// BIT-IDENTICAL to the scalar oracle — same stratification directory and
// arena permutation, same reservoir contents, same RNG consumption draw
// for draw (checked by continuing the stream after the kernel ran), same
// wire bytes. Sweeps cover span lengths around every SIMD width, start
// offsets (alignment), stratum shapes (one giant stratum, all-singletons
// past the AVX-512 inline-list limit, crafted mix64 probe collisions,
// ids above 2^32 that force the narrow-stretch bail), both reservoir
// algorithms, and Algorithm R's Lemire rejection path (seen near 2^63).
#include "core/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/stratified.hpp"
#include "core/weight_map.hpp"
#include "flowqueue/serde.hpp"
#include "sampling/reservoir.hpp"

namespace approxiot::core::kernels {
namespace {

// Restores the dispatch tier after every test: force_tier is process
// state, and a test that fails mid-sweep must not leak a scalar cap into
// the rest of the suite.
class KernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { force_tier(detected_tier()); }

  static std::vector<Tier> tiers() {
    std::vector<Tier> out;
    for (int t = 0; t <= static_cast<int>(detected_tier()); ++t) {
      out.push_back(static_cast<Tier>(t));
    }
    return out;
  }
};

std::vector<Item> make_items(std::size_t n, std::uint64_t streams,
                             std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(Item{SubStreamId{1 + rng.next_below(streams)},
                         rng.next_double(),
                         static_cast<std::int64_t>(i)});
  }
  return items;
}

void expect_batches_equal(const StratifiedBatch& got,
                          const StratifiedBatch& want, const char* label) {
  ASSERT_EQ(got.strata().size(), want.strata().size()) << label;
  for (std::size_t k = 0; k < got.strata().size(); ++k) {
    EXPECT_EQ(got.strata()[k].id, want.strata()[k].id) << label;
    EXPECT_EQ(got.strata()[k].offset, want.strata()[k].offset) << label;
    EXPECT_EQ(got.strata()[k].len, want.strata()[k].len) << label;
  }
  ASSERT_EQ(got.items().size(), want.items().size()) << label;
  EXPECT_TRUE(std::memcmp(got.items().data(), want.items().data(),
                          got.items().size() * sizeof(Item)) == 0)
      << label;
}

/// Builds the span with every tier and compares against the scalar
/// build. `data` may point anywhere (alignment sweeps pass offset
/// pointers).
void check_assign(const Item* data, std::size_t n, const char* label) {
  StratifyScratch scratch;
  StratifiedBatch want;
  force_tier(Tier::kScalar);
  want.assign(data, n, scratch);
  for (int t = 1; t <= static_cast<int>(detected_tier()); ++t) {
    force_tier(static_cast<Tier>(t));
    StratifiedBatch got;
    got.assign(data, n, scratch);
    expect_batches_equal(got, want, label);
  }
  force_tier(detected_tier());
}

TEST_F(KernelsTest, TierForcingClampsAndRestores) {
  EXPECT_EQ(force_tier(Tier::kScalar), Tier::kScalar);
  EXPECT_EQ(active_tier(), Tier::kScalar);
  // Asking for the top tier yields whatever this CPU actually has.
  EXPECT_EQ(force_tier(Tier::kAvx512), detected_tier());
  EXPECT_EQ(active_tier(), detected_tier());
}

TEST_F(KernelsTest, AssignLengthAndAlignmentSweep) {
  const std::size_t lengths[] = {0,  1,  2,  3,  7,  8,  9,  15, 16,
                                 17, 31, 32, 33, 63, 64, 65, 1000};
  // Generous pad so every (offset, len) window stays in bounds.
  const auto pool = make_items(1024 + 8, 16);
  for (const std::size_t len : lengths) {
    for (std::size_t offset = 0; offset <= 4; ++offset) {
      check_assign(pool.data() + offset, len, "length/alignment sweep");
    }
  }
}

TEST_F(KernelsTest, AssignStratumShapes) {
  {
    // One giant stratum: the counting pass sees a single hot slot.
    std::vector<Item> items = make_items(3000, 1);
    check_assign(items.data(), items.size(), "one giant stratum");
  }
  {
    // All singletons, 200 distinct ids: past kMaxInlineStrata, so the
    // AVX-512 list pass must restart on the hash path mid-stream.
    std::vector<Item> items;
    for (std::size_t i = 0; i < 200; ++i) {
      items.push_back(Item{SubStreamId{1000 + i * 17}, 0.5,
                           static_cast<std::int64_t>(i)});
    }
    check_assign(items.data(), items.size(), "all singletons");
  }
  {
    // Exactly at and one past the inline-list limit.
    for (const std::size_t distinct : {kMaxInlineStrata,
                                       kMaxInlineStrata + 1}) {
      std::vector<Item> items;
      for (std::size_t i = 0; i < distinct * 5; ++i) {
        items.push_back(Item{SubStreamId{1 + i % distinct}, 0.25,
                             static_cast<std::int64_t>(i)});
      }
      check_assign(items.data(), items.size(), "inline-list boundary");
    }
  }
  {
    // Crafted mix64 collisions: ids whose hashes share the low 4 bits
    // land in the same initial probe chain of the 16-slot index.
    std::vector<std::uint64_t> colliders;
    for (std::uint64_t id = 1; colliders.size() < 24; ++id) {
      if ((mix64(id) & 15) == 3) colliders.push_back(id);
    }
    std::vector<Item> items;
    for (std::size_t i = 0; i < 600; ++i) {
      items.push_back(Item{SubStreamId{colliders[i % colliders.size()]},
                           1.0, static_cast<std::int64_t>(i)});
    }
    check_assign(items.data(), items.size(), "mix64 collisions");
  }
  {
    // Ids above 2^32 force the AVX-512 narrow stretch to bail out; the
    // wide id shares its low 32 bits with a narrow one, so truncated
    // compares would mis-slot it.
    const std::uint64_t narrow = 12345;
    const std::uint64_t wide = narrow | (std::uint64_t{9} << 32);
    std::vector<Item> items;
    for (std::size_t i = 0; i < 300; ++i) {
      const std::uint64_t id = i < 150 ? narrow : (i % 2 ? wide : narrow);
      items.push_back(Item{SubStreamId{id}, 2.0,
                           static_cast<std::int64_t>(i)});
    }
    check_assign(items.data(), items.size(), "wide-id truncation trap");
    std::vector<Item> all_wide;
    for (std::size_t i = 0; i < 100; ++i) {
      all_wide.push_back(Item{SubStreamId{(std::uint64_t{1} << 40) + i % 7},
                              3.0, static_cast<std::int64_t>(i)});
    }
    check_assign(all_wide.data(), all_wide.size(), "all ids wide");
  }
}

// --- Reservoir span kernels -------------------------------------------------

/// Runs offer_span split at `cut`, then continues with per-item offer()
/// calls — the continuation only matches if the kernel left seen/rng
/// (and Algorithm L's w/skip) exactly where the scalar loop would.
std::vector<Item> reservoir_run(Tier tier,
                                sampling::ReservoirAlgorithm algorithm,
                                const std::vector<Item>& items,
                                std::size_t cap, std::size_t cut,
                                const std::vector<Item>& continuation) {
  force_tier(tier);
  sampling::ReservoirSampler<Item> res(cap, Rng(99), algorithm);
  res.offer_span(items.data(), cut);
  res.offer_span(items.data() + cut, items.size() - cut);
  for (const Item& item : continuation) res.offer(item);
  force_tier(detected_tier());
  return res.contents();
}

TEST_F(KernelsTest, OfferSpanBitIdenticalBothAlgorithms) {
  const auto continuation = make_items(64, 16, 5);
  for (const auto algorithm : {sampling::ReservoirAlgorithm::kAlgorithmR,
                               sampling::ReservoirAlgorithm::kAlgorithmL}) {
    for (const std::size_t n : {0ul, 1ul, 7ul, 33ul, 64ul, 65ul, 1000ul,
                                5000ul}) {
      const auto items = make_items(n, 16);
      for (const std::size_t cap : {0ul, 1ul, 16ul, 100ul, n, n + 10}) {
        const std::size_t cut = n / 3;
        const auto want = reservoir_run(Tier::kScalar, algorithm, items, cap,
                                        cut, continuation);
        for (const Tier tier : tiers()) {
          EXPECT_EQ(reservoir_run(tier, algorithm, items, cap, cut,
                                  continuation),
                    want)
              << "algo=" << static_cast<int>(algorithm)
              << " tier=" << tier_name(tier) << " n=" << n
              << " cap=" << cap;
        }
      }
    }
  }
}

TEST_F(KernelsTest, AlgoRRejectionPathNearBoundCeiling) {
  // With seen near 2^63 the Lemire pre-filter fires roughly every other
  // draw, so the ring's replay path (re-consuming the pre-drawn words,
  // then topping up from the generator) runs constantly instead of
  // almost never. The scalar loop below is the contract: one
  // next_below(++seen) per item.
  const std::size_t cap = 32;
  const auto data = make_items(500, 16, 11);
  for (const Tier tier : tiers()) {
    for (const std::uint64_t seen0 :
         {(std::uint64_t{1} << 63) - 7, (std::uint64_t{1} << 63) + 251,
          ~std::uint64_t{0} - 600}) {
      std::vector<Item> want(cap, Item{});
      std::uint64_t want_seen = seen0;
      Rng want_rng(42);
      for (const Item& item : data) {
        const std::uint64_t j = want_rng.next_below(++want_seen);
        if (j < cap) want[j] = item;
      }

      std::vector<Item> got(cap, Item{});
      std::uint64_t got_seen = seen0;
      Rng got_rng(42);
      algo_r_full(tier, got.data(), cap, data.data(), data.size(), got_seen,
                  got_rng);

      EXPECT_EQ(got, want) << tier_name(tier);
      EXPECT_EQ(got_seen, want_seen) << tier_name(tier);
      // Same words consumed: the generators continue in lockstep.
      for (int k = 0; k < 8; ++k) {
        EXPECT_EQ(got_rng.next(), want_rng.next()) << tier_name(tier);
      }
    }
  }
}

// --- Wire encoder -----------------------------------------------------------

TEST_F(KernelsTest, EncodeBytesIdenticalIncludingMultiByteVarints) {
  // Ids straddling every varint length (1..10 bytes), plus value edge
  // cases; the reference bytes come from the Encoder primitives the
  // scalar path uses.
  std::vector<Item> items;
  std::int64_t ts = -3;
  for (const std::uint64_t id :
       {std::uint64_t{1}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384}, std::uint64_t{1} << 32,
        (std::uint64_t{1} << 56) - 1, std::uint64_t{1} << 56,
        ~std::uint64_t{0}}) {
    items.push_back(Item{SubStreamId{id}, -0.0, ts++});
    items.push_back(Item{SubStreamId{id}, 1e300, ts++});
  }
  const auto bulk = make_items(777, 16, 3);
  items.insert(items.end(), bulk.begin(), bulk.end());

  flowqueue::Encoder want;
  for (const Item& item : items) {
    want.put_varint(item.source.value());
    want.put_double(item.value);
    want.put_fixed64(static_cast<std::uint64_t>(item.created_at_us));
  }

  for (const Tier tier : tiers()) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{17}, items.size()}) {
      std::vector<std::uint8_t> got(n * kMaxItemWireBytes + 1);
      const std::size_t used =
          encode_items(tier, got.data(), items.data(), n);
      const std::size_t want_bytes = [&] {
        flowqueue::Encoder e;
        for (std::size_t i = 0; i < n; ++i) {
          e.put_varint(items[i].source.value());
          e.put_double(items[i].value);
          e.put_fixed64(static_cast<std::uint64_t>(items[i].created_at_us));
        }
        return e.bytes().size();
      }();
      ASSERT_EQ(used, want_bytes) << tier_name(tier) << " n=" << n;
      EXPECT_TRUE(std::memcmp(got.data(), want.bytes().data(), used) == 0)
          << tier_name(tier) << " n=" << n;
    }
  }
}

// --- WeightMap block lookups ------------------------------------------------

TEST_F(KernelsTest, GetForStrataMatchesPointLookups) {
  Rng rng(17);
  for (int round = 0; round < 20; ++round) {
    WeightMap map;
    const std::size_t entries = rng.next_below(40);
    for (std::size_t k = 0; k < entries; ++k) {
      map.set(SubStreamId{1 + rng.next_below(300)},
              0.5 + rng.next_double());
    }
    // Ascending directory, half the ids absent from the map.
    std::vector<Stratum> dir;
    std::uint64_t id = 1;
    const std::size_t strata = 1 + rng.next_below(80);
    for (std::size_t k = 0; k < strata; ++k) {
      id += 1 + rng.next_below(8);
      dir.push_back(Stratum{SubStreamId{id}, 0, 1});
    }
    std::vector<double> got(dir.size(), -1.0);
    map.get_for_strata(dir, got.data());
    for (std::size_t k = 0; k < dir.size(); ++k) {
      EXPECT_EQ(got[k], map.get(dir[k].id)) << "stratum " << k;
    }
  }
}

}  // namespace
}  // namespace approxiot::core::kernels
