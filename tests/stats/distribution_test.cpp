#include "stats/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "stats/moments.hpp"

namespace approxiot::stats {
namespace {

// Property sweep: every distribution's empirical mean and variance match
// its analytic mean()/variance() within CLT tolerance.
struct DistCase {
  const char* name;
  std::shared_ptr<ValueDistribution> dist;
  double mean_tol;
  double var_rel_tol;
};

class DistributionMomentsTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionMomentsTest, EmpiricalMomentsMatchAnalytic) {
  const DistCase& c = GetParam();
  approxiot::Rng rng(123);
  RunningMoments m;
  const int n = 200000;
  for (int i = 0; i < n; ++i) m.add(c.dist->sample(rng));
  EXPECT_NEAR(m.mean(), c.dist->mean(), c.mean_tol) << c.name;
  if (c.dist->variance() > 0.0) {
    EXPECT_NEAR(m.sample_variance() / c.dist->variance(), 1.0, c.var_rel_tol)
        << c.name;
  } else {
    EXPECT_EQ(m.sample_variance(), 0.0) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMomentsTest,
    ::testing::Values(
        DistCase{"gaussian_paper_A",
                 std::make_shared<GaussianDistribution>(10.0, 5.0), 0.05,
                 0.02},
        DistCase{"gaussian_paper_D",
                 std::make_shared<GaussianDistribution>(100000.0, 5000.0),
                 50.0, 0.02},
        DistCase{"gaussian_degenerate",
                 std::make_shared<GaussianDistribution>(3.0, 0.0), 1e-12,
                 0.0},
        DistCase{"poisson_small", std::make_shared<PoissonDistribution>(10.0),
                 0.05, 0.03},
        DistCase{"poisson_large",
                 std::make_shared<PoissonDistribution>(10000.0), 5.0, 0.03},
        DistCase{"uniform", std::make_shared<UniformDistribution>(2.0, 8.0),
                 0.02, 0.02},
        DistCase{"exponential",
                 std::make_shared<ExponentialDistribution>(0.5), 0.02, 0.03},
        DistCase{"lognormal",
                 std::make_shared<LogNormalDistribution>(2.3, 0.55), 0.05,
                 0.05}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.name;
    });

TEST(DistributionTest, ConstructorValidation) {
  EXPECT_THROW(GaussianDistribution(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(PoissonDistribution(-1.0), std::invalid_argument);
  EXPECT_THROW(UniformDistribution(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDistribution(0.0), std::invalid_argument);
  EXPECT_THROW(LogNormalDistribution(0.0, -0.1), std::invalid_argument);
}

TEST(DistributionTest, CloneIsIndependentAndEquivalent) {
  GaussianDistribution original(5.0, 2.0);
  auto copy = original.clone();
  EXPECT_DOUBLE_EQ(copy->mean(), original.mean());
  EXPECT_DOUBLE_EQ(copy->variance(), original.variance());
  EXPECT_EQ(copy->describe(), original.describe());
}

TEST(DistributionTest, DescribeMentionsParameters) {
  EXPECT_NE(GaussianDistribution(10.0, 5.0).describe().find("10"),
            std::string::npos);
  EXPECT_NE(PoissonDistribution(42.0).describe().find("42"),
            std::string::npos);
}

TEST(DistributionTest, LogNormalAnalyticMoments) {
  // E[X] = exp(mu + s^2/2); Var = (exp(s^2)-1) exp(2mu + s^2).
  LogNormalDistribution d(1.0, 0.5);
  EXPECT_NEAR(d.mean(), std::exp(1.125), 1e-9);
  EXPECT_NEAR(d.variance(),
              (std::exp(0.25) - 1.0) * std::exp(2.0 + 0.25), 1e-9);
}

TEST(DistributionTest, UniformSamplesStayInRange) {
  UniformDistribution d(-3.0, 3.0);
  approxiot::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 3.0);
  }
}

TEST(DistributionTest, PoissonSamplesAreNonNegativeIntegers) {
  PoissonDistribution d(7.0);
  approxiot::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_EQ(x, std::floor(x));
  }
}

}  // namespace
}  // namespace approxiot::stats
