// TopologyDriver: instantiates a Topology against a flowqueue Broker and
// pumps records through it.
//
// The driver owns one consumer per source and a producer for sinks. Each
// call to run_once() polls the sources, routes records down the DAG, and
// fires any stream-time punctuations that the new records crossed. This
// single-threaded, pull-based design keeps execution deterministic —
// essential for reproducible experiments — while preserving the Kafka
// Streams programming model.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flowqueue/broker.hpp"
#include "flowqueue/consumer.hpp"
#include "flowqueue/producer.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "streams/topology.hpp"

namespace approxiot::streams {

class TopologyDriver {
 public:
  /// `application_id` namespaces the driver's consumer group.
  TopologyDriver(flowqueue::Broker& broker, Topology topology,
                 std::string application_id);

  TopologyDriver(const TopologyDriver&) = delete;
  TopologyDriver& operator=(const TopologyDriver&) = delete;
  ~TopologyDriver();

  /// Connects consumers/producers and init()s processors.
  Status start();

  /// One poll-and-process cycle. Returns the number of records consumed
  /// from source topics (0 == nothing pending).
  Result<std::size_t> run_once(std::size_t max_records = 1024);

  /// Runs until all source topics are drained (no records consumed).
  Status run_until_idle(std::size_t max_cycles = 1'000'000);

  /// Fires any pending punctuations up to `now` even without new records
  /// (used to flush the last interval), then close()s processors.
  Status stop();

  /// Advances stream time manually (e.g. to flush a trailing window).
  void advance_stream_time(SimTime to);

  [[nodiscard]] SimTime stream_time() const noexcept { return stream_time_; }

  /// Hooks this driver up to observability. Under "streams/{application_id}":
  ///   .../punctuate_us           wall-clock time spent inside punctuate()
  ///   .../punctuate_lateness_us  stream-time distance past the scheduled
  ///                              fire point when a punctuation ran
  ///   .../records_processed      counter, records routed from sources
  ///   .../punctuations           counter, punctuations fired
  ///   .../source/{node}/...      consumer watermarks (Consumer::bind_stats)
  /// Either pointer may be null. Works before or after start(); source
  /// consumers are (re)bound on start(). With a tracer, each punctuation
  /// emits a "punctuate" span on the driver's track.
  void bind_obs(obs::StatsRegistry* stats, obs::Tracer* tracer);

 private:
  class ContextImpl;

  void route(const std::string& node_name, const flowqueue::Record& record);
  void maybe_punctuate();

  flowqueue::Broker* broker_;
  Topology topology_;
  std::string application_id_;
  bool started_{false};

  std::unique_ptr<flowqueue::Producer> producer_;
  std::map<std::string, std::unique_ptr<flowqueue::Consumer>> consumers_;
  std::map<std::string, std::unique_ptr<Processor>> processors_;
  std::map<std::string, std::unique_ptr<ContextImpl>> contexts_;

  struct Punctuation {
    SimTime interval{};
    SimTime next_fire{};
  };
  std::map<std::string, Punctuation> punctuations_;

  SimTime stream_time_{SimTime::zero()};

  // Observability sinks (null until bind_obs). See bind_obs().
  obs::StatsRegistry* obs_stats_{nullptr};
  obs::Tracer* obs_tracer_{nullptr};
  obs::Histogram* punctuate_us_{nullptr};
  obs::Histogram* punctuate_lateness_us_{nullptr};
  obs::Counter* records_processed_{nullptr};
  obs::Counter* punctuations_fired_{nullptr};
  obs::TrackId track_{0};
};

}  // namespace approxiot::streams
