#include "runtime/flowqueue_bridge.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "core/wire.hpp"
#include "workload/substream.hpp"

namespace approxiot::runtime {

FlowQueueSource::FlowQueueSource(flowqueue::Broker& broker,
                                 ConcurrentEdgeTree& tree,
                                 FlowQueueSourceConfig config,
                                 MetricsRegistry* metrics)
    : tree_(&tree),
      config_(std::move(config)),
      metrics_(metrics),
      consumer_(broker, config_.group + "-consumer"),
      clock_(config_.interval) {}

Status FlowQueueSource::start() {
  return consumer_.subscribe(config_.group, {config_.topic});
}

Result<std::size_t> FlowQueueSource::run_until_idle(std::size_t max_cycles) {
  std::size_t pushed = 0;
  for (std::size_t cycle = 0; cycle < max_cycles; ++cycle) {
    auto batch = consumer_.poll(config_.poll_batch);
    if (!batch.is_ok()) return batch.status();
    if (batch.value().empty()) {
      // Idle: every assigned partition is read to its end, so no record
      // below max_seen can still arrive — flushing the completed
      // intervals is now safe even with partitions of unequal depth.
      pushed += flush_through(max_seen_interval_ - 1);
      return pushed;
    }

    for (const flowqueue::Record& record : batch.value()) {
      auto bundle = core::decode_bundle(record.value);
      if (!bundle.is_ok()) {
        ++decode_errors_;
        if (metrics_ != nullptr) {
          metrics_->counter("bridge.decode_errors").increment();
        }
        continue;
      }
      const std::int64_t seq = clock_.interval_of(record.timestamp).seq;
      max_seen_interval_ = std::max(max_seen_interval_, seq);
      if (seq < next_interval_) {
        // Its tick already fired — a force-flush ran, or a watermark
        // flush did and a producer then appended an older timestamp.
        ++late_records_;
        if (metrics_ != nullptr) {
          metrics_->counter("bridge.late_records").increment();
        }
        continue;
      }

      auto [it, inserted] = buffered_.try_emplace(
          seq, std::vector<std::vector<Item>>(tree_->leaf_count()));
      auto& per_leaf = it->second;
      // Same sub-stream-affinity sharding the sequential drivers use —
      // shared helper, so the policies cannot drift apart.
      auto sharded = workload::shard_by_substream(bundle.value().items,
                                                  tree_->leaf_count());
      for (std::size_t leaf = 0; leaf < sharded.size(); ++leaf) {
        per_leaf[leaf].insert(per_leaf[leaf].end(),
                              std::make_move_iterator(sharded[leaf].begin()),
                              std::make_move_iterator(sharded[leaf].end()));
      }
      ++records_bridged_;
      if (metrics_ != nullptr) {
        metrics_->counter("bridge.records_bridged").increment();
        metrics_->counter("bridge.bytes_bridged")
            .increment(record.value.size());
      }
    }
    // Safety valve for topics that never go idle: bound the buffer by
    // force-flushing the oldest intervals. A lagging partition may then
    // deliver records for an already-fired tick; they are counted above.
    while (buffered_.size() > config_.max_buffered_intervals) {
      pushed += flush_through(buffered_.begin()->first);
    }

    // Partition-aware mid-stream flush: when every assigned partition is
    // read to its end offset, no record below max_seen can still be in
    // flight — the same safety argument the idle flush makes, available
    // *without* an empty poll. On a continuously hot topic (producers
    // appending between every poll) this is the only path that flushes
    // before the safety valve fills up.
    if (consumer_.caught_up()) {
      const std::size_t flushed = flush_through(max_seen_interval_ - 1);
      if (flushed > 0) {
        watermark_flushes_ += flushed;
        if (metrics_ != nullptr) {
          metrics_->counter("bridge.watermark_flushes").increment(flushed);
        }
      }
      pushed += flushed;
    }
  }
  return pushed;
}

std::size_t FlowQueueSource::flush() {
  return flush_through(max_seen_interval_);
}

core::Checkpoint FlowQueueSource::checkpoint() const {
  if (!buffered_.empty()) {
    throw core::CheckpointError(
        "FlowQueueSource::checkpoint: interval buffer not empty — flush() "
        "first, or the buffered records would be skipped on restore");
  }
  core::CheckpointWriter writer(core::CheckpointKind::kSource);
  writer.put_string(config_.topic);
  writer.put_i64(config_.interval.us);
  const auto& assignment = consumer_.assignment();
  writer.put_u64(assignment.size());
  for (const flowqueue::TopicPartition& tp : assignment) {
    writer.put_string(tp.topic);
    writer.put_u64(tp.partition);
    writer.put_i64(consumer_.position(tp));
  }
  writer.put_i64(next_interval_);
  writer.put_i64(max_seen_interval_);
  core::write_control_plane(writer, tree_->control_plane().get());
  return writer.finish();
}

void FlowQueueSource::restore(const core::Checkpoint& checkpoint) {
  core::CheckpointReader reader(checkpoint,
                                core::CheckpointKind::kSource);
  const std::string topic = reader.get_string();
  const std::int64_t interval_us = reader.get_i64();
  if (topic != config_.topic || interval_us != config_.interval.us) {
    throw core::CheckpointError(
        "FlowQueueSource::restore: checkpoint is for topic '" + topic +
        "', this source consumes '" + config_.topic + "'");
  }
  const std::uint64_t partitions = reader.get_u64();
  for (std::uint64_t i = 0; i < partitions; ++i) {
    flowqueue::TopicPartition tp;
    tp.topic = reader.get_string();
    tp.partition = static_cast<std::uint32_t>(reader.get_u64());
    const flowqueue::Offset offset = reader.get_i64();
    if (Status s = consumer_.seek(tp, offset); !s.is_ok()) {
      throw core::CheckpointError("FlowQueueSource::restore: seek failed: " +
                                  s.message());
    }
  }
  next_interval_ = reader.get_i64();
  max_seen_interval_ = reader.get_i64();
  // Re-applying the epoch here (not just the fraction) keeps replayed
  // output stamped exactly as the pre-failure run stamped it (§IV-B).
  core::restore_control_plane(reader, tree_->control_plane().get());
  reader.expect_exhausted();
  buffered_.clear();
}

std::size_t FlowQueueSource::flush_through(std::int64_t last_interval) {
  std::size_t pushed = 0;
  std::size_t gap_budget = config_.max_gap_intervals;
  std::uint64_t skipped = 0;
  while (next_interval_ <= last_interval) {
    auto it = buffered_.find(next_interval_);
    if (it != buffered_.end()) {
      tree_->push_interval(it->second);
      buffered_.erase(it);
      ++pushed;
      ++next_interval_;
    } else if (gap_budget > 0) {
      // A quiet interval: push an empty tick so window alignment is
      // preserved.
      tree_->push_interval(
          std::vector<std::vector<Item>>(tree_->leaf_count()));
      --gap_budget;
      ++pushed;
      ++next_interval_;
    } else {
      // Gap budget exhausted (one corrupt far-future timestamp could
      // imply millions of empty ticks): bulk-skip to the next interval
      // that actually has data, counting what was elided.
      const auto next_data = buffered_.lower_bound(next_interval_);
      const std::int64_t jump_to =
          next_data != buffered_.end() && next_data->first <= last_interval
              ? next_data->first
              : last_interval + 1;
      skipped += static_cast<std::uint64_t>(jump_to - next_interval_);
      next_interval_ = jump_to;
    }
  }
  if (skipped > 0) {
    gap_intervals_skipped_ += skipped;
    if (metrics_ != nullptr) {
      metrics_->counter("bridge.gap_intervals_skipped").increment(skipped);
    }
  }
  return pushed;
}

FlowQueueSink::FlowQueueSink(flowqueue::Broker& broker, std::string topic,
                             MetricsRegistry* metrics)
    : producer_(broker), topic_(std::move(topic)), metrics_(metrics) {
  broker.ensure_topic(topic_, 1);
}

void FlowQueueSink::publish(const core::SampledBundle& bundle) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Stamp with the newest item time so a downstream FlowQueueSource can
  // bucket the record into the interval it belongs to; an all-zero stamp
  // would collapse every window into interval 0.
  SimTime timestamp = SimTime::zero();
  for (const Item& item : bundle.sample.items()) {
    timestamp.us = std::max(timestamp.us, item.created_at_us);
  }
  auto payload = core::encode_bundle(bundle);
  const std::size_t bytes = payload.size();
  auto sent = producer_.send(topic_, "root", std::move(payload), timestamp);
  if (!sent.is_ok()) {
    ++publish_errors_;
    if (metrics_ != nullptr) {
      metrics_->counter("bridge.publish_errors").increment();
    }
    return;
  }
  ++bundles_published_;
  if (metrics_ != nullptr) {
    metrics_->counter("bridge.bundles_published").increment();
    metrics_->counter("bridge.bytes_published").increment(bytes);
  }
}

std::function<void(const core::SampledBundle&)> FlowQueueSink::as_root_tap() {
  return [this](const core::SampledBundle& bundle) { publish(bundle); };
}

}  // namespace approxiot::runtime
