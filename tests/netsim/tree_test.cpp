#include "netsim/tree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace approxiot::netsim {
namespace {

TreeNetConfig small_config() {
  TreeNetConfig config;
  config.sources = 4;
  config.layer_widths = {2, 1};
  config.hop_rtts = {SimTime::from_millis(20), SimTime::from_millis(40),
                     SimTime::from_millis(80)};
  config.interval = SimTime::from_millis(500);
  config.source_tick = SimTime::from_millis(100);
  config.edge_service_rate = 1e6;
  config.root_service_rate = 1e6;
  return config;
}

/// Constant-rate source: each source emits `per_tick` items of its own
/// sub-stream with value 1.
SourceFn constant_source(std::size_t per_tick) {
  return [per_tick](std::size_t source, SimTime now) {
    std::vector<Item> items;
    items.reserve(per_tick);
    for (std::size_t i = 0; i < per_tick; ++i) {
      items.push_back(Item{SubStreamId{source + 1}, 1.0, now.us});
    }
    return items;
  };
}

TEST(TreeNetworkTest, ValidatesConfig) {
  Simulator sim;
  TreeNetConfig bad = small_config();
  bad.layer_widths = {};
  EXPECT_THROW(TreeNetwork(sim, bad, constant_source(1)),
               std::invalid_argument);

  TreeNetConfig mismatched = small_config();
  mismatched.hop_rtts.pop_back();
  EXPECT_THROW(TreeNetwork(sim, mismatched, constant_source(1)),
               std::invalid_argument);
}

TEST(TreeNetworkTest, NativeDeliversEverythingEventually) {
  Simulator sim;
  TreeNetConfig config = small_config();
  config.engine = core::EngineKind::kNative;
  TreeNetwork net(sim, config, constant_source(10));
  net.run_for(SimTime::from_seconds(10.0));
  // Let in-flight items settle: bounded drain past the stop time.
  net.drain();

  EXPECT_GT(net.items_generated(), 0u);
  // Everything generated early enough reaches the root under native.
  EXPECT_GT(net.items_processed_at_root(),
            net.items_generated() * 9 / 10);
}

TEST(TreeNetworkTest, SamplingShrinksRootVolumeAndBytes) {
  Simulator sim_full, sim_sampled;
  TreeNetConfig full = small_config();
  full.engine = core::EngineKind::kNative;
  TreeNetConfig sampled = small_config();
  sampled.engine = core::EngineKind::kApproxIoT;
  sampled.sampling_fraction = 0.1;

  TreeNetwork net_full(sim_full, full, constant_source(50));
  TreeNetwork net_sampled(sim_sampled, sampled, constant_source(50));
  net_full.run_for(SimTime::from_seconds(10.0));
  net_sampled.run_for(SimTime::from_seconds(10.0));
  net_full.drain();
  net_sampled.drain();

  EXPECT_LT(net_sampled.items_processed_at_root(),
            net_full.items_processed_at_root() / 2);

  const auto bytes_full = net_full.bytes_per_hop();
  const auto bytes_sampled = net_sampled.bytes_per_hop();
  ASSERT_EQ(bytes_full.size(), 3u);
  // The last hop (towards the datacenter) carries far fewer bytes when
  // sampling — the Fig. 7 bandwidth-saving effect.
  EXPECT_LT(bytes_sampled[2], bytes_full[2] / 2);
  // Source links carry the same raw data either way.
  EXPECT_NEAR(static_cast<double>(bytes_sampled[0]),
              static_cast<double>(bytes_full[0]),
              static_cast<double>(bytes_full[0]) * 0.01);
}

TEST(TreeNetworkTest, LatencyIncludesPropagationAndWindows) {
  Simulator sim;
  TreeNetConfig config = small_config();
  config.engine = core::EngineKind::kNative;
  TreeNetwork net(sim, config, constant_source(5));
  net.run_for(SimTime::from_seconds(8.0));
  net.drain();

  ASSERT_GT(net.latency_moments().count(), 0u);
  // One-way propagation alone is 10+20+40 = 70 ms; interval buffering at
  // three stages adds more. The mean must exceed propagation and stay
  // within the run duration.
  EXPECT_GT(net.latency_moments().mean(), 0.07);
  EXPECT_LT(net.latency_moments().mean(), 8.0);
}

TEST(TreeNetworkTest, WindowsProduceQueryResults) {
  Simulator sim;
  TreeNetConfig config = small_config();
  config.engine = core::EngineKind::kNative;
  TreeNetwork net(sim, config, constant_source(10));
  net.run_for(SimTime::from_seconds(5.0));
  net.drain();

  ASSERT_FALSE(net.windows().empty());
  double total = 0.0;
  for (const auto& w : net.windows()) total += w.result.sum.point;
  // All values are 1: the summed window results reconstruct the item
  // count that reached the root.
  EXPECT_NEAR(total, static_cast<double>(net.items_processed_at_root()),
              1e-6);
}

TEST(TreeNetworkTest, SaturationGrowsRootBacklog) {
  Simulator sim;
  TreeNetConfig config = small_config();
  config.engine = core::EngineKind::kNative;
  config.root_service_rate = 100.0;  // far below the offered load
  TreeNetwork net(sim, config, constant_source(100));
  net.run_for(SimTime::from_seconds(5.0));
  EXPECT_GT(net.root_backlog().seconds(), 1.0);
}

}  // namespace
}  // namespace approxiot::netsim
