// The ApproxIoT sampling module as a user-defined stream processor
// (§IV-B module II) and its SRS counterpart.
//
// SamplingProcessor buffers decoded (W^in, items) bundles per interval
// (scheduled punctuation = the node's interval length), and on punctuation
// runs Algorithm 1 over the buffered Ψ and forwards the encoded
// (W^out, sample) bundles downstream — exactly the per-node behaviour of
// Algorithm 2 lines 2-19, expressed in the Processor API.
//
// Punctuation-time sampling runs on whatever execution substrate the
// NodeConfig carries: pass a core::SamplingExecutor handle (e.g. one
// PooledSamplingExecutor shared across every processor of a topology)
// and the flush shards each sub-stream's reservoir over that executor's
// persistent workers (§III-E); leave it null for the sequential path.
// The TopologyDriver needs no changes either way — the parallelism is
// entirely inside the punctuate() call, so the driver's deterministic
// single-threaded record routing is preserved.
//
// Live policy (§IV-B): when the NodeConfig carries a bound PolicyHandle,
// the processor applies the control plane AT PUNCTUATION TIME — the
// buffered Ψ of one interval is always sampled under a single policy
// epoch (the snapshot current when the punctuation fires), and the
// forwarded records carry that epoch in their wire payloads. Records
// buffered before a publish and flushed after it are sampled under the
// NEW epoch: punctuation is the interval boundary, and interval
// boundaries are where policies take effect everywhere in this system.
#pragma once

#include <memory>
#include <vector>

#include "core/node.hpp"
#include "core/srs_node.hpp"
#include "core/wire.hpp"
#include "streams/processor.hpp"

namespace approxiot::streams {

class SamplingProcessor final : public Processor {
 public:
  explicit SamplingProcessor(core::NodeConfig config);

  void init(ProcessorContext& context) override;
  void process(const flowqueue::Record& record) override;
  void punctuate(SimTime now) override;
  void close() override;

  [[nodiscard]] const core::NodeMetrics& metrics() const noexcept {
    return node_.metrics();
  }

  /// Reservoir shards per sub-stream used at punctuation time (1 == the
  /// sequential path; >1 when the NodeConfig carried a pooled executor).
  [[nodiscard]] std::size_t sampling_workers() const noexcept {
    return node_.sampling_workers();
  }

  /// Policy epoch applied at the most recent punctuation flush (0 when
  /// the NodeConfig carried no control plane).
  [[nodiscard]] core::PolicyEpoch policy_epoch() const noexcept {
    return node_.policy_epoch();
  }

 private:
  void flush(SimTime boundary);

  core::SamplingNode node_;
  ProcessorContext* context_{nullptr};
  std::vector<core::ItemBundle> psi_;
  SimTime interval_;
  std::uint64_t decode_failures_{0};
};

/// SRS sampling processor: same plumbing, coin-flip sampling. Forwards
/// immediately (SRS needs no interval buffering — the paper's Fig. 9
/// observation that SRS latency is window-independent).
class SrsProcessor final : public Processor {
 public:
  explicit SrsProcessor(core::SrsNodeConfig config);

  void init(ProcessorContext& context) override;
  void process(const flowqueue::Record& record) override;

  [[nodiscard]] const core::NodeMetrics& metrics() const noexcept {
    return node_.metrics();
  }

 private:
  core::SrsNode node_;
  ProcessorContext* context_{nullptr};
  std::uint64_t decode_failures_{0};
};

}  // namespace approxiot::streams
