// Message types exchanged between nodes in the logical tree.
//
// ItemBundle is the paper's (W^in, items) pair consumed from Ψ
// (Algorithm 2 line 7); SampledBundle is the (W^out, sample) pair a node
// produces (line 10) and either forwards to its parent or stores in Θ.
//
// The sample payload is a StratifiedBatch — one contiguous arena of items
// plus a stratum directory — not a map of vectors. Flattening for
// transmission is therefore free on the rvalue path: the arena already
// holds the items in stratum order, so to_bundle() on an rvalue moves one
// vector instead of copying every item.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/stratified.hpp"
#include "core/weight_map.hpp"

namespace approxiot::core {

/// Input to WHSamp: a weight map plus items possibly spanning many
/// sub-streams. Sub-streams absent from `w_in` are interpreted via the
/// node's remembered weights (Fig. 3 rule), falling back to 1 at sources.
struct ItemBundle {
  WeightMap w_in;
  std::vector<Item> items;
  /// Policy epoch of the node that produced this bundle (0 at sources and
  /// on runtimes without a control plane). Informational in transit: a
  /// receiving node stamps its *own* resolved epoch on its output.
  std::uint64_t policy_epoch{0};

  [[nodiscard]] bool empty() const noexcept { return items.empty(); }
};

/// Output of WHSamp: per-sub-stream updated weights and sampled items.
struct SampledBundle {
  WeightMap w_out;
  StratifiedBatch sample;
  /// Policy epoch the producing node resolved for the interval that
  /// sampled this bundle (§IV-B versioning): the root's estimators use it
  /// to attribute a window's error bound to the policy generation(s) that
  /// shaped the samples. 0 == the frozen construction-time configuration.
  std::uint64_t policy_epoch{0};

  /// O(1): the arena size is the item count.
  [[nodiscard]] std::size_t item_count() const noexcept {
    return sample.item_count();
  }

  /// Flattens into an ItemBundle for transmission to the parent node.
  /// Items appear stratum by stratum in ascending sub-stream id order —
  /// exactly the concatenation the old map-of-vectors produced.
  [[nodiscard]] ItemBundle to_bundle() const& {
    ItemBundle out;
    out.w_in = w_out;
    out.items = sample.items();
    out.policy_epoch = policy_epoch;
    return out;
  }

  /// Forwarding path: the bundle is spent, so the arena and weight map
  /// move — zero item copies.
  [[nodiscard]] ItemBundle to_bundle() && {
    ItemBundle out;
    out.w_in = std::move(w_out);
    out.items = sample.release_items();
    out.policy_epoch = policy_epoch;
    return out;
  }
};

}  // namespace approxiot::core
