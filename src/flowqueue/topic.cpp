#include "flowqueue/topic.hpp"

#include <stdexcept>

namespace approxiot::flowqueue {

Topic::Topic(std::string name, std::uint32_t partitions)
    : name_(std::move(name)) {
  if (partitions == 0) {
    throw std::invalid_argument("Topic '" + name_ +
                                "' needs at least one partition");
  }
  partitions_.reserve(partitions);
  for (std::uint32_t i = 0; i < partitions; ++i) {
    partitions_.push_back(std::make_unique<PartitionLog>());
  }
}

std::uint32_t Topic::partition_for_key(const std::string& key) const {
  if (key.empty()) return 0;
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h % partitions_.size());
}

PartitionLog& Topic::partition(std::uint32_t index) {
  return *partitions_.at(index);
}

const PartitionLog& Topic::partition(std::uint32_t index) const {
  return *partitions_.at(index);
}

std::uint64_t Topic::bytes_appended() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->bytes_appended();
  return total;
}

std::uint64_t Topic::record_count() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) {
    total += static_cast<std::uint64_t>(p->end_offset());
  }
  return total;
}

}  // namespace approxiot::flowqueue
