// TumblingWindows is header-only (class template); this translation unit
// exists to anchor the library target and to host an explicit
// instantiation that keeps the template compiling under changes.
#include "streams/window.hpp"

namespace approxiot::streams {

template class TumblingWindows<int>;

}  // namespace approxiot::streams
