// SamplingExecutor: the one execution layer under every sampling path.
//
// The contract has three legs, each pinned here:
//   1. a 1-worker pooled lane is BIT-IDENTICAL to the sequential
//      WHSampler — same RNG consumption, same samples, same weights,
//      call after call on one long-lived lane;
//   2. inline vs pool-dispatched execution of the same lane produce
//      identical output (the shard assignment is a pure function of item
//      position), so dispatch is a pure performance decision;
//   3. with w > 1 workers the Eq. 8 invariant W^out · c̃ = W^in · c holds
//      exactly for every sub-stream that kept at least one item, across
//      randomized intervals.
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/whsamp.hpp"

namespace approxiot::core {
namespace {

std::vector<Item> random_items(Rng& rng, std::size_t max_items,
                               std::uint64_t streams) {
  const std::size_t n = rng.next_below(max_items + 1);
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(Item{SubStreamId{1 + rng.next_below(streams)},
                         rng.next_double() * 10.0,
                         static_cast<std::int64_t>(i)});
  }
  return items;
}

void expect_bundles_identical(const SampledBundle& a, const SampledBundle& b) {
  EXPECT_TRUE(a.w_out == b.w_out);
  ASSERT_EQ(a.sample.size(), b.sample.size());
  auto b_it = b.sample.begin();
  for (const auto& [id, items] : a.sample) {
    EXPECT_EQ(id, b_it->first);
    ASSERT_EQ(items.size(), b_it->second.size()) << "stream " << id;
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(items[i], b_it->second[i]) << "stream " << id << " item " << i;
    }
    ++b_it;
  }
}

TEST(SamplingExecutorTest, OneWorkerLaneBitIdenticalToWHSampler) {
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = 1;
  PooledSamplingExecutor executor(options);

  const std::uint64_t seed = 20180701;
  WHSampler reference(Rng(seed), WHSampConfig{});
  auto lane = executor.create_lane(Rng(seed), WHSampConfig{});

  // Many intervals on the SAME lane: cross-call RNG state must track the
  // sequential sampler's exactly, not just the first call.
  Rng workload(7);
  for (int interval = 0; interval < 50; ++interval) {
    const auto items = random_items(workload, 400, 4);
    const std::size_t budget = workload.next_below(60);
    WeightMap w_in;
    w_in.set(SubStreamId{1}, 1.0 + workload.next_double());

    const SampledBundle expected = reference.sample(items, budget, w_in);
    const SampledBundle got = lane->sample(items, budget, w_in);
    expect_bundles_identical(expected, got);
  }
}

TEST(SamplingExecutorTest, SequentialExecutorLaneIsWHSampler) {
  WHSampler reference(Rng(99), WHSampConfig{});
  auto lane = sequential_executor().create_lane(Rng(99), WHSampConfig{});
  EXPECT_EQ(lane->workers(), 1u);

  Rng workload(3);
  const auto items = random_items(workload, 500, 3);
  expect_bundles_identical(reference.sample(items, 40, WeightMap{}),
                           lane->sample(items, 40, WeightMap{}));
}

TEST(SamplingExecutorTest, InlineAndPooledDispatchProduceIdenticalOutput) {
  // Same seeds, same workers; one executor always dispatches to a real
  // pool, the other never does. Shard assignment is position % workers in
  // both, so the outputs must match item for item.
  PooledSamplingExecutor::Options pooled_options;
  pooled_options.workers_per_lane = 3;
  pooled_options.pool_threads = 2;  // force a pool even on 1 core
  pooled_options.min_items_to_dispatch = 0;
  PooledSamplingExecutor pooled(pooled_options);
  ASSERT_TRUE(pooled.has_pool());

  PooledSamplingExecutor::Options inline_options;
  inline_options.workers_per_lane = 3;
  inline_options.min_items_to_dispatch = SIZE_MAX;  // never dispatch
  PooledSamplingExecutor inlined(inline_options);

  auto pooled_lane = pooled.create_lane(Rng(5), WHSampConfig{});
  auto inline_lane = inlined.create_lane(Rng(5), WHSampConfig{});
  EXPECT_EQ(pooled_lane->workers(), 3u);

  Rng workload(11);
  for (int interval = 0; interval < 20; ++interval) {
    const auto items = random_items(workload, 2000, 5);
    const std::size_t budget = workload.next_below(200);
    expect_bundles_identical(inline_lane->sample(items, budget, WeightMap{}),
                             pooled_lane->sample(items, budget, WeightMap{}));
  }
}

TEST(SamplingExecutorTest, MultiWorkerInvariantExactOver100Intervals) {
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = 4;
  options.pool_threads = 2;
  options.min_items_to_dispatch = 0;  // exercise the cross-thread path
  PooledSamplingExecutor executor(options);
  auto lane = executor.create_lane(Rng(42), WHSampConfig{});

  Rng workload(123);
  for (int interval = 0; interval < 100; ++interval) {
    const auto items = random_items(workload, 3000, 5);
    std::map<SubStreamId, std::uint64_t> counts;
    for (const Item& item : items) ++counts[item.source];

    WeightMap w_in;
    w_in.set(SubStreamId{1}, 2.5);
    w_in.set(SubStreamId{2}, 1.0 + workload.next_double());

    const std::size_t budget = 20 + workload.next_below(400);
    const SampledBundle out = lane->sample(items, budget, w_in);

    ASSERT_EQ(out.sample.size(), counts.size());
    for (const auto& [id, kept] : out.sample) {
      if (kept.empty()) continue;
      // Eq. 8: W^out · c̃ = W^in · c, exactly.
      EXPECT_DOUBLE_EQ(
          out.w_out.get(id) * static_cast<double>(kept.size()),
          w_in.get(id) * static_cast<double>(counts.at(id)))
          << "interval " << interval << " stream " << id;
    }
  }
}

TEST(SamplingExecutorTest, InterleavedSubStreamsShardEvenly) {
  // Sharding is by WITHIN-stratum position: a strictly interleaved input
  // (the shape a round-robin upstream merge produces) must still spread
  // every sub-stream across all shards. Sharding by global position
  // would send every stream-1 item to shard 0 here and halve its kept
  // sample.
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = 2;
  PooledSamplingExecutor executor(options);
  auto lane = executor.create_lane(Rng(17), WHSampConfig{});

  std::vector<Item> items;
  for (int i = 0; i < 500; ++i) {
    items.push_back(Item{SubStreamId{1}, 1.0, 0});
    items.push_back(Item{SubStreamId{2}, 2.0, 0});
  }
  const SampledBundle out = lane->sample(items, 100, WeightMap{});
  for (std::uint64_t s = 1; s <= 2; ++s) {
    EXPECT_EQ(out.sample.at(SubStreamId{s}).size(), 50u) << "stream " << s;
    EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{s}), 10.0) << "stream " << s;
  }
}

TEST(SamplingExecutorTest, LaneClampsShardsToCapacity) {
  // More workers than reservoir slots: the lane's shard groups clamp
  // exactly like WorkerGroup, so a sub-stream with any capacity always
  // keeps at least one item (c̃ > 0 whenever c > 0).
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = 4;
  PooledSamplingExecutor executor(options);
  auto lane = executor.create_lane(Rng(23), WHSampConfig{});

  const std::vector<Item> items = {Item{SubStreamId{1}, 1.0, 0},
                                   Item{SubStreamId{1}, 2.0, 0},
                                   Item{SubStreamId{1}, 3.0, 0}};
  const SampledBundle out = lane->sample(items, 2, WeightMap{});
  EXPECT_EQ(out.sample.at(SubStreamId{1}).size(), 2u);
  EXPECT_DOUBLE_EQ(out.w_out.get(SubStreamId{1}), 1.5);
}

TEST(SamplingExecutorTest, RejectsAlgorithmLWithMultipleWorkers) {
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = 2;
  PooledSamplingExecutor executor(options);
  WHSampConfig config;
  config.reservoir_algorithm = sampling::ReservoirAlgorithm::kAlgorithmL;
  // Sharded slices run Algorithm R; a silent substitution would hand the
  // caller a different sampling algorithm than configured.
  EXPECT_THROW((void)executor.create_lane(Rng(1), config),
               std::invalid_argument);
  // One worker is the sequential path and supports every algorithm.
  PooledSamplingExecutor::Options single;
  single.workers_per_lane = 1;
  PooledSamplingExecutor sequential(single);
  EXPECT_NO_THROW((void)sequential.create_lane(Rng(1), config));
}

TEST(SamplingExecutorTest, ZeroWorkersCoercedToOne) {
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = 0;
  PooledSamplingExecutor executor(options);
  EXPECT_EQ(executor.workers_per_lane(), 1u);
  EXPECT_FALSE(executor.has_pool());
}

TEST(SamplingExecutorTest, EmptyInputYieldsEmptyBundle) {
  PooledSamplingExecutor::Options options;
  options.workers_per_lane = 2;
  PooledSamplingExecutor executor(options);
  auto lane = executor.create_lane(Rng(1), WHSampConfig{});
  const SampledBundle out = lane->sample({}, 10, WeightMap{});
  EXPECT_TRUE(out.sample.empty());
  EXPECT_TRUE(out.w_out.empty());
}

}  // namespace
}  // namespace approxiot::core
