#include "netsim/tree.hpp"

#include <stdexcept>

#include "obs/hooks.hpp"

namespace approxiot::netsim {

TreeNetwork::TreeNetwork(Simulator& sim, TreeNetConfig config,
                         SourceFn source_fn)
    : sim_(&sim), config_(std::move(config)), source_fn_(std::move(source_fn)) {
  if (config_.layer_widths.empty()) {
    throw std::invalid_argument("TreeNetwork needs at least one edge layer");
  }
  if (config_.hop_rtts.size() != config_.layer_widths.size() + 1) {
    throw std::invalid_argument(
        "hop_rtts must have one entry per hop (layers + root)");
  }

  const std::size_t sampling_layers = config_.layer_widths.size() + 1;
  const double layer_fraction = core::per_layer_fraction(
      config_.sampling_fraction, sampling_layers);

  // §IV-B live feedback: every node gets its OWN control plane — the
  // distributed state a real deployment would replicate — and policy
  // updates are delivered to it over the simulated downlinks (see
  // propagate_policy). Epoch-0 policies mirror the construction config,
  // so an adaptive tree that never adapts behaves exactly like a frozen
  // one. Native forwards everything; no budget for a policy to steer.
  const bool bind_policy =
      config_.adaptive && config_.engine != core::EngineKind::kNative;
  core::SamplingPolicy initial_policy;
  initial_policy.budget.sampling_fraction = config_.sampling_fraction;
  // Controller only where a policy can bind: a native tree has no budget
  // to steer, and running the controller anyway would report a fraction
  // trajectory no node ever applies.
  if (bind_policy) {
    controller_ = std::make_unique<core::AdaptiveController>(
        config_.sampling_fraction, config_.adaptive_config);
  }
  // Scope per engine, mirroring core's edge_tree_policy_scope: WHS/SRS
  // resolve the per-layer root of the end-to-end fraction; snapshot
  // decimates once, at the leaves (kEndToEnd there, kHold above —
  // compounding the period across layers would drift the effective
  // fraction arbitrarily off the published target).
  const bool snapshot_engine =
      config_.engine == core::EngineKind::kSnapshot;
  const auto scope_for = [&](std::size_t layer) {
    core::PolicyScope scope;
    if (snapshot_engine) {
      scope.rule = layer == 0 ? core::PolicyScope::Rule::kEndToEnd
                              : core::PolicyScope::Rule::kHold;
    } else {
      scope.rule = core::PolicyScope::Rule::kPerLayer;
      scope.sampling_layers = sampling_layers;
    }
    return scope;
  };

  // Build sampling layers.
  layers_.resize(config_.layer_widths.size());
  planes_.resize(config_.layer_widths.size());
  for (std::size_t layer = 0; layer < config_.layer_widths.size(); ++layer) {
    for (std::size_t i = 0; i < config_.layer_widths[layer]; ++i) {
      core::StageConfig sc;
      sc.engine = config_.engine;
      sc.id = NodeId{(static_cast<std::uint64_t>(layer + 1) << 32) | i};
      sc.interval = config_.interval;
      sc.fraction = layer_fraction;
      sc.rng_seed =
          config_.rng_seed * 0x9e3779b97f4a7c15ULL + sc.id.value() + 1;
      if (bind_policy) {
        planes_[layer].push_back(
            std::make_shared<core::ControlPlane>(initial_policy));
        sc.policy =
            core::PolicyHandle(planes_[layer].back(), scope_for(layer));
      }

      SimNodeConfig nc;
      nc.interval = config_.interval;
      nc.service_rate_items_per_s = config_.edge_service_rate;
      nc.label = "edge-L" + std::to_string(layer + 1) + "-" +
                 std::to_string(i);
      layers_[layer].push_back(std::make_unique<SimNode>(
          *sim_, core::make_pipeline_stage(sc), nc));
    }
  }

  // Root node.
  {
    core::StageConfig sc;
    sc.engine = config_.engine;
    sc.id = NodeId{(static_cast<std::uint64_t>(layers_.size() + 1) << 32)};
    sc.interval = config_.interval;
    sc.fraction = layer_fraction;
    sc.rng_seed = config_.rng_seed * 0x9e3779b97f4a7c15ULL + sc.id.value() + 1;
    if (bind_policy) {
      root_plane_ = std::make_shared<core::ControlPlane>(initial_policy);
      sc.policy =
          core::PolicyHandle(root_plane_, scope_for(layers_.size()));
    }

    SimNodeConfig nc;
    nc.interval = config_.interval;
    nc.service_rate_items_per_s = config_.root_service_rate;
    // The datacenter's bottleneck is the computation engine running the
    // query over *sampled* data (Fig. 4); ingest itself is cheap.
    nc.charge_on_output = true;
    nc.label = "root";
    root_ = std::make_unique<SimNode>(*sim_, core::make_pipeline_stage(sc), nc);
    root_->connect_root_sink(
        [this](const core::SampledBundle& bundle, SimTime /*now*/) {
          items_processed_at_root_ += bundle.item_count();
          theta_.add(bundle);
        });
  }

  // Links. Hop 0: one link per source into its layer-1 node. Hop k>0: one
  // link per layer-k node into its parent.
  links_.resize(config_.hop_rtts.size());
  for (std::size_t s = 0; s < config_.sources; ++s) {
    LinkConfig lc;
    lc.one_way_latency = SimTime{config_.hop_rtts[0].us / 2};
    lc.bandwidth_bps = config_.bandwidth_bps;
    lc.label = "src" + std::to_string(s);
    links_[0].push_back(std::make_unique<Link>(*sim_, lc));
  }
  for (std::size_t layer = 0; layer < layers_.size(); ++layer) {
    const std::size_t hop = layer + 1;
    for (std::size_t i = 0; i < layers_[layer].size(); ++i) {
      LinkConfig lc;
      lc.one_way_latency = SimTime{config_.hop_rtts[hop].us / 2};
      lc.bandwidth_bps = config_.bandwidth_bps;
      lc.label = "L" + std::to_string(layer + 1) + "-" + std::to_string(i);
      links_[hop].push_back(std::make_unique<Link>(*sim_, lc));

      SimNode* parent = nullptr;
      if (layer + 1 < layers_.size()) {
        const std::size_t parents = layers_[layer + 1].size();
        parent = layers_[layer + 1][i * parents / layers_[layer].size()].get();
      } else {
        parent = root_.get();
      }
      layers_[layer][i]->connect_uplink(links_[hop].back().get(), parent);
    }
  }

  for (auto& layer : layers_) {
    for (auto& node : layer) node->start();
  }
  root_->start();

  AIOT_OBS(if (config_.stats != nullptr) {
    policy_prop_us_ =
        &config_.stats->histogram("netsim/policy_propagation_us");
    policy_publishes_ = &config_.stats->counter("netsim/policy_publishes");
    windows_closed_ = &config_.stats->counter("netsim/windows_closed");
  });
}

void TreeNetwork::source_tick(std::size_t source) {
  if (sim_->now() >= stop_at_) return;

  std::vector<Item> items = source_fn_(source, sim_->now());
  items_generated_ += items.size();
  if (!items.empty()) {
    // The source's leaf node is chosen by contiguous blocks, matching the
    // paper's 8 sources feeding 4 layer-1 nodes two-to-one.
    const std::size_t leaves = layers_[0].size();
    const std::size_t leaf = source * leaves / config_.sources;

    core::ItemBundle bundle;
    bundle.items = std::move(items);
    // Wire size at the source hop: raw items, no weight metadata yet.
    const std::uint64_t bytes =
        4 + bundle.items.size() * layers_[0][leaf]->config().bytes_per_item;
    auto shared = std::make_shared<core::ItemBundle>(std::move(bundle));
    SimNode* target = layers_[0][leaf].get();
    links_[0][source]->transfer(bytes, [target, shared]() {
      target->deliver(std::move(*shared));
    });
  }

  sim_->schedule_after(config_.source_tick,
                       [this, source]() { source_tick(source); });
}

void TreeNetwork::close_window() {
  if (!theta_.empty()) {
    // Record end-to-end latency of every item surviving to the query.
    for (SubStreamId id : theta_.sub_streams()) {
      for (const core::WeightedSample& pair : theta_.pairs(id)) {
        for (const Item& item : pair.items) {
          const double seconds =
              (sim_->now() - SimTime{item.created_at_us}).seconds();
          latency_.add(seconds);
          latency_sketch_.add(seconds);
        }
      }
    }
    WindowResult wr;
    wr.closed_at = sim_->now();
    wr.result = core::approximate_query(theta_);
    wr.fraction = controller_ != nullptr ? controller_->fraction()
                                         : config_.sampling_fraction;
    // §IV-B: the window's error bound drives the next policy, which then
    // races the WAN down to the edge (propagate_policy).
    if (controller_ != nullptr && wr.result.sampled_items > 0) {
      const double next = controller_->observe(wr.result.sum);
      if (root_plane_ != nullptr &&
          root_plane_->snapshot()->budget.sampling_fraction != next) {
        propagate_policy(next);
      }
    }
    windows_.push_back(std::move(wr));
    theta_.clear();
    AIOT_OBS(if (windows_closed_ != nullptr) windows_closed_->increment(););
  }
  update_link_stats();
  if (sim_->now() < drain_until_) {
    sim_->schedule_after(config_.interval, [this]() { close_window(); });
  }
}

void TreeNetwork::update_link_stats() {
  AIOT_OBS(
      if (config_.stats == nullptr) return;
      const double elapsed_s = sim_->now().seconds();
      if (elapsed_s <= 0.0) return;
      for (std::size_t hop = 0; hop < links_.size(); ++hop) {
        std::uint64_t bytes = 0;
        for (const auto& link : links_[hop]) bytes += link->bytes_sent();
        const std::string base = "netsim/hop" + std::to_string(hop);
        config_.stats->gauge(base + "/bytes")
            .set(static_cast<double>(bytes));
        // Mean utilization over the run: bits carried vs. the hop's
        // aggregate capacity-time.
        const double capacity_bits =
            config_.bandwidth_bps * elapsed_s *
            static_cast<double>(links_[hop].size());
        config_.stats->gauge(base + "/utilization")
            .set(capacity_bits > 0.0
                     ? static_cast<double>(bytes) * 8.0 / capacity_bits
                     : 0.0);
      });
}

void TreeNetwork::propagate_policy(double fraction) {
  fraction_history_.emplace_back(sim_->now(), fraction);
  // The controller runs at the root: its own plane switches immediately.
  root_plane_->publish_fraction(fraction);
  AIOT_OBS(if (policy_publishes_ != nullptr) policy_publishes_->increment(););
  // Edge nodes learn about epoch N+1 only after the update crosses the
  // WAN: a node at layer L waits for the one-way latencies of every hop
  // between it and the root, so lower layers keep sampling under the old
  // policy while the update is in flight — the convergence-under-latency
  // effect the integration tests measure. (Policy messages are a few
  // bytes; transmission time is negligible next to propagation delay, so
  // only the latter is modelled.)
  SimTime delay = SimTime::zero();
  for (std::size_t layer = layers_.size(); layer-- > 0;) {
    const std::size_t hop_above = layer + 1;  // link towards the parent
    delay = delay + SimTime{config_.hop_rtts[hop_above].us / 2};
    for (const auto& plane : planes_[layer]) {
      AIOT_OBS(if (policy_prop_us_ != nullptr) {
        policy_prop_us_->record(static_cast<double>(delay.us));
      });
      sim_->schedule_after(delay, [plane, fraction]() {
        plane->publish_fraction(fraction);
      });
    }
  }
}

core::PolicyEpoch TreeNetwork::node_policy_epoch(std::size_t layer,
                                                 std::size_t index) const {
  if (layer == layers_.size()) {
    return root_plane_ != nullptr ? root_plane_->epoch() : 0;
  }
  if (layer < planes_.size() && index < planes_[layer].size()) {
    return planes_[layer][index]->epoch();
  }
  return 0;
}

void TreeNetwork::run_for(SimTime duration) {
  stop_at_ = sim_->now() + duration;
  // Nodes keep ticking past the stop so in-flight items can settle during
  // drain(): propagation across all hops plus a few intervals of
  // buffering bounds the settle time.
  SimTime margin = SimTime::from_seconds(1.0);
  for (SimTime rtt : config_.hop_rtts) margin = margin + rtt;
  margin = margin + SimTime{4 * config_.interval.us};
  drain_until_ = stop_at_ + margin;
  for (auto& layer : layers_) {
    for (auto& node : layer) node->set_tick_deadline(drain_until_);
  }
  root_->set_tick_deadline(drain_until_);

  for (std::size_t s = 0; s < config_.sources; ++s) {
    source_tick(s);
  }
  // Close windows just after the root's interval tick (epsilon offset so
  // the tick's output is already in Θ).
  sim_->schedule_after(config_.interval + SimTime::from_micros(1),
                       [this]() { close_window(); });
  sim_->run_until(stop_at_);
}

void TreeNetwork::drain() {
  sim_->run_until(drain_until_);
  // One last flush for anything that reached Θ after the final scheduled
  // window close.
  close_window();
  update_link_stats();
}

SimTime TreeNetwork::root_backlog() const { return root_->backlog(); }

std::vector<std::uint64_t> TreeNetwork::bytes_per_hop() const {
  std::vector<std::uint64_t> out;
  out.reserve(links_.size());
  for (const auto& hop : links_) {
    std::uint64_t bytes = 0;
    for (const auto& link : hop) bytes += link->bytes_sent();
    out.push_back(bytes);
  }
  return out;
}

}  // namespace approxiot::netsim
